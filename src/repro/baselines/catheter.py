"""Intravascular catheter reference: the invasive gold standard.

Sec. 1: "Intravascular pressure sensors are capable of recording
continuous blood pressure data, but they have to be implanted." The model
reads the true arterial pressure through the fluid-filled catheter line's
second-order dynamics (natural frequency ~15 Hz, underdamped — the classic
ringing artifact of clinical pressure lines) plus transducer noise. It is
the continuous ground-truth comparator for the baseline experiment.
"""

from __future__ import annotations

import numpy as np
from scipy import signal

from ..errors import ConfigurationError


class CatheterReference:
    """Fluid-filled catheter + external transducer.

    Parameters
    ----------
    natural_frequency_hz:
        Resonance of the catheter-tubing-transducer system.
    damping_ratio:
        Typically 0.2-0.4 (underdamped) for clinical lines.
    noise_mmhg:
        RMS transducer/amplifier noise.
    """

    def __init__(
        self,
        natural_frequency_hz: float = 15.0,
        damping_ratio: float = 0.3,
        noise_mmhg: float = 0.3,
    ):
        if natural_frequency_hz <= 0:
            raise ConfigurationError("natural frequency must be positive")
        if not 0 < damping_ratio < 2:
            raise ConfigurationError("damping ratio must be in (0, 2)")
        if noise_mmhg < 0:
            raise ConfigurationError("noise must be >= 0")
        self.natural_frequency_hz = float(natural_frequency_hz)
        self.damping_ratio = float(damping_ratio)
        self.noise_mmhg = float(noise_mmhg)

    def measure(
        self,
        arterial_mmhg: np.ndarray,
        sample_rate_hz: float,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Pressure as the catheter line reports it."""
        p = np.asarray(arterial_mmhg, dtype=float)
        if p.ndim != 1 or p.size < 4:
            raise ConfigurationError("need a 1-D record of >= 4 samples")
        if sample_rate_hz <= 4 * self.natural_frequency_hz:
            raise ConfigurationError(
                "sample rate must comfortably exceed the line resonance"
            )
        wn = 2.0 * np.pi * self.natural_frequency_hz
        zeta = self.damping_ratio
        # Second-order low-pass H(s) = wn^2 / (s^2 + 2 zeta wn s + wn^2),
        # discretized bilinearly.
        b, a = signal.bilinear(
            [wn**2], [1.0, 2.0 * zeta * wn, wn**2], fs=sample_rate_hz
        )
        out = signal.lfilter(b, a, p)
        if self.noise_mmhg > 0:
            rng = rng or np.random.default_rng(977)
            out = out + self.noise_mmhg * rng.standard_normal(out.size)
        return out

    def step_overshoot_fraction(self) -> float:
        """Overshoot of the line's step response (ringing severity)."""
        zeta = self.damping_ratio
        if zeta >= 1.0:
            return 0.0
        return float(np.exp(-np.pi * zeta / np.sqrt(1.0 - zeta**2)))


class ArterialLineReference:
    """Catheter-based calibration reference (the intra-operative case).

    A cuff cannot calibrate an epicardial measurement — ventricular
    diastole sits near zero, below any cuff's deflation floor, and in
    surgery an arterial/ventricular line is in place anyway. This
    reference measures the patient through the catheter model and
    extracts systolic/diastolic levels with the same beat detector the
    tonometer uses, returning a cuff-compatible reading so it drops into
    :class:`~repro.core.monitor.BloodPressureMonitor` unchanged.
    """

    def __init__(
        self,
        catheter: CatheterReference | None = None,
        sample_rate_hz: float = 500.0,
        duration_s: float = 10.0,
    ):
        if sample_rate_hz <= 0 or duration_s <= 0:
            raise ConfigurationError("rate and duration must be positive")
        self.catheter = catheter or CatheterReference()
        self.sample_rate_hz = float(sample_rate_hz)
        self.duration_s = float(duration_s)

    def measure(
        self,
        patient,
        start_time_s: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        """One calibration reading through the pressure line."""
        from ..baselines.cuff import CuffReading
        from ..calibration.features import detect_beats

        recording = patient.record(
            duration_s=self.duration_s, sample_rate_hz=self.sample_rate_hz
        )
        measured = self.catheter.measure(
            recording.pressure_mmhg, self.sample_rate_hz, rng=rng
        )
        # Skip the line's settling transient.
        settled = measured[int(1.0 * self.sample_rate_hz) :]
        features = detect_beats(
            settled,
            self.sample_rate_hz,
            expected_rate_bpm=patient.params.heart_rate_bpm,
        )
        systolic = features.mean_systolic_raw
        diastolic = features.mean_diastolic_raw
        times = np.arange(settled.size) / self.sample_rate_hz
        return CuffReading(
            systolic_mmhg=float(systolic),
            diastolic_mmhg=float(diastolic),
            map_mmhg=float(diastolic + (systolic - diastolic) / 3.0),
            measurement_duration_s=self.duration_s,
            cuff_pressure_mmhg=settled,
            envelope_mmhg=np.zeros_like(settled),
            times_s=times + start_time_s,
        )
