"""Baseline blood-pressure methods from the paper's introduction.

Sec. 1 motivates the sensor against two incumbents: "External methods
based on hand cuffs ... are only able to accomplish single measurements";
"Intravascular pressure sensors are capable of recording continuous blood
pressure data, but they have to be implanted". Both are implemented here
as comparators — the cuff doubles as the calibration reference of
Sec. 3.2 — plus an ideal Nyquist ADC as the readout-circuit baseline.
"""

from .cuff import CuffReading, OscillometricCuff
from .catheter import ArterialLineReference, CatheterReference
from .ideal_adc import IdealADC

__all__ = [
    "ArterialLineReference",
    "CatheterReference",
    "CuffReading",
    "IdealADC",
    "OscillometricCuff",
]
