"""Ideal Nyquist ADC: the readout-circuit baseline.

A hypothetical converter that samples the loop input directly at the
output rate with an N-bit uniform quantizer and no noise shaping. Against
it, the sigma-delta chain's benefit (noise shaping + decimation gain from
the 128x oversampling) can be quantified: the bench compares ENOB of both
readouts at equal output rate and word width.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError


class IdealADC:
    """Uniform mid-tread quantizer with optional input-referred noise.

    Parameters
    ----------
    bits:
        Output word width.
    full_scale:
        Input magnitude mapping to the positive code limit.
    noise_sigma:
        RMS additive input noise (same units as the input); models a
        comparably specified Nyquist front end.
    """

    def __init__(
        self, bits: int = 12, full_scale: float = 1.0, noise_sigma: float = 0.0
    ):
        if bits < 2:
            raise ConfigurationError("need at least 2 bits")
        if full_scale <= 0:
            raise ConfigurationError("full scale must be positive")
        if noise_sigma < 0:
            raise ConfigurationError("noise must be >= 0")
        self.bits = int(bits)
        self.full_scale = float(full_scale)
        self.noise_sigma = float(noise_sigma)

    @property
    def lsb(self) -> float:
        return self.full_scale / (1 << (self.bits - 1))

    def convert(
        self,
        samples: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Quantize a record to integer codes."""
        x = np.asarray(samples, dtype=float)
        if self.noise_sigma > 0:
            rng = rng or np.random.default_rng(555)
            x = x + self.noise_sigma * rng.standard_normal(x.shape)
        codes = np.round(x / self.lsb).astype(np.int64)
        top = (1 << (self.bits - 1)) - 1
        return np.clip(codes, -top - 1, top)

    def convert_to_values(
        self,
        samples: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Quantize and map back to input units."""
        return self.convert(samples, rng=rng).astype(float) * self.lsb

    def ideal_snr_db(self, amplitude: float | None = None) -> float:
        """Textbook SNR for a sine: 6.02 N + 1.76 dB (full scale)."""
        amp = amplitude if amplitude is not None else self.full_scale
        if amp <= 0 or amp > self.full_scale:
            raise ConfigurationError("amplitude must be in (0, full_scale]")
        backoff_db = 20.0 * np.log10(amp / self.full_scale)
        return 6.02 * self.bits + 1.76 + backoff_db
