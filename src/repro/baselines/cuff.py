"""Oscillometric hand-cuff simulator: the intermittent baseline.

Models what a conventional automatic cuff does: inflate above systole,
deflate slowly while recording the small pressure oscillations the artery
imprints on the cuff, and estimate systolic/diastolic from the oscillation
envelope with the fixed-ratio algorithm (systole where the envelope climbs
through ~55 % of its peak on the high side, diastole where it falls
through ~60 % on the low side). One measurement takes tens of seconds — the "single measurements at
a rate of some Hertz" limitation the paper's introduction cites — and the
result carries a few mmHg of method error, which propagates into any
calibration anchored to it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import erf

from ..errors import ConfigurationError, SignalQualityError
from ..physiology.patient import VirtualPatient

#: Empirical fixed-ratio constants of commercial oscillometric monitors.
SYSTOLIC_RATIO = 0.55
DIASTOLIC_RATIO = 0.60


@dataclass(frozen=True)
class CuffReading:
    """One completed cuff measurement."""

    systolic_mmhg: float
    diastolic_mmhg: float
    map_mmhg: float
    measurement_duration_s: float
    #: Cuff pressure and oscillation-envelope traces (for inspection).
    cuff_pressure_mmhg: np.ndarray
    envelope_mmhg: np.ndarray
    times_s: np.ndarray


class OscillometricCuff:
    """Automatic oscillometric cuff.

    Parameters
    ----------
    deflation_rate_mmhg_per_s:
        Linear bleed rate (clinical practice: 2-3 mmHg/s).
    inflate_margin_mmhg:
        How far above (expected) systole the cuff inflates.
    width_above_map_mmhg, width_below_map_mmhg:
        Widths of the (asymmetric) bell curve relating oscillation
        amplitude to transmural pressure. Clinical envelopes fall off
        more slowly on the high-cuff-pressure side than on the low side;
        the defaults make the fixed-ratio estimates land near the true
        values for a normotensive subject, as commercial devices are
        tuned to do.
    sensor_noise_mmhg:
        RMS noise of the cuff's own pressure transducer.
    """

    def __init__(
        self,
        deflation_rate_mmhg_per_s: float = 3.0,
        inflate_margin_mmhg: float = 30.0,
        width_above_map_mmhg: float = 10.0,
        width_below_map_mmhg: float = 6.0,
        sensor_noise_mmhg: float = 0.15,
        sample_rate_hz: float = 100.0,
    ):
        if deflation_rate_mmhg_per_s <= 0:
            raise ConfigurationError("deflation rate must be positive")
        if (
            inflate_margin_mmhg <= 0
            or width_above_map_mmhg <= 0
            or width_below_map_mmhg <= 0
        ):
            raise ConfigurationError("margins/widths must be positive")
        if sensor_noise_mmhg < 0:
            raise ConfigurationError("sensor noise must be >= 0")
        if sample_rate_hz <= 10:
            raise ConfigurationError("cuff sampling must exceed 10 Hz")
        self.deflation_rate = float(deflation_rate_mmhg_per_s)
        self.inflate_margin = float(inflate_margin_mmhg)
        self.width_above_map = float(width_above_map_mmhg)
        self.width_below_map = float(width_below_map_mmhg)
        self.sensor_noise = float(sensor_noise_mmhg)
        self.sample_rate_hz = float(sample_rate_hz)

    def measure(
        self,
        patient: VirtualPatient,
        start_time_s: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> CuffReading:
        """Run one inflate-deflate cycle against the virtual patient."""
        rng = rng or np.random.default_rng(401)
        # Plan the deflation ramp from above systole to below diastole.
        expected_sys = patient.params.systolic_mmhg
        expected_dia = patient.params.diastolic_mmhg
        start_pressure = expected_sys + self.inflate_margin
        stop_pressure = max(expected_dia - 25.0, 20.0)
        duration = (start_pressure - stop_pressure) / self.deflation_rate

        recording = patient.record(
            duration_s=duration + 2.0, sample_rate_hz=self.sample_rate_hz
        )
        t = recording.times_s
        arterial = recording.pressure_mmhg
        cuff = start_pressure - self.deflation_rate * t

        # Oscillation = arterial volume state under the cuff. The artery's
        # compliance dV/dP is a bell around zero transmural pressure, so
        # the volume (its integral over pressure) is an erf of the
        # instantaneous transmural pressure. The per-beat volume excursion
        # — what the device's envelope tracks — is then maximal while the
        # compliance bell lies inside the [dia, sys] swing and rolls off
        # exactly as the cuff pressure crosses systole (high side) and
        # diastole (low side): the mechanism that makes fixed-ratio
        # estimates track sys/dia across patients with different pulse
        # pressures. Width asymmetry matches the artery's stiffer
        # collapse-side behaviour.
        transmural = cuff - arterial
        width = np.where(
            transmural >= 0.0, self.width_above_map, self.width_below_map
        )
        volume_state = erf(-transmural / (width * np.sqrt(2.0)))
        # Full volume swing imprints ~1.5 mmHg on the cuff (clinical
        # oscillation amplitudes are 1-3 mmHg).
        oscillation = 1.5 * volume_state
        measured = cuff + oscillation + self.sensor_noise * rng.standard_normal(
            t.size
        )

        envelope = self._beat_envelope(measured - cuff, t, patient)
        return self._estimate(measured, envelope, cuff, t, start_time_s)

    def _beat_envelope(
        self,
        oscillation: np.ndarray,
        times_s: np.ndarray,
        patient: VirtualPatient,
    ) -> np.ndarray:
        """Per-beat peak-to-peak amplitude, interpolated to the grid."""
        rr = 60.0 / patient.params.heart_rate_bpm
        window = max(int(rr * self.sample_rate_hz), 4)
        n_windows = oscillation.size // window
        if n_windows < 5:
            raise SignalQualityError("deflation too fast: too few beats")
        centers = []
        amplitudes = []
        for k in range(n_windows):
            seg = oscillation[k * window : (k + 1) * window]
            centers.append(times_s[k * window + window // 2])
            amplitudes.append(float(seg.max() - seg.min()))
        return np.interp(times_s, centers, amplitudes)

    def _estimate(
        self,
        measured: np.ndarray,
        envelope: np.ndarray,
        cuff: np.ndarray,
        times_s: np.ndarray,
        start_time_s: float,
    ) -> CuffReading:
        peak_idx = int(np.argmax(envelope))
        peak_amp = float(envelope[peak_idx])
        if peak_amp <= 0:
            raise SignalQualityError("no oscillation envelope detected")

        # Fixed-ratio points: systolic on the high-pressure (early) side,
        # diastolic on the low-pressure (late) side.
        sys_region = envelope[:peak_idx]
        above = np.nonzero(sys_region >= SYSTOLIC_RATIO * peak_amp)[0]
        if above.size == 0:
            raise SignalQualityError("systolic ratio point not found")
        systolic = float(cuff[above[0]])

        dia_region = envelope[peak_idx:]
        below = np.nonzero(dia_region <= DIASTOLIC_RATIO * peak_amp)[0]
        if below.size == 0:
            raise SignalQualityError("diastolic ratio point not found")
        diastolic = float(cuff[peak_idx + below[0]])

        # MAP by the clinical formula, as commercial devices report it:
        # the volume-swing envelope is plateau-shaped between diastole
        # and systole, so its raw argmax is a poor MAP estimator.
        map_mmhg = diastolic + (systolic - diastolic) / 3.0

        return CuffReading(
            systolic_mmhg=systolic,
            diastolic_mmhg=diastolic,
            map_mmhg=map_mmhg,
            measurement_duration_s=float(times_s[-1] - times_s[0]),
            cuff_pressure_mmhg=cuff,
            envelope_mmhg=envelope,
            times_s=times_s + start_time_s,
        )

    def measurement_interval_s(self, rest_s: float = 30.0) -> float:
        """Minimum time between successive readings (cycle + venous rest).

        This is the number that makes the cuff *intermittent*: the
        tonometer produces 1000 samples/s, the cuff one reading per
        minute-ish.
        """
        typical_cycle = (120.0 + self.inflate_margin - 55.0) / self.deflation_rate
        return typical_cycle + rest_s
