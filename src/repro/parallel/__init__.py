"""Deterministic parallel execution for embarrassingly-parallel workloads.

The paper's array readout gets its throughput from the independence of
the array elements; the experiment harnesses get theirs the same way —
virtual subjects, design-space cells and ablation arms are all
independent work items. :class:`ParallelExecutor` fans such items out
over a process pool with a seeding discipline (per-task child seeds via
``SeedSequence.spawn``) and ordered result collection that make every
result **bit-identical for any worker count**, including the in-process
``jobs=1`` serial path.

Workers amortize expensive per-task setup (FIR tap design, membrane
transfer solves) through the process-local :class:`PrecomputeCache`,
whose hit/miss counters surface in the executor's
:class:`ExecutorTelemetry` alongside task conservation counters and
per-worker wall time (see docs/THEORY.md §8 for the contract).
"""

from .cache import PrecomputeCache, precompute_cache
from .executor import ExecutorTelemetry, ParallelExecutor

__all__ = [
    "ExecutorTelemetry",
    "ParallelExecutor",
    "PrecomputeCache",
    "precompute_cache",
]
