"""Process-local cache for expensive, immutable precomputations.

Several constructions repeat identical numeric work every time an object
is built: the droop-compensating FIR design in :mod:`repro.dsp.fir`
re-runs ``firwin2`` for every :class:`~repro.core.chain.ReadoutChain`,
and :class:`~repro.mems.membrane.MembraneSensor` re-solves the plate
deflection and Chebyshev transfer fit for every chip. Within one
process — and in every worker of a
:class:`~repro.parallel.executor.ParallelExecutor` pool — those results
depend only on frozen parameter dataclasses, so they can be computed
once and shared.

:class:`PrecomputeCache` is a keyed memo with hit/miss counters. Keys
must be hashable; the convention is a tuple whose first entry names the
computation and whose remaining entries are the relevant frozen params
dataclasses (hashable by construction) or canonical scalars. Cached
values are treated as immutable — factories producing arrays mark them
read-only so accidental mutation fails loudly instead of corrupting
every later consumer.

One process-global instance (:func:`precompute_cache`) backs the
library's built-in uses. Forked pool workers inherit the parent's warm
entries copy-on-write; each worker then accumulates its own counters,
which the executor folds into its telemetry.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable

from ..errors import ConfigurationError


class PrecomputeCache:
    """Keyed memo for expensive per-task setup, with hit/miss counters.

    Not thread-safe (the executor parallelizes across processes, where
    each process sees its own instance); a racy double-compute would be
    benign anyway because cached values are deterministic functions of
    their keys.

    Parameters
    ----------
    maxsize:
        Optional entry bound. When set, the cache evicts its least
        recently *used* entry after an insert overflows the bound, and
        counts the eviction. ``None`` (default, and the process-global
        instance's mode) never evicts: the built-in users cache a
        handful of param-keyed designs whose lifetime is the process.
    """

    def __init__(self, maxsize: int | None = None) -> None:
        if maxsize is not None and maxsize < 1:
            raise ConfigurationError("cache maxsize must be >= 1")
        self._store: OrderedDict[Hashable, Any] = OrderedDict()
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on miss.

        ``factory`` runs only on a miss and must return a value that is
        a pure function of the key (same key, same value — the executor's
        determinism contract relies on it). A raising factory leaves the
        cache untouched — no miss is counted and nothing is stored — so
        a retried ``get`` behaves exactly like a first attempt.
        """
        try:
            value = self._store[key]
        except TypeError as exc:
            raise ConfigurationError(
                f"precompute cache keys must be hashable, got {key!r}"
            ) from exc
        except KeyError:
            value = factory()
            # Counted and stored only after the factory succeeded: an
            # exception must not book a miss for work that never
            # produced a value (telemetry would double-count retries)
            # nor poison the store.
            self.misses += 1
            self._store[key] = value
            if self.maxsize is not None and len(self._store) > self.maxsize:
                self._store.popitem(last=False)
                self.evictions += 1
            return value
        self.hits += 1
        if self.maxsize is not None:
            self._store.move_to_end(key)
        return value

    def stats(self) -> tuple[int, int]:
        """``(hits, misses)`` since construction or the last reset."""
        return (self.hits, self.misses)

    def reset_stats(self) -> None:
        """Zero the counters without dropping cached entries."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def clear(self) -> None:
        """Drop every entry and zero the counters."""
        self._store.clear()
        self.reset_stats()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._store


#: The process-local cache behind the library's built-in precomputations.
_GLOBAL_CACHE = PrecomputeCache()


def precompute_cache() -> PrecomputeCache:
    """The process-local :class:`PrecomputeCache` instance.

    Module-level so forked executor workers share the parent's warm
    entries (copy-on-write) while keeping per-process counters.
    """
    return _GLOBAL_CACHE
