"""Deterministic process-pool execution engine for independent tasks.

The design discipline mirrors the chunk-invariance work of the streaming
sessions (docs/THEORY.md §7): parallelism must never change the numbers.
Three rules make results bit-identical for any worker count:

1. **Per-task child seeds.** When a run is seeded, the executor spawns
   one :class:`numpy.random.SeedSequence` child per *task index* before
   anything is scheduled, so a task's random stream depends only on the
   master seed and its position in the submission order — never on which
   worker ran it or how tasks were chunked.
2. **Stateless tasks.** A task function receives its item (and its seed)
   and returns a picklable value; it must not read mutable shared state.
   Expensive *immutable* setup is shared through the process-local
   :class:`~repro.parallel.cache.PrecomputeCache` instead.
3. **Ordered collection.** Chunks complete in any order; results are
   reassembled by task index before :meth:`ParallelExecutor.map`
   returns.

``jobs=1`` runs the identical chunked task loop in-process (no pool, no
pickling) — the serial fallback the equivalence tests compare against.

Every ``map`` produces an :class:`ExecutorTelemetry`: task-conservation
counters, per-worker wall time, cache hit/miss deltas and derived
speedup/efficiency estimates, with a :meth:`~ExecutorTelemetry.reconcile`
that asserts the counters agree — the executor-level analogue of the
pipeline telemetry carried by acquisition sessions.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..errors import ConfigurationError
from .cache import precompute_cache

#: Target number of chunks dispatched per worker when auto-chunking.
#: Several waves per worker keep the pool busy when task durations vary,
#: without pickling every task separately.
_CHUNKS_PER_WORKER = 4


@dataclass
class ExecutorTelemetry:
    """Counters and timings of one :meth:`ParallelExecutor.map` run."""

    #: Worker-pool width the executor actually ran with (post-clamp).
    jobs: int = 1
    #: Worker count the caller asked for (0 = unrecorded; equals
    #: ``jobs`` unless the executor clamped to the core budget).
    jobs_requested: int = 0
    #: Tasks per dispatched chunk (the last chunk may be smaller).
    chunk_size: int = 0
    #: Tasks handed to :meth:`ParallelExecutor.map`.
    tasks_submitted: int = 0
    #: Tasks whose results were collected and ordered.
    tasks_completed: int = 0
    #: Chunks sent to the pool (or run in-process for ``jobs=1``).
    chunks_dispatched: int = 0
    #: Chunks whose reports came back.
    chunks_completed: int = 0
    #: Wall time of the whole map call, including scheduling.
    wall_seconds: float = 0.0
    #: Sum of per-task wall time measured inside the workers.
    task_seconds: float = 0.0
    #: Wall time per worker process, keyed by ``pid-<n>``.
    worker_seconds: dict[str, float] = field(default_factory=dict)
    #: Precompute-cache hits accumulated inside workers during the run.
    cache_hits: int = 0
    #: Precompute-cache misses accumulated inside workers during the run.
    cache_misses: int = 0
    #: Advisory notes about the run's configuration (e.g. a pool wider
    #: than the machine). Never affect results or reconciliation.
    warnings: list[str] = field(default_factory=list)

    @property
    def workers_used(self) -> int:
        return len(self.worker_seconds)

    def speedup_estimate(self) -> float:
        """Aggregate task time over wall time — the realized speedup."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.task_seconds / self.wall_seconds

    def parallel_efficiency(self) -> float:
        """Speedup per configured worker (1.0 = perfect scaling)."""
        if self.jobs <= 0:
            return 0.0
        return self.speedup_estimate() / self.jobs

    def cache_hit_rate(self) -> float:
        """Worker-side cache hits over total lookups (0 when unused)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def reconcile(self) -> None:
        """Assert task conservation and internal counter consistency.

        Raises :class:`~repro.errors.ConfigurationError` on the first
        violated identity, mirroring
        :meth:`~repro.core.session.PipelineTelemetry.reconcile`.
        """

        def require(ok: bool, what: str) -> None:
            if not ok:
                raise ConfigurationError(
                    f"executor telemetry inconsistency: {what} ({self})"
                )

        require(self.jobs >= 1, "executor must have at least one worker")
        if self.jobs_requested:
            require(
                self.jobs_requested >= self.jobs,
                "clamping can only lower the worker count",
            )
        require(
            self.tasks_completed == self.tasks_submitted,
            "every submitted task must complete exactly once",
        )
        require(
            self.chunks_completed == self.chunks_dispatched,
            "every dispatched chunk must report back",
        )
        if self.tasks_submitted > 0:
            require(self.chunk_size >= 1, "chunk size must be >= 1")
            require(
                self.chunks_dispatched
                == math.ceil(self.tasks_submitted / self.chunk_size),
                "chunk count must cover the task list exactly",
            )
            require(
                self.workers_used >= 1,
                "completed tasks imply at least one worker",
            )
        require(
            self.workers_used <= max(self.jobs, 1),
            "cannot use more workers than the configured pool width",
        )
        require(
            self.cache_hits >= 0 and self.cache_misses >= 0,
            "cache counters must be non-negative",
        )
        require(self.wall_seconds >= 0.0, "wall time must be non-negative")
        # Worker wall time covers the per-task time it contains (equality
        # never holds exactly: chunk timing includes loop overhead).
        total_worker = sum(self.worker_seconds.values())
        require(
            total_worker >= self.task_seconds - 1e-6,
            "per-worker wall time cannot undercut the task time it spans",
        )

    def describe(self) -> str:
        """Human-readable summary (the CLI's post-run footer)."""
        clamped = (
            f", clamped from {self.jobs_requested}"
            if self.jobs_requested and self.jobs_requested != self.jobs
            else ""
        )
        lines = [
            "ExecutorTelemetry",
            f"  jobs              : {self.jobs} "
            f"({self.workers_used} worker(s) used{clamped})",
            f"  tasks             : {self.tasks_completed}/"
            f"{self.tasks_submitted} in {self.chunks_completed} chunk(s) "
            f"of <= {self.chunk_size}",
            f"  wall / task time  : {self.wall_seconds:.3f} s / "
            f"{self.task_seconds:.3f} s",
            f"  speedup           : {self.speedup_estimate():.2f}x "
            f"(efficiency {self.parallel_efficiency() * 100:.0f}%)",
            f"  precompute cache  : {self.cache_hits} hit(s), "
            f"{self.cache_misses} miss(es) "
            f"({self.cache_hit_rate() * 100:.0f}% hit rate)",
        ]
        for worker in sorted(self.worker_seconds):
            lines.append(
                f"  t({worker:<12})  : "
                f"{self.worker_seconds[worker] * 1e3:.1f} ms"
            )
        for note in self.warnings:
            lines.append(f"  warning           : {note}")
        return "\n".join(lines)


@dataclass
class _ChunkReport:
    """What one executed chunk sends back to the scheduler."""

    chunk_id: int
    worker: str
    seconds: float
    task_seconds: float
    cache_hits: int
    cache_misses: int
    #: ``(task_index, value)`` pairs, in within-chunk order.
    results: list[tuple[int, Any]]


def _run_chunk(
    payload: tuple[Callable[..., Any], int, list[tuple[int, Any, Any]]],
) -> _ChunkReport:
    """Execute one chunk of tasks (in a pool worker or in-process).

    Module-level so it pickles under every start method. Snapshots the
    process-local precompute-cache counters around the chunk so the
    parent can aggregate worker-side hits/misses.
    """
    fn, chunk_id, tasks = payload
    cache = precompute_cache()
    hits0, misses0 = cache.hits, cache.misses
    results: list[tuple[int, Any]] = []
    task_seconds = 0.0
    t0 = time.perf_counter()
    for index, item, seed in tasks:
        t_task = time.perf_counter()
        value = fn(item) if seed is None else fn(item, seed)
        task_seconds += time.perf_counter() - t_task
        results.append((index, value))
    return _ChunkReport(
        chunk_id=chunk_id,
        worker=f"pid-{os.getpid()}",
        seconds=time.perf_counter() - t0,
        task_seconds=task_seconds,
        cache_hits=cache.hits - hits0,
        cache_misses=cache.misses - misses0,
        results=results,
    )


class _BatchTask:
    """Picklable adapter: one scheduled task = one batch of items.

    Module-level class (not a closure) so it pickles under every start
    method. Seeds travel inside the payload, pre-spawned per *item*
    index by :meth:`ParallelExecutor.map_batches`, so the grouping into
    batches never touches any item's random stream.
    """

    def __init__(self, fn: Callable[..., Any], seeded: bool):
        self.fn = fn
        self.seeded = seeded

    def __call__(self, payload: tuple[list[Any], list[Any]]) -> list[Any]:
        batch_items, batch_seeds = payload
        if self.seeded:
            return self.fn(batch_items, batch_seeds)
        return self.fn(batch_items)


class ParallelExecutor:
    """Deterministic fan-out of independent tasks over a process pool.

    Parameters
    ----------
    jobs:
        Worker count. ``1`` (default) runs everything in-process through
        the same chunked task loop — the exact serial path the
        equivalence tests compare the pool against.
    chunk_size:
        Tasks per dispatched chunk. Defaults to
        ``ceil(n_tasks / (jobs * 4))`` so each worker sees several
        scheduling waves. Chunking never affects results, only
        scheduling granularity.
    start_method:
        Multiprocessing start method. Defaults to ``"fork"`` where
        available (workers inherit warm caches and the compiled
        modulator kernel for free) and the platform default elsewhere.
        Results do not depend on it.
    force_jobs:
        Escape hatch: run with exactly ``jobs`` workers even beyond the
        machine's core count. By default the executor clamps the
        effective pool to ``min(jobs, cpu_count)`` — oversubscribed
        workers only time-slice the same cores at a net slowdown, and
        results are bit-identical for any worker count anyway. The
        clamp (or the forced oversubscription) is recorded in
        :class:`ExecutorTelemetry`.
    """

    def __init__(
        self,
        jobs: int = 1,
        chunk_size: int | None = None,
        start_method: str | None = None,
        force_jobs: bool = False,
    ):
        if jobs < 1:
            raise ConfigurationError("executor needs at least one job")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError("chunk size must be >= 1")
        self.jobs_requested = int(jobs)
        self.jobs = int(jobs)
        self.force_jobs = bool(force_jobs)
        self.chunk_size = chunk_size
        # Oversubscription never changes results (seeds are fixed per
        # task index) but the extra workers only time-slice the same
        # cores at a net slowdown, so clamp to the core budget by
        # default and flag it once, loudly, instead of letting "why is
        # jobs=32 slower than jobs=8" go undiagnosed. force_jobs=True
        # keeps the requested width for scheduling studies.
        cores = os.cpu_count() or 1
        self._oversubscribed: str | None = None
        if self.jobs > cores:
            if self.force_jobs:
                self._oversubscribed = (
                    f"jobs={self.jobs} exceeds the {cores} available CPU "
                    f"core(s); workers will time-slice and parallel "
                    f"efficiency will degrade"
                )
            else:
                self.jobs = cores
                self._oversubscribed = (
                    f"jobs={self.jobs_requested} exceeds the {cores} "
                    f"available CPU core(s); clamped to {self.jobs} "
                    f"worker(s) — pass force_jobs=True to oversubscribe"
                )
            warnings.warn(self._oversubscribed, RuntimeWarning, stacklevel=2)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else None
        self.start_method = start_method
        #: Telemetry of the most recent :meth:`map` call.
        self.telemetry = ExecutorTelemetry(
            jobs=self.jobs, jobs_requested=self.jobs_requested
        )

    # -- scheduling --------------------------------------------------------

    def _spawn_seeds(
        self, seed: int | np.random.SeedSequence | None, n: int
    ) -> Sequence[np.random.SeedSequence | None]:
        """One child seed per task index, fixed before any scheduling."""
        if seed is None:
            return [None] * n
        if isinstance(seed, np.random.SeedSequence):
            return seed.spawn(n)
        return np.random.SeedSequence(int(seed)).spawn(n)

    def map(
        self,
        fn: Callable[..., Any],
        items: Iterable[Any],
        seed: int | np.random.SeedSequence | None = None,
    ) -> list[Any]:
        """Run ``fn`` over ``items``; return results in submission order.

        ``fn`` must be a module-level (picklable) callable. Without
        ``seed`` it is called as ``fn(item)``; with a ``seed`` each call
        receives ``fn(item, seed_sequence)`` where the sequences are the
        ``SeedSequence.spawn`` children of the master seed, indexed by
        task position — the discipline that makes results independent of
        ``jobs``, chunking and completion order.

        The run's :class:`ExecutorTelemetry` lands in :attr:`telemetry`
        (already reconciled).
        """
        tasks = list(items)
        n = len(tasks)
        tm = ExecutorTelemetry(
            jobs=self.jobs, jobs_requested=self.jobs_requested
        )
        if self._oversubscribed is not None:
            tm.warnings.append(self._oversubscribed)
        self.telemetry = tm
        tm.tasks_submitted = n
        if n == 0:
            return []

        seeds = self._spawn_seeds(seed, n)
        chunk = self.chunk_size or max(
            1, math.ceil(n / (self.jobs * _CHUNKS_PER_WORKER))
        )
        tm.chunk_size = chunk
        payloads = [
            (
                fn,
                chunk_id,
                [
                    (i, tasks[i], seeds[i])
                    for i in range(lo, min(lo + chunk, n))
                ],
            )
            for chunk_id, lo in enumerate(range(0, n, chunk))
        ]
        tm.chunks_dispatched = len(payloads)

        t0 = time.perf_counter()
        if self.jobs == 1:
            reports = [_run_chunk(p) for p in payloads]
        else:
            ctx = multiprocessing.get_context(self.start_method)
            processes = min(self.jobs, len(payloads))
            with ctx.Pool(processes=processes) as pool:
                reports = list(pool.imap_unordered(_run_chunk, payloads))
        tm.wall_seconds = time.perf_counter() - t0

        # Ordered collection: completion order is scheduling noise;
        # task indices are the only ordering that exists.
        slots: list[Any] = [None] * n
        filled = [False] * n
        for report in reports:
            tm.chunks_completed += 1
            tm.task_seconds += report.task_seconds
            tm.worker_seconds[report.worker] = (
                tm.worker_seconds.get(report.worker, 0.0) + report.seconds
            )
            tm.cache_hits += report.cache_hits
            tm.cache_misses += report.cache_misses
            for index, value in report.results:
                if filled[index]:
                    raise ConfigurationError(
                        f"task {index} completed twice; scheduler bug"
                    )
                slots[index] = value
                filled[index] = True
                tm.tasks_completed += 1
        tm.reconcile()
        return slots

    def map_batches(
        self,
        fn: Callable[..., Any],
        items: Iterable[Any],
        seed: int | np.random.SeedSequence | None = None,
        batch_size: int | None = None,
    ) -> list[Any]:
        """Run ``fn`` over *batches* of items; return per-item results.

        The batched analogue of :meth:`map`, built for batch-capable
        task functions (e.g. one :class:`~repro.batch.session.\
        BatchAcquisitionSession` over a worker's whole slice of
        subjects, instead of one chain per task). ``fn`` must be a
        module-level callable invoked as ``fn(batch_items)`` — or
        ``fn(batch_items, batch_seeds)`` when ``seed`` is given — and
        must return one result per item, in batch order.

        Child seeds are spawned per *item* index before any batching,
        so results are independent of ``batch_size``, ``jobs`` and
        completion order — the same discipline :meth:`map` enforces per
        task. Telemetry (in :attr:`telemetry`) accounts at batch
        granularity: one batch = one task.
        """
        tasks = list(items)
        n = len(tasks)
        if batch_size is not None and batch_size < 1:
            raise ConfigurationError("batch size must be >= 1")
        if batch_size is None:
            batch_size = max(
                1, math.ceil(n / (self.jobs * _CHUNKS_PER_WORKER))
            )
        seeds = self._spawn_seeds(seed, n)
        payloads = [
            (tasks[lo : lo + batch_size], list(seeds[lo : lo + batch_size]))
            for lo in range(0, n, batch_size)
        ]
        batch_results = self.map(_BatchTask(fn, seed is not None), payloads)
        results: list[Any] = []
        for (batch_items, _), out in zip(payloads, batch_results):
            out = list(out)
            if len(out) != len(batch_items):
                raise ConfigurationError(
                    f"batch task returned {len(out)} result(s) for "
                    f"{len(batch_items)} item(s); map_batches requires "
                    f"one result per item"
                )
            results.extend(out)
        return results
