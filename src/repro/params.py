"""Paper-default parameters, centralized.

Every number quoted in Kirstein et al. (DATE 2004) lives here as the default
of a frozen dataclass, so experiment harnesses and tests share a single
source of truth. Quantities not stated in the paper (e.g. the capacitor gap
set by the sacrificial first-metal thickness) carry values typical for the
0.8 um CMOS process the paper uses, and are documented as such.

All values are SI (meters, pascals, farads, seconds, volts). Blood-pressure
values cross into mmHg only at the calibration boundary
(:mod:`repro.calibration.units`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from .errors import ConfigurationError

# ---------------------------------------------------------------------------
# Unit helpers used widely in tests and examples.

MMHG_PER_PASCAL = 1.0 / 133.322387415
PASCAL_PER_MMHG = 133.322387415


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class MembraneParams:
    """Geometry and electrostatics of one membrane transducer (Sec. 2.1).

    The paper states a 100 um side length, 3 um thickness, 150 um pitch,
    with the bottom electrode in poly-Si and the top electrode in metal-2.
    The electrode gap is the thickness of the sacrificially removed
    first-metal layer; 0.8 um CMOS metal-1 is typically ~0.6 um thick.
    """

    side_m: float = 100e-6
    thickness_m: float = 3e-6
    pitch_m: float = 150e-6
    gap_m: float = 0.6e-6
    #: Fraction of membrane area covered by the top electrode. The drawn
    #: electrode stops short of the clamped edge where deflection is zero.
    electrode_coverage: float = 0.8
    #: Net residual tensile stress of the released CMOS stack [Pa]. CMOS
    #: oxide/nitride/Al sandwiches are mildly tensile after release.
    residual_stress_pa: float = 30e6

    def __post_init__(self) -> None:
        _require(self.side_m > 0, "membrane side must be positive")
        _require(self.thickness_m > 0, "membrane thickness must be positive")
        _require(self.pitch_m >= self.side_m, "pitch must be >= side length")
        _require(self.gap_m > 0, "electrode gap must be positive")
        _require(
            0 < self.electrode_coverage <= 1.0,
            "electrode coverage must be in (0, 1]",
        )


@dataclass(frozen=True)
class ArrayParams:
    """Transducer array layout (Sec. 2.1/2.2): 2x2 elements, 150 um pitch."""

    rows: int = 2
    cols: int = 2
    membrane: MembraneParams = field(default_factory=MembraneParams)
    #: 1-sigma relative mismatch of rest capacitance across elements,
    #: representing process gradients. Not quoted in the paper; typical for
    #: matched on-chip capacitors.
    capacitance_mismatch_sigma: float = 0.002

    def __post_init__(self) -> None:
        _require(self.rows >= 1 and self.cols >= 1, "array must be >= 1x1")
        _require(
            self.capacitance_mismatch_sigma >= 0.0,
            "mismatch sigma must be non-negative",
        )

    @property
    def n_elements(self) -> int:
        return self.rows * self.cols


@dataclass(frozen=True)
class ModulatorParams:
    """Second-order single-bit SC sigma-delta modulator (Sec. 2.2/3.1).

    fs = 128 kHz, OSR = 128 -> 1 kS/s output. The loop coefficients follow
    the Boser-Wooley scaling (0.5/0.5) which keeps a single-bit 2nd-order
    loop stable up to inputs of roughly 70-80 % of the reference.
    """

    sampling_rate_hz: float = 128e3
    osr: int = 128
    vref_v: float = 2.5
    supply_v: float = 5.0
    #: Integrator gains a1, a2 (charge-transfer ratios Cin/Cint).
    a1: float = 0.5
    a2: float = 0.5
    #: First-stage feedback capacitor ratio Cfb/Cint. The paper's future
    #: work proposes adjusting this to improve resolution.
    feedback_ratio: float = 0.5
    #: Integrator state magnitude beyond which the loop is declared
    #: overloaded (in units of vref).
    overload_limit: float = 8.0

    def __post_init__(self) -> None:
        _require(self.sampling_rate_hz > 0, "sampling rate must be positive")
        _require(self.osr >= 2, "OSR must be >= 2")
        _require(self.vref_v > 0, "reference voltage must be positive")
        _require(self.a1 > 0 and self.a2 > 0, "integrator gains must be positive")
        _require(self.feedback_ratio > 0, "feedback ratio must be positive")

    @property
    def output_rate_hz(self) -> float:
        """Decimated conversion rate; the paper reports 1 kS/s."""
        return self.sampling_rate_hz / self.osr


@dataclass(frozen=True)
class NonidealityParams:
    """Analog non-ideality knobs of the behavioural modulator.

    Defaults describe a competent 0.8 um SC design; setting everything to
    zero (:meth:`ideal`) yields the textbook difference equations.
    """

    #: Sampling capacitor [F] used for kT/C noise. ~1 pF is typical.
    sampling_cap_f: float = 1e-12
    #: Finite DC gain of the integrator op-amps (V/V); inf = ideal.
    opamp_gain: float = 5e3
    #: Comparator input-referred offset [V].
    comparator_offset_v: float = 0.0
    #: Comparator hysteresis [V].
    comparator_hysteresis_v: float = 0.0
    #: RMS clock jitter [s].
    clock_jitter_s: float = 50e-12
    #: Temperature for kT/C noise [K].
    temperature_k: float = 300.0
    #: Input-referred flicker-noise corner frequency [Hz]; 0 disables.
    flicker_corner_hz: float = 0.0

    def __post_init__(self) -> None:
        _require(self.sampling_cap_f > 0, "sampling capacitor must be positive")
        _require(self.opamp_gain > 0, "op-amp gain must be positive")
        _require(self.clock_jitter_s >= 0, "jitter must be non-negative")
        _require(self.temperature_k > 0, "temperature must be positive")
        _require(self.flicker_corner_hz >= 0, "flicker corner must be >= 0")

    @classmethod
    def ideal(cls) -> "NonidealityParams":
        """A noiseless analog front end: textbook difference equations.

        The infinite sampling capacitor zeroes the kT/C term, making the
        simulation fully deterministic (no rng draws) — what the
        chunked-vs-monolithic equivalence tests rely on.
        """
        return cls(
            sampling_cap_f=float("inf"),
            opamp_gain=1e12,
            comparator_offset_v=0.0,
            comparator_hysteresis_v=0.0,
            clock_jitter_s=0.0,
            flicker_corner_hz=0.0,
        )


@dataclass(frozen=True)
class FrontEndParams:
    """Capacitive input branch of the modulator (Fig. 6).

    ``feedback_cap_f`` is the physical first-stage feedback capacitor that
    normalizes the sensed (Csense - Cref) difference; the paper's future
    work proposes adjusting it to trade overload margin for resolution.
    """

    feedback_cap_f: float = 50e-15
    excitation_fraction: float = 1.0

    def __post_init__(self) -> None:
        _require(self.feedback_cap_f > 0, "feedback capacitor must be positive")
        _require(
            self.excitation_fraction > 0, "excitation fraction must be positive"
        )


@dataclass(frozen=True)
class DecimationParams:
    """Two-stage decimation filter (Sec. 3.1).

    Stage 1: 3rd-order SINC (CIC), stage 2: 32-tap FIR; total decimation
    equals the OSR of 128 and the passband cutoff is 500 Hz at a 1 kS/s
    output rate with 12-bit output resolution. The 32/4 split between the
    stages is our choice (the paper does not state it); it puts the FIR at
    a 4 kHz input rate where 32 taps comfortably realize a 500 Hz cutoff
    and the CIC droop correction.
    """

    cic_order: int = 3
    cic_decimation: int = 32
    fir_taps: int = 32
    fir_decimation: int = 4
    cutoff_hz: float = 500.0
    output_bits: int = 12
    #: Input word width of the FIR stage (CIC output is truncated to this).
    fir_input_bits: int = 18

    def __post_init__(self) -> None:
        _require(self.cic_order >= 1, "CIC order must be >= 1")
        _require(self.cic_decimation >= 2, "CIC decimation must be >= 2")
        _require(self.fir_taps >= 2, "FIR must have >= 2 taps")
        _require(self.fir_decimation >= 1, "FIR decimation must be >= 1")
        _require(self.cutoff_hz > 0, "cutoff must be positive")
        _require(self.output_bits >= 2, "output width must be >= 2 bits")

    @property
    def total_decimation(self) -> int:
        return self.cic_decimation * self.fir_decimation


@dataclass(frozen=True)
class ChipParams:
    """Whole-chip figures (Sec. 3): 0.8 um CMOS, 2.6 x 1.9 mm^2, 11.5 mW."""

    technology_um: float = 0.8
    die_width_m: float = 2.6e-3
    die_height_m: float = 1.9e-3
    power_w: float = 11.5e-3
    supply_v: float = 5.0
    reference_sampling_rate_hz: float = 128e3

    def __post_init__(self) -> None:
        _require(self.die_width_m > 0 and self.die_height_m > 0, "die must be positive")
        _require(self.power_w > 0, "power must be positive")
        _require(self.supply_v > 0, "supply must be positive")

    @property
    def die_area_m2(self) -> float:
        return self.die_width_m * self.die_height_m


@dataclass(frozen=True)
class PatientParams:
    """Virtual-patient defaults: a healthy adult at rest.

    The paper's Fig. 9 subject shows a normal radial waveform; 120/80 mmHg
    at 70 bpm is the textbook operating point.
    """

    systolic_mmhg: float = 120.0
    diastolic_mmhg: float = 80.0
    heart_rate_bpm: float = 70.0
    #: RMS beat-to-beat interval variation (fraction of mean RR interval).
    hrv_rms_fraction: float = 0.03
    respiration_rate_bpm: float = 15.0
    #: Peak pressure modulation by respiration [mmHg].
    respiration_depth_mmhg: float = 3.0

    def __post_init__(self) -> None:
        _require(
            self.systolic_mmhg > self.diastolic_mmhg > 0,
            "systolic must exceed diastolic, both positive",
        )
        _require(self.heart_rate_bpm > 0, "heart rate must be positive")
        _require(self.hrv_rms_fraction >= 0, "HRV fraction must be >= 0")
        _require(self.respiration_rate_bpm >= 0, "respiration rate must be >= 0")

    @property
    def pulse_pressure_mmhg(self) -> float:
        return self.systolic_mmhg - self.diastolic_mmhg

    @property
    def mean_rr_s(self) -> float:
        return 60.0 / self.heart_rate_bpm


@dataclass(frozen=True)
class TissueParams:
    """Vessel-wall and tissue-transfer model parameters (Sec. 2, Fig. 1).

    None of these are quoted by the paper; they are order-of-magnitude
    values for the radial artery at the wrist drawn from the tonometry
    literature the paper cites ([1], [2]).
    """

    #: Radial artery inner radius [m].
    artery_radius_m: float = 1.25e-3
    #: Artery wall compliance: wall radial displacement per unit
    #: transmural pressure [m/Pa].
    wall_compliance_m_per_pa: float = 2.0e-9
    #: Depth of the artery below the skin surface [m].
    artery_depth_m: float = 2.0e-3
    #: Young's modulus of overlying tissue [Pa].
    tissue_modulus_pa: float = 50e3
    #: Spatial spread (1-sigma) of the surface displacement bump [m].
    surface_spread_m: float = 2.5e-3

    def __post_init__(self) -> None:
        _require(self.artery_radius_m > 0, "artery radius must be positive")
        _require(self.wall_compliance_m_per_pa > 0, "compliance must be positive")
        _require(self.artery_depth_m > 0, "artery depth must be positive")
        _require(self.tissue_modulus_pa > 0, "tissue modulus must be positive")
        _require(self.surface_spread_m > 0, "surface spread must be positive")


@dataclass(frozen=True)
class ContactParams:
    """Sensor-to-skin contact (Sec. 2.1: PDMS layer, hold-down pressure)."""

    #: Static hold-down pressure pressing the sensor onto the wrist [Pa].
    #: Tonometry works best near applanation, ~ mean arterial pressure.
    hold_down_pa: float = 12000.0
    #: PDMS layer thickness [m].
    pdms_thickness_m: float = 300e-6
    #: PDMS Young's modulus [Pa] (soft elastomer, ~1 MPa typical).
    pdms_modulus_pa: float = 1.0e6
    #: Backside pressure applied through the pressure tube (Fig. 8) [Pa].
    backpressure_pa: float = 5000.0

    def __post_init__(self) -> None:
        _require(self.hold_down_pa >= 0, "hold-down pressure must be >= 0")
        _require(self.pdms_thickness_m > 0, "PDMS thickness must be positive")
        _require(self.pdms_modulus_pa > 0, "PDMS modulus must be positive")
        _require(self.backpressure_pa >= 0, "backpressure must be >= 0")


@dataclass(frozen=True)
class SystemParams:
    """Everything needed to build the full monitor, with paper defaults."""

    array: ArrayParams = field(default_factory=ArrayParams)
    frontend: FrontEndParams = field(default_factory=FrontEndParams)
    modulator: ModulatorParams = field(default_factory=ModulatorParams)
    nonideality: NonidealityParams = field(default_factory=NonidealityParams)
    decimation: DecimationParams = field(default_factory=DecimationParams)
    chip: ChipParams = field(default_factory=ChipParams)
    patient: PatientParams = field(default_factory=PatientParams)
    tissue: TissueParams = field(default_factory=TissueParams)
    contact: ContactParams = field(default_factory=ContactParams)

    def __post_init__(self) -> None:
        if self.decimation.total_decimation != self.modulator.osr:
            raise ConfigurationError(
                "decimation factor "
                f"{self.decimation.total_decimation} must equal the "
                f"modulator OSR {self.modulator.osr}"
            )

    def replace(self, **kwargs) -> "SystemParams":
        """Return a copy with the given top-level fields replaced."""
        return dataclasses.replace(self, **kwargs)


def paper_defaults() -> SystemParams:
    """The configuration evaluated in the paper (Secs. 2-3)."""
    return SystemParams()
