"""Pulse-waveform morphology metrics.

Once a continuous calibrated waveform exists (the paper's deliverable),
clinically meaningful morphology indices come almost for free — the
motivating payoff of tonometry over the cuff. Implemented here:

* per-beat **ensemble average** (noise-free template of the subject's
  pulse),
* **augmentation index** (AIx): relative height of the reflected-wave
  shoulder, the standard arterial-stiffness surrogate,
* **dicrotic notch** timing and depth,
* **upstroke time** (foot to systolic peak), and dP/dt max.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import argrelextrema

from ..errors import ConfigurationError, SignalQualityError
from .features import BeatFeatures


@dataclass(frozen=True)
class MorphologyReport:
    """Ensemble-averaged beat shape and derived indices."""

    ensemble_phase: np.ndarray  # 0..1
    ensemble_wave: np.ndarray  # same units as the input waveform
    augmentation_index: float  # (shoulder - dia) / (peak - dia), or nan
    notch_phase: float  # phase of the dicrotic notch, or nan
    notch_depth_fraction: float  # (peak - notch)/(peak - foot), or nan
    upstroke_time_s: float
    dpdt_max: float  # per second, input units

    def has_notch(self) -> bool:
        return np.isfinite(self.notch_phase)


def ensemble_average_beat(
    waveform: np.ndarray,
    sample_rate_hz: float,
    features: BeatFeatures,
    n_phase: int = 200,
    exclude_mask: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Average all complete beats onto a common phase grid.

    Beats are delimited foot-to-foot; each is resampled to ``n_phase``
    points and the pointwise median taken (robust to the odd corrupted
    beat). With ``exclude_mask`` (e.g. from
    :class:`~repro.calibration.artifacts.ArtifactDetector`), beats that
    overlap any flagged sample are dropped entirely — the right way to
    combine artifact rejection with morphology analysis, since patched
    samples would distort the template.
    """
    if features.n_beats < 3:
        raise SignalQualityError("need >= 3 beats for an ensemble")
    x = np.asarray(waveform, dtype=float)
    if exclude_mask is not None:
        exclude = np.asarray(exclude_mask, dtype=bool)
        if exclude.shape != x.shape:
            raise ConfigurationError("exclude mask must match the waveform")
    else:
        exclude = None
    feet = (features.foot_times_s * sample_rate_hz).astype(int)
    phase = np.linspace(0.0, 1.0, n_phase, endpoint=False)
    beats = []
    for start, stop in zip(feet[:-1], feet[1:]):
        if stop - start < 8 or stop > x.size:
            continue
        if exclude is not None and exclude[start:stop].any():
            continue
        seg = x[start:stop]
        resampled = np.interp(
            phase * (seg.size - 1), np.arange(seg.size), seg
        )
        beats.append(resampled)
    if len(beats) < 3:
        raise SignalQualityError("too few clean beats for an ensemble")
    return phase, np.median(np.array(beats), axis=0)


def analyze_morphology(
    waveform: np.ndarray,
    sample_rate_hz: float,
    features: BeatFeatures,
    exclude_mask: np.ndarray | None = None,
) -> MorphologyReport:
    """Compute the morphology report from a calibrated (or raw) record."""
    if sample_rate_hz <= 0:
        raise ConfigurationError("sample rate must be positive")
    phase, wave = ensemble_average_beat(
        waveform, sample_rate_hz, features, exclude_mask=exclude_mask
    )

    peak_idx = int(np.argmax(wave))
    foot_level = float(wave[0])
    peak_level = float(wave[peak_idx])
    height = peak_level - foot_level
    if height <= 0:
        raise SignalQualityError("degenerate ensemble (no pulse)")

    # Mean beat duration for phase->time conversion.
    beat_s = float(np.mean(np.diff(features.foot_times_s)))
    upstroke_time = phase[peak_idx] * beat_s

    dpdt = np.gradient(wave, phase * beat_s)
    dpdt_max = float(np.max(dpdt))

    # Dicrotic notch: the point on the decay limb where the fall stalls
    # most — a true local minimum when the dicrotic wave rebounds, or a
    # shelf (slope magnitude collapses) when beat-length jitter smears
    # the rebound in the ensemble. Detected on the smoothed derivative:
    # the candidate is the slope maximum in (peak + 5 %, 70 %) of the
    # beat, accepted if the slope there is positive (rebound) or less
    # than half the window's median downslope (shelf).
    end = int(0.7 * wave.size)
    notch_phase = float("nan")
    notch_depth = float("nan")
    kernel = np.ones(5) / 5.0
    smooth = np.convolve(wave, kernel, mode="same")
    derivative = np.gradient(smooth)
    lo = peak_idx + max(3, int(0.05 * wave.size))
    if end - lo >= 5:
        window = derivative[lo:end]
        candidate = int(np.argmax(window)) + lo
        median_slope = float(np.median(window))  # negative on the decay
        slope = float(derivative[candidate])
        is_rebound = slope > 0.0
        is_shelf = median_slope < 0.0 and slope > 0.5 * median_slope
        if is_rebound or is_shelf:
            notch_phase = float(phase[candidate])
            notch_depth = (peak_level - float(wave[candidate])) / height

    # Augmentation index: the reflected-wave shoulder is the first local
    # maximum after the notch (late-systolic augmentation on the decay
    # limb) — or, in young-subject waveforms, an inflection before the
    # peak; we report the post-peak shoulder variant.
    aix = float("nan")
    if np.isfinite(notch_phase):
        after = smooth[int(notch_phase * wave.size) : end]
        maxima = argrelextrema(after, np.greater, order=4)[0]
        if maxima.size:
            shoulder = float(after[maxima[0]])
            aix = (shoulder - foot_level) / height

    return MorphologyReport(
        ensemble_phase=phase,
        ensemble_wave=wave,
        augmentation_index=aix,
        notch_phase=notch_phase,
        notch_depth_fraction=notch_depth,
        upstroke_time_s=float(upstroke_time),
        dpdt_max=dpdt_max,
    )
