"""Beat detection and systolic/diastolic feature extraction.

Works on the raw (uncalibrated) tonometer output: low-pass the record to
the cardiac band, find systolic peaks with a physiologic refractory
constraint, locate each beat's diastolic foot as the minimum between
consecutive peaks, and report per-beat features plus pulse rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal

from ..errors import ConfigurationError, SignalQualityError


@dataclass(frozen=True)
class BeatFeatures:
    """Per-beat features of a pressure-like waveform (raw units)."""

    peak_times_s: np.ndarray  # systolic peak instants
    systolic_raw: np.ndarray  # waveform value at each peak
    foot_times_s: np.ndarray  # diastolic foot instants (one per beat)
    diastolic_raw: np.ndarray  # waveform value at each foot

    @property
    def n_beats(self) -> int:
        return self.peak_times_s.size

    @property
    def mean_systolic_raw(self) -> float:
        return float(self.systolic_raw.mean())

    @property
    def mean_diastolic_raw(self) -> float:
        return float(self.diastolic_raw.mean())

    @property
    def pulse_pressure_raw(self) -> float:
        return self.mean_systolic_raw - self.mean_diastolic_raw

    def pulse_rate_bpm(self) -> float:
        if self.n_beats < 2:
            raise SignalQualityError("need >= 2 beats for a pulse rate")
        intervals = np.diff(self.peak_times_s)
        return 60.0 / float(np.median(intervals))


def lowpass_cardiac(
    samples: np.ndarray, sample_rate_hz: float, cutoff_hz: float = 25.0
) -> np.ndarray:
    """Zero-phase low-pass to the cardiac band.

    25 Hz retains every clinically relevant pulse feature (dicrotic notch
    included) while suppressing converter quantization noise — the
    averaging that buys back sub-LSB resolution from the noisy 12-bit
    codes.
    """
    if sample_rate_hz <= 0:
        raise ConfigurationError("sample rate must be positive")
    if not 0 < cutoff_hz < sample_rate_hz / 2:
        raise ConfigurationError("cutoff must be in (0, Nyquist)")
    sos = signal.butter(
        4, cutoff_hz, btype="low", fs=sample_rate_hz, output="sos"
    )
    return signal.sosfiltfilt(sos, np.asarray(samples, dtype=float))


def detect_beats(
    samples: np.ndarray,
    sample_rate_hz: float,
    expected_rate_bpm: float = 70.0,
    filter_cutoff_hz: float = 25.0,
    min_pulse_fraction: float = 0.25,
) -> BeatFeatures:
    """Find beats and extract systolic/diastolic features.

    Parameters
    ----------
    samples:
        Raw waveform (uncalibrated units are fine).
    sample_rate_hz:
        Sampling rate of the record.
    expected_rate_bpm:
        Prior on the pulse rate; only sets the refractory window
        (0.5 * expected interval), so +/-40 % errors are harmless.
    filter_cutoff_hz:
        Pre-detection low-pass cutoff.
    min_pulse_fraction:
        Peaks must have prominence of at least this fraction of the
        record's peak-to-peak span; rejects flatlines and pure noise.

    Raises
    ------
    SignalQualityError
        If fewer than two plausible beats are found.
    """
    x = np.asarray(samples, dtype=float)
    if x.ndim != 1 or x.size < 16:
        raise ConfigurationError("need a 1-D record of at least 16 samples")
    if expected_rate_bpm <= 0:
        raise ConfigurationError("expected rate must be positive")
    filtered = lowpass_cardiac(x, sample_rate_hz, filter_cutoff_hz)

    span = float(filtered.max() - filtered.min())
    if span <= 0.0:
        raise SignalQualityError("flat record: no pulsatile signal")
    min_distance = int(0.5 * 60.0 / expected_rate_bpm * sample_rate_hz)
    peaks, _ = signal.find_peaks(
        filtered,
        distance=max(min_distance, 1),
        prominence=min_pulse_fraction * span,
    )
    if peaks.size < 2:
        raise SignalQualityError(
            f"only {peaks.size} beat(s) detected; signal too weak or "
            "record too short"
        )

    # Diastolic foot: the minimum in the interval preceding each peak
    # (between the previous peak and this one; for the first peak, from
    # the record start).
    foot_idx = np.empty(peaks.size, dtype=int)
    for i, peak in enumerate(peaks):
        start = peaks[i - 1] if i > 0 else 0
        segment = filtered[start:peak]
        if segment.size == 0:
            foot_idx[i] = start
        else:
            foot_idx[i] = start + int(np.argmin(segment))

    times = np.arange(x.size) / sample_rate_hz
    return BeatFeatures(
        peak_times_s=times[peaks],
        systolic_raw=filtered[peaks],
        foot_times_s=times[foot_idx],
        diastolic_raw=filtered[foot_idx],
    )
