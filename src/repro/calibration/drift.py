"""Calibration-drift tracking and re-calibration scheduling.

A cuff-anchored calibration decays: sensor warm-up changes the gain
(:mod:`repro.mems.thermal`), strap creep changes the operating point, and
the subject's own pressure wanders. Field protocols therefore re-cuff
periodically. This module provides the host-side pieces:

* :class:`DriftMonitor` — tracks the raw-feature trajectory (per-beat
  systolic/diastolic levels) and estimates how far the anchored
  calibration has likely drifted;
* :class:`RecalibrationPolicy` — decides when a new cuff reading is
  warranted (time-based floor plus drift-triggered).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CalibrationError, ConfigurationError
from .twopoint import TwoPointCalibration


@dataclass(frozen=True)
class DriftEstimate:
    """Drift of the raw feature levels since calibration."""

    elapsed_s: float
    offset_drift_raw: float  # change of the diastolic (baseline) level
    gain_drift_fraction: float  # change of the pulse amplitude, relative
    estimated_bp_error_mmhg: float

    @property
    def significant(self) -> bool:
        return self.estimated_bp_error_mmhg > 4.0


class DriftMonitor:
    """Tracks per-beat raw features against the calibration anchor."""

    def __init__(self, calibration: TwoPointCalibration):
        self.calibration = calibration
        self._times: list[float] = []
        self._sys_raw: list[float] = []
        self._dia_raw: list[float] = []

    def update(
        self, time_s: float, systolic_raw: float, diastolic_raw: float
    ) -> None:
        """Record the latest beat-feature levels."""
        if self._times and time_s < self._times[-1]:
            raise ConfigurationError("updates must be time-ordered")
        self._times.append(float(time_s))
        self._sys_raw.append(float(systolic_raw))
        self._dia_raw.append(float(diastolic_raw))

    @property
    def n_updates(self) -> int:
        return len(self._times)

    def estimate(self, window: int = 10) -> DriftEstimate:
        """Compare recent feature levels to the calibration anchors.

        Raw-level changes are ambiguous (the subject's pressure may have
        truly changed), so the estimate is an *upper bound* on
        calibration error — exactly what a conservative recalibration
        trigger wants.
        """
        if not self._times:
            raise CalibrationError("no feature updates recorded")
        recent_sys = float(np.median(self._sys_raw[-window:]))
        recent_dia = float(np.median(self._dia_raw[-window:]))
        anchor_pp = self.calibration.raw_systolic - self.calibration.raw_diastolic
        recent_pp = recent_sys - recent_dia
        if anchor_pp == 0:
            raise CalibrationError("degenerate anchor")
        gain_drift = recent_pp / anchor_pp - 1.0
        offset_drift = recent_dia - self.calibration.raw_diastolic
        # Error bound: offset drift maps through the gain; gain drift
        # scales the cuff-anchored pulse pressure.
        cuff_pp = (
            self.calibration.cuff_systolic_mmhg
            - self.calibration.cuff_diastolic_mmhg
        )
        # Offset drift is indistinguishable from a true BP change, so only
        # the gain term — attributable to the instrument — enters the
        # error bound.
        error = abs(gain_drift) * cuff_pp
        return DriftEstimate(
            elapsed_s=self._times[-1] - self._times[0],
            offset_drift_raw=offset_drift,
            gain_drift_fraction=float(gain_drift),
            estimated_bp_error_mmhg=float(error),
        )


class RecalibrationPolicy:
    """When to take a fresh cuff reading.

    Parameters
    ----------
    max_interval_s:
        Hard ceiling between cuff readings (clinical practice: tens of
        minutes).
    drift_threshold_mmhg:
        Re-cuff early if the estimated calibration error exceeds this.
    min_interval_s:
        Never re-cuff faster than this (venous rest, comfort).
    """

    def __init__(
        self,
        max_interval_s: float = 1800.0,
        drift_threshold_mmhg: float = 5.0,
        min_interval_s: float = 120.0,
    ):
        if not 0 < min_interval_s < max_interval_s:
            raise ConfigurationError(
                "need 0 < min_interval < max_interval"
            )
        if drift_threshold_mmhg <= 0:
            raise ConfigurationError("threshold must be positive")
        self.max_interval_s = float(max_interval_s)
        self.drift_threshold_mmhg = float(drift_threshold_mmhg)
        self.min_interval_s = float(min_interval_s)

    def should_recalibrate(
        self, elapsed_since_cuff_s: float, drift: DriftEstimate | None
    ) -> bool:
        """The decision rule."""
        if elapsed_since_cuff_s < self.min_interval_s:
            return False
        if elapsed_since_cuff_s >= self.max_interval_s:
            return True
        if drift is not None and (
            drift.estimated_bp_error_mmhg >= self.drift_threshold_mmhg
        ):
            return True
        return False
