"""Signal-quality assessment of the raw tonometer output.

Before trusting a calibration, the host software should check that the
waveform actually looks like a pulse: adequate pulsatile amplitude over
the noise floor, a physiologic pulse rate, and consistent beat-to-beat
features. This module scores those, returning a report the monitor uses
to accept or reject a placement/hold-down operating point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal

from ..errors import ConfigurationError, SignalQualityError
from .features import detect_beats, lowpass_cardiac


@dataclass(frozen=True)
class SignalQualityReport:
    """Quality metrics for one raw record."""

    pulse_amplitude_raw: float
    noise_rms_raw: float
    snr_db: float
    pulse_rate_bpm: float
    beat_regularity: float  # 1 - CV of RR intervals, clipped to [0, 1]
    n_beats: int

    @property
    def acceptable(self) -> bool:
        """Conservative accept rule: >= 10 dB SNR, plausible rate,
        reasonably regular rhythm."""
        return (
            self.snr_db >= 10.0
            and 30.0 <= self.pulse_rate_bpm <= 220.0
            and self.beat_regularity >= 0.5
            and self.n_beats >= 3
        )

    def describe(self) -> str:
        verdict = "OK" if self.acceptable else "POOR"
        return (
            f"quality {verdict}: SNR {self.snr_db:.1f} dB, "
            f"rate {self.pulse_rate_bpm:.0f} bpm, "
            f"regularity {self.beat_regularity:.2f}, "
            f"{self.n_beats} beats"
        )


def assess_quality(
    samples: np.ndarray,
    sample_rate_hz: float,
    expected_rate_bpm: float = 70.0,
    cardiac_cutoff_hz: float = 25.0,
) -> SignalQualityReport:
    """Score a raw record; raises only on malformed input.

    A record with no detectable beats returns a report with
    ``n_beats = 0`` and ``acceptable = False`` rather than raising, so
    scanning code can compare candidate operating points uniformly.
    """
    x = np.asarray(samples, dtype=float)
    if x.ndim != 1 or x.size < 32:
        raise ConfigurationError("need a 1-D record of at least 32 samples")

    cardiac = lowpass_cardiac(x, sample_rate_hz, cardiac_cutoff_hz)
    residual = x - cardiac
    noise_rms = float(np.sqrt(np.mean(residual**2)))

    try:
        features = detect_beats(
            x, sample_rate_hz, expected_rate_bpm=expected_rate_bpm
        )
    except SignalQualityError:
        return SignalQualityReport(
            pulse_amplitude_raw=float(cardiac.max() - cardiac.min()),
            noise_rms_raw=noise_rms,
            snr_db=-np.inf if noise_rms > 0 else 0.0,
            pulse_rate_bpm=0.0,
            beat_regularity=0.0,
            n_beats=0,
        )

    amplitude = features.pulse_pressure_raw
    snr_db = (
        20.0 * np.log10(amplitude / noise_rms) if noise_rms > 0 else np.inf
    )
    rate = features.pulse_rate_bpm() if features.n_beats >= 2 else 0.0
    rr = np.diff(features.peak_times_s)
    if rr.size >= 2 and rr.mean() > 0:
        regularity = float(np.clip(1.0 - rr.std() / rr.mean(), 0.0, 1.0))
    else:
        regularity = 0.0
    return SignalQualityReport(
        pulse_amplitude_raw=float(amplitude),
        noise_rms_raw=noise_rms,
        snr_db=float(snr_db),
        pulse_rate_bpm=float(rate),
        beat_regularity=regularity,
        n_beats=int(features.n_beats),
    )


def detrended_pulse_band_power(
    samples: np.ndarray, sample_rate_hz: float
) -> float:
    """Power in the 0.5-10 Hz pulse band — a cheap scan metric.

    Used by hold-down/placement sweeps where full beat detection on every
    candidate would be wasteful.
    """
    x = np.asarray(samples, dtype=float)
    if x.size < 32:
        raise ConfigurationError("need at least 32 samples")
    sos = signal.butter(
        4, [0.5, 10.0], btype="bandpass", fs=sample_rate_hz, output="sos"
    )
    banded = signal.sosfiltfilt(sos, x)
    return float(np.mean(banded**2))
