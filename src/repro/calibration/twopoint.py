"""Two-point (systolic/diastolic) linear calibration against a cuff.

Exactly the procedure of Fig. 9: take one cuff reading (systolic and
diastolic in mmHg), match it to the raw waveform's mean systolic and
diastolic feature levels, and fit the two-parameter line

    mmHg = gain * raw + offset.

The calibration also exposes its sensitivity to cuff error — since cuff
devices are only accurate to a few mmHg, that error propagates linearly
into every calibrated sample, and the baseline-comparison experiment
quantifies it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CalibrationError, ConfigurationError
from .features import BeatFeatures


@dataclass(frozen=True)
class TwoPointCalibration:
    """Affine raw-to-mmHg map established from one cuff reading."""

    gain_mmhg_per_raw: float
    offset_mmhg: float
    #: The anchor points used, kept for reporting.
    raw_systolic: float
    raw_diastolic: float
    cuff_systolic_mmhg: float
    cuff_diastolic_mmhg: float

    @classmethod
    def from_features(
        cls,
        features: BeatFeatures,
        cuff_systolic_mmhg: float,
        cuff_diastolic_mmhg: float,
    ) -> "TwoPointCalibration":
        """Build the calibration from detected beats plus a cuff reading."""
        if cuff_systolic_mmhg <= cuff_diastolic_mmhg:
            raise ConfigurationError(
                "cuff systolic must exceed cuff diastolic"
            )
        raw_sys = features.mean_systolic_raw
        raw_dia = features.mean_diastolic_raw
        if not np.isfinite(raw_sys) or not np.isfinite(raw_dia):
            raise CalibrationError("non-finite feature levels")
        if abs(raw_sys - raw_dia) < 1e-30:
            raise CalibrationError(
                "systolic and diastolic raw levels coincide; "
                "no pulsatile signal to calibrate"
            )
        gain = (cuff_systolic_mmhg - cuff_diastolic_mmhg) / (raw_sys - raw_dia)
        offset = cuff_diastolic_mmhg - gain * raw_dia
        return cls(
            gain_mmhg_per_raw=float(gain),
            offset_mmhg=float(offset),
            raw_systolic=float(raw_sys),
            raw_diastolic=float(raw_dia),
            cuff_systolic_mmhg=float(cuff_systolic_mmhg),
            cuff_diastolic_mmhg=float(cuff_diastolic_mmhg),
        )

    #: |gain| below this is degenerate: inverting it would blow raw noise
    #: up by >= 1e12, so it cannot come from a real pulsatile record.
    _GAIN_TOLERANCE = 1e-12

    def apply(self, raw: np.ndarray | float) -> np.ndarray | float:
        """Map raw waveform values to calibrated mmHg.

        Scalar in, scalar out: a float input returns a Python float, not
        a 0-d ndarray.
        """
        arr = np.asarray(raw, dtype=float)
        out = self.gain_mmhg_per_raw * arr + self.offset_mmhg
        return float(out) if arr.ndim == 0 else out

    def invert(self, mmhg: np.ndarray | float) -> np.ndarray | float:
        """mmHg back to raw units (for injecting synthetic references)."""
        if abs(self.gain_mmhg_per_raw) < self._GAIN_TOLERANCE:
            raise CalibrationError("degenerate calibration (zero gain)")
        arr = np.asarray(mmhg, dtype=float)
        out = (arr - self.offset_mmhg) / self.gain_mmhg_per_raw
        return float(out) if arr.ndim == 0 else out

    def apply_masked(
        self, raw: np.ndarray, quality: np.ndarray
    ) -> np.ma.MaskedArray:
        """Calibrate a record under its per-sample quality mask.

        Samples the mask flags bad (``False``) come back masked — they
        carry no trustworthy pressure, and masking keeps them out of any
        downstream statistic instead of silently calibrating them. The
        mask is the ``quality`` array a
        :class:`~repro.core.chain.ChainRecording` carries.
        """
        values = np.asarray(raw, dtype=float)
        quality = np.asarray(quality, dtype=bool)
        if quality.shape != values.shape:
            raise ConfigurationError(
                "quality mask must match the raw record's shape"
            )
        return np.ma.MaskedArray(self.apply(values), mask=~quality)

    def error_from_cuff_bias(
        self, systolic_bias_mmhg: float, diastolic_bias_mmhg: float
    ) -> "TwoPointCalibration":
        """The calibration that a biased cuff reading would have produced.

        Used to propagate cuff inaccuracy through the whole calibrated
        record: compare ``apply`` outputs of the nominal and biased
        calibrations.
        """
        return TwoPointCalibration.from_features(
            _FeatureAnchor(self.raw_systolic, self.raw_diastolic),
            self.cuff_systolic_mmhg + systolic_bias_mmhg,
            self.cuff_diastolic_mmhg + diastolic_bias_mmhg,
        )

    def describe(self) -> str:
        return (
            f"calibration: mmHg = {self.gain_mmhg_per_raw:.4g} * raw "
            f"+ {self.offset_mmhg:.4g} "
            f"(anchored at cuff {self.cuff_systolic_mmhg:.0f}/"
            f"{self.cuff_diastolic_mmhg:.0f} mmHg)"
        )


class _FeatureAnchor:
    """Minimal stand-in exposing the two feature levels
    :meth:`TwoPointCalibration.from_features` needs."""

    def __init__(self, raw_systolic: float, raw_diastolic: float):
        self.mean_systolic_raw = raw_systolic
        self.mean_diastolic_raw = raw_diastolic
