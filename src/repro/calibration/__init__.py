"""Waveform feature extraction and cuff-based calibration (Sec. 3.2).

The tonometric signal is relative; Fig. 9 shows it anchored to absolute
mmHg by "measuring the systolic and diastolic pressure with a conventional
hand cuff device". This package extracts the systolic/diastolic features
from the raw waveform, builds the two-point linear calibration against the
cuff reading, and quantifies signal quality.
"""

from .features import BeatFeatures, detect_beats
from .twopoint import TwoPointCalibration
from .quality import SignalQualityReport, assess_quality
from .artifacts import ArtifactDetector, ArtifactReport, score_against_truth
from .drift import DriftEstimate, DriftMonitor, RecalibrationPolicy
from .morphology import MorphologyReport, analyze_morphology, ensemble_average_beat

__all__ = [
    "ArtifactDetector",
    "ArtifactReport",
    "BeatFeatures",
    "DriftEstimate",
    "DriftMonitor",
    "MorphologyReport",
    "RecalibrationPolicy",
    "SignalQualityReport",
    "TwoPointCalibration",
    "analyze_morphology",
    "assess_quality",
    "detect_beats",
    "ensemble_average_beat",
    "score_against_truth",
]
