"""Artifact detection and rejection on the raw tonometer stream.

Host-side defense against motion: flag windows whose statistics cannot be
cardiac (slew too high, amplitude off-scale, beat template mismatch) and
excise them before feature extraction. Scored against the artifact
generator's ground truth in the tests and the robustness bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sp_signal

from ..errors import ConfigurationError
from .features import lowpass_cardiac


@dataclass(frozen=True)
class ArtifactReport:
    """Per-sample artifact flags plus summary statistics."""

    mask: np.ndarray  # True = contaminated
    fraction_flagged: float
    n_segments: int

    def clean(self, samples: np.ndarray) -> np.ndarray:
        """Return only the uncontaminated samples (concatenated)."""
        samples = np.asarray(samples)
        return samples[~self.mask]


class ArtifactDetector:
    """Threshold-based artifact flagging.

    Three detectors vote per sample; any vote flags it:

    1. **Slew**: |d/dt| of the fast-band (<= 45 Hz) signal beyond the
       steepest plausible systolic upstroke — pulses rise their full
       height in no less than ~60 ms, so anything slewing faster than
       ``slew_factor * pulse_scale / 60 ms`` is mechanical (taps).
    2. **Baseline excursion**: deviation of the sub-cardiac baseline
       (< 0.5 Hz) from its median beyond a fraction of the pulse
       amplitude (flexion).
    3. **Amplitude**: local raw peak-to-peak beyond a multiple of the
       pulse amplitude (anything big).

    Thresholds are expressed relative to the record's own pulse scale,
    so the detector is unit-free and needs no calibration. The slew and
    amplitude detectors use a 45 Hz "fast band": wide enough to pass
    mechanical taps (which a 25 Hz cardiac filter would hide), narrow
    enough to reject converter quantization noise at kS/s record rates.
    """

    #: Fastest plausible full-height systolic upstroke [s].
    MIN_UPSTROKE_S = 0.06

    def __init__(
        self,
        slew_factor: float = 1.4,
        baseline_factor: float = 0.4,
        amplitude_factor: float = 1.5,
        dilate_s: float = 0.3,
    ):
        for name, value in [
            ("slew factor", slew_factor),
            ("baseline factor", baseline_factor),
            ("amplitude factor", amplitude_factor),
        ]:
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if dilate_s < 0:
            raise ConfigurationError("dilation must be >= 0")
        self.slew_factor = float(slew_factor)
        self.baseline_factor = float(baseline_factor)
        self.amplitude_factor = float(amplitude_factor)
        self.dilate_s = float(dilate_s)

    def detect(
        self, samples: np.ndarray, sample_rate_hz: float
    ) -> ArtifactReport:
        """Flag contaminated samples in a raw record."""
        x = np.asarray(samples, dtype=float)
        if x.ndim != 1 or x.size < 64:
            raise ConfigurationError("need a 1-D record of >= 64 samples")
        cardiac = lowpass_cardiac(x, sample_rate_hz)

        # Reference scale from the (hopefully mostly clean) record.
        pulse_scale = float(
            np.percentile(cardiac, 90) - np.percentile(cardiac, 10)
        )
        if pulse_scale <= 0:
            pulse_scale = float(np.std(cardiac)) or 1.0

        # 1. Slew detector, on a "fast band" version of the signal: a
        # 45 Hz low-pass passes mechanical taps (10-50 ms wide, i.e.
        # bandwidth of a few tens of Hz) essentially intact while
        # removing converter quantization noise, whose sample-to-sample
        # LSB toggling would otherwise dominate the raw derivative at
        # kS/s record rates.
        fast_cutoff = min(45.0, 0.4 * sample_rate_hz / 2.0)
        sos_fast = sp_signal.butter(
            4, fast_cutoff, btype="low", fs=sample_rate_hz, output="sos"
        )
        fast = sp_signal.sosfiltfilt(sos_fast, x)
        slew = np.abs(np.gradient(fast)) * sample_rate_hz
        slew_limit = self.slew_factor * pulse_scale / self.MIN_UPSTROKE_S
        mask = slew > slew_limit

        # 2. Baseline-excursion detector (< 0.5 Hz band, flexion).
        sos = sp_signal.butter(
            2, 0.5, btype="low", fs=sample_rate_hz, output="sos"
        )
        baseline = sp_signal.sosfiltfilt(sos, x)
        excursion = np.abs(baseline - np.median(baseline))
        mask |= excursion > self.baseline_factor * pulse_scale

        # 3. Amplitude detector: rolling fast-band peak-to-peak over ~1
        # beat (fast band keeps tap amplitude, drops converter noise).
        window = max(int(0.8 * sample_rate_hz), 8)
        local_max = _rolling_extreme(fast, window, np.maximum)
        local_min = _rolling_extreme(fast, window, np.minimum)
        p2p = local_max - local_min
        mask |= p2p > self.amplitude_factor * pulse_scale

        # 4. Rhythm detector: a tap landing mid-diastole fakes an extra
        # systolic peak — invisible to slew/amplitude (it looks like a
        # beat) but it breaks the RR rhythm. Find all prominent peaks
        # WITHOUT a refractory window and flag any that crowd their
        # neighbours closer than 60 % of the median interval.
        peaks, _ = sp_signal.find_peaks(
            cardiac, prominence=0.4 * pulse_scale
        )
        if peaks.size >= 4:
            intervals = np.diff(peaks)
            median_rr = float(np.median(intervals))
            crowded = np.zeros(peaks.size, dtype=bool)
            crowded[:-1] |= intervals < 0.6 * median_rr
            crowded[1:] |= intervals < 0.6 * median_rr
            half = int(0.25 * sample_rate_hz)
            for peak in peaks[crowded]:
                mask[max(peak - half, 0) : peak + half] = True

        # Dilate flags so event edges are covered.
        n_dilate = int(self.dilate_s * sample_rate_hz)
        if n_dilate > 0 and mask.any():
            kernel = np.ones(2 * n_dilate + 1)
            mask = np.convolve(mask.astype(float), kernel, mode="same") > 0

        segments = int(np.sum(np.diff(mask.astype(int)) == 1)) + int(mask[0])
        return ArtifactReport(
            mask=mask,
            fraction_flagged=float(mask.mean()),
            n_segments=segments,
        )


def _rolling_extreme(x: np.ndarray, window: int, op) -> np.ndarray:
    """Cheap rolling max/min via strided comparison in log2 steps."""
    out = x.copy()
    shift = 1
    while shift < window:
        shifted = np.empty_like(out)
        shifted[:shift] = out[:shift]
        shifted[shift:] = out[:-shift]
        out = op(out, shifted)
        shift *= 2
    return out


def score_against_truth(
    report: ArtifactReport, truth_mask: np.ndarray
) -> tuple[float, float]:
    """(sensitivity, specificity) of the detector vs ground truth."""
    truth = np.asarray(truth_mask, dtype=bool)
    if truth.shape != report.mask.shape:
        raise ConfigurationError("mask shapes must match")
    tp = np.sum(report.mask & truth)
    fn = np.sum(~report.mask & truth)
    tn = np.sum(~report.mask & ~truth)
    fp = np.sum(report.mask & ~truth)
    sensitivity = tp / (tp + fn) if (tp + fn) else 1.0
    specificity = tn / (tn + fp) if (tn + fp) else 1.0
    return float(sensitivity), float(specificity)
