"""Beat timing: heart rate, beat-to-beat variability, sinus arrhythmia.

Generates the sequence of beat onset times that drives every waveform
generator. Two variability mechanisms are modelled:

* uncorrelated RR jitter (a Gaussian fraction of the mean interval), and
* respiratory sinus arrhythmia — RR intervals shorten during inspiration,
  phase-locked to the respiration model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class BeatSchedule:
    """The generated beat train."""

    onset_times_s: np.ndarray  # beat k starts at onset_times_s[k]

    @property
    def n_beats(self) -> int:
        return self.onset_times_s.size - 1  # last onset only closes a beat

    def rr_intervals_s(self) -> np.ndarray:
        return np.diff(self.onset_times_s)

    def mean_rate_bpm(self) -> float:
        rr = self.rr_intervals_s()
        if rr.size == 0:
            raise ConfigurationError("schedule holds no complete beat")
        return 60.0 / float(rr.mean())

    def beat_phase(self, times_s: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(beat index, phase in [0,1)) for each query time.

        Times before the first onset clamp to phase 0 of beat 0; times
        after the last onset clamp to the final beat.
        """
        t = np.asarray(times_s, dtype=float)
        onsets = self.onset_times_s
        idx = np.clip(
            np.searchsorted(onsets, t, side="right") - 1, 0, onsets.size - 2
        )
        rr = onsets[idx + 1] - onsets[idx]
        phase = np.clip((t - onsets[idx]) / rr, 0.0, 1.0 - 1e-12)
        return idx, phase


class BeatScheduler:
    """Draws beat onset trains with HRV and sinus arrhythmia.

    Parameters
    ----------
    heart_rate_bpm:
        Mean rate.
    hrv_rms_fraction:
        RMS of the uncorrelated RR jitter as a fraction of the mean RR.
    rsa_fraction:
        Peak RR modulation by respiration (fractional); 0 disables.
    respiration_rate_bpm:
        Rate of the sinus-arrhythmia modulation.
    """

    def __init__(
        self,
        heart_rate_bpm: float = 70.0,
        hrv_rms_fraction: float = 0.03,
        rsa_fraction: float = 0.02,
        respiration_rate_bpm: float = 15.0,
    ):
        if heart_rate_bpm <= 0:
            raise ConfigurationError("heart rate must be positive")
        if hrv_rms_fraction < 0 or rsa_fraction < 0:
            raise ConfigurationError("variability fractions must be >= 0")
        if respiration_rate_bpm < 0:
            raise ConfigurationError("respiration rate must be >= 0")
        self.heart_rate_bpm = float(heart_rate_bpm)
        self.hrv_rms_fraction = float(hrv_rms_fraction)
        self.rsa_fraction = float(rsa_fraction)
        self.respiration_rate_bpm = float(respiration_rate_bpm)

    @property
    def mean_rr_s(self) -> float:
        return 60.0 / self.heart_rate_bpm

    def generate(
        self,
        duration_s: float,
        rng: np.random.Generator | None = None,
        start_time_s: float = 0.0,
    ) -> BeatSchedule:
        """Generate onsets covering at least ``duration_s`` seconds."""
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        rng = rng or np.random.default_rng(7)
        mean_rr = self.mean_rr_s
        resp_hz = self.respiration_rate_bpm / 60.0
        onsets = [start_time_s]
        t = start_time_s
        # One extra beat past the end so every query time has a closing
        # onset.
        while t < start_time_s + duration_s + 2.0 * mean_rr:
            rr = mean_rr * (
                1.0
                + self.hrv_rms_fraction * rng.standard_normal()
                + self.rsa_fraction * np.sin(2.0 * np.pi * resp_hz * t)
            )
            rr = max(rr, 0.3 * mean_rr)  # physiologic floor
            t += rr
            onsets.append(t)
        return BeatSchedule(onset_times_s=np.array(onsets))
