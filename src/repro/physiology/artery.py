"""Vessel-wall mechanics: pressure inside the artery to wall motion.

Fig. 1 of the paper: "The overpressure inside that blood vessel ... causes
a movement of the vessel wall." For the small pulsatile excursions of a
radial artery the wall behaves linearly: radial displacement is the
transmural pressure (inside minus outside) times a compliance, with the
compliance itself derivable from the vessel's elastic modulus and
geometry (thin-walled tube law), which this module also provides.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..params import TissueParams


class VesselWall:
    """Linearized radial-artery wall model.

    Parameters
    ----------
    params:
        Geometry and compliance; defaults are radial-artery values.
    collapse_margin_pa:
        Transmural pressure below which the lumen is treated as
        collapsing: wall motion saturates instead of following the linear
        law. Real tonometry avoids this regime (excess hold-down flattens
        the pulse), and the contact model reproduces that roll-off.
    """

    def __init__(
        self,
        params: TissueParams | None = None,
        collapse_margin_pa: float = -4000.0,
    ):
        self.params = params or TissueParams()
        if collapse_margin_pa >= 0:
            raise ConfigurationError("collapse margin must be negative")
        self.collapse_margin_pa = float(collapse_margin_pa)

    @classmethod
    def from_tube_law(
        cls,
        radius_m: float,
        wall_thickness_m: float,
        wall_modulus_pa: float,
        params: TissueParams | None = None,
    ) -> "VesselWall":
        """Derive the compliance from the thin-walled tube law.

        dR/dP = R^2 / (E * t_wall): the standard Laplace-law linearization
        for a thin-walled elastic tube.
        """
        if radius_m <= 0 or wall_thickness_m <= 0 or wall_modulus_pa <= 0:
            raise ConfigurationError("tube-law arguments must be positive")
        compliance = radius_m**2 / (wall_modulus_pa * wall_thickness_m)
        base = params or TissueParams()
        derived = TissueParams(
            artery_radius_m=radius_m,
            wall_compliance_m_per_pa=compliance,
            artery_depth_m=base.artery_depth_m,
            tissue_modulus_pa=base.tissue_modulus_pa,
            surface_spread_m=base.surface_spread_m,
        )
        return cls(params=derived)

    def wall_displacement_m(
        self, transmural_pressure_pa: np.ndarray | float
    ) -> np.ndarray:
        """Radial wall displacement for a transmural pressure.

        Linear for positive transmural pressure; saturating (tanh roll-
        off) once the vessel approaches collapse.
        """
        p = np.atleast_1d(np.asarray(transmural_pressure_pa, dtype=float))
        c = self.params.wall_compliance_m_per_pa
        margin = -self.collapse_margin_pa
        linear = c * p
        # Below zero transmural pressure, roll off smoothly to the
        # collapse asymptote at `collapse_margin_pa`.
        collapsing = p < 0.0
        rolled = c * margin * np.tanh(p / margin)
        return np.where(collapsing, rolled, linear)

    def pulsatile_gain_m_per_pa(self, operating_pressure_pa: float = 0.0) -> float:
        """Local slope d(displacement)/dP at an operating point."""
        step = 10.0
        lo, hi = self.wall_displacement_m(
            np.array(
                [operating_pressure_pa - step, operating_pressure_pa + step]
            )
        )
        return float((hi - lo) / (2.0 * step))
