"""Radial-artery pulse-shape template.

A normalized single-beat pressure waveform p(phase), phase in [0, 1),
with value 0 at the diastolic foot and 1 at the systolic peak. Built as a
sum of Gaussian lobes — the standard phenomenological model of the radial
pulse (systolic upstroke, reflected wave shoulder, dicrotic notch and
diastolic runoff) — post-processed to be exactly periodic and normalized.

The template is sampled once onto a dense grid at construction and
evaluated by linear interpolation, making waveform synthesis cheap at the
128 kS/s simulation rate.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

#: (amplitude, center phase, width) of the default radial-pulse lobes:
#: systolic peak, reflected-wave shoulder, dicrotic (post-notch) wave.
DEFAULT_LOBES = (
    (1.00, 0.15, 0.070),
    (0.55, 0.28, 0.110),
    (0.34, 0.52, 0.100),
)
#: Negative lobe carving the dicrotic notch between shoulder and wave.
DEFAULT_NOTCH = (-0.09, 0.43, 0.025)


class RadialPulseTemplate:
    """Normalized periodic single-beat waveform.

    Parameters
    ----------
    lobes:
        Iterable of (amplitude, center, width) Gaussian components.
    notch:
        One extra (negative-amplitude) component for the dicrotic notch,
        or None.
    decay_rate:
        Exponential diastolic decay constant (per unit phase) applied to
        the tail so late diastole relaxes like a Windkessel discharge.
    grid_points:
        Resolution of the internal lookup table.
    """

    def __init__(
        self,
        lobes=DEFAULT_LOBES,
        notch=DEFAULT_NOTCH,
        decay_rate: float = 1.0,
        grid_points: int = 2048,
    ):
        if grid_points < 128:
            raise ConfigurationError("template grid must have >= 128 points")
        if decay_rate < 0:
            raise ConfigurationError("decay rate must be >= 0")
        lobes = tuple(lobes)
        if not lobes:
            raise ConfigurationError("need at least one pulse lobe")
        for amp, center, width in lobes:
            if width <= 0:
                raise ConfigurationError("lobe widths must be positive")
            if not 0.0 <= center <= 1.0:
                raise ConfigurationError("lobe centers must be in [0, 1]")

        phase = np.linspace(0.0, 1.0, grid_points, endpoint=False)
        wave = np.zeros_like(phase)
        components = list(lobes)
        if notch is not None:
            components.append(tuple(notch))
        for amp, center, width in components:
            wave += amp * np.exp(
                -((phase - center) ** 2) / (2.0 * width**2)
            )
        # Diastolic runoff: exponential decay over the beat.
        wave *= np.exp(-decay_rate * phase)

        # Late diastole must decay monotonically into the next beat's
        # foot (the waveform minimum sits at the onset of the upstroke,
        # as in real arterial pressure). Enforce it with a running
        # minimum from the last crest (the dicrotic wave) to the end;
        # without this, the Gaussian tails produce a small unphysical
        # late-diastolic rise that confuses foot detection downstream.
        from scipy.signal import argrelextrema

        maxima = argrelextrema(wave, np.greater, order=5)[0]
        tail_start = int(maxima[-1]) if maxima.size else int(0.6 * wave.size)
        wave[tail_start:] = np.minimum.accumulate(wave[tail_start:])

        # Normalize: diastolic foot at 0, systolic peak at 1. (The foot
        # is the last grid point; evaluation wraps periodically, and the
        # small onset step is the physiological sharp upstroke.)
        wave -= wave.min()
        peak = wave.max()
        if peak <= 0:
            raise ConfigurationError("degenerate template (flat waveform)")
        wave /= peak

        self._phase = phase
        self._wave = wave

    @property
    def systolic_phase(self) -> float:
        """Phase of the systolic peak."""
        return float(self._phase[np.argmax(self._wave)])

    @property
    def dicrotic_notch_phase(self) -> float:
        """Phase of the first local minimum after the systolic peak (the
        dicrotic notch), distinct from the end-diastolic global minimum."""
        peak_idx = int(np.argmax(self._wave))
        end = int(0.7 * self._wave.size)
        segment = self._wave[peak_idx:end]
        # First strict local minimum with a little smoothing window.
        for k in range(3, segment.size - 3):
            if segment[k] <= segment[k - 3] and segment[k] < segment[k + 3]:
                return float(self._phase[peak_idx + k])
        # Degenerate shapes (no notch): fall back to the segment minimum.
        return float(self._phase[peak_idx + int(np.argmin(segment))])

    def evaluate(self, phase: np.ndarray) -> np.ndarray:
        """Template value at arbitrary phases (wrapped mod 1)."""
        p = np.mod(np.asarray(phase, dtype=float), 1.0)
        return np.interp(
            p, self._phase, self._wave, period=1.0
        )

    def mean_value(self) -> float:
        """Beat-averaged template value: relates MAP to systole/diastole.

        For the default shape this lands near the clinical rule of thumb
        MAP ≈ diastolic + pulse-pressure/3.
        """
        return float(self._wave.mean())


def ventricular_template() -> RadialPulseTemplate:
    """Left-ventricular pressure shape, for epicardial application.

    The paper notes "an invasive application, e.g., on the beating heart
    during surgery is also possible". Ventricular pressure looks nothing
    like the radial pulse: a near-rectangular systolic plateau (isovolumic
    rise, ejection, isovolumic fall) occupying ~35 % of the beat, then
    pressure near zero through diastole — no dicrotic structure. Modeled
    as one broad plateau lobe with a small late-systolic shoulder and no
    notch.
    """
    return RadialPulseTemplate(
        lobes=(
            (1.00, 0.17, 0.090),
            (0.97, 0.29, 0.080),
        ),
        notch=None,
        decay_rate=0.5,
    )
