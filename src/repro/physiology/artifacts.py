"""Motion artifacts: what actually limits wearable tonometry.

The paper's outlook calls for field tests of "reliability and stability"
— in practice dominated by motion: wrist flexion shifts the baseline,
taps and knocks inject transients, strap creep slowly changes the
hold-down. This module synthesizes those disturbances as an additive
pressure-equivalent signal with per-event ground truth, so the artifact
*rejection* stage can be scored exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..params import PASCAL_PER_MMHG


@dataclass(frozen=True)
class ArtifactEvent:
    """Ground truth for one injected artifact."""

    kind: str  # "tap" | "flexion" | "creep"
    start_s: float
    duration_s: float
    peak_mmhg: float


@dataclass(frozen=True)
class ArtifactRecord:
    """Synthesized artifact signal plus its event list."""

    times_s: np.ndarray
    pressure_mmhg: np.ndarray
    events: tuple[ArtifactEvent, ...]

    @property
    def pressure_pa(self) -> np.ndarray:
        return self.pressure_mmhg * PASCAL_PER_MMHG

    def contaminated_mask(self, guard_s: float = 0.25) -> np.ndarray:
        """Boolean mask of samples inside any event (plus guard band)."""
        mask = np.zeros(self.times_s.size, dtype=bool)
        for event in self.events:
            lo = event.start_s - guard_s
            hi = event.start_s + event.duration_s + guard_s
            mask |= (self.times_s >= lo) & (self.times_s <= hi)
        return mask


class MotionArtifactGenerator:
    """Synthesizes tap, flexion and strap-creep disturbances.

    Parameters
    ----------
    tap_rate_per_min:
        Mean Poisson rate of short, sharp knock transients.
    flexion_rate_per_min:
        Mean rate of slower wrist-flexion baseline excursions.
    tap_peak_mmhg / flexion_peak_mmhg:
        Typical peak magnitudes (randomized ±50 %).
    creep_mmhg_per_min:
        Deterministic slow strap-creep drift rate.
    """

    def __init__(
        self,
        tap_rate_per_min: float = 2.0,
        flexion_rate_per_min: float = 1.0,
        tap_peak_mmhg: float = 30.0,
        flexion_peak_mmhg: float = 15.0,
        creep_mmhg_per_min: float = 1.0,
    ):
        for name, value in [
            ("tap rate", tap_rate_per_min),
            ("flexion rate", flexion_rate_per_min),
            ("tap peak", tap_peak_mmhg),
            ("flexion peak", flexion_peak_mmhg),
        ]:
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        self.tap_rate = float(tap_rate_per_min)
        self.flexion_rate = float(flexion_rate_per_min)
        self.tap_peak = float(tap_peak_mmhg)
        self.flexion_peak = float(flexion_peak_mmhg)
        self.creep_rate = float(creep_mmhg_per_min)

    def generate(
        self,
        duration_s: float,
        sample_rate_hz: float,
        rng: np.random.Generator | None = None,
    ) -> ArtifactRecord:
        """Synthesize an artifact record with ground-truth events."""
        if duration_s <= 0 or sample_rate_hz <= 0:
            raise ConfigurationError("duration and rate must be positive")
        rng = rng or np.random.default_rng(606)
        n = int(round(duration_s * sample_rate_hz))
        t = np.arange(n) / sample_rate_hz
        signal = np.zeros(n)
        events: list[ArtifactEvent] = []

        def add_events(rate_per_min, kind, peak, dur_range):
            expected = rate_per_min * duration_s / 60.0
            count = rng.poisson(expected)
            for _ in range(count):
                start = float(rng.uniform(0.0, duration_s))
                duration = float(rng.uniform(*dur_range))
                magnitude = float(peak * rng.uniform(0.5, 1.5))
                sign = 1.0 if rng.random() < 0.7 else -1.0
                events.append(
                    ArtifactEvent(kind, start, duration, sign * magnitude)
                )

        add_events(self.tap_rate, "tap", self.tap_peak, (0.05, 0.2))
        add_events(
            self.flexion_rate, "flexion", self.flexion_peak, (1.0, 4.0)
        )

        for event in events:
            center = event.start_s + event.duration_s / 2.0
            width = event.duration_s / 4.0
            signal += event.peak_mmhg * np.exp(
                -((t - center) ** 2) / (2.0 * width**2)
            )
        # Strap creep: slow monotone drift (not an "event": always on).
        signal += self.creep_rate * (t / 60.0)
        return ArtifactRecord(
            times_s=t, pressure_mmhg=signal, events=tuple(events)
        )
