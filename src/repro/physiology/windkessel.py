"""Two-element Windkessel arterial model — the mechanistic alternative.

Where :class:`~repro.physiology.pulse.RadialPulseTemplate` is
phenomenological, the Windkessel derives the pressure waveform from
physiology: aortic inflow Q(t) charges the arterial compliance C, which
discharges through the peripheral resistance R:

    C dP/dt = Q(t) - P / R.

Integrated with the exact exponential update per step (the equation is
linear), it produces the characteristic fast systolic rise and exponential
diastolic decay, and exposes R and C as experiment knobs (e.g. stiffening
the artery raises pulse pressure — an ablation the benchmark suite runs).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..params import PASCAL_PER_MMHG
from .heart import BeatSchedule


class WindkesselModel:
    """2-element Windkessel with a half-sine systolic ejection inflow.

    Parameters
    ----------
    resistance_mmhg_s_per_ml:
        Total peripheral resistance R (clinical units). ~1.0 for an adult.
    compliance_ml_per_mmhg:
        Arterial compliance C. ~1.3 ml/mmHg typical.
    stroke_volume_ml:
        Volume ejected per beat.
    ejection_fraction_of_beat:
        Fraction of the RR interval during which the heart ejects
        (systole), ~0.3.
    """

    def __init__(
        self,
        resistance_mmhg_s_per_ml: float = 1.05,
        compliance_ml_per_mmhg: float = 1.3,
        stroke_volume_ml: float = 85.0,
        ejection_fraction_of_beat: float = 0.3,
    ):
        if resistance_mmhg_s_per_ml <= 0 or compliance_ml_per_mmhg <= 0:
            raise ConfigurationError("R and C must be positive")
        if stroke_volume_ml <= 0:
            raise ConfigurationError("stroke volume must be positive")
        if not 0.05 < ejection_fraction_of_beat < 0.9:
            raise ConfigurationError("ejection fraction must be in (0.05, 0.9)")
        self.resistance = float(resistance_mmhg_s_per_ml)
        self.compliance = float(compliance_ml_per_mmhg)
        self.stroke_volume_ml = float(stroke_volume_ml)
        self.ejection_fraction = float(ejection_fraction_of_beat)

    @property
    def time_constant_s(self) -> float:
        """Diastolic decay constant tau = R * C."""
        return self.resistance * self.compliance

    def inflow_ml_per_s(
        self, times_s: np.ndarray, schedule: BeatSchedule
    ) -> np.ndarray:
        """Half-sine ejection profile, per beat, integrating to the stroke
        volume."""
        t = np.asarray(times_s, dtype=float)
        idx, phase = schedule.beat_phase(t)
        rr = schedule.rr_intervals_s()[idx]
        ejection = self.ejection_fraction
        # Half sine over [0, ejection); integral of sin over the lobe is
        # 2/pi * duration, so scale for the stroke volume.
        active = phase < ejection
        peak_flow = self.stroke_volume_ml * np.pi / (2.0 * ejection * rr)
        flow = np.where(
            active,
            peak_flow * np.sin(np.pi * phase / ejection),
            0.0,
        )
        return flow

    def pressure_mmhg(
        self,
        times_s: np.ndarray,
        schedule: BeatSchedule,
        initial_pressure_mmhg: float = 80.0,
    ) -> np.ndarray:
        """Integrate the Windkessel ODE on the given (uniform) time grid.

        Uses the exact exponential update for the linear ODE with the
        inflow held constant across each step, so even coarse grids stay
        stable and unbiased.
        """
        t = np.asarray(times_s, dtype=float)
        if t.ndim != 1 or t.size < 2:
            raise ConfigurationError("need a 1-D time grid of >= 2 points")
        dt = float(t[1] - t[0])
        if dt <= 0 or not np.allclose(np.diff(t), dt, rtol=1e-6):
            raise ConfigurationError("time grid must be uniform and increasing")
        q = self.inflow_ml_per_s(t, schedule)
        tau = self.time_constant_s
        decay = np.exp(-dt / tau)
        gain = self.resistance * (1.0 - decay)
        p = np.empty_like(t)
        p[0] = initial_pressure_mmhg
        current = initial_pressure_mmhg
        for i in range(1, t.size):
            current = current * decay + gain * q[i - 1]
            p[i] = current
        return p

    def pressure_pa(
        self,
        times_s: np.ndarray,
        schedule: BeatSchedule,
        initial_pressure_mmhg: float = 80.0,
    ) -> np.ndarray:
        """Same as :meth:`pressure_mmhg` in pascals."""
        return (
            self.pressure_mmhg(times_s, schedule, initial_pressure_mmhg)
            * PASCAL_PER_MMHG
        )

    def steady_state_map_mmhg(self, heart_rate_bpm: float) -> float:
        """Mean pressure at steady state: R * (SV * HR) (Ohm's law)."""
        if heart_rate_bpm <= 0:
            raise ConfigurationError("heart rate must be positive")
        cardiac_output_ml_per_s = self.stroke_volume_ml * heart_rate_bpm / 60.0
        return self.resistance * cardiac_output_ml_per_s
