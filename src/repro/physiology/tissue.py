"""Tissue transfer: artery-wall motion to skin-surface displacement.

Between the artery and the sensor lies a few millimeters of soft tissue.
It acts as a spatial low-pass: the wall's radial motion appears at the
surface as a broadened, attenuated bump centered above the vessel. The
model is a buried line source under an elastic layer:

* amplitude attenuation ``depth_attenuation`` derived from the
  depth-to-spread ratio, and
* a Gaussian lateral profile transverse to the vessel axis with spread
  ``surface_spread_m`` (the artery is treated as running along y, so the
  profile varies with the transverse offset x only).

This spatial profile is what makes the 2x2 array useful: elements at
different transverse offsets see measurably different pulse amplitudes,
enabling the strongest-element selection of Sec. 2.
"""

from __future__ import annotations

import numpy as np

from ..params import TissueParams


class TissueTransfer:
    """Elastic-layer transfer from wall displacement to surface motion."""

    def __init__(self, params: TissueParams | None = None):
        self.params = params or TissueParams()

    @property
    def depth_attenuation(self) -> float:
        """Amplitude surviving the trip from artery depth to the surface.

        For a buried line source under an elastic half-space the surface
        amplitude falls roughly as 1 / (1 + (depth / radius)) — deeper or
        thinner vessels couple less motion to the skin.
        """
        p = self.params
        return 1.0 / (1.0 + p.artery_depth_m / p.artery_radius_m)

    def lateral_profile(self, offset_m: np.ndarray | float) -> np.ndarray:
        """Normalized bump profile vs. transverse offset from the artery."""
        x = np.asarray(offset_m, dtype=float)
        s = self.params.surface_spread_m
        return np.exp(-(x**2) / (2.0 * s**2))

    def surface_displacement_m(
        self,
        wall_displacement_m: np.ndarray | float,
        offset_m: np.ndarray | float = 0.0,
    ) -> np.ndarray:
        """Skin-surface displacement above the artery.

        A time series of wall displacement combined with a vector of
        sensor offsets yields the (time, offset) surface field via an
        outer product; scalar arguments collapse the respective axis.
        """
        wall = np.asarray(wall_displacement_m, dtype=float)
        profile = self.lateral_profile(offset_m)
        if wall.ndim >= 1 and np.ndim(profile) >= 1:
            return self.depth_attenuation * np.multiply.outer(wall, profile)
        return self.depth_attenuation * wall * profile

    def surface_stiffness_pa_per_m(self) -> float:
        """Effective stiffness the sensor feels pressing the skin.

        A flat punch of the artery-scale contact on an elastic layer has
        stiffness ~ E / depth per unit area; used by the contact model to
        split sensor pressure between tissue compression and artery
        loading.
        """
        p = self.params
        return p.tissue_modulus_pa / p.artery_depth_m
