"""The virtual patient: ground-truth arterial pressure on demand.

Composes the beat scheduler, the pulse template (or Windkessel), and the
respiration model into a single façade producing the intra-arterial
pressure waveform at any sampling rate — with the per-beat ground-truth
systolic/diastolic values that the fabricated sensor of the paper could
only approximate with a cuff.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..params import PASCAL_PER_MMHG, PatientParams
from .heart import BeatSchedule, BeatScheduler
from .pulse import RadialPulseTemplate
from .respiration import RespirationModel


@dataclass(frozen=True)
class PatientRecording:
    """A generated ground-truth pressure record."""

    times_s: np.ndarray
    pressure_mmhg: np.ndarray
    schedule: BeatSchedule
    #: Per-beat ground truth: (onset time, systolic, diastolic) rows.
    beat_truth: np.ndarray

    @property
    def pressure_pa(self) -> np.ndarray:
        return self.pressure_mmhg * PASCAL_PER_MMHG

    def interp_pressure_pa(self, times_s: np.ndarray) -> np.ndarray:
        """Pressure [Pa] resampled onto an arbitrary time grid.

        The record lives at the physiology rate (the waveform is below
        ~25 Hz); resampling windows of it on demand is what lets the
        streaming acquisition path synthesize the modulator-rate field
        chunk-by-chunk instead of materializing minutes of 128 kHz data.
        """
        return np.interp(
            np.asarray(times_s, dtype=float), self.times_s, self.pressure_pa
        )

    @property
    def systolic_mmhg(self) -> float:
        """Record-average systolic value."""
        return float(self.beat_truth[:, 1].mean())

    @property
    def diastolic_mmhg(self) -> float:
        """Record-average diastolic value."""
        return float(self.beat_truth[:, 2].mean())

    @property
    def mean_mmhg(self) -> float:
        return float(self.pressure_mmhg.mean())


class VirtualPatient:
    """Ground-truth hemodynamics generator.

    Parameters
    ----------
    params:
        Target systole/diastole, heart rate, variability, respiration.
    template:
        Pulse-shape override (default: radial template).
    engine:
        Waveform engine: ``"template"`` (default — phase-locked radial
        template, exact sys/dia targets) or ``"windkessel"`` (2-element
        Windkessel ODE; the mechanistic shape, affinely rescaled to the
        target sys/dia so downstream code sees the requested operating
        point either way).
    rng:
        Randomness source for HRV; fixed default for reproducibility.
    """

    def __init__(
        self,
        params: PatientParams | None = None,
        template: RadialPulseTemplate | None = None,
        engine: str = "template",
        rng: np.random.Generator | None = None,
    ):
        if engine not in ("template", "windkessel"):
            raise ConfigurationError("engine must be template|windkessel")
        self.params = params or PatientParams()
        self.template = template or RadialPulseTemplate()
        self.engine = engine
        self.rng = rng or np.random.default_rng(113)
        self.scheduler = BeatScheduler(
            heart_rate_bpm=self.params.heart_rate_bpm,
            hrv_rms_fraction=self.params.hrv_rms_fraction,
            respiration_rate_bpm=self.params.respiration_rate_bpm,
        )
        self.respiration = RespirationModel(
            rate_bpm=self.params.respiration_rate_bpm,
            depth_mmhg=self.params.respiration_depth_mmhg,
        )

    def record(
        self,
        duration_s: float,
        sample_rate_hz: float,
        pressure_trend_mmhg=None,
    ) -> PatientRecording:
        """Generate a pressure record.

        Parameters
        ----------
        duration_s:
            Record length.
        sample_rate_hz:
            Output grid rate (the chain simulation uses the modulator
            clock; analyses typically use 1 kHz).
        pressure_trend_mmhg:
            Optional callable ``trend(times) -> delta_mmHg`` adding a slow
            trend to both systole and diastole — used by the baseline-
            comparison experiment to create a hypertensive transient.
        """
        if duration_s <= 0 or sample_rate_hz <= 0:
            raise ConfigurationError("duration and rate must be positive")
        n = int(round(duration_s * sample_rate_hz))
        times = np.arange(n) / sample_rate_hz
        schedule = self.scheduler.generate(duration_s, rng=self.rng)

        dia = self.params.diastolic_mmhg
        pp = self.params.pulse_pressure_mmhg
        resp = self.respiration.modulation_mmhg(times, rng=self.rng)
        trend = (
            np.asarray(pressure_trend_mmhg(times), dtype=float)
            if pressure_trend_mmhg is not None
            else np.zeros_like(times)
        )

        if self.engine == "windkessel":
            pressure = self._windkessel_pressure(times, schedule, dia, pp)
        else:
            _, phase = schedule.beat_phase(times)
            wave = self.template.evaluate(phase)
            pressure = dia + pp * wave
        pressure = pressure + resp + trend

        # Ground truth per beat: evaluate the synthesized curve's extrema
        # within each complete beat falling inside the record.
        onsets = schedule.onset_times_s
        rows = []
        for k in range(onsets.size - 1):
            start, stop = onsets[k], onsets[k + 1]
            if stop > times[-1]:
                break
            mask = (times >= start) & (times < stop)
            if mask.sum() < 3:
                continue
            seg = pressure[mask]
            rows.append((start, float(seg.max()), float(seg.min())))
        if not rows:
            raise ConfigurationError(
                "record too short to contain a complete beat"
            )
        return PatientRecording(
            times_s=times,
            pressure_mmhg=pressure,
            schedule=schedule,
            beat_truth=np.array(rows),
        )

    def _windkessel_pressure(
        self, times: np.ndarray, schedule, dia: float, pp: float
    ) -> np.ndarray:
        """Windkessel waveform, affinely rescaled to the sys/dia targets.

        The ODE shape (fast systolic charge, exponential diastolic
        discharge) comes from the physics; the affine map pins the
        settled record's per-beat extrema to the requested operating
        point, discarding the initial-condition transient first.
        """
        from .windkessel import WindkesselModel

        model = WindkesselModel()
        raw = model.pressure_mmhg(
            times, schedule, initial_pressure_mmhg=dia
        )
        settled = raw[times > min(5.0, times[-1] / 2.0)]
        raw_lo = float(np.percentile(settled, 2))
        raw_hi = float(np.percentile(settled, 98))
        if raw_hi - raw_lo <= 0:
            raise ConfigurationError("degenerate Windkessel waveform")
        return dia + (raw - raw_lo) * pp / (raw_hi - raw_lo)
