"""Virtual-patient substrate: the physiological ground truth.

The paper's Fig. 9 records a living subject's radial pulse. Our
substitution is a controllable hemodynamics simulator: a beat scheduler
with heart-rate variability, a radial-artery pulse-shape template (or a
Windkessel alternative), respiratory modulation, vessel-wall mechanics and
the tissue transfer to the skin surface the sensor touches. Because the
ground-truth pressure is known exactly, calibration accuracy (the Fig. 9
experiment) can be quantified rather than eyeballed.
"""

from .heart import BeatSchedule, BeatScheduler
from .pulse import RadialPulseTemplate, ventricular_template
from .windkessel import WindkesselModel
from .respiration import RespirationModel
from .artery import VesselWall
from .tissue import TissueTransfer
from .patient import PatientRecording, VirtualPatient
from .artifacts import ArtifactEvent, ArtifactRecord, MotionArtifactGenerator

__all__ = [
    "ArtifactEvent",
    "ArtifactRecord",
    "BeatSchedule",
    "BeatScheduler",
    "MotionArtifactGenerator",
    "PatientRecording",
    "RadialPulseTemplate",
    "RespirationModel",
    "TissueTransfer",
    "VesselWall",
    "VirtualPatient",
    "WindkesselModel",
    "ventricular_template",
]
