"""Respiratory modulation and slow baseline drift.

Breathing modulates arterial pressure (intrathoracic pressure coupling,
a few mmHg peak) and the sensor's mechanical baseline (the wrist moves).
Both are modelled here: a sinusoidal pressure modulation and an optional
band-limited random baseline wander, the main low-frequency disturbances
a wearable tonometer has to live with.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError


class RespirationModel:
    """Sinusoidal respiratory pressure modulation plus baseline wander.

    Parameters
    ----------
    rate_bpm:
        Breathing rate (breaths per minute).
    depth_mmhg:
        Peak pressure modulation amplitude.
    wander_mmhg:
        RMS of the band-limited random baseline wander; 0 disables.
    wander_corner_hz:
        Low-pass corner of the wander process.
    """

    def __init__(
        self,
        rate_bpm: float = 15.0,
        depth_mmhg: float = 3.0,
        wander_mmhg: float = 0.0,
        wander_corner_hz: float = 0.05,
        phase_rad: float = 0.0,
    ):
        if rate_bpm < 0 or depth_mmhg < 0 or wander_mmhg < 0:
            raise ConfigurationError("respiration magnitudes must be >= 0")
        if wander_corner_hz <= 0:
            raise ConfigurationError("wander corner must be positive")
        self.rate_bpm = float(rate_bpm)
        self.depth_mmhg = float(depth_mmhg)
        self.wander_mmhg = float(wander_mmhg)
        self.wander_corner_hz = float(wander_corner_hz)
        self.phase_rad = float(phase_rad)

    def modulation_mmhg(
        self,
        times_s: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Additive pressure modulation at the given times.

        The wander component needs a uniform time grid; it is synthesized
        as a one-pole-filtered Gaussian walk scaled to the requested RMS.
        """
        t = np.asarray(times_s, dtype=float)
        out = self.depth_mmhg * np.sin(
            2.0 * np.pi * (self.rate_bpm / 60.0) * t + self.phase_rad
        )
        if self.wander_mmhg > 0.0:
            if t.size < 2:
                raise ConfigurationError("wander needs >= 2 time points")
            dt = float(t[1] - t[0])
            if dt <= 0 or not np.allclose(np.diff(t), dt, rtol=1e-6):
                raise ConfigurationError(
                    "baseline wander requires a uniform time grid"
                )
            rng = rng or np.random.default_rng(29)
            alpha = np.exp(-2.0 * np.pi * self.wander_corner_hz * dt)
            white = rng.standard_normal(t.size)
            wander = np.empty_like(white)
            state = 0.0
            drive = np.sqrt(1.0 - alpha**2)
            for i, w in enumerate(white):
                state = alpha * state + drive * w
                wander[i] = state
            out = out + self.wander_mmhg * wander
        return out
