"""Exception hierarchy for the reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing configuration problems from runtime simulation faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A parameter or parameter combination is physically or logically invalid.

    Raised at construction time: negative geometry, zero sampling rate,
    unstable loop coefficients, mismatched array shapes, and similar.
    """


class SimulationError(ReproError, RuntimeError):
    """A simulation failed while running (e.g. integrator state diverged)."""


class ModulatorOverloadError(SimulationError):
    """The sigma-delta modulator's integrator states exceeded stable bounds.

    Second-order single-bit modulators overload when the input approaches
    the feedback reference; this exception reports the sample index at which
    the overload was detected so harnesses can back off the input amplitude.
    """

    def __init__(self, sample_index: int, state: tuple[float, float]):
        self.sample_index = int(sample_index)
        self.state = (float(state[0]), float(state[1]))
        super().__init__(
            f"modulator overload at sample {self.sample_index}: "
            f"integrator states {self.state}"
        )


class CalibrationError(ReproError, RuntimeError):
    """Calibration could not be established or applied.

    Examples: two-point calibration with coincident raw values, feature
    extraction finding no beats in the calibration window.
    """


class SignalQualityError(ReproError, RuntimeError):
    """The acquired signal is too poor for the requested analysis.

    Raised by beat detection and feature extraction when no plausible
    cardiac signal can be found (e.g. the array is placed entirely off the
    artery).
    """


class FramingError(ReproError, ValueError):
    """A DAQ/USB frame failed validation (bad sync word, CRC, or length)."""


class GatewayError(ReproError, RuntimeError):
    """A gateway/device link operation failed beyond recovery.

    Raised when the retry budget of a device client is exhausted, a
    handshake cannot be completed, or a gateway service is driven
    outside its lifecycle (e.g. serving before :meth:`start`).
    """


class FixedPointOverflowError(ReproError, OverflowError):
    """A fixed-point operation overflowed with saturation disabled.

    The bit-true FPGA filter models deliberately distinguish saturating
    arithmetic (allowed, models hardware clamping) from silent wrap-around
    (a design bug in a decimation filter); this exception flags the latter
    when a stage is configured to treat overflow as fatal.
    """
