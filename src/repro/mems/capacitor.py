"""Capacitance of the deflected membrane (top electrode vs. poly-Si).

Sign convention used across the library: positive center deflection ``w0``
moves the membrane *toward* the bottom electrode (external force pressing
on the PDMS), shrinking the gap and increasing capacitance. Negative
``w0`` is the backpressure bulge of Fig. 8 (membrane "sticks out").

The electrode covers the central part of the membrane (deflection is zero
at the clamped rim, so edge electrode area would only add offset
capacitance). The capacitance of the curved plate is the parallel-plate
integral

    C(w0) = eps0 * integral over electrode of dA / (g - w0 * phi(x)phi(y))

evaluated numerically on a tensor grid. Because the readout simulation
needs C at up to 10^5 pressures per second of simulated time, the sensor
layer wraps this in a Chebyshev interpolant built once at construction
(:class:`repro.mems.membrane.MembraneSensor`).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError, SimulationError
from .plate import mode_shape

VACUUM_PERMITTIVITY = 8.8541878128e-12  # F/m


class DeflectedPlateCapacitor:
    """Parallel-plate capacitance of the bent membrane.

    Parameters
    ----------
    side_m:
        Membrane side length ``a``.
    gap_m:
        Rest electrode separation ``g`` (sacrificial metal-1 thickness).
    electrode_coverage:
        Fraction of membrane *area* covered by the centered square top
        electrode; the electrode side is ``sqrt(coverage) * a``.
    fringe_factor:
        Multiplicative correction for fringing fields at the electrode
        perimeter (>= 1). Default 1.05 is typical for gap << side.
    parasitic_f:
        Fixed parallel parasitic capacitance (interconnect, pad) [F].
    grid_points:
        1-D quadrature resolution for the area integral.
    """

    def __init__(
        self,
        side_m: float,
        gap_m: float,
        electrode_coverage: float = 0.8,
        fringe_factor: float = 1.05,
        parasitic_f: float = 50e-15,
        grid_points: int = 61,
    ):
        if side_m <= 0 or gap_m <= 0:
            raise ConfigurationError("side and gap must be positive")
        if not 0 < electrode_coverage <= 1:
            raise ConfigurationError("electrode coverage must be in (0, 1]")
        if fringe_factor < 1.0:
            raise ConfigurationError("fringe factor must be >= 1")
        if parasitic_f < 0.0:
            raise ConfigurationError("parasitic capacitance must be >= 0")
        if grid_points < 5:
            raise ConfigurationError("grid must have at least 5 points")

        self.side_m = float(side_m)
        self.gap_m = float(gap_m)
        self.electrode_coverage = float(electrode_coverage)
        self.fringe_factor = float(fringe_factor)
        self.parasitic_f = float(parasitic_f)

        # Tensor quadrature grid over the electrode (normalized coords).
        half = 0.5 * math.sqrt(self.electrode_coverage)
        xi = np.linspace(-half, half, grid_points)
        self._cell_area_m2 = (
            (2.0 * half * self.side_m / (grid_points - 1)) ** 2
        )
        phi = mode_shape(xi)
        # Trapezoid weights in 1-D, outer product for 2-D.
        w1d = np.ones(grid_points)
        w1d[0] = w1d[-1] = 0.5
        self._mode2d = np.outer(phi, phi)
        self._weights2d = np.outer(w1d, w1d)

    # -- geometry helpers -------------------------------------------------

    @property
    def electrode_side_m(self) -> float:
        return self.side_m * math.sqrt(self.electrode_coverage)

    @property
    def electrode_area_m2(self) -> float:
        return self.electrode_coverage * self.side_m**2

    @property
    def rest_capacitance_f(self) -> float:
        """C(w0 = 0): flat-plate value plus fringe and parasitics."""
        plate = VACUUM_PERMITTIVITY * self.electrode_area_m2 / self.gap_m
        return plate * self.fringe_factor + self.parasitic_f

    @property
    def max_deflection_m(self) -> float:
        """Deflection at which the membrane center touches the bottom.

        The simulation refuses to evaluate beyond 95 % of the gap: the
        parallel-plate integral diverges there and real devices pull in or
        touch down first.
        """
        return 0.95 * self.gap_m

    # -- capacitance -------------------------------------------------------

    def capacitance_f(self, center_deflection_m: np.ndarray | float) -> np.ndarray:
        """Exact (quadrature) capacitance for center deflections [F].

        Vectorized over ``center_deflection_m``. Raises
        :class:`SimulationError` if any deflection exceeds
        :attr:`max_deflection_m` (touch-down).
        """
        w0 = np.atleast_1d(np.asarray(center_deflection_m, dtype=float))
        if np.any(w0 > self.max_deflection_m):
            worst = float(np.max(w0))
            raise SimulationError(
                f"membrane touch-down: deflection {worst * 1e9:.1f} nm "
                f"exceeds {self.max_deflection_m * 1e9:.1f} nm "
                f"(95 % of the {self.gap_m * 1e9:.0f} nm gap)"
            )
        # gap field: g - w0 * phi(x)phi(y); shape (n_w0, n, n)
        local_gap = self.gap_m - w0[:, None, None] * self._mode2d[None, :, :]
        integrand = self._weights2d[None, :, :] / local_gap
        plate = (
            VACUUM_PERMITTIVITY
            * self._cell_area_m2
            * integrand.sum(axis=(1, 2))
        )
        return plate * self.fringe_factor + self.parasitic_f

    def sensitivity_f_per_m(self, center_deflection_m: float = 0.0) -> float:
        """dC/dw0 at an operating point, by central difference."""
        step = 1e-4 * self.gap_m
        w = float(center_deflection_m)
        c = self.capacitance_f(np.array([w - step, w + step]))
        return float((c[1] - c[0]) / (2.0 * step))

    def small_signal_capacitance_f(
        self, center_deflection_m: np.ndarray | float
    ) -> np.ndarray:
        """First-order expansion C0 + dC/dw0 * w0, for cross-checking.

        Valid for \\|w0\\| << gap; tests compare it against the exact
        quadrature to bound linearization error.
        """
        w0 = np.atleast_1d(np.asarray(center_deflection_m, dtype=float))
        return self.rest_capacitance_f + self.sensitivity_f_per_m(0.0) * w0
