"""Backside pressure-tube actuation (paper Sec. 3.2, Fig. 8).

The assembled PCB feeds a pressure tube to the back of the die; an applied
overpressure bends the membranes upward so they "stick out and touch the
surface of the measured object". In the model this is simply a negative
contribution to the net membrane pressure (our sign convention: positive
pressure deflects toward the bottom electrode), but the actuator also has
pneumatic dynamics — the tube and back cavity form a first-order lag — and
a protrusion calculation used by the contact model.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .membrane import MembraneSensor


class BackpressureActuator:
    """First-order pneumatic actuation of the membrane backside.

    Parameters
    ----------
    sensor:
        The membrane the backpressure acts on.
    time_constant_s:
        Pneumatic lag of the tube + cavity. Tens of milliseconds is typical
        for a thin tube into a sub-microliter cavity; it only matters for
        the initial inflation transient, not the cardiac band.
    """

    def __init__(self, sensor: MembraneSensor, time_constant_s: float = 20e-3):
        if time_constant_s <= 0:
            raise ConfigurationError("pneumatic time constant must be positive")
        self.sensor = sensor
        self.time_constant_s = float(time_constant_s)

    def settled_pressure_pa(
        self,
        commanded_pa: np.ndarray | float,
        time_s: np.ndarray | float,
        initial_pa: float = 0.0,
    ) -> np.ndarray:
        """Cavity pressure after a step to ``commanded_pa`` at t = 0."""
        commanded = np.asarray(commanded_pa, dtype=float)
        t = np.asarray(time_s, dtype=float)
        decay = np.exp(-np.maximum(t, 0.0) / self.time_constant_s)
        return commanded + (initial_pa - commanded) * decay

    def protrusion_m(self, backpressure_pa: np.ndarray | float) -> np.ndarray:
        """Outward protrusion of the membrane center for a backpressure.

        Backside overpressure is a *negative* membrane pressure in our
        convention, so the deflection comes out negative; the protrusion is
        its magnitude (how far the membrane sticks out above the chip).
        """
        backpressure = np.atleast_1d(np.asarray(backpressure_pa, dtype=float))
        if np.any(backpressure < 0.0):
            raise ConfigurationError("backpressure must be non-negative")
        deflection = self.sensor.deflection_m(-backpressure)
        return -deflection

    def required_backpressure_pa(self, protrusion_m: float) -> float:
        """Backpressure needed for a target outward protrusion.

        Used when setting up the contact: the membranes must protrude
        beyond the chip surface to engage the PDMS/tissue.
        """
        if protrusion_m < 0.0:
            raise ConfigurationError("protrusion must be non-negative")
        pressure = self.sensor.plate.pressure_for_deflection_pa(-protrusion_m)
        return float(-pressure[0])
