"""Composite-plate (classical lamination) mechanics of the membrane stack.

The released membrane is a sandwich of oxide, aluminum and nitride films
(Fig. 2). For deflection modelling we need three scalars:

* the flexural rigidity ``D`` about the laminate's neutral axis,
* the net residual in-plane force per unit width ``N0 = sum(sigma_i * t_i)``,
* the areal mass (for resonance estimates).

Classical lamination theory for an isotropic-layer stack reduces to a
neutral-axis computation followed by a parallel-axis sum, which is what is
implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import ConfigurationError
from .materials import Layer


@dataclass(frozen=True)
class Laminate:
    """An ordered stack of thin films, bottom (z=0) to top.

    Parameters
    ----------
    layers:
        The films, ordered from the bottom of the stack upward.
    """

    layers: tuple[Layer, ...]

    def __init__(self, layers: Iterable[Layer] | Sequence[Layer]):
        layer_tuple = tuple(layers)
        if not layer_tuple:
            raise ConfigurationError("laminate needs at least one layer")
        object.__setattr__(self, "layers", layer_tuple)

    # -- geometry ------------------------------------------------------

    @property
    def thickness_m(self) -> float:
        """Total stack thickness."""
        return sum(layer.thickness_m for layer in self.layers)

    def layer_bounds_m(self) -> list[tuple[float, float]]:
        """(z_bottom, z_top) of each layer, measured from the stack bottom."""
        bounds = []
        z = 0.0
        for layer in self.layers:
            bounds.append((z, z + layer.thickness_m))
            z += layer.thickness_m
        return bounds

    # -- stiffness -----------------------------------------------------

    @property
    def neutral_axis_m(self) -> float:
        """Bending neutral axis height above the stack bottom.

        Weighted by each layer's plate modulus E/(1-nu^2): the stiffness-
        weighted centroid of the cross-section.
        """
        weighted_moment = 0.0
        weighted_area = 0.0
        for layer, (z0, z1) in zip(self.layers, self.layer_bounds_m()):
            modulus = layer.material.plate_modulus_pa
            weighted_area += modulus * (z1 - z0)
            weighted_moment += modulus * 0.5 * (z1**2 - z0**2)
        return weighted_moment / weighted_area

    @property
    def flexural_rigidity_nm(self) -> float:
        """Composite flexural rigidity D [N*m] about the neutral axis.

        D = sum_i E_i/(1-nu_i^2) * integral over layer i of (z - z_n)^2 dz,
        the parallel-axis laminate formula.
        """
        zn = self.neutral_axis_m
        rigidity = 0.0
        for layer, (z0, z1) in zip(self.layers, self.layer_bounds_m()):
            modulus = layer.material.plate_modulus_pa
            rigidity += modulus * ((z1 - zn) ** 3 - (z0 - zn) ** 3) / 3.0
        return rigidity

    @property
    def membrane_force_n_per_m(self) -> float:
        """Net residual in-plane force per unit width N0 [N/m].

        Positive (tensile) N0 stiffens the plate; strongly negative values
        indicate buckling risk.
        """
        return sum(
            layer.material.residual_stress_pa * layer.thickness_m
            for layer in self.layers
        )

    @property
    def mean_residual_stress_pa(self) -> float:
        """Thickness-averaged residual stress of the stack [Pa]."""
        return self.membrane_force_n_per_m / self.thickness_m

    @property
    def effective_plate_modulus_pa(self) -> float:
        """Thickness-weighted average of E/(1-nu^2) over the layers."""
        total = sum(
            layer.material.plate_modulus_pa * layer.thickness_m
            for layer in self.layers
        )
        return total / self.thickness_m

    @property
    def effective_youngs_modulus_pa(self) -> float:
        """Thickness-weighted average Young's modulus."""
        total = sum(
            layer.material.youngs_modulus_pa * layer.thickness_m
            for layer in self.layers
        )
        return total / self.thickness_m

    @property
    def effective_poisson_ratio(self) -> float:
        """Thickness-weighted average Poisson ratio."""
        total = sum(
            layer.material.poisson_ratio * layer.thickness_m
            for layer in self.layers
        )
        return total / self.thickness_m

    # -- mass ----------------------------------------------------------

    @property
    def areal_mass_kg_m2(self) -> float:
        """Mass per unit membrane area."""
        return sum(layer.areal_mass_kg_m2 for layer in self.layers)

    # -- convenience ---------------------------------------------------

    def with_residual_stress(self, stress_pa: float) -> "Laminate":
        """Return a laminate whose every layer carries the given stress.

        Useful when the net post-release stress is known experimentally and
        should override the per-film deposition values.
        """
        from dataclasses import replace

        new_layers = tuple(
            Layer(
                replace(layer.material, residual_stress_pa=stress_pa),
                layer.thickness_m,
            )
            for layer in self.layers
        )
        return Laminate(new_layers)

    def describe(self) -> str:
        """Multi-line human-readable summary (used by examples)."""
        lines = [
            f"Laminate: {len(self.layers)} layers, "
            f"{self.thickness_m * 1e6:.2f} um total",
        ]
        for layer, (z0, z1) in zip(self.layers, self.layer_bounds_m()):
            lines.append(
                f"  {layer.material.name:<40s} "
                f"{layer.thickness_m * 1e6:5.2f} um  "
                f"[{z0 * 1e6:.2f}..{z1 * 1e6:.2f} um]"
            )
        lines.append(f"  neutral axis : {self.neutral_axis_m * 1e6:.3f} um")
        lines.append(f"  D            : {self.flexural_rigidity_nm:.3e} N*m")
        lines.append(
            f"  N0 (residual): {self.membrane_force_n_per_m:.3f} N/m "
            f"({self.mean_residual_stress_pa / 1e6:.1f} MPa mean)"
        )
        return "\n".join(lines)
