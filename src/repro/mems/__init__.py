"""MEMS membrane transducer substrate (paper Sec. 2.1, Fig. 2).

Models the released CMOS membrane: the dielectric/metal laminate, its
deflection under pressure as a stress-stiffened clamped square plate, and
the resulting capacitance between the metal-2 top electrode and the
poly-silicon bottom electrode.
"""

from .materials import (
    ALUMINUM,
    CMOS_PASSIVATION_NITRIDE,
    FIELD_OXIDE,
    Layer,
    Material,
    POLYSILICON,
    SILICON,
    SILICON_NITRIDE,
    SILICON_OXIDE,
    paper_membrane_stack,
)
from .laminate import Laminate
from .plate import ClampedSquarePlate, PlateSolution
from .capacitor import DeflectedPlateCapacitor
from .membrane import MembraneSensor
from .backpressure import BackpressureActuator
from .geometry import ArrayGeometry, koh_opening_side
from .thermal import ThermalMembraneModel, ThermalState, drift_induced_bp_error_mmhg

__all__ = [
    "ALUMINUM",
    "ArrayGeometry",
    "BackpressureActuator",
    "CMOS_PASSIVATION_NITRIDE",
    "ClampedSquarePlate",
    "DeflectedPlateCapacitor",
    "FIELD_OXIDE",
    "Laminate",
    "Layer",
    "Material",
    "MembraneSensor",
    "POLYSILICON",
    "PlateSolution",
    "SILICON",
    "SILICON_NITRIDE",
    "SILICON_OXIDE",
    "ThermalMembraneModel",
    "ThermalState",
    "drift_induced_bp_error_mmhg",
    "koh_opening_side",
    "paper_membrane_stack",
]
