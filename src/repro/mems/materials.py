"""Thin-film material properties of the CMOS membrane stack.

The paper (Sec. 2.1) builds the membrane from "CMOS dielectric layers
(silicon oxide / nitride) and metallization (aluminum)" with a poly-silicon
bottom electrode. Thin-film properties differ from bulk; the values below
are standard thin-film numbers used in CMOS-MEMS modelling.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class Material:
    """Isotropic linear-elastic thin-film material.

    Attributes
    ----------
    name:
        Human-readable identifier.
    youngs_modulus_pa:
        Young's modulus E [Pa].
    poisson_ratio:
        Poisson's ratio (dimensionless, in [0, 0.5)).
    density_kg_m3:
        Mass density [kg/m^3].
    residual_stress_pa:
        Typical as-deposited residual stress after release [Pa];
        positive = tensile.
    relative_permittivity:
        Dielectric constant (relevant for oxide/nitride in the gap stack).
    """

    name: str
    youngs_modulus_pa: float
    poisson_ratio: float
    density_kg_m3: float
    residual_stress_pa: float = 0.0
    relative_permittivity: float = 1.0

    def __post_init__(self) -> None:
        if self.youngs_modulus_pa <= 0:
            raise ConfigurationError(f"{self.name}: Young's modulus must be positive")
        if not 0.0 <= self.poisson_ratio < 0.5:
            raise ConfigurationError(f"{self.name}: Poisson ratio must be in [0, 0.5)")
        if self.density_kg_m3 <= 0:
            raise ConfigurationError(f"{self.name}: density must be positive")
        if self.relative_permittivity < 1.0:
            raise ConfigurationError(f"{self.name}: permittivity must be >= 1")

    @property
    def biaxial_modulus_pa(self) -> float:
        """E / (1 - nu), the modulus governing equi-biaxial plate bending."""
        return self.youngs_modulus_pa / (1.0 - self.poisson_ratio)

    @property
    def plate_modulus_pa(self) -> float:
        """E / (1 - nu^2), the modulus in the flexural rigidity integral."""
        return self.youngs_modulus_pa / (1.0 - self.poisson_ratio**2)


# --- Thin-film catalog (values typical for 0.8 um CMOS back end) -----------

SILICON_OXIDE = Material(
    name="SiO2 (PECVD/thermal CMOS ILD)",
    youngs_modulus_pa=70e9,
    poisson_ratio=0.17,
    density_kg_m3=2200.0,
    residual_stress_pa=-100e6,  # compressive as deposited
    relative_permittivity=3.9,
)

SILICON_NITRIDE = Material(
    name="Si3N4 (PECVD passivation)",
    youngs_modulus_pa=250e9,
    poisson_ratio=0.23,
    density_kg_m3=3100.0,
    residual_stress_pa=300e6,  # tensile; balances oxide compression
    relative_permittivity=7.5,
)

# Alias matching the paper's language ("passivation nitride").
CMOS_PASSIVATION_NITRIDE = SILICON_NITRIDE

ALUMINUM = Material(
    name="Al (CMOS metallization)",
    youngs_modulus_pa=70e9,
    poisson_ratio=0.35,
    density_kg_m3=2700.0,
    residual_stress_pa=50e6,
)

POLYSILICON = Material(
    name="poly-Si (gate poly, bottom electrode)",
    youngs_modulus_pa=160e9,
    poisson_ratio=0.22,
    density_kg_m3=2330.0,
    residual_stress_pa=-10e6,
)

SILICON = Material(
    name="Si (bulk substrate, <100>)",
    youngs_modulus_pa=130e9,
    poisson_ratio=0.28,
    density_kg_m3=2330.0,
)

FIELD_OXIDE = Material(
    name="SiO2 (field oxide)",
    youngs_modulus_pa=70e9,
    poisson_ratio=0.17,
    density_kg_m3=2200.0,
    residual_stress_pa=-300e6,
    relative_permittivity=3.9,
)


@dataclass(frozen=True)
class Layer:
    """One film in the laminate: a material plus its thickness."""

    material: Material
    thickness_m: float

    def __post_init__(self) -> None:
        if self.thickness_m <= 0:
            raise ConfigurationError(
                f"layer of {self.material.name}: thickness must be positive"
            )

    @property
    def areal_mass_kg_m2(self) -> float:
        return self.material.density_kg_m3 * self.thickness_m


def paper_membrane_stack() -> tuple[Layer, ...]:
    """The released membrane laminate of Fig. 2, bottom to top.

    The paper gives only the total thickness (3 um). This split between
    inter-layer oxide, metal-2 (top electrode) and passivation nitride is
    representative of a 0.8 um two-metal CMOS back end and sums to 3 um.
    """
    return (
        Layer(SILICON_OXIDE, 1.0e-6),  # ILD under metal-2
        Layer(ALUMINUM, 0.9e-6),  # metal-2 top electrode
        Layer(SILICON_OXIDE, 0.5e-6),  # inter-metal/passivation oxide
        Layer(SILICON_NITRIDE, 0.6e-6),  # passivation nitride
    )
