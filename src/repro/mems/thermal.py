"""Temperature drift of the membrane transducer.

A skin-contact sensor warms from ambient (~23 C) to near skin temperature
(~33 C) over the first minutes of wear, and the capacitance transfer
drifts with it:

* **thermal expansion mismatch** between the film stack and the silicon
  frame changes the residual membrane stress (the dominant term — CMOS
  dielectrics vs. Si differ by several ppm/K, and stress feeds directly
  into the plate stiffness);
* **gap expansion** changes the rest capacitance directly (minor).

Since the recorded signal is relative and calibrated, slow thermal drift
shows up as *calibration decay*: the gain/offset anchored by the cuff at
t=0 no longer fit minutes later. The drift tracker in
:mod:`repro.calibration.drift` consumes this model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..params import MembraneParams
from .membrane import MembraneSensor

#: Thermal-expansion mismatch stress coefficient of the CMOS stack on
#: silicon [Pa/K]. d(sigma)/dT = E_eff/(1-nu) * (alpha_film - alpha_si);
#: with alpha difference ~2 ppm/K and biaxial modulus ~100 GPa this is
#: ~0.2 MPa/K; tensile films relax as the die warms.
STRESS_TEMPERATURE_COEFF_PA_PER_K = -0.2e6


@dataclass(frozen=True)
class ThermalState:
    """Sensor temperature trajectory parameters."""

    ambient_c: float = 23.0
    skin_c: float = 33.0
    warmup_tau_s: float = 90.0

    def temperature_c(self, times_s: np.ndarray) -> np.ndarray:
        """First-order warm-up from ambient toward skin temperature."""
        t = np.asarray(times_s, dtype=float)
        return self.skin_c + (self.ambient_c - self.skin_c) * np.exp(
            -np.maximum(t, 0.0) / self.warmup_tau_s
        )


class ThermalMembraneModel:
    """Temperature-dependent membrane transfer.

    Builds a reference :class:`MembraneSensor` at the calibration
    temperature and evaluates sensitivity/offset drift at other
    temperatures by re-solving the plate with the shifted residual
    stress (exact, not linearized — construction is cached per queried
    temperature).
    """

    def __init__(
        self,
        params: MembraneParams | None = None,
        reference_temperature_c: float = 23.0,
        stress_tc_pa_per_k: float = STRESS_TEMPERATURE_COEFF_PA_PER_K,
    ):
        self.params = params or MembraneParams()
        self.reference_temperature_c = float(reference_temperature_c)
        self.stress_tc = float(stress_tc_pa_per_k)
        self._cache: dict[float, MembraneSensor] = {}
        self.reference = self.sensor_at(reference_temperature_c)

    def sensor_at(self, temperature_c: float) -> MembraneSensor:
        """Membrane model at a given die temperature."""
        key = round(float(temperature_c), 3)
        if key not in self._cache:
            delta_t = key - self.reference_temperature_c
            stress = self.params.residual_stress_pa + self.stress_tc * delta_t
            import dataclasses

            shifted = dataclasses.replace(
                self.params, residual_stress_pa=stress
            )
            self._cache[key] = MembraneSensor(shifted)
        return self._cache[key]

    def sensitivity_drift_fraction(self, temperature_c: float) -> float:
        """Relative sensitivity change vs the reference temperature."""
        ref = self.reference.pressure_sensitivity_f_per_pa(0.0)
        now = self.sensor_at(temperature_c).pressure_sensitivity_f_per_pa(0.0)
        return (now - ref) / ref

    def offset_drift_f(self, temperature_c: float) -> float:
        """Rest-capacitance change vs the reference temperature [F]."""
        return (
            self.sensor_at(temperature_c).rest_capacitance_f
            - self.reference.rest_capacitance_f
        )

    def gain_drift_over_warmup(
        self, state: ThermalState, times_s: np.ndarray
    ) -> np.ndarray:
        """Sensitivity drift trajectory during a wear session."""
        temps = state.temperature_c(np.asarray(times_s, dtype=float))
        return np.array(
            [self.sensitivity_drift_fraction(float(t)) for t in temps]
        )


def drift_induced_bp_error_mmhg(
    gain_drift_fraction: float, pulse_pressure_mmhg: float = 40.0
) -> float:
    """BP error caused by uncorrected gain drift.

    A two-point calibration fixes the gain at t=0; a later relative gain
    change of ``g`` scales the measured pulse pressure by (1+g), so the
    systolic error is ~ g * PP (diastole is pinned by the offset track).
    """
    if pulse_pressure_mmhg <= 0:
        raise ConfigurationError("pulse pressure must be positive")
    return float(gain_drift_fraction * pulse_pressure_mmhg)
