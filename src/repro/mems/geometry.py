"""Array and post-processing geometry (paper Secs. 2.1, 3; Figs. 2, 5).

Provides element-center coordinates for the N x M membrane array (needed
by the tonometric coupling model to weight each element by its distance
from the artery) and the KOH backside-etch geometry that releases the
membranes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..params import ArrayParams

#: <111> sidewall angle of anisotropic KOH etching in <100> silicon.
KOH_SIDEWALL_ANGLE_DEG = 54.74


def koh_opening_side(
    membrane_side_m: float, wafer_thickness_m: float = 525e-6
) -> float:
    """Backside mask opening needed to release a membrane of given side.

    KOH etches <100> silicon with sidewalls sloped at 54.74 deg, so the
    backside opening must be larger than the membrane by
    ``2 * t_wafer / tan(54.74 deg)`` (Sec. 2.1: "a potassium hydroxide
    etch is applied from the back of the chip").
    """
    if membrane_side_m <= 0 or wafer_thickness_m <= 0:
        raise ConfigurationError("membrane side and wafer thickness must be positive")
    undercut = wafer_thickness_m / math.tan(math.radians(KOH_SIDEWALL_ANGLE_DEG))
    return membrane_side_m + 2.0 * undercut


@dataclass(frozen=True)
class ArrayGeometry:
    """Physical layout of the membrane array on the die.

    The 2x2 paper array at 150 um pitch spans 150 um center-to-center;
    coordinates are centered on the array centroid, in meters, with x along
    columns and y along rows.
    """

    params: ArrayParams

    @property
    def rows(self) -> int:
        return self.params.rows

    @property
    def cols(self) -> int:
        return self.params.cols

    @property
    def pitch_m(self) -> float:
        return self.params.membrane.pitch_m

    def element_centers_m(self) -> np.ndarray:
        """(rows*cols, 2) array of (x, y) element centers, row-major order."""
        pitch = self.pitch_m
        xs = (np.arange(self.cols) - (self.cols - 1) / 2.0) * pitch
        ys = (np.arange(self.rows) - (self.rows - 1) / 2.0) * pitch
        grid_x, grid_y = np.meshgrid(xs, ys)
        return np.column_stack([grid_x.ravel(), grid_y.ravel()])

    def element_index(self, row: int, col: int) -> int:
        """Flat row-major index of the element at (row, col)."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ConfigurationError(
                f"element ({row}, {col}) outside {self.rows}x{self.cols} array"
            )
        return row * self.cols + col

    def element_rowcol(self, index: int) -> tuple[int, int]:
        """Inverse of :meth:`element_index`."""
        n = self.rows * self.cols
        if not 0 <= index < n:
            raise ConfigurationError(f"element index {index} outside 0..{n - 1}")
        return divmod(index, self.cols)

    @property
    def span_m(self) -> tuple[float, float]:
        """Total (x, y) extent covered by membranes (outer edge to edge)."""
        side = self.params.membrane.side_m
        return (
            (self.cols - 1) * self.pitch_m + side,
            (self.rows - 1) * self.pitch_m + side,
        )

    def footprint_fits_die(
        self, die_width_m: float, die_height_m: float
    ) -> bool:
        """Whether the membrane field fits the die (sanity check vs Fig. 5)."""
        span_x, span_y = self.span_m
        return span_x <= die_width_m and span_y <= die_height_m
