"""The complete membrane transducer: pressure in, capacitance out.

Chains the composite-plate mechanics (:mod:`.plate`) with the deflected-
plate electrostatics (:mod:`.capacitor`) and wraps the result in a
Chebyshev interpolant so streaming simulations can evaluate hundreds of
thousands of samples per second of simulated time.
"""

from __future__ import annotations

import numpy as np
from numpy.polynomial import chebyshev

from ..errors import ConfigurationError, SimulationError
from ..parallel.cache import precompute_cache
from ..params import MembraneParams
from .capacitor import DeflectedPlateCapacitor
from .laminate import Laminate
from .materials import paper_membrane_stack
from .plate import ClampedSquarePlate


class MembraneSensor:
    """One capacitive membrane force sensor (paper Sec. 2.1, Fig. 2).

    Parameters
    ----------
    params:
        Geometry/electrostatics; defaults are the paper's 100 um x 3 um
        membrane on a 150 um pitch.
    laminate:
        Film stack; defaults to :func:`paper_membrane_stack`. The net
        residual stress from ``params.residual_stress_pa`` overrides the
        per-film deposition values (it represents the measured post-release
        state).
    interpolant_degree:
        Degree of the Chebyshev fit of C(P) used by :meth:`capacitance_f`.
    operating_range_pa:
        Half-width of the pressure interval the fast interpolant covers.
        The default +/-50 kPa spans hold-down plus pulse pressures with a
        wide margin while keeping the interpolant error far below the
        signal (the touch-down full scale is ~1.3 MPa, where capacitance
        curvature would dominate the fit). Pressures outside this window
        still work through :meth:`capacitance_exact_f`.
    """

    def __init__(
        self,
        params: MembraneParams | None = None,
        laminate: Laminate | None = None,
        interpolant_degree: int = 12,
        operating_range_pa: float = 50e3,
    ):
        if operating_range_pa <= 0:
            raise ConfigurationError("operating range must be positive")
        self._interpolant_degree = int(interpolant_degree)
        self._operating_range_pa = float(operating_range_pa)
        self.params = params or MembraneParams()
        self.laminate = laminate or Laminate(paper_membrane_stack())
        if abs(self.laminate.thickness_m - self.params.thickness_m) > 0.2e-6:
            raise ConfigurationError(
                f"laminate thickness {self.laminate.thickness_m * 1e6:.2f} um "
                f"disagrees with params.thickness_m "
                f"{self.params.thickness_m * 1e6:.2f} um"
            )

        residual_force = (
            self.params.residual_stress_pa * self.laminate.thickness_m
        )
        self.plate = ClampedSquarePlate(
            side_m=self.params.side_m,
            laminate=self.laminate,
            residual_force_override_n_per_m=residual_force,
        )
        self.capacitor = DeflectedPlateCapacitor(
            side_m=self.params.side_m,
            gap_m=self.params.gap_m,
            electrode_coverage=self.params.electrode_coverage,
        )

        # The touch-down solve and the Chebyshev transfer fit depend only
        # on the frozen parameters (for the default laminate), so they are
        # shared process-wide: building one chip per virtual subject or
        # per pool-worker task solves the plate once per process. A
        # custom laminate is not a hashable key; it solves directly.
        if laminate is None:
            key = (
                "membrane_transfer",
                self.params,
                int(interpolant_degree),
                float(operating_range_pa),
            )
            solution = precompute_cache().get(key, self._solve_transfer)
        else:
            solution = self._solve_transfer()
        self._p_touchdown, self._p_max, self._fit = solution
        self._p_min = -self._p_max

    def _solve_transfer(
        self,
    ) -> tuple[float, float, chebyshev.Chebyshev]:
        """Solve touch-down and fit C(P) over the operating window."""
        # Touch-down-limited full scale: pressure at which the deflection
        # reaches the guard band of the capacitor model.
        w_max = self.capacitor.max_deflection_m
        p_touchdown = float(self.plate.pressure_for_deflection_pa(w_max)[0])
        # Fast-interpolant window (see class docstring).
        p_max = min(self._operating_range_pa, p_touchdown)
        fit = self._build_interpolant(self._interpolant_degree, p_max)
        return (p_touchdown, p_max, fit)

    def _build_interpolant(
        self, degree: int, p_max: float
    ) -> chebyshev.Chebyshev:
        nodes = chebyshev.chebpts2(max(2 * degree + 1, 33))
        pressures = 0.5 * (nodes + 1.0) * (2.0 * p_max) - p_max
        w0 = self.plate.center_deflection_m(pressures)
        c = self.capacitor.capacitance_f(w0)
        return chebyshev.Chebyshev.fit(
            pressures, c, deg=degree, domain=[-p_max, p_max]
        )

    # -- public transfer ---------------------------------------------------

    @property
    def rest_capacitance_f(self) -> float:
        """Capacitance with no applied pressure."""
        return self.capacitor.rest_capacitance_f

    @property
    def pressure_range_pa(self) -> tuple[float, float]:
        """(min, max) pressure the fast transfer accepts."""
        return (self._p_min, self._p_max)

    @property
    def full_scale_pressure_pa(self) -> float:
        """Touch-down-limited positive full scale (exact path only)."""
        return self._p_touchdown

    def capacitance_f(self, pressure_pa: np.ndarray | float) -> np.ndarray:
        """Fast capacitance for applied pressures [Pa] -> [F] (vectorized).

        Positive pressure presses the membrane toward the bottom electrode
        (external force via the PDMS); negative pressure is backside
        overpressure bulging it outward.
        """
        pressure = np.atleast_1d(np.asarray(pressure_pa, dtype=float))
        if np.any(pressure > self._p_max) or np.any(pressure < self._p_min):
            raise SimulationError(
                "pressure outside transducer range "
                f"[{self._p_min:.0f}, {self._p_max:.0f}] Pa "
                f"(got [{pressure.min():.0f}, {pressure.max():.0f}] Pa)"
            )
        return self._fit(pressure)

    def capacitance_exact_f(self, pressure_pa: np.ndarray | float) -> np.ndarray:
        """Quadrature-exact capacitance (slow path, for verification)."""
        w0 = self.plate.center_deflection_m(pressure_pa)
        return self.capacitor.capacitance_f(w0)

    def deflection_m(self, pressure_pa: np.ndarray | float) -> np.ndarray:
        """Center deflection for applied pressure (positive = toward poly)."""
        return self.plate.center_deflection_m(pressure_pa)

    def pressure_sensitivity_f_per_pa(self, pressure_pa: float = 0.0) -> float:
        """dC/dP at an operating point [F/Pa]."""
        return float(self._fit.deriv()(float(pressure_pa)))

    def linearity_error(
        self, pressure_pa: np.ndarray | float, reference_point_pa: float = 0.0
    ) -> np.ndarray:
        """Deviation of C(P) from its tangent at the reference point.

        Expressed as a fraction of the rest capacitance; the benchmark for
        the membrane transfer (FIG2/MEM in DESIGN.md) reports this.
        """
        pressure = np.atleast_1d(np.asarray(pressure_pa, dtype=float))
        c = self.capacitance_f(pressure)
        c_ref = float(self._fit(reference_point_pa))
        slope = self.pressure_sensitivity_f_per_pa(reference_point_pa)
        tangent = c_ref + slope * (pressure - reference_point_pa)
        return (c - tangent) / self.rest_capacitance_f

    def describe(self) -> str:
        """Human-readable summary used by the quickstart example."""
        sens = self.pressure_sensitivity_f_per_pa(0.0)
        lines = [
            "MembraneSensor",
            f"  side / thickness : {self.params.side_m * 1e6:.0f} um / "
            f"{self.params.thickness_m * 1e6:.1f} um",
            f"  gap              : {self.params.gap_m * 1e9:.0f} nm",
            f"  rest capacitance : {self.rest_capacitance_f * 1e15:.1f} fF",
            f"  sensitivity      : {sens * 1e18:.3f} aF/Pa at P = 0",
            f"  operating range  : +/-{self._p_max / 1e3:.1f} kPa (fast path)",
            f"  full scale       : {self._p_touchdown / 1e3:.1f} kPa (touch-down guard)",
            f"  resonance        : {self.plate.resonance_frequency_hz() / 1e3:.0f} kHz",
        ]
        return "\n".join(lines)
