"""Clamped square plate under uniform pressure, with residual stress.

A single-mode Galerkin (Ritz) solution for the released membrane of
Sec. 2.1. The deflection is assumed separable,

    w(x, y) = w0 * phi(x/a) * phi(y/a),   phi(xi) = cos^2(pi * xi),

which satisfies the clamped boundary conditions w = dw/dn = 0 on all four
edges of the side-``a`` square. Minimizing the total potential energy
(bending + residual-tension + average-strain stretching - pressure work)
over the modal amplitude ``w0`` gives a cubic equilibrium equation

    k1 * w0 + k3 * w0^3 = P * a^2 * I_V,

with

    k1 = D * I_B / a^2 + N0 * I_T          (linear: bending + tension)
    k3 = E_eff * h * I_T^2 / (8 (1-nu) a^2)  (nonlinear stretching)

and mode integrals I_B = 2 pi^4, I_T = 3 pi^2 / 8, I_V = 1/4 (derived in
closed form for the cos^2 mode). In the pure-plate limit this reproduces
the textbook center deflection w0 = 0.00128 * P a^4 / D versus the exact
series value 0.00126 — within 2 %, ample for a transducer behavioural
model.

The cubic has a unique real root for k1 > 0 (tension-stiffened or stress-
free plates); it is solved in closed form (Cardano) and fully vectorized
over pressure arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .laminate import Laminate

# Mode integrals of phi(xi) = cos^2(pi xi) on [-1/2, 1/2] (see module doc).
MODE_I_BENDING = 2.0 * math.pi**4
MODE_I_TENSION = 3.0 * math.pi**2 / 8.0
MODE_I_VOLUME = 0.25
#: Square of the L2 norm of the 2-D mode, used for modal mass.
MODE_I_MASS = (3.0 / 8.0) ** 2


def mode_shape(xi: np.ndarray) -> np.ndarray:
    """Normalized 1-D clamped mode phi(xi) = cos^2(pi xi), xi in [-1/2, 1/2].

    Values outside the membrane are clipped to zero.
    """
    xi = np.asarray(xi, dtype=float)
    inside = np.abs(xi) <= 0.5
    phi = np.where(inside, np.cos(np.pi * xi) ** 2, 0.0)
    return phi


@dataclass(frozen=True)
class PlateSolution:
    """Result of a plate solve: modal amplitude and derived quantities."""

    pressure_pa: np.ndarray
    center_deflection_m: np.ndarray
    #: Fraction of the restoring force carried by the nonlinear stretching
    #: term at equilibrium (0 = fully linear regime).
    nonlinearity_fraction: np.ndarray

    def __iter__(self):
        # Allow ``w0, nl = solution`` style unpacking in older call sites.
        yield self.center_deflection_m
        yield self.nonlinearity_fraction


class ClampedSquarePlate:
    """Load-deflection model of a clamped, stress-stiffened square plate.

    Parameters
    ----------
    side_m:
        Side length ``a`` of the square membrane.
    laminate:
        Film stack providing D, N0, E_eff, nu_eff, h.
    residual_force_override_n_per_m:
        If given, replaces the laminate's own residual membrane force N0.
        The paper-level API uses this to impose the measured net stress.
    """

    def __init__(
        self,
        side_m: float,
        laminate: Laminate,
        residual_force_override_n_per_m: float | None = None,
    ):
        if side_m <= 0:
            raise ConfigurationError("plate side length must be positive")
        self.side_m = float(side_m)
        self.laminate = laminate

        d = laminate.flexural_rigidity_nm
        n0 = (
            laminate.membrane_force_n_per_m
            if residual_force_override_n_per_m is None
            else float(residual_force_override_n_per_m)
        )
        h = laminate.thickness_m
        e_eff = laminate.effective_youngs_modulus_pa
        nu_eff = laminate.effective_poisson_ratio

        a = self.side_m
        self._k1 = d * MODE_I_BENDING / a**2 + n0 * MODE_I_TENSION
        self._k3 = e_eff * h * MODE_I_TENSION**2 / (8.0 * (1.0 - nu_eff) * a**2)
        self._load_coeff = a**2 * MODE_I_VOLUME
        self._n0 = n0

        if self._k1 <= 0.0:
            raise ConfigurationError(
                "plate is buckled: residual compressive force "
                f"N0 = {n0:.3f} N/m overwhelms the bending stiffness "
                f"(k1 = {self._k1:.3e} N/m)"
            )

    # -- small-signal properties ----------------------------------------

    @property
    def linear_stiffness_n_per_m(self) -> float:
        """Modal stiffness k1: restoring force per unit w0 at small load."""
        return self._k1

    @property
    def linear_compliance_m_per_pa(self) -> float:
        """Small-signal center deflection per unit pressure, dw0/dP at 0."""
        return self._load_coeff / self._k1

    @property
    def residual_force_n_per_m(self) -> float:
        return self._n0

    def resonance_frequency_hz(self) -> float:
        """Fundamental resonance from modal stiffness and modal mass.

        The mode's effective mass is ``rho_A * a^2 * ||phi||^2``; well above
        the <1 kHz pressure band of interest, so the quasi-static model used
        everywhere else is justified (a test asserts this separation).
        """
        modal_mass = self.laminate.areal_mass_kg_m2 * self.side_m**2 * MODE_I_MASS
        return math.sqrt(self._k1 / modal_mass) / (2.0 * math.pi)

    # -- load-deflection --------------------------------------------------

    def solve(self, pressure_pa: np.ndarray | float) -> PlateSolution:
        """Center deflection for uniform pressure (vectorized, signed).

        Positive pressure deflects the membrane in +w; the cubic is odd, so
        negative pressures produce the mirrored deflection.
        """
        pressure = np.atleast_1d(np.asarray(pressure_pa, dtype=float))
        rhs = self._load_coeff * pressure
        w0 = _solve_stiffening_cubic(self._k1, self._k3, rhs)
        linear_force = self._k1 * np.abs(w0)
        cubic_force = self._k3 * np.abs(w0) ** 3
        total = linear_force + cubic_force
        with np.errstate(invalid="ignore", divide="ignore"):
            nonlin = np.where(total > 0.0, cubic_force / total, 0.0)
        return PlateSolution(
            pressure_pa=pressure,
            center_deflection_m=w0,
            nonlinearity_fraction=nonlin,
        )

    def center_deflection_m(self, pressure_pa: np.ndarray | float) -> np.ndarray:
        """Convenience wrapper returning only w0 (vectorized)."""
        return self.solve(pressure_pa).center_deflection_m

    def deflection_profile_m(
        self,
        pressure_pa: float,
        x_m: np.ndarray,
        y_m: np.ndarray,
    ) -> np.ndarray:
        """Full deflection field w(x, y) at one pressure.

        Coordinates are measured from the membrane center; broadcasting
        rules of numpy apply to ``x_m``/``y_m``.
        """
        w0 = float(self.center_deflection_m(pressure_pa)[0])
        xi = np.asarray(x_m, dtype=float) / self.side_m
        eta = np.asarray(y_m, dtype=float) / self.side_m
        return w0 * mode_shape(xi) * mode_shape(eta)

    def pressure_for_deflection_pa(self, w0_m: np.ndarray | float) -> np.ndarray:
        """Inverse transfer: pressure producing a given center deflection."""
        w0 = np.atleast_1d(np.asarray(w0_m, dtype=float))
        return (self._k1 * w0 + self._k3 * w0**3) / self._load_coeff


def _solve_stiffening_cubic(
    k1: float, k3: float, rhs: np.ndarray
) -> np.ndarray:
    """Unique real root of k3*w^3 + k1*w = rhs, vectorized over rhs.

    For k1 > 0 and k3 >= 0 the left side is strictly increasing, so exactly
    one real real root exists. With k3 == 0 this degenerates to the linear
    solution; otherwise the hyperbolic closed form for the depressed cubic
    t^3 + p t + q = 0 with p > 0,

        t = -2 sqrt(p/3) * sinh( (1/3) asinh( (3q)/(2p) sqrt(3/p) ) ),

    which — unlike Cardano's radical form — has no catastrophic
    cancellation when the root is small compared to sqrt(p). One Newton
    step polishes the result to full double precision.
    """
    rhs = np.asarray(rhs, dtype=float)
    if k3 <= 0.0:
        return rhs / k1
    p = k1 / k3
    if not np.isfinite(p) or p > 1e300:
        # Cubic term numerically negligible against the linear one.
        return rhs / k1
    q = -rhs / k3
    # Compute q/p first: q and p can individually overflow-scale like
    # 1/k3 while their ratio stays O(rhs/k1).
    arg = 1.5 * (q / p) * np.sqrt(3.0 / p)
    w = -2.0 * np.sqrt(p / 3.0) * np.sinh(np.arcsinh(arg) / 3.0)
    # Newton polish on f(w) = k3 w^3 + k1 w - rhs.
    f = k3 * w**3 + k1 * w - rhs
    df = 3.0 * k3 * w**2 + k1
    return w - f / df
