"""Gateway wire protocol: a DLE/ACK control plane over the framed data.

A device connection carries two interleaved planes on one TCP stream:

* **Data plane** — the existing USB frame format
  (:mod:`repro.daq.usb`): ``A5 5A | seq u16 | element u16 | count u8 |
  count * i16 | crc16``. The gateway passes these bytes verbatim to a
  per-connection :class:`~repro.daq.usb.FrameDecoder`.
* **Control plane** — small ESC-led frames plus a bare DLE heartbeat
  byte, modelled on serial device links (the D-PPG Vasoquant reader's
  printer-emulation mode): the device polls with DLE, the host answers
  with a cumulative ACK.

Control messages (little-endian, CRC-16/CCITT-FALSE over everything
before the CRC itself):

======== ======================================== ===== ===============
message  layout                                   bytes direction
======== ======================================== ===== ===============
HELLO    ``1B 'H' | device_id u32 | flags u8``    10    device -> gw
ACK      ``1B 'A' | flags u8 | last_acked u16``   8     gw -> device
BYE      ``1B 'B' | frames u32 | faults u32``     12    device -> gw
DLE      ``10`` (single byte, no CRC)             1     both
======== ======================================== ===== ===============

HELLO ``flags`` bit 0 set means *resume*: the device will replay its
unacknowledged frames after reading the gateway's ACK, and the gateway
must keep its sequence expectation. A fresh HELLO (bit clear) resets
the expectation to sequence 0. ACK ``flags`` bit 0 set means
``last_acked`` is valid (clear while nothing arrived yet);
``last_acked`` is the highest *in-order* data-frame sequence received.
BYE carries the device's lifetime framed-frame count and the number of
fault events it injected on the link (zero on a real device; the chaos
harness uses it to close the books), which lets the gateway reconcile
frame conservation end-to-end.

Control frames only ever sit *between* data frames. Corruption can
still break that alignment, so :class:`ControlDemux` treats any byte
that fails its plane's checks as data-plane garbage — the frame
decoder's resync scan counts and skips it. Both planes are therefore
self-healing under arbitrary byte corruption; nothing is silently
dropped.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from ..daq.usb import SYNC, crc16_ccitt
from ..errors import ConfigurationError, FramingError

#: Heartbeat byte (Data Link Escape), sent bare at ~1 Hz by devices.
DLE = 0x10
#: Escape byte opening every control frame.
ESC = 0x1B

OP_HELLO = ord("H")
OP_ACK = ord("A")
OP_BYE = ord("B")

_HELLO = struct.Struct("<BBIB")  # ESC 'H' device_id flags
_ACK = struct.Struct("<BBBH")  # ESC 'A' flags last_acked
_BYE = struct.Struct("<BBII")  # ESC 'B' frames faults
_CRC = struct.Struct("<H")

#: Control frame total sizes (body + CRC), keyed by op byte.
CONTROL_SIZES = {
    OP_HELLO: _HELLO.size + _CRC.size,
    OP_ACK: _ACK.size + _CRC.size,
    OP_BYE: _BYE.size + _CRC.size,
}

#: HELLO flag: device resumes an interrupted stream (replay after ACK).
FLAG_RESUME = 0x01
#: ACK flag: the ``last_acked`` field is valid.
FLAG_ACKED = 0x01

#: Data-plane frame overhead (header + CRC) around ``2 * count`` bytes.
DATA_HEADER = 9
#: Largest possible data frame (count = 255).
MAX_DATA_FRAME = DATA_HEADER + 2 * 255


@dataclass(frozen=True)
class ControlEvent:
    """One decoded control-plane message."""

    kind: str  # "heartbeat" | "hello" | "ack" | "bye"
    device_id: int = 0
    resume: bool = False
    last_acked: int | None = None
    frames_framed: int = 0
    faults_injected: int = 0


def _sealed(body: bytes) -> bytes:
    return body + _CRC.pack(crc16_ccitt(body))


def pack_hello(device_id: int, resume: bool = False) -> bytes:
    """HELLO: opens (or resumes) a device stream."""
    if not 0 <= device_id <= 0xFFFFFFFF:
        raise ConfigurationError("device id must fit u32")
    flags = FLAG_RESUME if resume else 0
    return _sealed(_HELLO.pack(ESC, OP_HELLO, device_id, flags))


def pack_ack(last_acked: int | None) -> bytes:
    """ACK: cumulative in-order receipt, ``None`` = nothing yet."""
    if last_acked is None:
        return _sealed(_ACK.pack(ESC, OP_ACK, 0, 0))
    if not 0 <= last_acked <= 0xFFFF:
        raise ConfigurationError("acked sequence must fit u16")
    return _sealed(_ACK.pack(ESC, OP_ACK, FLAG_ACKED, last_acked))


def pack_bye(frames_framed: int, faults_injected: int = 0) -> bytes:
    """BYE: clean end of stream with the device's conservation counts."""
    if frames_framed < 0 or faults_injected < 0:
        raise ConfigurationError("BYE counters must be >= 0")
    return _sealed(
        _BYE.pack(
            ESC, OP_BYE, frames_framed & 0xFFFFFFFF,
            faults_injected & 0xFFFFFFFF,
        )
    )


def heartbeat() -> bytes:
    """The bare DLE poll byte."""
    return bytes([DLE])


def _unpack_control(op: int, blob: bytes) -> ControlEvent:
    if op == OP_HELLO:
        _, _, device_id, flags = _HELLO.unpack_from(blob)
        return ControlEvent(
            "hello", device_id=device_id, resume=bool(flags & FLAG_RESUME)
        )
    if op == OP_ACK:
        _, _, flags, last = _ACK.unpack_from(blob)
        return ControlEvent(
            "ack", last_acked=last if flags & FLAG_ACKED else None
        )
    _, _, frames, faults = _BYE.unpack_from(blob)
    return ControlEvent("bye", frames_framed=frames, faults_injected=faults)


#: Minimum frames in a candidate run before the vectorized scan beats
#: the scalar walk (NumPy call overhead vs ~1 us per scalar frame).
_RUN_MIN = 16


def _data_run_end(buf: bytearray, pos: int, n: int, total: int) -> int:
    """End offset of the run of back-to-back ``total``-byte data frames.

    The scalar demux walk costs one Python iteration plus a slice copy
    per data frame; on the hot path (a chunk of uniform frames from one
    encoder) the whole chunk is a single run, so the per-frame checks
    — sync word and an equal count byte every ``total`` bytes — can be
    one strided NumPy comparison and the copy-out one slice. The checks
    are exactly the scalar walk's, so the first irregular candidate
    ends the run and the scalar walk resumes from its offset. Always
    returns at least ``pos + total`` (the caller already validated the
    first frame's claim).
    """
    k = (n - pos) // total
    if k < _RUN_MIN:
        return pos + total
    arr = np.frombuffer(
        memoryview(buf)[pos : pos + k * total], dtype=np.uint8
    ).reshape(k, total)
    ok = (
        (arr[:, 0] == SYNC[0])
        & (arr[:, 1] == SYNC[1])
        & (arr[:, 6] == buf[pos + 6])
    )
    bad = np.flatnonzero(~ok)
    run = k if bad.size == 0 else int(bad[0])
    # The view into ``buf`` dies with ``arr`` at return, so the caller's
    # later ``del buf[:pos]`` never sees a live buffer export.
    return pos + max(run, 1) * total


class ControlDemux:
    """Split one interleaved connection stream into its two planes.

    Feed arbitrary byte chunks; each call returns ``(data_bytes,
    control_events)``. Data frames are passed through by their claimed
    length *without* CRC validation (the frame decoder owns that);
    control frames are CRC-checked here and, on failure, leak into the
    data plane one byte at a time where the decoder's resync scan
    accounts for them. The internal buffer is bounded by the largest
    claimable data frame, so a malicious or corrupted peer cannot grow
    gateway memory.
    """

    def __init__(self):
        self._buffer = bytearray()
        #: Bare DLE heartbeats seen.
        self.heartbeats = 0
        #: Valid control frames decoded.
        self.control_frames = 0
        #: ESC-led candidates rejected by CRC (bytes went to data plane).
        self.control_crc_errors = 0

    @property
    def buffered(self) -> int:
        """Bytes held while waiting for a split frame (bounded)."""
        return len(self._buffer)

    def feed(self, data: bytes) -> tuple[bytes, list[ControlEvent]]:
        if not data:
            return b"", []
        self._buffer += data
        buf = self._buffer
        out = bytearray()
        events: list[ControlEvent] = []
        pos, n = 0, len(buf)
        while pos < n:
            byte = buf[pos]
            if byte == DLE:
                events.append(ControlEvent("heartbeat"))
                self.heartbeats += 1
                pos += 1
            elif byte == ESC:
                if n - pos < 2:
                    break  # op byte split across feeds
                size = CONTROL_SIZES.get(buf[pos + 1])
                if size is None:
                    out.append(byte)  # junk ESC: data-plane garbage
                    pos += 1
                    continue
                if n - pos < size:
                    break  # wait for the rest of the control frame
                blob = bytes(buf[pos : pos + size])
                (crc_rx,) = _CRC.unpack_from(blob, size - _CRC.size)
                if crc16_ccitt(blob[: -_CRC.size]) != crc_rx:
                    self.control_crc_errors += 1
                    out.append(byte)
                    pos += 1
                    continue
                events.append(_unpack_control(blob[1], blob))
                self.control_frames += 1
                pos += size
            elif byte == SYNC[0]:
                if n - pos < 2:
                    break  # possible split sync word
                if buf[pos + 1] != SYNC[1]:
                    out.append(byte)
                    pos += 1
                    continue
                if n - pos < 7:
                    break  # wait for the count byte
                total = DATA_HEADER + 2 * buf[pos + 6]
                if n - pos < total:
                    break  # wait for the claimed frame
                end = _data_run_end(buf, pos, n, total)
                out += buf[pos:end]
                pos = end
            else:
                out.append(byte)
                pos += 1
        del buf[:pos]
        return bytes(out), events

    def drain(self) -> bytes:
        """End of stream: surrender any split-frame tail as data bytes.

        The decoder's ``finalize`` then accounts for whatever the tail
        held; nothing buffered is ever silently discarded.
        """
        rest = bytes(self._buffer)
        self._buffer.clear()
        return rest


def split_frames(payload: bytes) -> list[bytes]:
    """Split a well-formed encoder payload into individual data frames.

    The payload must be a concatenation of intact frames (what
    :class:`~repro.daq.usb.FrameEncoder` emits); raises
    :class:`~repro.errors.FramingError` on trailing or misaligned bytes.
    """
    frames: list[bytes] = []
    pos, n = 0, len(payload)
    while pos < n:
        if n - pos < DATA_HEADER or payload[pos : pos + 2] != SYNC:
            raise FramingError("payload is not a clean frame concatenation")
        total = DATA_HEADER + 2 * payload[pos + 6]
        if n - pos < total:
            raise FramingError("payload ends inside a frame")
        frames.append(payload[pos : pos + total])
        pos += total
    return frames


def frame_sequence(frame: bytes) -> int:
    """Sequence number of one intact data frame."""
    if len(frame) < DATA_HEADER or frame[:2] != SYNC:
        raise FramingError("not a data frame")
    return frame[2] | (frame[3] << 8)
