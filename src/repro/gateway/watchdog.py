"""Connection liveness: the DLE/ACK watchdog state machine.

Modelled on serial device protocols (the Vasoquant reader drops into a
watchdog mode after ~5 s without its TST:CHECK poll): any traffic on a
connection — data bytes or a bare DLE heartbeat — counts as a beat, and
growing silence walks the connection down a one-way ramp::

    HEALTHY --degraded_after_s--> DEGRADED --reconnecting_after_s-->
        RECONNECTING --dead_after_s--> DEAD

*DEGRADED* keeps the socket: the gateway probes with a DLE and fresh
traffic recovers the connection to HEALTHY on its own. *RECONNECTING*
abandons the socket but keeps all per-device state (decoder
expectation, stream, telemetry) so the device can resume from its last
acknowledged sequence. *DEAD* is terminal for the state machine; only
an explicit :meth:`Watchdog.revive` (a completed resume handshake)
restores a not-yet-dead connection to HEALTHY.

The clock is injectable, so every transition is unit-testable without
sleeping.
"""

from __future__ import annotations

import time
from enum import Enum
from typing import Callable

from ..errors import ConfigurationError


class ConnectionState(Enum):
    """Liveness of one device connection."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    RECONNECTING = "reconnecting"
    DEAD = "dead"


#: Ramp order, for monotonicity checks.
_RAMP = (
    ConnectionState.HEALTHY,
    ConnectionState.DEGRADED,
    ConnectionState.RECONNECTING,
    ConnectionState.DEAD,
)


class Watchdog:
    """Silence-driven state machine for one device connection.

    Parameters
    ----------
    degraded_after_s:
        Silence after which a HEALTHY connection is DEGRADED (the
        gateway starts probing with DLE).
    reconnecting_after_s:
        Silence after which the socket is abandoned (state kept).
    dead_after_s:
        Silence after which the connection is declared DEAD.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        degraded_after_s: float = 2.0,
        reconnecting_after_s: float = 5.0,
        dead_after_s: float = 15.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not 0 < degraded_after_s < reconnecting_after_s < dead_after_s:
            raise ConfigurationError(
                "watchdog thresholds must satisfy 0 < degraded < "
                "reconnecting < dead"
            )
        self.degraded_after_s = float(degraded_after_s)
        self.reconnecting_after_s = float(reconnecting_after_s)
        self.dead_after_s = float(dead_after_s)
        self._clock = clock
        self._last_beat = clock()
        self.state = ConnectionState.HEALTHY
        #: HEALTHY -> DEGRADED transitions (the "watchdog tripped" count).
        self.trips = 0
        #: Recoveries back to HEALTHY (traffic resumed or resume handshake).
        self.revivals = 0

    @property
    def silence_s(self) -> float:
        """Seconds since the last beat."""
        return self._clock() - self._last_beat

    def beat(self) -> None:
        """Any traffic arrived: refresh liveness.

        A DEGRADED connection recovers to HEALTHY by itself — the
        socket never went away. RECONNECTING and DEAD need the explicit
        :meth:`revive` handshake (RECONNECTING has no socket to carry
        the beat; a beat there means a stray late read).
        """
        self._last_beat = self._clock()
        if self.state is ConnectionState.DEGRADED:
            self.state = ConnectionState.HEALTHY
            self.revivals += 1

    def check(self) -> ConnectionState:
        """Advance the state machine against the clock; return the state."""
        if self.state is ConnectionState.DEAD:
            return self.state
        silence = self.silence_s
        if silence >= self.dead_after_s:
            target = ConnectionState.DEAD
        elif silence >= self.reconnecting_after_s:
            target = ConnectionState.RECONNECTING
        elif silence >= self.degraded_after_s:
            target = ConnectionState.DEGRADED
        else:
            target = ConnectionState.HEALTHY
        # Silence only ever walks the ramp downward; recovery goes
        # through beat()/revive() so it is always an accounted event.
        if _RAMP.index(target) > _RAMP.index(self.state):
            if (
                self.state is ConnectionState.HEALTHY
                and target is not ConnectionState.HEALTHY
            ):
                self.trips += 1
            self.state = target
        return self.state

    def disconnected(self) -> None:
        """The socket dropped out from under us: straight to RECONNECTING."""
        if self.state in (
            ConnectionState.HEALTHY,
            ConnectionState.DEGRADED,
        ):
            if self.state is ConnectionState.HEALTHY:
                self.trips += 1
            self.state = ConnectionState.RECONNECTING

    def revive(self) -> bool:
        """A resume handshake completed; returns False if already DEAD."""
        if self.state is ConnectionState.DEAD:
            return False
        if self.state is not ConnectionState.HEALTHY:
            self.revivals += 1
        self.state = ConnectionState.HEALTHY
        self._last_beat = self._clock()
        return True
