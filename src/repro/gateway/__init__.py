"""Acquisition gateway: fault-tolerant multiplexing of device streams.

The gateway is the host-side service between many concurrently
streaming devices (each an FPGA + USB bridge speaking the
:mod:`repro.daq.usb` frame format over TCP) and the analysis pipeline.
Its contract is *graceful degradation*: overload sheds counted chunks
instead of growing memory, silence walks a watchdog ramp instead of
hanging, disconnects resume from the last acknowledged sequence instead
of losing data, and every frame that does not make it into a decoded
stream is visible in telemetry — nothing fails silently.
"""

from .backoff import ExponentialBackoff
from .chaos import ChaosReport, run_chaos
from .client import (
    DeviceClient,
    DeviceReport,
    batch_chain_payloads,
    chain_payloads,
    expected_codes,
    synthetic_payloads,
)
from .connection import DeviceSession
from .protocol import (
    ControlDemux,
    ControlEvent,
    heartbeat,
    pack_ack,
    pack_bye,
    pack_hello,
)
from .server import GatewayServer
from .watchdog import ConnectionState, Watchdog

__all__ = [
    "ChaosReport",
    "ConnectionState",
    "ControlDemux",
    "ControlEvent",
    "DeviceClient",
    "DeviceReport",
    "DeviceSession",
    "ExponentialBackoff",
    "GatewayServer",
    "Watchdog",
    "batch_chain_payloads",
    "chain_payloads",
    "expected_codes",
    "heartbeat",
    "pack_ack",
    "pack_bye",
    "pack_hello",
    "run_chaos",
    "synthetic_payloads",
]
