"""Device simulator: a retrying, resuming gateway client.

:class:`DeviceClient` plays the role of one acquisition device (FPGA +
USB bridge) on the gateway's TCP wire: HELLO handshake, framed data
interleaved with DLE heartbeats, BYE with conservation counts. Its
robustness behaviours are the ones the tentpole demands:

* **Retry with exponential backoff + jitter**
  (:class:`~repro.gateway.backoff.ExponentialBackoff`) around every
  connect; a retry budget turns a dead gateway into a clean
  :class:`~repro.errors.GatewayError` instead of a hang.
* **Resume from last-acked sequence** — every transmitted frame stays
  in a bounded replay buffer until an ACK covers it; on reconnect the
  device sends ``HELLO(resume)``, reads the gateway's cumulative ACK,
  trims the buffer and replays only what the gateway never saw. Replay
  overlap is harmless: the gateway drops already-counted frames as
  *stale*, never double-ingesting.
* **Link fault injection** — an optional
  :class:`~repro.faults.FaultInjector` (usb-layer specs, bound via
  :meth:`~repro.faults.injector.FaultInjector.bind_link`) mangles the
  bytes *on the wire only*; the replay buffer holds the clean frames,
  so a retransmission models a link traversal that succeeded.

Payload sources are plain iterables of encoder output
(:func:`synthetic_payloads` for deterministic content the chaos harness
can verify bit-for-bit, :func:`chain_payloads` for the full physics
chain).
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

import numpy as np

from ..daq.usb import FrameEncoder
from ..errors import ConfigurationError, GatewayError
from .backoff import ExponentialBackoff
from .protocol import (
    ControlDemux,
    frame_sequence,
    heartbeat,
    pack_bye,
    pack_hello,
    split_frames,
)

#: Forward-window test: is ``seq`` strictly after ``acked`` (mod 2^16)?
def _after(seq: int, acked: int) -> bool:
    return 0 < (seq - acked) % 0x10000 < 0x8000


# -- payload sources ---------------------------------------------------------


def expected_codes(
    n_frames: int, samples_per_frame: int = 64
) -> np.ndarray:
    """The exact int16 codes :func:`synthetic_payloads` frames carry.

    Content is a deterministic function of absolute sample index, so a
    receiver can verify *values*, not just counts: any corruption that
    slipped past the CRC and sequence accounting would show up as a
    mismatch at a known position.
    """
    n = n_frames * samples_per_frame
    return ((np.arange(n) % 4096) - 2048).astype(np.int16)


def synthetic_payloads(
    n_frames: int, samples_per_frame: int = 64, element: int = 0
) -> Iterator[bytes]:
    """Framed payloads (one frame each) with index-derived sample values.

    A fresh :class:`~repro.daq.usb.FrameEncoder` numbers the frames from
    sequence 0, matching the gateway's fresh-HELLO expectation.
    """
    if n_frames < 0:
        raise ConfigurationError("frame count must be >= 0")
    encoder = FrameEncoder(samples_per_frame=samples_per_frame)
    codes = expected_codes(n_frames, samples_per_frame)
    for k in range(n_frames):
        yield encoder.push(
            codes[k * samples_per_frame : (k + 1) * samples_per_frame],
            element,
        )


def chain_payloads(
    chain, field: np.ndarray, element: int = 0, chunk: int = 4096
) -> Iterator[bytes]:
    """Framed payloads from a full physics chain run over a pressure field.

    Streams ``field`` (n_samples, n_elements) through the chain's chip
    and FPGA in ``chunk``-row slices, yielding each slice's framed
    output; the final flush payload closes the stream. The chain's
    encoder keeps numbering across sessions exactly as on hardware.
    """
    field = np.asarray(field, dtype=float)
    if field.ndim != 2:
        raise ConfigurationError("expected (n_samples, n_elements) field")
    chain.chip.select_element(element)
    chain.fpga.select_element(element)
    for start in range(0, field.shape[0], chunk):
        mod_out = chain.chip.acquire_pressure(field[start : start + chunk])
        payload = chain.fpga.process(mod_out.bitstream.astype(np.int64))
        if payload:
            yield payload
    tail = chain.fpga.flush()
    if tail:
        yield tail


def batch_chain_payloads(
    chains, fields, element: int = 0, chunk: int = 4096
) -> list[list[bytes]]:
    """Per-device framed payload lists for a whole fleet, in one pass.

    The fleet-scale sibling of :func:`chain_payloads`: runs ``B``
    chains' pressure fields through one
    :class:`~repro.batch.session.BatchAcquisitionSession` (the fused
    batch kernel) and frames each lane's delivered words with that
    lane's own :class:`~repro.daq.usb.FrameEncoder`. The concatenated
    bytes per device are bit-identical to ``B`` independent
    :func:`chain_payloads` runs — same words, same element tags, same
    sequence numbers — at batched throughput, so a many-device gateway
    scenario no longer pays ``B`` single-chain simulations.

    Returns one payload list per chain, in chain order; feed each list
    to its own :class:`DeviceClient`.
    """
    from ..batch import BatchAcquisitionSession

    fields = [np.asarray(f, dtype=float) for f in fields]
    if len(fields) != len(chains):
        raise ConfigurationError(
            f"need one pressure field per chain, got {len(fields)} "
            f"field(s) for {len(chains)} chain(s)"
        )
    session = BatchAcquisitionSession(chains, element=element)
    payload_lists: list[list[bytes]] = [[] for _ in chains]
    n = fields[0].shape[0]
    for start in range(0, n, chunk):
        delivered = session.feed_pressure(
            [f[start : start + chunk] for f in fields]
        )
        for lane, c in enumerate(chains):
            payload = c.fpga.encoder.push(delivered[lane], element)
            if payload:
                payload_lists[lane].append(payload)
    session.finish()
    for lane, c in enumerate(chains):
        tail = c.fpga.encoder.flush()
        if tail:
            payload_lists[lane].append(tail)
    return payload_lists


# -- the client --------------------------------------------------------------


@dataclass
class DeviceReport:
    """What one device run did — the client-side half of the audit."""

    device_id: int = 0
    frames_sent: int = 0
    bytes_sent: int = 0
    payloads: int = 0
    heartbeats_sent: int = 0
    acks_received: int = 0
    reconnects: int = 0
    retries: int = 0
    forced_drops: int = 0
    frames_replayed: int = 0
    replay_evictions: int = 0
    faults_injected: int = 0
    bye_sent: bool = False
    backoff_slept_s: float = field(default=0.0)


class DeviceClient:
    """One simulated device streaming to a :class:`GatewayServer`.

    Parameters
    ----------
    host / port:
        The gateway's data endpoint.
    device_id:
        This device's u32 identity (its session key at the gateway).
    payloads:
        Iterable of framed encoder payloads to transmit, in order.
    faults:
        Optional usb-layer :class:`~repro.faults.FaultInjector`; bound
        with :meth:`~repro.faults.injector.FaultInjector.bind_link` at
        ``fault_frame_rate_hz`` and applied to the wire bytes only.
    fault_frame_rate_hz:
        Nominal frame rate used to map fault-event times onto frame
        indices (the schedule's time axis, not a pacing constraint).
    backoff:
        Retry pacing; defaults to a fast, seeded schedule.
    max_retries:
        Consecutive failed connects tolerated before
        :class:`~repro.errors.GatewayError`.
    heartbeat_s:
        Idle interval after which a DLE poll is interleaved (also the
        ACK solicitation that trims the replay buffer).
    replay_limit:
        Replay-buffer bound in frames; overflow evicts the oldest frame
        (counted — an eviction is a frame retransmission can no longer
        cover).
    drop_every:
        Chaos knob: abort the TCP connection after every N payloads and
        reconnect with resume (``None`` = never).
    pace_s:
        Sleep between payloads (0 = as fast as the loop allows).
    coalesce_payloads:
        Accumulate this many payloads per TCP write+drain (1 = one
        write per payload, the legacy behaviour). The wire bytes,
        fault applications and replay bookkeeping are identical —
        only the syscall granularity changes, so a load generator can
        saturate the gateway instead of its own ``drain()`` round
        trips. Pacing and forced drops still flush at each payload.
    on_frame_sent:
        Latency probe ``(sequence, t_monotonic)`` called per transmitted
        frame (replays included).
    """

    def __init__(
        self,
        host: str,
        port: int,
        device_id: int,
        payloads: Iterable[bytes],
        faults=None,
        fault_frame_rate_hz: float = 50.0,
        backoff: ExponentialBackoff | None = None,
        max_retries: int = 8,
        heartbeat_s: float = 0.5,
        replay_limit: int = 512,
        drop_every: int | None = None,
        pace_s: float = 0.0,
        coalesce_payloads: int = 1,
        on_frame_sent: Callable[[int, float], None] | None = None,
        clock=time.monotonic,
    ):
        if max_retries < 1:
            raise ConfigurationError("retry budget must be >= 1")
        if replay_limit < 1:
            raise ConfigurationError("replay buffer needs >= 1 slot")
        if drop_every is not None and drop_every < 1:
            raise ConfigurationError("drop_every must be >= 1 payload")
        if coalesce_payloads < 1:
            raise ConfigurationError("coalesce_payloads must be >= 1")
        self.host = host
        self.port = int(port)
        self.device_id = int(device_id)
        self.payloads = payloads
        self.faults = faults
        if faults is not None:
            faults.bind_link(fault_frame_rate_hz)
        self.backoff = backoff or ExponentialBackoff(
            initial_s=0.02, cap_s=1.0, rng=device_id
        )
        self.max_retries = int(max_retries)
        self.heartbeat_s = float(heartbeat_s)
        self.replay_limit = int(replay_limit)
        self.drop_every = drop_every
        self.pace_s = float(pace_s)
        self.coalesce_payloads = int(coalesce_payloads)
        self.on_frame_sent = on_frame_sent
        self._clock = clock
        self.report = DeviceReport(device_id=self.device_id)
        self._prepared: list[tuple[bytes, list[bytes]]] | None = None
        self._replay: OrderedDict[int, bytes] = OrderedDict()
        self._reader_task: asyncio.Task | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._rx = ControlDemux()
        self._last_hb = 0.0

    # -- lifecycle -----------------------------------------------------------

    def prepare(self) -> None:
        """Materialize every payload's wire bytes (faults applied) now.

        Load-generation front-loading for benchmarks: frame encoding
        and fault mangling happen here, outside the measured window, so
        :meth:`run` spends its wall time on transport and protocol
        only. The bytes sent are identical to an unprepared run —
        replay buffering and latency stamps still happen at send time.
        """
        if self._prepared is not None:
            raise GatewayError("client already prepared")
        self._prepared = list(self._payload_stream())

    def _payload_stream(
        self,
    ) -> Iterator[tuple[bytes, list[bytes], list[int]]]:
        """(wire_bytes, clean_frames, sequences) per payload."""
        if self._prepared is not None:
            yield from self._prepared
            return
        for payload in self.payloads:
            frames = split_frames(payload)
            seqs = [frame_sequence(f) for f in frames]
            if self.faults is not None:
                wire = self.faults.apply_payload(payload)
                self.report.faults_injected = self.faults.events_applied
            else:
                wire = payload
            yield wire, frames, seqs

    async def run(self) -> DeviceReport:
        """Stream every payload (reconnecting as needed), BYE, report."""
        await self._connect(resume=False)
        try:
            wire = bytearray()
            seqs: list[int] = []
            for index, (p_wire, p_frames, p_seqs) in enumerate(
                self._payload_stream()
            ):
                for seq, frame in zip(p_seqs, p_frames):
                    self._buffer_frame(seq, frame)
                seqs.extend(p_seqs)
                wire += p_wire
                self.report.payloads += 1
                forced = (
                    self.drop_every is not None
                    and (index + 1) % self.drop_every == 0
                )
                if (
                    forced
                    or self.pace_s
                    or (index + 1) % self.coalesce_payloads == 0
                ):
                    await self._send_group(bytes(wire), seqs)
                    wire = bytearray()
                    seqs = []
                if forced:
                    self.report.forced_drops += 1
                    await self._abort()
                    await self._connect(resume=True)
                if self.pace_s:
                    await asyncio.sleep(self.pace_s)
            if wire or seqs:
                await self._send_group(bytes(wire), seqs)
            await self._send_bye()
        finally:
            await self._close()
        return self.report

    async def _connect(self, resume: bool) -> None:
        """Dial + HELLO + ACK, under the backoff schedule."""
        while True:
            try:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port
                )
            except (ConnectionError, OSError):
                await self._retry_sleep()
                continue
            try:
                writer.write(pack_hello(self.device_id, resume=resume))
                await writer.drain()
                acked = await asyncio.wait_for(
                    self._await_ack(reader), timeout=5.0
                )
            except (
                ConnectionError,
                OSError,
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
            ):
                writer.close()
                await self._retry_sleep()
                continue
            break
        self.backoff.reset()
        self._writer = writer
        self._last_hb = self._clock()
        if resume:
            self.report.reconnects += 1
            self._trim(acked)
            await self._resend_unacked()
        self._reader_task = asyncio.create_task(self._read_acks(reader))

    async def _retry_sleep(self) -> None:
        if self.backoff.attempts + 1 >= self.max_retries:
            raise GatewayError(
                f"device {self.device_id}: gateway unreachable after "
                f"{self.backoff.attempts + 1} attempts"
            )
        delay = self.backoff.next_delay()
        self.report.retries += 1
        self.report.backoff_slept_s += delay
        await asyncio.sleep(delay)

    async def _await_ack(self, reader: asyncio.StreamReader) -> int | None:
        """Read until the handshake ACK arrives; returns ``last_acked``."""
        while True:
            data = await reader.read(1024)
            if not data:
                raise ConnectionResetError("gateway closed mid-handshake")
            _, events = self._rx.feed(data)
            for event in events:
                if event.kind == "ack":
                    self.report.acks_received += 1
                    return event.last_acked

    async def _read_acks(self, reader: asyncio.StreamReader) -> None:
        """Connection-lifetime reader: ACKs trim, DLE probes get answered."""
        try:
            while True:
                data = await reader.read(1024)
                if not data:
                    return
                _, events = self._rx.feed(data)
                for event in events:
                    if event.kind == "ack":
                        self.report.acks_received += 1
                        self._trim(event.last_acked)
                    elif event.kind == "heartbeat":
                        # Gateway liveness probe: traffic is the answer.
                        if self._writer is not None:
                            self._writer.write(heartbeat())
                            self.report.heartbeats_sent += 1
        except (ConnectionError, OSError, asyncio.CancelledError):
            return

    # -- transmission --------------------------------------------------------

    async def _send_group(self, wire: bytes, seqs: list[int]) -> None:
        """Put already-buffered (possibly mangled) bytes on the wire."""
        try:
            await self._write(wire, seqs)
        except (ConnectionError, OSError):
            # The replay buffer already holds these frames: reconnect-
            # and-resume retransmits whatever the gateway missed, so
            # nothing is silently lost here.
            await self._abort()
            await self._connect(resume=True)

    async def _write(self, wire: bytes, seqs: list[int]) -> None:
        writer = self._writer
        if writer is None:
            raise ConnectionResetError("no connection")
        if wire:
            writer.write(wire)
        now = self._clock()
        if now - self._last_hb >= self.heartbeat_s:
            writer.write(heartbeat())
            self.report.heartbeats_sent += 1
            self._last_hb = now
        await writer.drain()
        self.report.bytes_sent += len(wire)
        self.report.frames_sent += len(seqs)
        if self.on_frame_sent is not None:
            for seq in seqs:
                self.on_frame_sent(seq, now)

    def _buffer_frame(self, seq: int, frame: bytes) -> None:
        self._replay[seq] = frame
        while len(self._replay) > self.replay_limit:
            self._replay.popitem(last=False)
            self.report.replay_evictions += 1

    def _trim(self, last_acked: int | None) -> None:
        if last_acked is None:
            return
        for seq in [
            s for s in self._replay if not _after(s, last_acked)
        ]:
            del self._replay[seq]

    async def _resend_unacked(self) -> None:
        """Replay everything the gateway's ACK did not cover, in order."""
        if not self._replay or self._writer is None:
            return
        now = self._clock()
        for seq, frame in self._replay.items():
            self._writer.write(frame)
            self.report.frames_replayed += 1
            self.report.bytes_sent += len(frame)
            if self.on_frame_sent is not None:
                self.on_frame_sent(seq, now)
        await self._writer.drain()

    # -- teardown ------------------------------------------------------------

    async def _send_bye(self) -> None:
        """Clean close: lifetime conservation counts, then EOF."""
        writer = self._writer
        if writer is None:
            return
        faults = (
            self.faults.events_applied if self.faults is not None else 0
        )
        # ``frames_sent`` counts first transmissions only (replays are
        # tallied separately), so it is the device's lifetime framed count.
        writer.write(pack_bye(self.report.frames_sent, faults))
        await writer.drain()
        self.report.bye_sent = True

    async def _abort(self) -> None:
        """Drop the TCP connection on the floor (chaos / send failure)."""
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    async def _close(self) -> None:
        writer = self._writer
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        if writer is not None:
            self._writer = None
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
