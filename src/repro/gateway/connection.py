"""Per-device gateway state: demux -> decode -> ingest, with backpressure.

A :class:`DeviceSession` is the gateway-side half of one device's
acquisition and outlives any single TCP connection: a device that drops
and resumes re-attaches to the same session, so its decoder
expectation, sample stream and telemetry are continuous across
reconnects.

The ingest path is split in two so a slow pipeline can never stall the
event loop's reader, and a sick connection can never stall a healthy
one:

* the connection's reader calls :meth:`DeviceSession.demux` inline —
  O(bytes) splitting of control messages (handled immediately: a
  heartbeat must never queue behind data) from data bytes;
* data bytes go through a **bounded** queue (:meth:`offer`) to the
  session's worker, which runs :meth:`decode`. When the queue is full
  the chunk is **shed, counted, never silently**: ``chunks_shed`` /
  ``bytes_shed`` record the drop, and the sequence numbers of the
  frames inside the shed bytes surface downstream as explicit
  ``lost_frames`` gaps the moment the next surviving frame arrives.

Telemetry is the session's :class:`~repro.core.session.PipelineTelemetry`
restricted to the host-side stages; ``frames_framed`` arrives with the
device's BYE, which closes frame conservation end-to-end.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from ..core.session import PipelineTelemetry
from ..daq import batchdecode
from ..daq.stream import SampleStream
from ..daq.usb import FrameDecoder
from ..errors import ConfigurationError
from .protocol import ControlDemux, ControlEvent
from .watchdog import ConnectionState, Watchdog


class DeviceSession:
    """Gateway-side state for one device id (survives reconnects).

    Parameters
    ----------
    device_id:
        The u32 identity from the device's HELLO.
    queue_chunks:
        Ingest-queue depth in chunks; the explicit backpressure bound.
    watchdog:
        Liveness state machine (injectable for tests).
    output_rate_hz:
        Decimated word rate, for stream timestamps.
    samples_per_frame:
        Nominal full-frame payload size of the device link, forwarded
        to the :class:`~repro.daq.stream.SampleStream` so frame-loss
        gaps are booked as full frames even when the surviving frame
        after the loss is a chunk's short flush frame.
    clock:
        Monotonic time source for latency stamps.
    """

    def __init__(
        self,
        device_id: int,
        queue_chunks: int = 64,
        watchdog: Watchdog | None = None,
        output_rate_hz: float = 1000.0,
        samples_per_frame: int | None = None,
        clock=time.monotonic,
    ):
        if queue_chunks < 1:
            raise ConfigurationError("ingest queue needs >= 1 chunk slot")
        self.device_id = int(device_id)
        self._clock = clock
        self._demux = ControlDemux()
        self.decoder = FrameDecoder()
        self.stream = SampleStream(
            sample_rate_hz=output_rate_hz,
            samples_per_frame=samples_per_frame,
        )
        self.watchdog = watchdog or Watchdog()
        self.telemetry = PipelineTelemetry()
        self.queue: asyncio.Queue[bytes | None] = asyncio.Queue(
            maxsize=queue_chunks
        )
        #: Set whenever the ingest queue is empty — the event-driven
        #: drain signal (replaces the server's old polling sleep loop).
        #: Cleared by :meth:`offer`, set by whichever consumer (worker
        #: or batch plane) empties the queue.
        self.queue_empty = asyncio.Event()
        self.queue_empty.set()
        #: Optional per-frame hook ``(sequence, t_decoded_s)`` — the
        #: latency probe of the benchmark harness.
        self.frame_hook = None
        #: Frames the device framed but whose bytes never produced a
        #: decoded frame *or* a sequence-gap record: a tail loss right
        #: at the BYE boundary (last frame dropped or truncated by a
        #: fault, with no later frame whose sequence jump would reveal
        #: it). Booked into ``lost_frames`` when :meth:`finalize`
        #: closes the books against the BYE's lifetime count.
        self.tail_lost_frames = 0
        # Link counters.
        self.bytes_in = 0
        self.chunks_shed = 0
        self.bytes_shed = 0
        self.queue_depth_peak = 0
        self.acks_sent = 0
        self.reconnects = 0
        self.connections = 0
        #: Device-reported conservation counts (from BYE).
        self.bye_seen = False
        self.frames_reported = 0
        self.faults_reported = 0
        self.finalized = False

    # -- identity / liveness -------------------------------------------------

    @property
    def state(self) -> ConnectionState:
        return self.watchdog.state

    @property
    def last_acked(self) -> int | None:
        """Highest in-order sequence received (what ACK advertises)."""
        expected = self.decoder.expected_sequence
        if expected is None:
            return None
        return (expected - 1) % 0x10000

    def fresh_start(self) -> None:
        """Non-resume HELLO: the device begins a new stream at seq 0."""
        self.decoder.expect(0)
        self.stream.expect(0)

    # -- reader side ---------------------------------------------------------

    def demux(self, data: bytes) -> tuple[bytes, list[ControlEvent]]:
        """Split one socket read; any traffic beats the watchdog."""
        self.bytes_in += len(data)
        self.watchdog.beat()
        return self._demux.feed(data)

    def offer(self, chunk: bytes) -> bool:
        """Queue data bytes for the worker; shed (counted) when full."""
        if not chunk:
            return True
        try:
            self.queue.put_nowait(chunk)
        except asyncio.QueueFull:
            self.chunks_shed += 1
            self.bytes_shed += len(chunk)
            return False
        self.queue_empty.clear()
        self.queue_depth_peak = max(
            self.queue_depth_peak, self.queue.qsize()
        )
        return True

    def note_bye(self, event: ControlEvent) -> None:
        """Record the device's end-of-stream conservation counts."""
        self.bye_seen = True
        self.frames_reported = int(event.frames_framed)
        self.faults_reported = int(event.faults_injected)

    # -- worker side ---------------------------------------------------------

    def decode(self, chunk: bytes) -> int:
        """Decode + ingest one queued chunk; returns frames decoded."""
        tm = self.telemetry
        t0 = time.perf_counter()
        frames = self.decoder.feed(chunk)
        t1 = time.perf_counter()
        tm.add_stage_seconds("decode", t1 - t0)
        self.stream.ingest(frames)
        tm.add_stage_seconds("ingest", time.perf_counter() - t1)
        tm.chunks += 1
        tm.peak_chunk_bytes = max(tm.peak_chunk_bytes, len(chunk))
        if self.frame_hook is not None:
            now = self._clock()
            for frame in frames:
                self.frame_hook(frame.sequence, now)
        self._sync_counters()
        if self.queue.qsize() == 0:
            self.queue_empty.set()
        return len(frames)

    # -- batch-plane side ----------------------------------------------------

    def take_queued(self) -> list[bytes]:
        """Drain every queued chunk now (the batch plane's intake)."""
        chunks: list[bytes] = []
        while True:
            try:
                chunk = self.queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if chunk is not None:
                chunks.append(chunk)
        return chunks

    def stage_pending(self) -> batchdecode.Staged | None:
        """Drain the queue and scan the tiled prefix; ``None`` if idle.

        Chunk merging is exact: ``FrameDecoder.feed`` is chunk-boundary
        invariant (its buffer carries split frames across feeds), so
        decoding the concatenation of this tick's chunks produces the
        same frames, counters and buffer state as decoding them one by
        one — the property tests assert this bit-for-bit.
        """
        chunks = self.take_queued()
        if not chunks:
            self.queue_empty.set()
            return None
        tm = self.telemetry
        t0 = time.perf_counter()
        data = chunks[0] if len(chunks) == 1 else b"".join(chunks)
        staged = batchdecode.stage(self.decoder, data)
        tm.add_stage_seconds("decode", time.perf_counter() - t0)
        tm.chunks += len(chunks)
        tm.peak_chunk_bytes = max(
            tm.peak_chunk_bytes, max(len(c) for c in chunks)
        )
        return staged

    def commit_staged(self, staged: batchdecode.Staged) -> int:
        """Book one tick's CRC-checked candidates; returns frames."""
        tm = self.telemetry
        t0 = time.perf_counter()
        now = self._clock() if self.frame_hook is not None else 0.0
        frames = batchdecode.commit(
            self.decoder, staged, self.stream, self.frame_hook, now
        )
        tm.add_stage_seconds("ingest", time.perf_counter() - t0)
        self._sync_counters()
        if self.queue.qsize() == 0:
            self.queue_empty.set()
        return frames

    def finalize(self) -> None:
        """End of stream: drain the demux tail and the decoder.

        With a BYE in hand this also closes frame conservation exactly:
        any frames the device framed that neither arrived nor left a
        sequence gap (a fault ate the stream tail) are booked as
        ``tail_lost_frames`` — without this, every run whose last frame
        died ended with ``frames_unaccounted: 1``.

        Idempotent; called on BYE, on DEAD, and at server shutdown.
        """
        if self.finalized:
            return
        self.finalized = True
        tail = self._demux.drain()
        if tail:
            self.stream.ingest(self.decoder.feed(tail))
        self.stream.ingest(self.decoder.finalize())
        if self.bye_seen:
            missing = self.frames_reported - (
                self.decoder.frames_decoded + self.decoder.lost_frames
            )
            if missing > 0:
                # Not clamped to zero on the other side: if counters ever
                # over-booked, reconcile must still catch the negative.
                self.tail_lost_frames = missing
        self._sync_counters()

    def _sync_counters(self) -> None:
        tm = self.telemetry
        tm.frames_decoded = self.decoder.frames_decoded
        tm.lost_frames = self.decoder.lost_frames + self.tail_lost_frames
        tm.crc_errors = self.decoder.crc_errors
        tm.stale_frames = self.decoder.stale_frames
        tm.resync_bytes = self.decoder.resync_bytes
        tm.words_delivered = self.stream.samples_ingested

    # -- accounting ----------------------------------------------------------

    def telemetry_view(self) -> PipelineTelemetry:
        """Telemetry with frame conservation closed against the BYE.

        With a BYE, ``frames_framed`` is the device's own lifetime count
        and ``frames_unaccounted`` is exact. Without one (device died),
        the device-side total is unknown; the view closes the books at
        what the sequence numbers proved (``decoded + lost``), so the
        per-session identities still reconcile.
        """
        tm = self.telemetry
        if self.bye_seen:
            tm.frames_framed = self.frames_reported
        else:
            tm.frames_framed = tm.frames_decoded + tm.lost_frames
        tm.faults_injected = self.faults_reported
        return tm

    def reconcile(self) -> None:
        """Assert this session's counters agree (the telemetry gate).

        Frame conservation is the gateway's identity; the word-level
        (``lossless``) identity needs device-side filter counters the
        wire does not carry, so it is skipped here.
        """
        view = self.telemetry_view()
        view.reconcile(
            lossless=False,
            allow_unaccounted=(
                self.faults_reported > 0 or self.chunks_shed > 0
            )
            or None,
        )

    def metrics(self) -> dict:
        """JSON-able per-connection counters for the metrics endpoint."""
        view = self.telemetry_view()
        return {
            "device_id": self.device_id,
            "state": self.state.value,
            "bytes_in": self.bytes_in,
            "frames_framed": view.frames_framed,
            "frames_decoded": view.frames_decoded,
            "frames_lost": view.lost_frames,
            "frames_stale": view.stale_frames,
            "frames_unaccounted": view.frames_unaccounted,
            "crc_errors": view.crc_errors,
            "resync_bytes": view.resync_bytes,
            "words_delivered": view.words_delivered,
            "chunks_shed": self.chunks_shed,
            "bytes_shed": self.bytes_shed,
            "queue_depth": self.queue.qsize(),
            "queue_depth_peak": self.queue_depth_peak,
            "heartbeats": self._demux.heartbeats,
            "acks_sent": self.acks_sent,
            "watchdog_trips": self.watchdog.trips,
            "reconnects": self.reconnects,
            "faults_reported": self.faults_reported,
            "bye_seen": self.bye_seen,
        }

    def codes(self, element: int = 0) -> np.ndarray:
        """Decoded words of one element, as the monitor-side record."""
        return self.stream.samples(element).astype(np.int64)
