"""The gateway's shared decode plane: fleet-wide micro-batched decoding.

Per-session worker tasks (one ``await queue.get()`` loop per device)
decode each chunk alone, so every chunk pays the full Python frame-parse
cost and the event loop pays one task wakeup per chunk. The
:class:`BatchPlane` replaces all of them with **one** scheduler task
that runs a tick loop:

1. **Drain fleet-wide** — every armed session's queued chunks are taken
   at once and merged (exact: the frame decoder is chunk-boundary
   invariant).
2. **Deframe + CRC in batch** — each session's tiled prefix is scanned
   with NumPy (:func:`repro.daq.batchdecode.stage`) and *all* sessions'
   frame candidates are CRC-checked together in one table-driven pass
   (:func:`repro.daq.batchdecode.crc_check`), so the per-byte Python
   CRC loop disappears from the hot path.
3. **Commit per lane** — validated frames are booked segment-wise with
   reference-exact counters, gaps and sample bytes
   (:func:`repro.daq.batchdecode.commit`); anything irregular falls
   back to the per-session reference parser mid-chunk.

Flush policy — the latency/throughput dial:

* **size flush** — the moment pending bytes reach ``flush_bytes``, the
  tick runs immediately: under load the batch is always full and
  throughput dominates.
* **deadline flush** — otherwise a tick runs ``max_latency_s`` after
  the first pending byte arrived: under light load a lone device's
  chunk never waits more than the deadline, bounding p99 latency.

The plane keeps per-tick telemetry (occupancy, flush causes, tick rate)
for the metrics endpoint and asserts nothing about session semantics:
sessions behave bit-identically to worker-mode decoding, which the
property tests in ``tests/properties`` enforce.
"""

from __future__ import annotations

import asyncio
import contextlib
import time

from ..daq import batchdecode
from ..errors import ConfigurationError
from .connection import DeviceSession


class BatchPlane:
    """Latency-aware micro-batching decode scheduler for one gateway.

    Parameters
    ----------
    flush_bytes:
        Batch-occupancy target: a tick fires as soon as this many
        ingest bytes are pending fleet-wide.
    max_latency_s:
        Deadline: a tick fires at most this long after the first
        pending byte of a batch arrived, however empty the batch is.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        flush_bytes: int = 64 * 1024,
        max_latency_s: float = 0.002,
        clock=time.monotonic,
    ):
        if flush_bytes < 1:
            raise ConfigurationError("flush_bytes must be >= 1")
        if max_latency_s <= 0:
            raise ConfigurationError("max_latency_s must be positive")
        self.flush_bytes = int(flush_bytes)
        self.max_latency_s = float(max_latency_s)
        self._clock = clock
        #: Sessions registered as lanes (device_id -> session).
        self.lanes: dict[int, DeviceSession] = {}
        #: Lanes with pending queued bytes, in arrival order.
        self._armed: dict[int, DeviceSession] = {}
        self._armed_bytes: dict[int, int] = {}
        self._pending_bytes = 0
        self._first_pending_t: float | None = None
        self._wake = asyncio.Event()
        #: Set while no lane has queued bytes — the drain() signal.
        self.idle = asyncio.Event()
        self.idle.set()
        self._task: asyncio.Task | None = None
        # -- telemetry -------------------------------------------------------
        self.ticks = 0
        self.size_flushes = 0
        self.deadline_flushes = 0
        self.drain_flushes = 0  # forced by stop()/drain paths
        self.frames_decoded = 0
        self.bytes_decoded = 0
        self.occupancy_sum = 0  # sum over ticks of lanes-with-data
        self.occupancy_max = 0
        self._started_t: float | None = None

    # -- lane lifecycle ------------------------------------------------------

    def attach(self, session: DeviceSession) -> None:
        """Register a session as a decode lane (idempotent per id)."""
        self.lanes[session.device_id] = session

    def detach(self, session: DeviceSession) -> None:
        """Drop a lane; its *queued-but-undecoded* bytes are discarded.

        Only called when the session's books are already closed (fresh
        HELLO replacing a restarted device, or finalize on DEAD) — the
        same point where worker mode cancels the old worker task, so the
        discard semantics match exactly.
        """
        if self.lanes.get(session.device_id) is session:
            del self.lanes[session.device_id]
        if self._armed.get(session.device_id) is session:
            del self._armed[session.device_id]
            self._pending_bytes -= self._armed_bytes.pop(
                session.device_id, 0
            )
            session.take_queued()
            session.queue_empty.set()
            self._settle()

    def notify(self, session: DeviceSession, n_bytes: int) -> None:
        """Reader-side: ``n_bytes`` were queued on ``session``."""
        if n_bytes <= 0:
            return
        self._pending_bytes += n_bytes
        self._armed[session.device_id] = session
        self._armed_bytes[session.device_id] = (
            self._armed_bytes.get(session.device_id, 0) + n_bytes
        )
        if self._first_pending_t is None:
            self._first_pending_t = self._clock()
        self.idle.clear()
        self._wake.set()

    def _settle(self) -> None:
        if not self._armed:
            self._first_pending_t = None
            self._pending_bytes = 0
            self.idle.set()

    def flush_lane(self, session: DeviceSession) -> int:
        """Decode one lane's backlog immediately; returns frames.

        The resume handshake calls this before ACKing so
        ``last_acked`` reflects every byte the device already sent —
        otherwise a device that reconnects faster than the flush
        deadline replays frames whose bytes are still queued, and the
        duplicates surface as spurious ``stale_frames``.
        """
        if self._armed.pop(session.device_id, None) is None:
            return 0
        self._pending_bytes -= self._armed_bytes.pop(session.device_id, 0)
        staged = session.stage_pending()
        frames = 0
        if staged is not None:
            batchdecode.crc_check([staged])
            frames = session.commit_staged(staged)
        self._settle()
        return frames

    # -- scheduler -----------------------------------------------------------

    def start(self) -> None:
        if self._task is not None:
            raise ConfigurationError("batch plane already started")
        self._started_t = self._clock()
        self._task = asyncio.create_task(self._run())

    async def stop(self) -> None:
        """Flush whatever is pending, then stop the scheduler task."""
        if self.pending_bytes or self._armed:
            self.flush(cause="drain")
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None

    @property
    def pending_bytes(self) -> int:
        return self._pending_bytes

    async def _run(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if not self._armed:
                continue
            if self._pending_bytes >= self.flush_bytes:
                self.flush(cause="size")
                continue
            # Under target: wait for more data, but never past the
            # deadline measured from the batch's first pending byte.
            while self._armed:
                if self._pending_bytes >= self.flush_bytes:
                    self.flush(cause="size")
                    break
                delay = (
                    self._first_pending_t + self.max_latency_s - self._clock()
                )
                if delay <= 0:
                    self.flush(cause="deadline")
                    break
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=delay)
                    self._wake.clear()
                except asyncio.TimeoutError:
                    pass

    def flush(self, cause: str = "deadline") -> int:
        """Run one decode tick synchronously; returns frames decoded.

        Synchronous on purpose: no ``await`` between intake and commit,
        so reader callbacks can never interleave with a half-committed
        batch.
        """
        armed = list(self._armed.values())
        self._armed.clear()
        self._armed_bytes.clear()
        batch_bytes = self._pending_bytes
        self._pending_bytes = 0
        self._first_pending_t = None
        staged_pairs: list[tuple[DeviceSession, batchdecode.Staged]] = []
        for session in armed:
            staged = session.stage_pending()
            if staged is not None:
                staged_pairs.append((session, staged))
        batchdecode.crc_check([staged for _, staged in staged_pairs])
        frames = 0
        for session, staged in staged_pairs:
            frames += session.commit_staged(staged)
        occupancy = len(staged_pairs)
        self.ticks += 1
        if cause == "size":
            self.size_flushes += 1
        elif cause == "drain":
            self.drain_flushes += 1
        else:
            self.deadline_flushes += 1
        self.frames_decoded += frames
        self.bytes_decoded += batch_bytes
        self.occupancy_sum += occupancy
        self.occupancy_max = max(self.occupancy_max, occupancy)
        if not self._armed:
            self.idle.set()
        return frames

    # -- telemetry -----------------------------------------------------------

    def metrics(self) -> dict:
        """JSON-able per-tick counters for the metrics endpoint."""
        elapsed = (
            (self._clock() - self._started_t)
            if self._started_t is not None
            else 0.0
        )
        ticks = self.ticks
        return {
            "lanes": len(self.lanes),
            "ticks": ticks,
            "tick_rate_hz": (ticks / elapsed) if elapsed > 0 else 0.0,
            "size_flushes": self.size_flushes,
            "deadline_flushes": self.deadline_flushes,
            "drain_flushes": self.drain_flushes,
            "deadline_flush_fraction": (
                self.deadline_flushes / ticks if ticks else 0.0
            ),
            "occupancy_mean": (
                self.occupancy_sum / ticks if ticks else 0.0
            ),
            "occupancy_max": self.occupancy_max,
            "frames_decoded": self.frames_decoded,
            "bytes_decoded": self.bytes_decoded,
            "pending_bytes": self._pending_bytes,
            "flush_bytes": self.flush_bytes,
            "max_latency_s": self.max_latency_s,
        }
