"""The acquisition gateway: one asyncio service, many device streams.

:class:`GatewayServer` accepts any number of concurrent TCP device
connections speaking the gateway wire protocol
(:mod:`repro.gateway.protocol`): a HELLO handshake, then USB-format
data frames interleaved with DLE heartbeats, closed by a BYE. Each
device id owns a :class:`~repro.gateway.connection.DeviceSession` that
survives reconnects, so a device that loses its socket resumes from its
last acknowledged sequence instead of losing data.

Robustness structure:

* **Isolation** — every connection has its own reader task, worker
  task, decoder and bounded queue; a sick or slow connection degrades
  only itself (its queue sheds, counted) while healthy connections run
  untouched.
* **Watchdog** — a single ticker walks every session's
  :class:`~repro.gateway.watchdog.Watchdog`: DEGRADED connections are
  probed with a DLE, RECONNECTING ones lose their socket but keep
  state, DEAD ones are finalized (their telemetry stays visible).
* **Telemetry** — :meth:`metrics` exposes per-connection and
  fleet-wide counters; per-session
  :meth:`~repro.gateway.connection.DeviceSession.reconcile` asserts the
  conservation identities, and the fleet view is their
  :meth:`~repro.core.session.PipelineTelemetry.aggregate`. An optional
  side listener serves the same JSON to any TCP client (a
  ``/metrics``-style scrape).
"""

from __future__ import annotations

import asyncio
import contextlib
import json

from ..core.session import PipelineTelemetry
from ..errors import ConfigurationError, GatewayError
from .batchplane import BatchPlane
from .connection import DeviceSession
from .protocol import ControlDemux, ControlEvent, heartbeat, pack_ack
from .watchdog import ConnectionState, Watchdog

#: Socket read size; also the decode chunk granularity. Large enough
#: that a bursty sender costs one wakeup per socket buffer, not per
#: 4 KiB slice; the ingest queue bound is in chunks, so the byte bound
#: scales with it.
_READ_CHUNK = 65536


class GatewayServer:
    """Fault-tolerant multiplexer for framed device streams.

    Parameters
    ----------
    host / port:
        Bind address; port 0 picks an ephemeral port (see
        :attr:`port` after :meth:`start`).
    queue_chunks:
        Per-connection ingest-queue bound (chunks of one socket read
        each, up to 64 KiB).
    hello_timeout_s:
        How long a fresh socket may dawdle before its HELLO.
    watchdog_config:
        ``(degraded_after_s, reconnecting_after_s, dead_after_s)`` for
        every connection's watchdog.
    tick_s:
        Watchdog sweep period.
    metrics_port:
        When not ``None``, also listen there and serve the
        :meth:`metrics` JSON to any connection (0 = ephemeral).
    output_rate_hz:
        Decimated word rate of the devices' streams.
    samples_per_frame:
        Nominal full-frame payload size of the device links (the
        encoders' ``samples_per_frame``), so frame-loss gaps are booked
        as full frames even across chunk flush boundaries. ``None``
        keeps the legacy follower-size estimate.
    decode_plane:
        ``"batch"`` (default) decodes every connection through the
        shared :class:`~repro.gateway.batchplane.BatchPlane` scheduler;
        ``"worker"`` keeps the legacy per-session worker tasks. Both
        planes are bit-identical per device (asserted by the property
        tests); batch amortizes the Python deframe/CRC cost fleet-wide.
    flush_bytes / max_latency_s:
        Batch-plane flush policy: tick when this many bytes are
        pending, or this long after the first pending byte, whichever
        comes first. Ignored in worker mode.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_chunks: int = 64,
        hello_timeout_s: float = 5.0,
        watchdog_config: tuple[float, float, float] = (2.0, 5.0, 15.0),
        tick_s: float = 0.25,
        metrics_port: int | None = None,
        output_rate_hz: float = 1000.0,
        samples_per_frame: int | None = None,
        decode_plane: str = "batch",
        flush_bytes: int = 64 * 1024,
        max_latency_s: float = 0.002,
    ):
        if decode_plane not in ("batch", "worker"):
            raise ConfigurationError(
                "decode_plane must be 'batch' or 'worker'"
            )
        self.host = host
        self.port = int(port)
        self.queue_chunks = int(queue_chunks)
        self.hello_timeout_s = float(hello_timeout_s)
        self.watchdog_config = watchdog_config
        self.tick_s = float(tick_s)
        self.metrics_port = metrics_port
        self.output_rate_hz = float(output_rate_hz)
        self.samples_per_frame = samples_per_frame
        self.decode_plane = decode_plane
        self.flush_bytes = int(flush_bytes)
        self.max_latency_s = float(max_latency_s)
        self.plane: BatchPlane | None = None
        self.sessions: dict[int, DeviceSession] = {}
        #: Server-level counters.
        self.connections_accepted = 0
        self.handshake_failures = 0
        self._server: asyncio.AbstractServer | None = None
        self._metrics_server: asyncio.AbstractServer | None = None
        self._ticker: asyncio.Task | None = None
        self._workers: dict[int, asyncio.Task] = {}
        self._writers: dict[int, asyncio.StreamWriter] = {}

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind, start the watchdog ticker; returns ``(host, port)``."""
        if self._server is not None:
            raise GatewayError("gateway already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._serve_metrics, self.host, self.metrics_port
            )
            self.metrics_port = (
                self._metrics_server.sockets[0].getsockname()[1]
            )
        if self.decode_plane == "batch":
            self.plane = BatchPlane(
                flush_bytes=self.flush_bytes,
                max_latency_s=self.max_latency_s,
            )
            self.plane.start()
        self._ticker = asyncio.create_task(self._tick())
        return self.host, self.port

    async def stop(self) -> None:
        """Stop listening, stop every task, finalize every session."""
        for server in (self._server, self._metrics_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._server = self._metrics_server = None
        if self._ticker is not None:
            self._ticker.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._ticker
            self._ticker = None
        for writer in list(self._writers.values()):
            writer.close()
        # Workers drain what is queued, then exit on the None sentinel;
        # a worker whose queue is too full to take the sentinel is
        # cancelled instead (its backlog is already accounted as shed
        # or surfaces as lost frames at finalize).
        for device_id, task in list(self._workers.items()):
            session = self.sessions.get(device_id)
            try:
                if session is not None:
                    session.queue.put_nowait(None)
            except asyncio.QueueFull:
                task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._workers.clear()
        self._writers.clear()
        if self.plane is not None:
            # Final tick: whatever the readers queued is decoded before
            # the books close, mirroring the workers' sentinel drain.
            await self.plane.stop()
        for session in self.sessions.values():
            session.finalize()

    async def drain(self, timeout_s: float = 5.0) -> bool:
        """Wait until every ingest queue has been decoded empty (True)
        or time out.

        Event-driven: each session's ``queue_empty`` event is set by its
        consumer (worker task or batch plane) the moment the last queued
        chunk is decoded, so drain returns promptly instead of polling
        on a sleep loop.
        """
        try:
            await asyncio.wait_for(self._drained(), timeout=timeout_s)
            return True
        except asyncio.TimeoutError:
            return False

    async def _drained(self) -> None:
        while True:
            busy = [
                s
                for s in self.sessions.values()
                if not s.queue_empty.is_set()
            ]
            if not busy:
                return
            await busy[0].queue_empty.wait()

    # -- connection handling -------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_accepted += 1
        session: DeviceSession | None = None
        try:
            session = await self._handshake(reader, writer)
            if session is None:
                return
            await self._pump(session, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass  # socket loss: the watchdog/resume path owns recovery
        finally:
            # Only the *current* connection may mark the session
            # disconnected — a device can reconnect-and-resume before
            # its old handler observes the EOF, and that stale handler
            # must not downgrade the revived session.
            if (
                session is not None
                and self._writers.get(session.device_id) is writer
            ):
                del self._writers[session.device_id]
                if not session.bye_seen:
                    session.watchdog.disconnected()
            writer.close()
            with contextlib.suppress(
                ConnectionError, asyncio.IncompleteReadError, OSError
            ):
                await writer.wait_closed()

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> DeviceSession | None:
        """Wait for HELLO, attach (or create) the device's session."""
        probe = ControlDemux()  # throwaway until identity is known
        hello: ControlEvent | None = None
        pending = b""
        deadline = asyncio.get_running_loop().time() + self.hello_timeout_s
        while hello is None:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                self.handshake_failures += 1
                return None
            try:
                data = await asyncio.wait_for(
                    reader.read(_READ_CHUNK), timeout=remaining
                )
            except asyncio.TimeoutError:
                self.handshake_failures += 1
                return None
            if not data:
                self.handshake_failures += 1
                return None
            data_bytes, events = probe.feed(data)
            pending += data_bytes
            for event in events:
                if event.kind == "hello":
                    hello = event
                    break

        session = self.sessions.get(hello.device_id)
        if session is None or session.state is ConnectionState.DEAD:
            # New device — or a dead one returning: its old state was
            # closed out, so it starts a fresh stream either way.
            session = DeviceSession(
                device_id=hello.device_id,
                queue_chunks=self.queue_chunks,
                watchdog=Watchdog(*self.watchdog_config),
                output_rate_hz=self.output_rate_hz,
                samples_per_frame=self.samples_per_frame,
            )
            self._attach(session)
            if not hello.resume:
                session.fresh_start()
        elif hello.resume:
            session.reconnects += 1
            session.watchdog.revive()
            if self.plane is not None:
                # Catch the decoder up before ACKing, so the resume
                # point reflects every byte already received.
                self.plane.flush_lane(session)
        else:
            # Same id, fresh stream: the device restarted. Close the old
            # books and start over in place.
            session.finalize()
            old_session = session
            old_hook = session.frame_hook
            session = DeviceSession(
                device_id=hello.device_id,
                queue_chunks=self.queue_chunks,
                watchdog=Watchdog(*self.watchdog_config),
                output_rate_hz=self.output_rate_hz,
                samples_per_frame=self.samples_per_frame,
            )
            session.frame_hook = old_hook
            if self.plane is not None:
                # Drop the restarted stream's undecoded backlog, as
                # cancelling its worker would.
                self.plane.detach(old_session)
            else:
                old_worker = self._workers.get(hello.device_id)
                if old_worker is not None:
                    old_worker.cancel()
                    with contextlib.suppress(asyncio.CancelledError):
                        await old_worker
            self._attach(session)
            session.fresh_start()
        session.connections += 1
        self._writers[session.device_id] = writer
        # The ACK completes the handshake: it tells a resuming device
        # where to replay from (and a fresh one that we are listening).
        await self._send_ack(session, writer)
        # Bytes that followed HELLO in the same read belong to the
        # session's stream.
        if pending:
            self._ingest(session, pending, writer)
        # Any control messages the throwaway demux still holds split?
        # Its buffer is part of `pending`'s continuation — hand it over.
        tail = probe.drain()
        if tail:
            self._ingest(session, tail, writer)
        return session

    def _attach(self, session: DeviceSession) -> None:
        """Register a session with whichever decode plane is active."""
        self.sessions[session.device_id] = session
        if self.plane is not None:
            self.plane.attach(session)
        else:
            self._workers[session.device_id] = asyncio.create_task(
                self._work(session)
            )

    def _ingest(
        self,
        session: DeviceSession,
        data: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Reader-side: demux one read, act on control, queue the data."""
        data_bytes, events = session.demux(data)
        for event in events:
            if event.kind == "heartbeat":
                # DLE poll: answer with the cumulative ACK.
                self._queue_ack(session, writer)
            elif event.kind == "bye":
                session.note_bye(event)
            # Mid-stream HELLO/ACK frames are protocol noise; their
            # bytes were already counted by the demux.
        if session.offer(data_bytes) and self.plane is not None:
            self.plane.notify(session, len(data_bytes))

    async def _pump(
        self,
        session: DeviceSession,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        while True:
            data = await reader.read(_READ_CHUNK)
            if not data:
                break
            self._ingest(session, data, writer)
        if session.bye_seen:
            # Clean close: drain what is queued, then close the books.
            await self._drain_session(session)
            session.finalize()

    async def _work(self, session: DeviceSession) -> None:
        """Per-session worker: the only consumer of the ingest queue."""
        while True:
            chunk = await session.queue.get()
            if chunk is None:
                break
            session.decode(chunk)
            # Yield so one hot connection cannot monopolize the loop.
            await asyncio.sleep(0)

    async def _drain_session(self, session: DeviceSession) -> None:
        while not session.queue_empty.is_set():
            await session.queue_empty.wait()

    # -- control plane -------------------------------------------------------

    async def _send_ack(
        self, session: DeviceSession, writer: asyncio.StreamWriter
    ) -> None:
        writer.write(pack_ack(session.last_acked))
        session.acks_sent += 1
        with contextlib.suppress(ConnectionError, OSError):
            await writer.drain()

    def _queue_ack(
        self, session: DeviceSession, writer: asyncio.StreamWriter
    ) -> None:
        with contextlib.suppress(ConnectionError, OSError):
            writer.write(pack_ack(session.last_acked))
            session.acks_sent += 1

    async def _tick(self) -> None:
        """The watchdog sweep: probe, abandon or bury silent sessions."""
        while True:
            await asyncio.sleep(self.tick_s)
            for session in list(self.sessions.values()):
                if session.finalized:
                    continue
                before = session.state
                state = session.watchdog.check()
                if state is before:
                    continue
                writer = self._writers.get(session.device_id)
                if state is ConnectionState.DEGRADED and writer is not None:
                    # Probe: a live device answers traffic with traffic.
                    with contextlib.suppress(ConnectionError, OSError):
                        writer.write(heartbeat())
                elif state is ConnectionState.RECONNECTING:
                    # Abandon the socket, keep the state for resume.
                    if writer is not None:
                        writer.close()
                elif state is ConnectionState.DEAD:
                    session.finalize()

    # -- telemetry -----------------------------------------------------------

    def fleet_telemetry(self) -> PipelineTelemetry:
        """Aggregate of every session's reconciled telemetry view."""
        return PipelineTelemetry.aggregate(
            [s.telemetry_view() for s in self.sessions.values()]
        )

    def reconcile(self) -> None:
        """Assert every session's conservation identities."""
        for session in self.sessions.values():
            session.reconcile()

    def metrics(self) -> dict:
        """Per-connection and fleet-wide counters (the scrape payload)."""
        connections = {
            str(device_id): session.metrics()
            for device_id, session in sorted(self.sessions.items())
        }
        fleet = self.fleet_telemetry()
        states = [s.state for s in self.sessions.values()]
        return {
            "server": {
                "connections_accepted": self.connections_accepted,
                "handshake_failures": self.handshake_failures,
                "decode_plane": self.decode_plane,
                "sessions": len(self.sessions),
                "healthy": sum(
                    1 for s in states if s is ConnectionState.HEALTHY
                ),
                "degraded": sum(
                    1 for s in states if s is ConnectionState.DEGRADED
                ),
                "reconnecting": sum(
                    1 for s in states if s is ConnectionState.RECONNECTING
                ),
                "dead": sum(1 for s in states if s is ConnectionState.DEAD),
            },
            "fleet": {
                "frames_framed": fleet.frames_framed,
                "frames_decoded": fleet.frames_decoded,
                "frames_lost": fleet.lost_frames,
                "frames_stale": fleet.stale_frames,
                "frames_unaccounted": fleet.frames_unaccounted,
                "crc_errors": fleet.crc_errors,
                "resync_bytes": fleet.resync_bytes,
                "words_delivered": fleet.words_delivered,
                "chunks_shed": sum(
                    s.chunks_shed for s in self.sessions.values()
                ),
                "bytes_shed": sum(
                    s.bytes_shed for s in self.sessions.values()
                ),
                "watchdog_trips": sum(
                    s.watchdog.trips for s in self.sessions.values()
                ),
                "reconnects": sum(
                    s.reconnects for s in self.sessions.values()
                ),
            },
            "batch_plane": (
                self.plane.metrics() if self.plane is not None else None
            ),
            "connections": connections,
        }

    async def _serve_metrics(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            writer.write(json.dumps(self.metrics()).encode() + b"\n")
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()
