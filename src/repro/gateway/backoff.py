"""Retry pacing: exponential backoff with seeded jitter.

Reconnect storms are a fleet problem: a gateway restart makes every
device retry at once, and synchronized retries keep knocking the
service over. The standard cure is exponential backoff with jitter —
each failed attempt doubles the base delay up to a cap, and a random
fraction is subtracted so devices decorrelate. The randomness comes
from a seeded generator, so simulations stay reproducible.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

#: Exponent cap: beyond this the un-jittered delay has long hit ``cap_s``
#: for any sane configuration, and ``multiplier ** attempts`` would
#: otherwise overflow to ``inf``.
_MAX_EXPONENT = 63


class ExponentialBackoff:
    """Capped exponential retry delays with full-range seeded jitter.

    Parameters
    ----------
    initial_s:
        Delay before the first retry (before jitter).
    multiplier:
        Growth factor per attempt (>= 1).
    cap_s:
        Upper bound on the un-jittered delay.
    jitter:
        Fraction of the delay randomized away, in [0, 1]: the returned
        delay is uniform in ``[(1 - jitter) * d, d]``. ``0`` is fully
        deterministic; ``1`` is AWS-style "full jitter".
    rng:
        Seed or :class:`numpy.random.Generator` for the jitter draws.
    """

    def __init__(
        self,
        initial_s: float = 0.05,
        multiplier: float = 2.0,
        cap_s: float = 5.0,
        jitter: float = 0.5,
        rng: int | np.random.Generator | None = None,
    ):
        if initial_s <= 0:
            raise ConfigurationError("initial backoff must be positive")
        if multiplier < 1.0:
            raise ConfigurationError("backoff multiplier must be >= 1")
        if cap_s < initial_s:
            raise ConfigurationError("backoff cap must be >= initial delay")
        if not 0.0 <= jitter <= 1.0:
            raise ConfigurationError("jitter fraction must lie in [0, 1]")
        self.initial_s = float(initial_s)
        self.multiplier = float(multiplier)
        self.cap_s = float(cap_s)
        self.jitter = float(jitter)
        self._rng = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        #: Consecutive failures since the last :meth:`reset`.
        self.attempts = 0

    def peek(self) -> float:
        """The un-jittered delay the next :meth:`next_delay` draws from."""
        exponent = min(self.attempts, _MAX_EXPONENT)
        return min(self.initial_s * self.multiplier**exponent, self.cap_s)

    def next_delay(self) -> float:
        """Delay [s] to sleep before the next attempt; counts the failure."""
        base = self.peek()
        self.attempts += 1
        if self.jitter == 0.0:
            return base
        return base * (1.0 - self.jitter * float(self._rng.uniform()))

    def reset(self) -> None:
        """A successful attempt: start the schedule over."""
        self.attempts = 0
