"""Fleet-scale chaos harness for the acquisition gateway.

:func:`run_chaos` stands up one :class:`~repro.gateway.server.
GatewayServer`, points dozens of :class:`~repro.gateway.client.
DeviceClient` simulators at it concurrently — a configurable fraction
carrying independent seeded link-fault schedules (frame drop,
truncation, bit-flip, reorder) and forced mid-stream disconnects — and
then audits the wreckage. The audit is the point; it asserts the
tentpole's graceful-degradation contract:

1. **Zero silent corruption** — every device streams deterministic,
   index-derived sample values (:func:`~repro.gateway.client.
   expected_codes`), so each delivered sample is checked against the
   value it must have. Frames the faults destroyed must show up in the
   explicit counters (``lost_frames``/``stale_frames``/
   ``frames_unaccounted``), closing conservation against the BYE's
   device-side frame count.
2. **Fault isolation** — connections with no faults and no shed chunks
   must come out *bit-identical* to a direct, gateway-free decode of the
   same payload stream, no matter how sick their neighbours are.
3. **Bounded memory** — per-connection ingest queues never exceed their
   bound and the demux buffer stays under one maximum frame.
4. **No leaks** — the event loop ends with exactly the tasks it began
   with.

The report is JSON-able (:meth:`ChaosReport.as_dict`) so the CI smoke
job can publish it as an artifact.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from ..faults import FaultInjector, FaultSpec
from .client import DeviceClient, DeviceReport, expected_codes, synthetic_payloads
from .connection import DeviceSession
from .protocol import MAX_DATA_FRAME
from .server import GatewayServer

#: Fault kinds every sick device draws from (one seeded process each).
CHAOS_KINDS = (
    "frame_drop",
    "frame_truncation",
    "frame_bitflip",
    "frame_reorder",
)


@dataclass
class ChaosReport:
    """Fleet audit: what ran, what broke, and whether the books balance."""

    devices: int = 0
    faulty_devices: int = 0
    frames_sent: int = 0
    frames_decoded: int = 0
    frames_lost: int = 0
    frames_stale: int = 0
    frames_unaccounted: int = 0
    crc_errors: int = 0
    resync_bytes: int = 0
    faults_injected: int = 0
    chunks_shed: int = 0
    reconnects: int = 0
    watchdog_trips: int = 0
    samples_verified: int = 0
    clean_devices_exact: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "devices": self.devices,
            "faulty_devices": self.faulty_devices,
            "frames_sent": self.frames_sent,
            "frames_decoded": self.frames_decoded,
            "frames_lost": self.frames_lost,
            "frames_stale": self.frames_stale,
            "frames_unaccounted": self.frames_unaccounted,
            "crc_errors": self.crc_errors,
            "resync_bytes": self.resync_bytes,
            "faults_injected": self.faults_injected,
            "chunks_shed": self.chunks_shed,
            "reconnects": self.reconnects,
            "watchdog_trips": self.watchdog_trips,
            "samples_verified": self.samples_verified,
            "clean_devices_exact": self.clean_devices_exact,
            "failures": self.failures,
        }


def _chaos_injector(
    seed: int, frames: int, rate_hz: float, frame_rate_hz: float
) -> FaultInjector:
    """Independent per-device schedule over the device's whole stream."""
    horizon_s = frames / frame_rate_hz
    specs = [
        FaultSpec(kind=kind, rate_hz=rate_hz, magnitude=m)
        for kind, m in zip(CHAOS_KINDS, (1.0, 0.5, 1.0, 1.0))
    ]
    return FaultInjector(specs, seed=seed, horizon_s=horizon_s)


def _verify_device(
    report: ChaosReport,
    session: DeviceSession,
    device: DeviceReport,
    faulty: bool,
    frames: int,
    samples_per_frame: int,
) -> None:
    """Audit one device's books and delivered sample values."""
    did = device.device_id
    view = session.telemetry_view()

    # -- conservation: every framed frame decoded, lost or unaccounted.
    if not session.bye_seen:
        report.failures.append(f"device {did}: BYE never reached gateway")
        return
    if view.frames_framed != device.frames_sent:
        report.failures.append(
            f"device {did}: BYE frame count {view.frames_framed} != "
            f"client count {device.frames_sent}"
        )
    try:
        session.reconcile()
    except Exception as exc:  # noqa: BLE001 - the audit reports, not raises
        report.failures.append(f"device {did}: reconcile failed: {exc}")
    if view.frames_unaccounted < 0:
        report.failures.append(
            f"device {did}: negative unaccounted "
            f"({view.frames_unaccounted}) — frames double-counted"
        )
    clean = not faulty and session.chunks_shed == 0
    if clean and (
        view.lost_frames
        or view.stale_frames
        or view.crc_errors
        or view.frames_unaccounted
        or view.frames_decoded != frames
    ):
        report.failures.append(
            f"device {did}: fault-free connection lost data "
            f"(decoded {view.frames_decoded}/{frames}, "
            f"lost {view.lost_frames}, crc {view.crc_errors}, "
            f"unaccounted {view.frames_unaccounted})"
        )

    # -- content: delivered values must match their absolute position.
    expected = expected_codes(frames, samples_per_frame)
    got, mask = session.stream.zero_filled(0)
    if got.size > expected.size:
        report.failures.append(
            f"device {did}: {got.size - expected.size} surplus samples"
        )
        return
    mismatches = int(np.count_nonzero(got[mask] != expected[: got.size][mask]))
    if mismatches:
        report.failures.append(
            f"device {did}: {mismatches} silently corrupted samples"
        )
    report.samples_verified += int(np.count_nonzero(mask))
    if clean:
        if got.size == expected.size and bool(mask.all()):
            report.clean_devices_exact += 1
        else:
            report.failures.append(
                f"device {did}: fault-free record not bit-identical "
                f"({got.size}/{expected.size} samples, "
                f"{int(np.count_nonzero(~mask))} masked)"
            )

    # -- bounded memory.
    if session.queue_depth_peak > session.queue.maxsize:
        report.failures.append(
            f"device {did}: ingest queue exceeded its bound "
            f"({session.queue_depth_peak} > {session.queue.maxsize})"
        )
    if session._demux.buffered > MAX_DATA_FRAME + 16:
        report.failures.append(
            f"device {did}: demux buffer unbounded "
            f"({session._demux.buffered} B)"
        )


async def run_chaos(
    n_devices: int = 50,
    frames_per_device: int = 120,
    samples_per_frame: int = 32,
    faulty_fraction: float = 0.5,
    fault_rate_hz: float = 2.0,
    fault_frame_rate_hz: float = 50.0,
    reconnect_every: int | None = 40,
    seed: int = 0,
    queue_chunks: int = 64,
    heartbeat_s: float = 0.05,
    decode_plane: str = "batch",
) -> ChaosReport:
    """Run the fleet, then audit every connection. Returns the report.

    Devices ``0, 2, 4, …`` (up to ``faulty_fraction``) carry independent
    fault schedules seeded from ``seed + device_id``; every
    ``reconnect_every``-th payload each device hard-drops its TCP
    connection and resumes, exercising the watchdog + replay path under
    load. ``decode_plane`` selects the gateway's decode scheduling
    (``"batch"`` or ``"worker"``) — the audit's assertions are
    plane-independent, which is itself part of the bit-identity gate.
    """
    report = ChaosReport(devices=n_devices)
    baseline_tasks = asyncio.all_tasks()

    server = GatewayServer(
        queue_chunks=queue_chunks, decode_plane=decode_plane
    )
    host, port = await server.start()
    # Interleave sick and healthy devices across the id space so the
    # isolation check never reduces to "faults ran first/last".
    order = [d for d in range(n_devices) if d % 2 == 0] + [
        d for d in range(n_devices) if d % 2 == 1
    ]
    faulty_ids = set(order[: int(round(n_devices * faulty_fraction))])
    report.faulty_devices = len(faulty_ids)

    clients: list[DeviceClient] = []
    for did in range(n_devices):
        faults = (
            _chaos_injector(
                seed + did, frames_per_device, fault_rate_hz,
                fault_frame_rate_hz,
            )
            if did in faulty_ids
            else None
        )
        clients.append(
            DeviceClient(
                host,
                port,
                device_id=did,
                payloads=synthetic_payloads(
                    frames_per_device, samples_per_frame
                ),
                faults=faults,
                fault_frame_rate_hz=fault_frame_rate_hz,
                drop_every=reconnect_every,
                heartbeat_s=heartbeat_s,
                replay_limit=frames_per_device + 1,
            )
        )

    results = await asyncio.gather(
        *(c.run() for c in clients), return_exceptions=True
    )
    if not await server.drain(timeout_s=10.0):
        report.failures.append("ingest queues failed to drain")
    await server.stop()

    for did, result in enumerate(results):
        if isinstance(result, BaseException):
            report.failures.append(f"device {did}: client died: {result!r}")
            continue
        session = server.sessions.get(did)
        if session is None:
            report.failures.append(f"device {did}: no gateway session")
            continue
        report.frames_sent += result.frames_sent
        report.faults_injected += result.faults_injected
        report.reconnects += result.reconnects
        _verify_device(
            report,
            session,
            result,
            did in faulty_ids,
            frames_per_device,
            samples_per_frame,
        )

    fleet = server.fleet_telemetry()
    report.frames_decoded = fleet.frames_decoded
    report.frames_lost = fleet.lost_frames
    report.frames_stale = fleet.stale_frames
    report.frames_unaccounted = fleet.frames_unaccounted
    report.crc_errors = fleet.crc_errors
    report.resync_bytes = fleet.resync_bytes
    report.chunks_shed = sum(
        s.chunks_shed for s in server.sessions.values()
    )
    report.watchdog_trips = sum(
        s.watchdog.trips for s in server.sessions.values()
    )

    # -- no leaked asyncio tasks.
    await asyncio.sleep(0)  # let cancelled/finished tasks retire
    leaked = {
        t for t in asyncio.all_tasks() - baseline_tasks if not t.done()
    }
    if leaked:
        report.failures.append(
            f"{len(leaked)} asyncio tasks leaked: "
            + ", ".join(sorted(t.get_name() for t in leaked))
        )
    return report
