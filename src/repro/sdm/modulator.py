"""Cycle-accurate behavioural second-order sigma-delta modulator.

The complete readout loop of Fig. 6: two SC integrator stages, a single-
bit comparator and a capacitive feedback DAC, clocked at 128 kS/s. The
simulation advances the difference equations of :mod:`.topology` sample by
sample, injecting physically-scaled analog noise (kT/C, flicker,
reference noise, clock jitter) from :mod:`.nonidealities`.

All loop quantities are normalized to the reference voltage; the input
``u`` comes from :class:`~repro.sdm.frontend.CapacitiveFrontEnd` or
:class:`~repro.sdm.frontend.VoltageFrontEnd`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, ModulatorOverloadError
from ..params import ModulatorParams, NonidealityParams
from . import fastpath
from .comparator import Comparator
from .feedback import FeedbackDAC
from .integrator import SCIntegrator
from .nonidealities import FlickerNoiseGenerator, integrator_noise_sigma_v
from .topology import LoopCoefficients

BACKENDS = ("reference", "fast")


@dataclass(frozen=True)
class ModulatorOutput:
    """Result of a modulator run."""

    bitstream: np.ndarray  # int8 array of +/-1
    clipped_samples: int  # cycles in which an integrator hit its swing
    states: np.ndarray | None = None  # (n, 2) trajectory when recorded

    @property
    def mean(self) -> float:
        """Average of the bitstream = DC estimate in Vref units."""
        return float(np.mean(self.bitstream)) if self.bitstream.size else 0.0


@dataclass(frozen=True)
class ModulatorState:
    """Resumable analog state of the loop between ``simulate`` calls.

    Everything a streaming session needs to suspend and resume a
    conversion at a chunk boundary: the two integrator voltages, the
    comparator's last decision (hysteresis memory) and the last input
    sample (the jitter slope at the next chunk's first sample needs it).
    RNG positions are *not* part of the snapshot — restoring state fans
    out fresh noise, which is what the batched scan wants.
    """

    x1: float
    x2: float
    comparator_previous: int
    last_input: float | None


class SecondOrderSDM:
    """The paper's readout modulator, ready to stream.

    Parameters
    ----------
    params:
        Clocking/reference/loop-scaling parameters (paper defaults).
    nonideality:
        Analog imperfection budget; ``NonidealityParams.ideal()`` gives
        the textbook loop.
    coefficients:
        Loop scaling override; defaults to Boser-Wooley 0.5/0.5 with the
        first-stage feedback scaled by ``params.feedback_ratio / 0.5``.
    dac:
        Feedback DAC override (for the future-work Cfb ablation).
    rng:
        Random generator; a fixed default keeps runs reproducible.
    backend:
        ``"fast"`` (default) runs the recurrence through
        :mod:`repro.sdm.fastpath` — a compiled kernel when a C compiler
        is available, an equivalent tightened Python loop otherwise.
        ``"reference"`` pins the original cycle-accurate Python loop.
        Both produce bit-identical bitstreams for any deterministic
        comparator, so the switch trades only wall-time.
    """

    def __init__(
        self,
        params: ModulatorParams | None = None,
        nonideality: NonidealityParams | None = None,
        coefficients: LoopCoefficients | None = None,
        dac: FeedbackDAC | None = None,
        rng: np.random.Generator | None = None,
        backend: str = "fast",
    ):
        self.params = params or ModulatorParams()
        self.nonideality = nonideality or NonidealityParams()
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        self.backend = backend
        if dac is not None and coefficients is not None:
            raise ConfigurationError(
                "pass either coefficients or a dac (which carries its own), "
                "not both"
            )
        if dac is not None:
            self.coefficients = dac.coefficients
            self.dac = dac
        else:
            base = coefficients or LoopCoefficients(
                a1=self.params.a1,
                a2=self.params.a2,
                b1=self.params.feedback_ratio,
                b2=self.params.a2,
            )
            self.coefficients = base
            # Share the caller's coefficients object with the DAC (a
            # field-by-field copy here would let the two silently diverge
            # if coefficients are ever mutated or subclassed).
            self.dac = FeedbackDAC(coefficients=base, cfb_ratio=1.0)
        self.rng = rng or np.random.default_rng(20040216)
        # Independent child streams, one per stochastic term. Each term
        # consumes its own stream sequentially, so splitting a record
        # into chunks draws exactly the values one monolithic call
        # would — the property the streaming acquisition sessions rely
        # on for bit-identical chunked output. (A single shared stream
        # would interleave terms differently per block size.)
        try:
            children = self.rng.spawn(4)
        except (AttributeError, TypeError):  # pragma: no cover
            children = [
                np.random.default_rng(int(self.rng.integers(0, 2**63)))
                for _ in range(4)
            ]
        self._jitter_rng, self._noise_rng, self._dac_rng, flicker_rng = children
        #: Last raw input sample of the previous ``simulate`` call (None
        #: at stream start) — carries the jitter slope across chunks.
        self._last_input: float | None = None

        ni = self.nonideality
        self.comparator = Comparator(
            offset_v=ni.comparator_offset_v / self.params.vref_v,
            hysteresis_v=ni.comparator_hysteresis_v / self.params.vref_v,
            rng=self.rng,
        )
        self.stage1 = SCIntegrator(
            signal_gain=self.coefficients.a1,
            feedback_gain=self.coefficients.b1,
            opamp_gain=ni.opamp_gain,
        )
        self.stage2 = SCIntegrator(
            signal_gain=self.coefficients.a2,
            feedback_gain=self.coefficients.b2,
            opamp_gain=ni.opamp_gain,
        )
        # Input-referred white noise per sample, in Vref units.
        self._noise_sigma_u = (
            integrator_noise_sigma_v(
                ni.sampling_cap_f, ni.temperature_k
            )
            / self.params.vref_v
        )
        self._flicker = (
            FlickerNoiseGenerator(
                corner_hz=ni.flicker_corner_hz,
                white_sigma=self._noise_sigma_u,
                sample_rate_hz=self.params.sampling_rate_hz,
                rng=flicker_rng,
            )
            if ni.flicker_corner_hz > 0
            else None
        )

    # -- public API -----------------------------------------------------------

    def reseed(self, rng: np.random.Generator) -> None:
        """Re-derive every stochastic stream from a fresh generator.

        Replaces the four per-term child streams (jitter, white noise,
        DAC, flicker) and the comparator's metastability source, leaving
        the analog state untouched. The parallel element scan uses this
        to decorrelate the noise of per-element chain copies: a plain
        ``deepcopy`` would replay identical draws on every element.
        With an ideal (noiseless) configuration this is a no-op on the
        output.
        """
        self.rng = rng
        try:
            children = self.rng.spawn(4)
        except (AttributeError, TypeError):  # pragma: no cover
            children = [
                np.random.default_rng(int(self.rng.integers(0, 2**63)))
                for _ in range(4)
            ]
        self._jitter_rng, self._noise_rng, self._dac_rng, flicker_rng = (
            children
        )
        self.comparator._rng = self.rng
        if self._flicker is not None:
            self._flicker = FlickerNoiseGenerator(
                corner_hz=self.nonideality.flicker_corner_hz,
                white_sigma=self._noise_sigma_u,
                sample_rate_hz=self.params.sampling_rate_hz,
                rng=flicker_rng,
            )

    def reset(self) -> None:
        """Clear integrators, comparator memory and flicker state."""
        self.stage1.reset()
        self.stage2.reset()
        self.comparator.reset()
        self._last_input = None
        if self._flicker is not None:
            self._flicker.reset()

    def state_snapshot(self) -> ModulatorState:
        """Capture the resumable analog state (chunk-boundary suspend)."""
        return ModulatorState(
            x1=self.stage1.state,
            x2=self.stage2.state,
            comparator_previous=self.comparator._previous,
            last_input=self._last_input,
        )

    def restore_state(self, state: ModulatorState) -> None:
        """Resume from a :meth:`state_snapshot` (RNG streams untouched)."""
        self.stage1.state = state.x1
        self.stage2.state = state.x2
        self.comparator._previous = state.comparator_previous
        self._last_input = state.last_input

    @property
    def input_full_scale(self) -> float:
        """Largest DC input (Vref units) the loop can represent."""
        return self.coefficients.input_full_scale

    @property
    def recommended_max_amplitude(self) -> float:
        """Practical stable sine amplitude (~75 % of the hard full scale)."""
        return 0.75 * self.input_full_scale

    def simulate(
        self,
        loop_input: np.ndarray,
        record_states: bool = False,
        overload_policy: str = "ignore",
        backend: str | None = None,
    ) -> ModulatorOutput:
        """Run the loop over a normalized input sequence.

        Parameters
        ----------
        loop_input:
            Input u[n] in Vref units, one entry per modulator clock.
        record_states:
            Store the (x1, x2) trajectory (memory-heavy on long runs).
        overload_policy:
            ``"ignore"`` lets the swing limiter act (clipped cycles are
            counted); ``"raise"`` raises
            :class:`~repro.errors.ModulatorOverloadError` on the first
            clipped cycle.
        backend:
            Per-call override of the constructor's ``backend``. The fast
            backend routes metastable comparators (in-loop random draws)
            to the reference loop automatically, so results match the
            reference for every configuration.

        State persists across calls: consecutive ``simulate`` calls
        continue the same analog history, as a streaming chip would.
        """
        u = np.asarray(loop_input, dtype=float)
        if u.ndim != 1:
            raise ConfigurationError("loop input must be a 1-D sequence")
        if overload_policy not in ("ignore", "raise"):
            raise ConfigurationError("overload_policy must be ignore|raise")
        backend = backend if backend is not None else self.backend
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        n = u.size
        if n == 0:
            return ModulatorOutput(
                bitstream=np.zeros(0, dtype=np.int8), clipped_samples=0
            )

        u, noise, dac_noise, dac_gain = self._prepare_inputs(u)
        if backend == "fast" and self.comparator.metastable_band_v == 0.0:
            return self._simulate_fast(
                u, noise, dac_noise, dac_gain, record_states, overload_policy
            )
        return self._simulate_reference(
            u, noise, dac_noise, dac_gain, record_states, overload_policy
        )

    def _prepare_inputs(
        self, u: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, float]:
        """Draw every stochastic term for a block, shared by both backends.

        Every stochastic term draws from its own child stream (see
        ``__init__``), so each term's draw positions depend only on how
        many samples have been simulated — not on how the record was
        chunked. With equal RNG state both backends, and any chunking of
        the same record, consume identical streams, which is what makes
        them bit-identical rather than merely statistically equivalent.
        """
        n = u.size
        ni = self.nonideality
        last_input = self._last_input
        self._last_input = float(u[-1])
        # Clock jitter: error = delta_t * du/dt, applied to the input.
        if ni.clock_jitter_s > 0.0:
            slope = np.empty_like(u)
            slope[1:] = (u[1:] - u[:-1]) * self.params.sampling_rate_hz
            if last_input is not None:
                # Chunk continuation: the slope at the chunk's first
                # sample differences against the previous chunk's last
                # sample, exactly as an unchunked call would at the
                # same position.
                slope[0] = (u[0] - last_input) * self.params.sampling_rate_hz
            else:
                slope[0] = slope[1] if n > 1 else 0.0
            jitter = ni.clock_jitter_s * self._jitter_rng.standard_normal(n)
            u = u + jitter * slope

        # Per-sample analog noise entering the first integrator.
        if self._noise_sigma_u > 0.0:
            noise = self._noise_sigma_u * self._noise_rng.standard_normal(n)
        else:
            noise = np.zeros(n)
        if self._flicker is not None:
            noise = noise + self._flicker.sample_block(n)
        # Un-shaped DAC reference noise adds at the same node.
        if self.dac.reference_noise_sigma > 0.0:
            dac_noise = self.dac.reference_noise_sigma * self._dac_rng.standard_normal(n)
        else:
            dac_noise = None
        dac_gain = 1.0 + self.dac.reference_error
        return u, noise, dac_noise, dac_gain

    def _simulate_fast(
        self,
        u: np.ndarray,
        noise: np.ndarray,
        dac_noise: np.ndarray | None,
        dac_gain: float,
        record_states: bool,
        overload_policy: str,
    ) -> ModulatorOutput:
        """Run the prepared block through :mod:`repro.sdm.fastpath`."""
        s1, s2 = self.stage1, self.stage2
        comp = self.comparator
        fast_comparator = comp.is_ideal()
        a1 = s1.signal_gain * s1.gain_error
        result = fastpath.run_loop(
            au=a1 * u,
            noise=noise,
            dac_noise=dac_noise,
            dac_gain=dac_gain,
            p1=s1.leak,
            b1=s1.feedback_gain * s1.gain_error,
            p2=s2.leak,
            a2=s2.signal_gain * s2.gain_error,
            b2=s2.feedback_gain * s2.gain_error,
            swing=s1.swing_limit,
            x1=s1.state,
            x2=s2.state,
            record_states=record_states,
            raise_on_clip=(overload_policy == "raise"),
            ideal_comparator=fast_comparator,
            comp_offset=comp.offset_v,
            comp_hysteresis=comp.hysteresis_v,
            comp_previous=comp.previous_decision,
        )
        if not fast_comparator:
            comp._previous = result.comp_previous
        if result.overload_index >= 0:
            # Mirror the reference loop: stage states are not committed
            # when the run aborts on the first clipped cycle.
            raise ModulatorOverloadError(
                result.overload_index, (result.x1, result.x2)
            )
        s1.state, s2.state = result.x1, result.x2
        return ModulatorOutput(
            bitstream=result.bits,
            clipped_samples=result.clipped,
            states=result.states,
        )

    def _simulate_reference(
        self,
        u: np.ndarray,
        noise: np.ndarray,
        dac_noise: np.ndarray | None,
        dac_gain: float,
        record_states: bool,
        overload_policy: str,
    ) -> ModulatorOutput:
        """The original cycle-accurate Python loop (the ground truth)."""
        n = u.size
        bits = np.empty(n, dtype=np.int8)
        states = np.empty((n, 2)) if record_states else None
        clipped = 0

        # Local bindings for the hot loop.
        s1, s2 = self.stage1, self.stage2
        comp = self.comparator
        fast_comparator = comp.is_ideal()
        a1, b1 = s1.signal_gain * s1.gain_error, s1.feedback_gain * s1.gain_error
        a2, b2 = s2.signal_gain * s2.gain_error, s2.feedback_gain * s2.gain_error
        p1, p2 = s1.leak, s2.leak
        swing = s1.swing_limit
        x1, x2 = s1.state, s2.state

        for i in range(n):
            if fast_comparator:
                v = 1.0 if x2 >= 0.0 else -1.0
            else:
                v = float(comp.decide(x2))
            fb = v * dac_gain
            if dac_noise is not None:
                fb += dac_noise[i]
            x1_new = p1 * x1 + a1 * u[i] - b1 * fb + noise[i]
            x2_new = p2 * x2 + a2 * x1 - b2 * fb
            if x1_new > swing or x1_new < -swing or x2_new > swing or x2_new < -swing:
                clipped += 1
                if overload_policy == "raise":
                    raise ModulatorOverloadError(i, (x1_new, x2_new))
                x1_new = min(max(x1_new, -swing), swing)
                x2_new = min(max(x2_new, -swing), swing)
            x1, x2 = x1_new, x2_new
            bits[i] = 1 if v > 0 else -1
            if states is not None:
                states[i, 0] = x1
                states[i, 1] = x2

        s1.state, s2.state = x1, x2
        return ModulatorOutput(
            bitstream=bits, clipped_samples=clipped, states=states
        )

    def simulate_batch(
        self,
        loop_inputs: np.ndarray,
        record_states: bool = False,
        overload_policy: str = "ignore",
        backend: str | None = None,
    ) -> list[ModulatorOutput]:
        """Run several independent input segments through one call.

        Models a bank of identical modulators (one per array element)
        converting in parallel: every row of ``loop_inputs`` (shape
        ``(n_segments, n_samples)``) starts from this instance's current
        analog state and evolves independently. Unlike :meth:`simulate`,
        the instance state and comparator memory are left untouched —
        the batch is a stateless fan-out, not a continuation of the
        stream. Stochastic terms are drawn row by row, so with an ideal
        (noiseless) configuration each row is bit-identical to a fresh
        single-segment run.
        """
        u = np.asarray(loop_inputs, dtype=float)
        if u.ndim != 2:
            raise ConfigurationError(
                "batched loop input must be (n_segments, n_samples)"
            )
        saved = self.state_snapshot()
        outputs: list[ModulatorOutput] = []
        try:
            for row in u:
                self.restore_state(saved)
                outputs.append(
                    self.simulate(
                        row,
                        record_states=record_states,
                        overload_policy=overload_policy,
                        backend=backend,
                    )
                )
        finally:
            self.restore_state(saved)
        return outputs

    def describe(self) -> str:
        """Human-readable configuration summary."""
        c = self.coefficients
        return "\n".join(
            [
                "SecondOrderSDM",
                f"  fs              : {self.params.sampling_rate_hz / 1e3:.0f} kS/s",
                f"  OSR / out rate  : {self.params.osr} / "
                f"{self.params.output_rate_hz:.0f} S/s",
                f"  coefficients    : a1={c.a1} a2={c.a2} b1={c.b1} b2={c.b2}",
                f"  input full scale: {self.input_full_scale:.3f} Vref",
                f"  noise sigma     : {self._noise_sigma_u * 1e6:.2f} uVref/sample",
            ]
        )
