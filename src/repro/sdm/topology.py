"""Loop-filter coefficients and stability screening.

The modulator follows the Boser-Wooley arrangement (two delaying SC
integrators, single-bit feedback to both stages), which Fig. 6 of the
paper draws: the sensor/reference branch feeds the first stage whose
output feeds the second, and the comparator decision switches the
reference polarity back into both.

Difference equations (all quantities normalized to Vref):

    x1[n+1] = p1 * x1[n] + a1 * (u[n] - v[n])
    x2[n+1] = p2 * x2[n] + a2 * (x1[n] - v[n])
    v[n]    = sign(x2[n])

with leak factors p = 1 at infinite op-amp gain. The classic 0.5/0.5
scaling keeps the single-bit loop stable for inputs up to roughly 0.8 of
the feedback reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class LoopCoefficients:
    """Normalized charge-transfer gains of the two integrator stages.

    ``a1``/``a2`` are the signal gains (Cin/Cint); ``b1``/``b2`` the
    feedback-DAC gains (Cfb/Cint). In the paper's circuit the input and
    feedback branches of each stage share the integration capacitor, and
    the nominal design uses b = a; the first-stage feedback ``b1`` is the
    adjustable knob the paper's outlook proposes for resolution tuning.
    """

    a1: float = 0.5
    a2: float = 0.5
    b1: float = 0.5
    b2: float = 0.5

    def __post_init__(self) -> None:
        for name in ("a1", "a2", "b1", "b2"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"coefficient {name} must be positive")

    @classmethod
    def boser_wooley(cls) -> "LoopCoefficients":
        """The textbook 0.5/0.5 scaling used as the paper-default loop."""
        return cls(a1=0.5, a2=0.5, b1=0.5, b2=0.5)

    def with_feedback_ratio(self, ratio: float) -> "LoopCoefficients":
        """Scale the first-stage feedback gain (paper future-work knob).

        ``ratio`` multiplies ``b1``; ratios below 1 raise the effective
        input gain (input full scale shrinks to ``b1``), trading overload
        margin for resolution.
        """
        if ratio <= 0:
            raise ConfigurationError("feedback ratio must be positive")
        if ratio == 1.0:
            # Frozen dataclass: safe to share, and it keeps a DAC built
            # from caller-supplied coefficients aliased to them.
            return self
        return LoopCoefficients(
            a1=self.a1, a2=self.a2, b1=self.b1 * ratio, b2=self.b2
        )

    @property
    def input_full_scale(self) -> float:
        """Input level (in Vref units) at which the loop mean saturates.

        A single-bit loop cannot represent a DC beyond the first-stage
        feedback strength: |u| < b1 is the hard limit; practical stable
        amplitude is ~0.75 of it.
        """
        return self.b1 / self.a1

    def stability_margin(self, amplitude: float, n_samples: int = 20000,
                         seed: int = 1234) -> bool:
        """Empirical stability screen: simulate an ideal loop at the given
        input amplitude and report whether the states stay bounded.

        Uses a sine input at a non-bin frequency plus a tiny dither; the
        state bound (10x reference) is far above the stable orbit of a
        healthy second-order loop.
        """
        if amplitude < 0:
            raise ConfigurationError("amplitude must be non-negative")
        rng = np.random.default_rng(seed)
        u = amplitude * np.sin(
            2.0 * np.pi * 0.013 * np.arange(n_samples)
        ) + 1e-6 * rng.standard_normal(n_samples)
        x1 = x2 = 0.0
        for un in u:
            v = 1.0 if x2 >= 0.0 else -1.0
            x1 = x1 + self.a1 * un - self.b1 * v
            x2 = x2 + self.a2 * x1 - self.b2 * v
            if abs(x1) > 10.0 or abs(x2) > 10.0:
                return False
        return True
