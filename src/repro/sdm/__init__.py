"""Second-order single-bit switched-capacitor sigma-delta modulator.

The readout circuit of Sec. 2.2 / Fig. 6: a fully-differential two-stage
SC filter integrating the charge difference between the sensor and
reference capacitors, quantized by a single-bit comparator at 128 kS/s.
This package provides a cycle-accurate behavioural model with the analog
non-idealities that set the real converter's noise floor, plus z-domain
linear analysis (NTF/STF) and the adjustable feedback DAC the paper's
future-work section proposes.
"""

from .fastpath import kernel_available
from .topology import LoopCoefficients
from .linear import LinearLoopModel
from .comparator import Comparator
from .integrator import SCIntegrator
from .nonidealities import (
    FlickerNoiseGenerator,
    integrator_noise_sigma_v,
    jitter_error_sigma,
    kt_over_c_sigma_v,
)
from .frontend import CapacitiveFrontEnd, VoltageFrontEnd
from .feedback import FeedbackDAC
from .modulator import ModulatorOutput, SecondOrderSDM
from .multibit import MultibitQuantizer, MultibitSDM, ThermometerDAC
from .higher_order import STANDARD_GAINS, HigherOrderSDM
from .chopper import ChoppedSecondOrderSDM

__all__ = [
    "CapacitiveFrontEnd",
    "ChoppedSecondOrderSDM",
    "Comparator",
    "FeedbackDAC",
    "FlickerNoiseGenerator",
    "HigherOrderSDM",
    "LinearLoopModel",
    "LoopCoefficients",
    "ModulatorOutput",
    "MultibitQuantizer",
    "MultibitSDM",
    "SCIntegrator",
    "STANDARD_GAINS",
    "SecondOrderSDM",
    "ThermometerDAC",
    "VoltageFrontEnd",
    "integrator_noise_sigma_v",
    "jitter_error_sigma",
    "kernel_available",
    "kt_over_c_sigma_v",
]
