"""Vectorized/compiled fast path for the second-order sigma-delta loop.

The modulator recurrence is inherently serial — the comparator decision
at sample ``n`` feeds back into the states that produce the decision at
``n + 1`` — so it cannot be expressed as NumPy whole-array operations
without changing its semantics. The fast backend therefore works in two
layers, both *bit-identical* to the reference loop in
:mod:`repro.sdm.modulator`:

* **Block preparation in NumPy** — all stochastic terms (kT/C white
  noise, flicker, DAC reference noise, jitter slope) and the input
  scaling ``a1 * u`` are precomputed as whole arrays, exactly as the
  reference path draws them, so the per-sample recurrence touches only
  five scalar state updates.
* **A compiled scalar kernel** — the residual recurrence is run by a
  small C kernel compiled on first use with the system C compiler and
  loaded through :mod:`ctypes`. The kernel performs the identical
  IEEE-754 double operations in the identical order (compiled with
  FP contraction disabled), which is what makes bitstreams bit-identical
  rather than merely statistically equivalent. When no C compiler is
  available the same recurrence runs as a tightened pure-Python loop —
  slower, but still exact, so results never depend on the toolchain.

The kernel covers deterministic comparators (ideal, offset, hysteresis).
Metastable comparators draw randomness *inside* the loop; callers are
expected to route those to the reference implementation (see
:meth:`repro.sdm.modulator.SecondOrderSDM.simulate`).
"""

from __future__ import annotations

import ctypes
import os
import subprocess
import tempfile
from dataclasses import dataclass

import numpy as np

_KERNEL_C_SOURCE = r"""
#include <stdint.h>

/* Second-order single-bit sigma-delta recurrence.
 *
 * Arithmetic mirrors repro/sdm/modulator.py's reference loop exactly:
 * evaluation order of every floating-point expression matches the
 * Python source so the results are bit-identical (build with
 * -ffp-contract=off so no FMA contraction changes rounding).
 *
 * Returns 0 on success, or (i + 1) when sample i clipped and
 * raise_on_clip was set; in that case state[] holds the unclipped
 * offending (x1, x2) for the exception message and no state is
 * considered committed.
 */
long long sdm_run(long long n,
                  const double *au,        /* a1 * u[i], precomputed   */
                  const double *noise,     /* per-sample input noise   */
                  const double *dac_noise, /* may be NULL              */
                  double dac_gain,
                  double p1, double b1,
                  double p2, double a2, double b2,
                  double swing,
                  double *state,           /* in/out: {x1, x2}         */
                  int8_t *bits,            /* out: n decisions         */
                  double *states,          /* out: n * 2, may be NULL  */
                  int raise_on_clip,
                  int ideal_comparator,
                  double comp_offset, double comp_hysteresis,
                  int comp_previous,
                  long long *clipped_out,
                  int *comp_previous_out)
{
    double x1 = state[0];
    double x2 = state[1];
    long long clipped = 0;
    int prev = comp_previous;
    long long i;

    for (i = 0; i < n; i++) {
        double v, fb, x1_new, x2_new;
        if (ideal_comparator) {
            v = (x2 >= 0.0) ? 1.0 : -1.0;
        } else {
            double threshold = comp_offset - 0.5 * comp_hysteresis * (double)prev;
            double margin = x2 - threshold;
            prev = (margin >= 0.0) ? 1 : -1;
            v = (double)prev;
        }
        fb = v * dac_gain;
        if (dac_noise) {
            fb += dac_noise[i];
        }
        x1_new = p1 * x1 + au[i] - b1 * fb + noise[i];
        x2_new = p2 * x2 + a2 * x1 - b2 * fb;
        if (x1_new > swing || x1_new < -swing ||
            x2_new > swing || x2_new < -swing) {
            clipped++;
            if (raise_on_clip) {
                state[0] = x1_new;
                state[1] = x2_new;
                *clipped_out = clipped;
                *comp_previous_out = prev;
                return i + 1;
            }
            if (x1_new > swing) x1_new = swing;
            else if (x1_new < -swing) x1_new = -swing;
            if (x2_new > swing) x2_new = swing;
            else if (x2_new < -swing) x2_new = -swing;
        }
        x1 = x1_new;
        x2 = x2_new;
        bits[i] = (v > 0.0) ? 1 : -1;
        if (states) {
            states[2 * i] = x1;
            states[2 * i + 1] = x2;
        }
    }
    state[0] = x1;
    state[1] = x2;
    *clipped_out = clipped;
    *comp_previous_out = prev;
    return 0;
}
"""

_CFLAGS = ["-O2", "-ffp-contract=off", "-fno-fast-math", "-fPIC", "-shared"]

# Module-level kernel cache: None = not tried yet, False = unavailable,
# otherwise the loaded ctypes function.
_kernel: object = None


def _try_compile_kernel():
    """Compile and load the C kernel; return the bound function or None.

    The shared object lives in a private temporary directory that is kept
    for the lifetime of the process (the library must stay mapped). Any
    failure — no compiler, sandboxed filesystem, unloadable object —
    degrades silently to the Python fallback.
    """
    compilers = [os.environ.get("REPRO_CC"), "cc", "gcc", "clang"]
    build_dir = tempfile.mkdtemp(prefix="repro-sdm-kernel-")
    src = os.path.join(build_dir, "sdm_kernel.c")
    lib_path = os.path.join(build_dir, "sdm_kernel.so")
    try:
        with open(src, "w") as fh:
            fh.write(_KERNEL_C_SOURCE)
        for cc in compilers:
            if not cc:
                continue
            try:
                result = subprocess.run(
                    [cc, *_CFLAGS, "-o", lib_path, src],
                    capture_output=True,
                    timeout=60,
                )
            except (OSError, subprocess.SubprocessError):
                continue
            if result.returncode == 0 and os.path.exists(lib_path):
                break
        else:
            return None
        lib = ctypes.CDLL(lib_path)
    except OSError:
        return None
    fn = lib.sdm_run
    dbl_p = ctypes.POINTER(ctypes.c_double)
    fn.restype = ctypes.c_longlong
    fn.argtypes = [
        ctypes.c_longlong,  # n
        dbl_p,  # au
        dbl_p,  # noise
        dbl_p,  # dac_noise (nullable)
        ctypes.c_double,  # dac_gain
        ctypes.c_double,  # p1
        ctypes.c_double,  # b1
        ctypes.c_double,  # p2
        ctypes.c_double,  # a2
        ctypes.c_double,  # b2
        ctypes.c_double,  # swing
        dbl_p,  # state
        ctypes.POINTER(ctypes.c_int8),  # bits
        dbl_p,  # states (nullable)
        ctypes.c_int,  # raise_on_clip
        ctypes.c_int,  # ideal_comparator
        ctypes.c_double,  # comp_offset
        ctypes.c_double,  # comp_hysteresis
        ctypes.c_int,  # comp_previous
        ctypes.POINTER(ctypes.c_longlong),  # clipped_out
        ctypes.POINTER(ctypes.c_int),  # comp_previous_out
    ]
    return fn


def _get_kernel():
    global _kernel
    if _kernel is None:
        _kernel = _try_compile_kernel() or False
    return _kernel or None


def kernel_available() -> bool:
    """True when the compiled C kernel could be built and loaded."""
    return _get_kernel() is not None


@dataclass
class LoopResult:
    """Raw outcome of one fast-path recurrence run."""

    bits: np.ndarray  # int8 +/-1 decisions
    clipped: int  # cycles that hit the swing limiter
    states: np.ndarray | None  # (n, 2) trajectory when requested
    x1: float  # final first-stage state
    x2: float  # final second-stage state
    comp_previous: int  # comparator memory after the run
    #: Index of the first clipped sample when raise_on_clip was set and
    #: tripped; -1 otherwise. ``x1``/``x2`` then hold the unclipped
    #: offending states rather than committed loop state.
    overload_index: int = -1


def run_loop(
    au: np.ndarray,
    noise: np.ndarray,
    dac_noise: np.ndarray | None,
    dac_gain: float,
    p1: float,
    b1: float,
    p2: float,
    a2: float,
    b2: float,
    swing: float,
    x1: float,
    x2: float,
    record_states: bool = False,
    raise_on_clip: bool = False,
    ideal_comparator: bool = True,
    comp_offset: float = 0.0,
    comp_hysteresis: float = 0.0,
    comp_previous: int = 1,
    force_python: bool = False,
) -> LoopResult:
    """Run the prepared recurrence through the fastest available engine.

    ``au`` must already be ``a1 * u`` (the precomputed input branch) and
    ``noise`` the fully-drawn per-sample noise so the kernel stays
    deterministic. ``force_python`` pins the pure-Python engine — used by
    the equivalence tests to prove both engines agree bit-for-bit.
    """
    n = int(au.size)
    au = np.ascontiguousarray(au, dtype=np.float64)
    noise = np.ascontiguousarray(noise, dtype=np.float64)
    if dac_noise is not None:
        dac_noise = np.ascontiguousarray(dac_noise, dtype=np.float64)
    bits = np.empty(n, dtype=np.int8)
    states = np.empty((n, 2), dtype=np.float64) if record_states else None

    kernel = None if force_python else _get_kernel()
    if kernel is not None:
        dbl_p = ctypes.POINTER(ctypes.c_double)
        state = np.array([x1, x2], dtype=np.float64)
        clipped = ctypes.c_longlong(0)
        prev_out = ctypes.c_int(comp_previous)
        rc = kernel(
            n,
            au.ctypes.data_as(dbl_p),
            noise.ctypes.data_as(dbl_p),
            dac_noise.ctypes.data_as(dbl_p) if dac_noise is not None else None,
            dac_gain,
            p1,
            b1,
            p2,
            a2,
            b2,
            swing,
            state.ctypes.data_as(dbl_p),
            bits.ctypes.data_as(ctypes.POINTER(ctypes.c_int8)),
            states.ctypes.data_as(dbl_p) if states is not None else None,
            1 if raise_on_clip else 0,
            1 if ideal_comparator else 0,
            comp_offset,
            comp_hysteresis,
            comp_previous,
            ctypes.byref(clipped),
            ctypes.byref(prev_out),
        )
        return LoopResult(
            bits=bits,
            clipped=int(clipped.value),
            states=states,
            x1=float(state[0]),
            x2=float(state[1]),
            comp_previous=int(prev_out.value),
            overload_index=int(rc) - 1 if rc > 0 else -1,
        )

    # -- pure-Python engine: the identical recurrence, tightened --------------
    prev = comp_previous
    clipped_count = 0
    for i in range(n):
        if ideal_comparator:
            v = 1.0 if x2 >= 0.0 else -1.0
        else:
            threshold = comp_offset - 0.5 * comp_hysteresis * prev
            margin = x2 - threshold
            prev = 1 if margin >= 0.0 else -1
            v = float(prev)
        fb = v * dac_gain
        if dac_noise is not None:
            fb += dac_noise[i]
        x1_new = p1 * x1 + au[i] - b1 * fb + noise[i]
        x2_new = p2 * x2 + a2 * x1 - b2 * fb
        if x1_new > swing or x1_new < -swing or x2_new > swing or x2_new < -swing:
            clipped_count += 1
            if raise_on_clip:
                return LoopResult(
                    bits=bits,
                    clipped=clipped_count,
                    states=states,
                    x1=float(x1_new),
                    x2=float(x2_new),
                    comp_previous=prev,
                    overload_index=i,
                )
            x1_new = min(max(x1_new, -swing), swing)
            x2_new = min(max(x2_new, -swing), swing)
        x1, x2 = x1_new, x2_new
        bits[i] = 1 if v > 0 else -1
        if states is not None:
            states[i, 0] = x1
            states[i, 1] = x2
    return LoopResult(
        bits=bits,
        clipped=clipped_count,
        states=states,
        x1=float(x1),
        x2=float(x2),
        comp_previous=prev,
    )
