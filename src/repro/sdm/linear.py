"""z-domain linear model of the loop: NTF, STF, predicted SQNR.

Replacing the comparator by an additive white noise source E and unity
gain, the Boser-Wooley loop with delaying integrators H(z) =
z^-1/(1 - z^-1) gives

    V = NTF(z) * E + STF(z) * U,
    NTF(z) = (1 - z^-1)^2 / D(z),
    STF(z) = a1 a2 z^-2 / D(z),
    D(z)   = (1 - z^-1)^2 + b2 z^-1 (1 - z^-1) + a2 b1 z^-2

(for the nominal 0.5/0.5 case D reduces to 1 - 1.5 z^-1 + 0.75 z^-2,
whose poles sit at |z| = sqrt(0.75)). The
linear model predicts in-band quantization noise and hence the SQNR-vs-OSR
slope of ~15 dB/octave the ablation benchmarks check against the full
nonlinear simulation.
"""

from __future__ import annotations

import numpy as np
from scipy import signal

from ..errors import ConfigurationError
from .topology import LoopCoefficients


class LinearLoopModel:
    """NTF/STF analysis of a second-order loop."""

    def __init__(self, coefficients: LoopCoefficients | None = None):
        self.coefficients = coefficients or LoopCoefficients.boser_wooley()
        c = self.coefficients
        # Polynomials in z^-1 (ascending powers of z^-1). Solving the block
        # diagram of topology.py's difference equations:
        #   V (1 + b2 H + a2 b1 H^2) = a1 a2 H^2 U + E,  H = z^-1/(1-z^-1)
        #   D = (1-z^-1)^2 + b2 z^-1 (1-z^-1) + a2 b1 z^-2
        self._den = np.array(
            [1.0, -2.0 + c.b2, 1.0 - c.b2 + c.a2 * c.b1]
        )
        self._ntf_num = np.array([1.0, -2.0, 1.0])
        self._stf_num = np.array([0.0, 0.0, c.a1 * c.a2])

    # -- pole/zero inspection ------------------------------------------------

    @property
    def poles(self) -> np.ndarray:
        """Loop poles in the z-plane."""
        return np.roots(self._den)

    @property
    def is_stable(self) -> bool:
        """All linear-model poles strictly inside the unit circle."""
        return bool(np.all(np.abs(self.poles) < 1.0))

    @property
    def max_ntf_gain(self) -> float:
        """Peak out-of-band NTF gain (Lee-criterion style figure)."""
        _, h = signal.freqz(self._ntf_num, self._den, worN=4096)
        return float(np.max(np.abs(h)))

    # -- frequency responses ----------------------------------------------------

    def ntf(self, freqs_hz: np.ndarray, sample_rate_hz: float) -> np.ndarray:
        """Complex NTF at the given frequencies."""
        w = self._norm_w(freqs_hz, sample_rate_hz)
        _, h = signal.freqz(self._ntf_num, self._den, worN=w)
        return h

    def stf(self, freqs_hz: np.ndarray, sample_rate_hz: float) -> np.ndarray:
        """Complex STF at the given frequencies."""
        w = self._norm_w(freqs_hz, sample_rate_hz)
        _, h = signal.freqz(self._stf_num, self._den, worN=w)
        return h

    @staticmethod
    def _norm_w(freqs_hz: np.ndarray, sample_rate_hz: float) -> np.ndarray:
        if sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be positive")
        freqs = np.atleast_1d(np.asarray(freqs_hz, dtype=float))
        if np.any(freqs < 0) or np.any(freqs > sample_rate_hz / 2):
            raise ConfigurationError("frequencies must lie in [0, Nyquist]")
        return 2.0 * np.pi * freqs / sample_rate_hz

    # -- noise prediction ----------------------------------------------------------

    def inband_quantization_noise_power(
        self, osr: int, n_points: int = 8192
    ) -> float:
        """Quantization noise power inside f < fs/(2*OSR).

        The single-bit quantizer error is modelled as white with total
        power Delta^2/12 = 4/12 (levels +/-1 -> Delta = 2) spread over
        [0, fs/2], shaped by |NTF|^2.
        """
        if osr < 2:
            raise ConfigurationError("OSR must be >= 2")
        # Normalized band [0, 0.5/osr] in cycles/sample.
        f = np.linspace(0.0, 0.5 / osr, n_points)
        w = 2.0 * np.pi * f
        _, h = signal.freqz(self._ntf_num, self._den, worN=w)
        e_psd = (2.0**2 / 12.0) * 2.0  # one-sided PSD over f in [0, 0.5]
        integrand = e_psd * np.abs(h) ** 2
        return float(np.trapezoid(integrand, f))

    def predicted_sqnr_db(self, osr: int, amplitude: float = 0.5) -> float:
        """Signal-to-quantization-noise for a sine of given amplitude."""
        if amplitude <= 0:
            raise ConfigurationError("amplitude must be positive")
        signal_power = amplitude**2 / 2.0
        noise = self.inband_quantization_noise_power(osr)
        return 10.0 * np.log10(signal_power / noise)

    def sqnr_slope_db_per_octave(
        self, osr_low: int = 32, osr_high: int = 256
    ) -> float:
        """SQNR growth per OSR octave; ~15 dB for a second-order loop."""
        octaves = np.log2(osr_high / osr_low)
        delta = self.predicted_sqnr_db(osr_high) - self.predicted_sqnr_db(
            osr_low
        )
        return float(delta / octaves)
