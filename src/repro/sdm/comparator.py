"""Single-bit quantizer (latched comparator) behavioural model.

The comparator closes the loop in Fig. 6. Inside a high-loop-gain
sigma-delta its imperfections are strongly noise-shaped, but they are
modelled anyway so ablation studies can show *why* they barely matter:

* input-referred offset — shifts the decision threshold (shaped away),
* hysteresis — the previous decision biases the threshold,
* metastability — decisions within a tiny band of the threshold resolve
  randomly, modelling regeneration time running out.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError


class Comparator:
    """Latched single-bit comparator with offset, hysteresis, metastability.

    Parameters
    ----------
    offset_v:
        Static input-referred offset [same units as the loop state].
    hysteresis_v:
        The threshold moves by ``-hysteresis_v/2 * previous_decision``:
        a comparator that last output +1 needs the input to fall below
        ``offset - hyst/2`` to flip.
    metastable_band_v:
        Half-width of the band around the threshold where the decision is
        a coin flip.
    rng:
        Random generator for metastable resolutions (only used when
        ``metastable_band_v > 0``).
    """

    def __init__(
        self,
        offset_v: float = 0.0,
        hysteresis_v: float = 0.0,
        metastable_band_v: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        if hysteresis_v < 0:
            raise ConfigurationError("hysteresis must be non-negative")
        if metastable_band_v < 0:
            raise ConfigurationError("metastable band must be non-negative")
        self.offset_v = float(offset_v)
        self.hysteresis_v = float(hysteresis_v)
        self.metastable_band_v = float(metastable_band_v)
        self._rng = rng or np.random.default_rng(0)
        self._previous = 1

    def reset(self) -> None:
        self._previous = 1

    @property
    def previous_decision(self) -> int:
        return self._previous

    def decide(self, value: float) -> int:
        """Quantize one loop-state sample to +/-1."""
        threshold = self.offset_v - 0.5 * self.hysteresis_v * self._previous
        margin = value - threshold
        if self.metastable_band_v > 0.0 and abs(margin) < self.metastable_band_v:
            decision = 1 if self._rng.random() < 0.5 else -1
        else:
            decision = 1 if margin >= 0.0 else -1
        self._previous = decision
        return decision

    def is_ideal(self) -> bool:
        """True when every non-ideality is disabled (fast-path check)."""
        return (
            self.offset_v == 0.0
            and self.hysteresis_v == 0.0
            and self.metastable_band_v == 0.0
        )
