"""Generic order-N single-bit CIFB loop (design-space exploration).

The paper uses order 2. To let the ablation suite answer "what would a
3rd-order loop have bought?", this module implements the cascade-of-
integrators-feedback (CIFB) structure for arbitrary order:

    x_1[n+1] = x_1[n] + a_1 u[n] - b_1 v[n]
    x_k[n+1] = x_k[n] + a_k x_{k-1}[n] - b_k v[n]      (k = 2..N)
    v[n]     = sign(x_N[n])

with the classic conservative coefficient sets that keep single-bit
loops of order 1..4 stable (scaled-down integrator gains for higher
orders, per Norsworthy/Schreier/Temes tables).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

#: Conservative (a_k = b_k) gain sets for stable single-bit CIFB loops.
STANDARD_GAINS: dict[int, tuple[float, ...]] = {
    1: (0.5,),
    2: (0.5, 0.5),
    3: (0.2, 0.5, 0.5),
    4: (0.1, 0.3, 0.5, 0.5),
}


@dataclass(frozen=True)
class HigherOrderOutput:
    bitstream: np.ndarray
    clipped_samples: int


class HigherOrderSDM:
    """Single-bit CIFB modulator of order 1..4.

    Parameters
    ----------
    order:
        Loop order (paper: 2).
    gains:
        Per-stage gains a_k (= feedback b_k); defaults to the
        conservative :data:`STANDARD_GAINS` entry.
    swing_limit:
        Integrator saturation (Vref-normalized units).
    """

    def __init__(
        self,
        order: int = 3,
        gains: tuple[float, ...] | None = None,
        swing_limit: float = 3.0,
    ):
        if order not in STANDARD_GAINS:
            raise ConfigurationError(
                f"order must be one of {sorted(STANDARD_GAINS)}"
            )
        self.order = int(order)
        self.gains = tuple(gains) if gains is not None else STANDARD_GAINS[order]
        if len(self.gains) != self.order:
            raise ConfigurationError("need one gain per stage")
        if any(g <= 0 for g in self.gains):
            raise ConfigurationError("gains must be positive")
        if swing_limit <= 0:
            raise ConfigurationError("swing limit must be positive")
        self.swing_limit = float(swing_limit)
        self.reset()

    def reset(self) -> None:
        self._state = np.zeros(self.order)

    @property
    def input_full_scale(self) -> float:
        """DC representability bound b_1 / a_1 (= 1 for a_k = b_k)."""
        return 1.0

    @property
    def recommended_max_amplitude(self) -> float:
        """Stable sine amplitude shrinks with order (empirical ~0.8,
        0.75, 0.5, 0.25 for orders 1..4 with the standard gains)."""
        return {1: 0.8, 2: 0.75, 3: 0.5, 4: 0.25}[self.order]

    def simulate(self, loop_input: np.ndarray) -> HigherOrderOutput:
        """Run the loop (streaming: state persists across calls)."""
        u = np.asarray(loop_input, dtype=float)
        if u.ndim != 1:
            raise ConfigurationError("loop input must be 1-D")
        n = u.size
        bits = np.empty(n, dtype=np.int8)
        state = self._state.copy()
        gains = self.gains
        order = self.order
        swing = self.swing_limit
        clipped = 0
        for i in range(n):
            v = 1.0 if state[-1] >= 0.0 else -1.0
            bits[i] = 1 if v > 0 else -1
            prev = state.copy()
            new0 = state[0] + gains[0] * (u[i] - v)
            state[0] = min(max(new0, -swing), swing)
            if new0 != state[0]:
                clipped += 1
            for k in range(1, order):
                newk = state[k] + gains[k] * (prev[k - 1] - v)
                clipped += newk > swing or newk < -swing
                state[k] = min(max(newk, -swing), swing)
        self._state = state
        return HigherOrderOutput(bitstream=bits, clipped_samples=int(clipped))

    def theoretical_sqnr_slope_db_per_octave(self) -> float:
        """(2N + 1) * 3.01 dB per OSR octave."""
        return (2 * self.order + 1) * 10.0 * np.log10(2.0)
