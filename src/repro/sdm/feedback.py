"""Single-bit feedback DAC with the adjustable first-stage capacitor.

The paper's outlook proposes improving resolution "by adjusting the
feedback capacitors of the first modulator stage". In a single-bit SC
loop the feedback charge is ``+/- Cfb * Vref``; shrinking Cfb relative to
the input branch raises the conversion gain (smaller capacitance change
maps to loop full scale) at the cost of overload margin. This module
models that knob plus the DAC's reference-voltage error sources.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .topology import LoopCoefficients


class FeedbackDAC:
    """Single-bit capacitive feedback DAC.

    Parameters
    ----------
    coefficients:
        Nominal loop scaling to derive the feedback gains from.
    cfb_ratio:
        Multiplier on the first-stage feedback capacitor (1.0 = nominal).
        The paper's future-work tuning range; values below ~0.5 destabilize
        the nominal loop for full-scale inputs (the ablation bench maps
        this).
    reference_error:
        Static relative error of the DAC reference levels (gain error of
        the whole converter; not noise-shaped).
    reference_noise_sigma:
        Per-sample RMS noise on the reference [Vref units]. Reference
        noise enters like input noise — un-shaped — making it one of the
        critical analog budgets.
    """

    def __init__(
        self,
        coefficients: LoopCoefficients | None = None,
        cfb_ratio: float = 1.0,
        reference_error: float = 0.0,
        reference_noise_sigma: float = 0.0,
    ):
        if cfb_ratio <= 0:
            raise ConfigurationError("feedback-capacitor ratio must be positive")
        if reference_noise_sigma < 0:
            raise ConfigurationError("reference noise must be non-negative")
        if abs(reference_error) >= 0.5:
            raise ConfigurationError("reference error must be a small fraction")
        base = coefficients or LoopCoefficients.boser_wooley()
        self.coefficients = base.with_feedback_ratio(cfb_ratio)
        self.cfb_ratio = float(cfb_ratio)
        self.reference_error = float(reference_error)
        self.reference_noise_sigma = float(reference_noise_sigma)

    def feedback_levels(self) -> tuple[float, float]:
        """(negative, positive) static feedback values in Vref units."""
        hi = 1.0 + self.reference_error
        return (-hi, hi)

    def feedback_value(
        self, decision: int, rng: np.random.Generator | None = None
    ) -> float:
        """The analog feedback quantity for a comparator decision."""
        if decision not in (-1, 1):
            raise ConfigurationError("decision must be +/-1")
        value = float(decision) * (1.0 + self.reference_error)
        if self.reference_noise_sigma > 0.0:
            if rng is None:
                raise ConfigurationError(
                    "reference noise requires a random generator"
                )
            value += self.reference_noise_sigma * rng.standard_normal()
        return value

    @property
    def conversion_gain_boost(self) -> float:
        """Input-referred gain increase relative to the nominal Cfb.

        Halving Cfb doubles how much loop input a given capacitance
        difference produces: boost = 1 / cfb_ratio.
        """
        return 1.0 / self.cfb_ratio
