"""Switched-capacitor integrator stage with analog non-idealities.

One stage of Fig. 6's two-stage SC filter. The behavioural update is

    x[n+1] = p * x[n] + gain_eps * (a * in[n] - b * fb[n]) + noise[n]

where ``p`` is the finite-DC-gain leak, ``gain_eps`` the static charge-
transfer gain error (also from finite gain), and the state saturates at
the op-amp output swing.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .nonidealities import leak_factor_from_gain


class SCIntegrator:
    """Behavioural delaying SC integrator.

    Parameters
    ----------
    signal_gain:
        Charge-transfer gain ``a`` of the input branch (Cin/Cint).
    feedback_gain:
        Gain ``b`` of the DAC branch (Cfb/Cint).
    opamp_gain:
        Finite op-amp DC gain; sets the leak and the static gain error.
    swing_limit:
        Output saturation (in Vref-normalized units). Real SC integrators
        clip at the supply; 2-3x Vref is typical headroom for 5 V designs.
    """

    def __init__(
        self,
        signal_gain: float,
        feedback_gain: float,
        opamp_gain: float = 1e12,
        swing_limit: float = 3.0,
    ):
        if signal_gain <= 0 or feedback_gain <= 0:
            raise ConfigurationError("gains must be positive")
        if swing_limit <= 0:
            raise ConfigurationError("swing limit must be positive")
        self.signal_gain = float(signal_gain)
        self.feedback_gain = float(feedback_gain)
        self.opamp_gain = float(opamp_gain)
        self.swing_limit = float(swing_limit)
        self.leak = leak_factor_from_gain(opamp_gain, signal_gain)
        # Static charge-transfer deficit: a fraction 1/A of the charge
        # stays on the input cap.
        self.gain_error = 1.0 - 1.0 / opamp_gain
        self.state = 0.0

    def reset(self) -> None:
        self.state = 0.0

    def step(self, signal_in: float, feedback_in: float, noise: float = 0.0) -> float:
        """Advance one clock; returns the *previous* state (delaying).

        The delaying integrator presents last cycle's state to the next
        stage while absorbing this cycle's charge packet.
        """
        output = self.state
        new_state = (
            self.leak * self.state
            + self.gain_error
            * (self.signal_gain * signal_in - self.feedback_gain * feedback_in)
            + noise
        )
        self.state = float(np.clip(new_state, -self.swing_limit, self.swing_limit))
        return output

    @property
    def is_saturated(self) -> bool:
        return abs(self.state) >= self.swing_limit
