"""Chopper stabilization of the first integrator (flicker mitigation).

CMOS op-amps flicker (1/f) below a corner that easily reaches kilohertz —
inside the converter's band once referred to the input. The standard SC
remedy is chopping: the input and the integrator are polarity-reversed by
a square wave at f_chop, which translates the amplifier's low-frequency
noise up to f_chop (out of band, later removed by the decimation filter)
while the signal, demodulated back, is untouched.

Behaviourally this is exact: with chopping enabled, the amplifier's
flicker noise contribution ``n(t)`` enters the loop multiplied by the
chop sequence ``c[n] in {+1,-1}``, so its in-band power is the flicker
PSD at ``f_chop`` — the white floor, not the 1/f peak.

:class:`ChoppedSecondOrderSDM` wraps the paper's loop with that
modulation; the ablation benchmark measures the recovered SNR on a loop
with a deliberately bad flicker corner.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..params import ModulatorParams, NonidealityParams
from .modulator import ModulatorOutput, SecondOrderSDM
from .nonidealities import FlickerNoiseGenerator, integrator_noise_sigma_v


class ChoppedSecondOrderSDM:
    """Second-order loop with first-integrator chopping.

    Parameters
    ----------
    params, nonideality:
        As for :class:`~repro.sdm.modulator.SecondOrderSDM`.
    chop_divider:
        Chop at ``fs / chop_divider``. The divider must be even and small
        enough that f_chop stays far above the signal band; 2 (chop at
        fs/2, the maximum) is the default and the best choice when the
        SC timing allows it.
    enabled:
        With ``False``, behaves exactly like the plain loop (the ablation
        baseline).
    """

    def __init__(
        self,
        params: ModulatorParams | None = None,
        nonideality: NonidealityParams | None = None,
        chop_divider: int = 2,
        enabled: bool = True,
        rng: np.random.Generator | None = None,
    ):
        if chop_divider < 2 or chop_divider % 2:
            raise ConfigurationError("chop divider must be even and >= 2")
        self.params = params or ModulatorParams()
        self.nonideality = nonideality or NonidealityParams()
        self.chop_divider = int(chop_divider)
        self.enabled = bool(enabled)
        self.rng = rng or np.random.default_rng(20040217)

        # The inner loop runs WITHOUT its own flicker source; flicker is
        # injected here, chopped or not.
        import dataclasses

        inner_ni = dataclasses.replace(self.nonideality, flicker_corner_hz=0.0)
        self.inner = SecondOrderSDM(
            params=self.params, nonideality=inner_ni, rng=self.rng
        )
        white_sigma = (
            integrator_noise_sigma_v(
                self.nonideality.sampling_cap_f, self.nonideality.temperature_k
            )
            / self.params.vref_v
        )
        self._flicker = (
            FlickerNoiseGenerator(
                corner_hz=self.nonideality.flicker_corner_hz,
                white_sigma=white_sigma if np.isfinite(white_sigma) and white_sigma > 0 else 1e-6,
                sample_rate_hz=self.params.sampling_rate_hz,
                rng=self.rng,
            )
            if self.nonideality.flicker_corner_hz > 0
            else None
        )
        self._phase = 0

    def reset(self) -> None:
        self.inner.reset()
        if self._flicker is not None:
            self._flicker.reset()
        self._phase = 0

    def chop_sequence(self, n: int) -> np.ndarray:
        """The +/-1 chop waveform for the next ``n`` samples."""
        idx = self._phase + np.arange(n)
        half = self.chop_divider // 2
        return np.where((idx // half) % 2 == 0, 1.0, -1.0)

    def simulate(self, loop_input: np.ndarray) -> ModulatorOutput:
        """Run the chopped loop over a normalized input sequence.

        The amplifier flicker noise ``n[k]`` enters multiplied by the
        chop sequence when chopping is enabled (so it appears at f_chop
        in the output spectrum, outside the band), or directly when
        disabled (the baseline 1/f-degraded loop).
        """
        u = np.asarray(loop_input, dtype=float)
        if u.ndim != 1:
            raise ConfigurationError("loop input must be 1-D")
        if self._flicker is not None and u.size:
            noise = self._flicker.sample_block(u.size)
            if self.enabled:
                noise = noise * self.chop_sequence(u.size)
            u = u + noise
        self._phase = (self._phase + u.size) % self.chop_divider
        return self.inner.simulate(u)
