"""Multi-bit quantizer and mismatch-shaping DAC (future-work territory).

The paper's outlook asks for better resolution and faster conversion.
Besides the feedback-capacitor knob it names, the standard next step for
this architecture is a multi-bit quantizer: each added quantizer bit buys
~6 dB SQNR at the same OSR and greatly relaxes loop stability. Its cost
is DAC element mismatch, which enters *un-shaped* at the input — unless
the element selection is mismatch-shaped. This module provides:

* :class:`MultibitQuantizer` — a mid-tread flash quantizer model,
* :class:`ThermometerDAC` — unit-element DAC with per-element mismatch,
  with ``"fixed"`` (no shaping) and ``"dwa"`` (data-weighted averaging,
  rotating element pointer = first-order mismatch shaping) selection,
* :class:`MultibitSDM` — the second-order loop closed around them.

The ablation benchmark shows the textbook result: with mismatch, DWA
recovers most of the SNR that fixed element selection loses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..params import ModulatorParams
from .topology import LoopCoefficients


class MultibitQuantizer:
    """Uniform quantizer aligned to the unit-element DAC grid.

    Input full scale is +/-1 (Vref-normalized loop units). With 2^bits
    levels realized by 2^bits - 1 unit elements, the level values are
    L_k = 2k/(2^bits - 1) - 1 for k = 0..2^bits-1 — the same grid the
    thermometer DAC produces, so the digital codes mean exactly what the
    feedback realizes (no static grid-mismatch gain error).
    """

    def __init__(self, bits: int = 3):
        if not 1 <= bits <= 6:
            raise ConfigurationError("quantizer bits must be 1..6")
        self.bits = int(bits)
        self.n_levels = 2**bits

    def quantize(self, value: float) -> int:
        """Loop state -> level index (0 .. n_levels-1)."""
        scaled = (value + 1.0) / 2.0 * (self.n_levels - 1)
        return int(np.clip(round(scaled), 0, self.n_levels - 1))

    def level_value(self, index: int) -> float:
        """Nominal analog value of a level index, in [-1, 1]."""
        if not 0 <= index < self.n_levels:
            raise ConfigurationError("level index out of range")
        return 2.0 * index / (self.n_levels - 1) - 1.0

    @property
    def step(self) -> float:
        return 2.0 / (self.n_levels - 1)


class ThermometerDAC:
    """Unit-element feedback DAC with mismatch and optional DWA.

    Parameters
    ----------
    n_elements:
        Number of unit elements (= quantizer levels - 1).
    mismatch_sigma:
        1-sigma relative mismatch of the unit elements.
    selection:
        ``"fixed"`` — always use elements 0..k-1 (mismatch becomes a
        code-dependent, un-shaped error);
        ``"dwa"`` — data-weighted averaging: a rotating pointer walks
        the element ring so every element is used equally often, first-
        order shaping the mismatch error.
    """

    def __init__(
        self,
        n_elements: int,
        mismatch_sigma: float = 0.0,
        selection: str = "dwa",
        rng: np.random.Generator | None = None,
    ):
        if n_elements < 1:
            raise ConfigurationError("DAC needs at least one element")
        if mismatch_sigma < 0:
            raise ConfigurationError("mismatch sigma must be >= 0")
        if selection not in ("fixed", "dwa"):
            raise ConfigurationError("selection must be fixed|dwa")
        self.n_elements = int(n_elements)
        self.selection = selection
        rng = rng or np.random.default_rng(321)
        # Unit element weights, normalized so the full-scale sum is exact
        # (a global gain error is invisible to the loop; the damage comes
        # from element-to-element differences).
        weights = 1.0 + mismatch_sigma * rng.standard_normal(self.n_elements)
        self.weights = weights / weights.mean()
        self._pointer = 0

    def reset(self) -> None:
        self._pointer = 0

    def convert(self, k: int) -> float:
        """Drive ``k`` of the elements high; return the analog output.

        Output is normalized to [-1, 1]: all elements high = +1, none
        = -1 (differential unit-element DAC).
        """
        if not 0 <= k <= self.n_elements:
            raise ConfigurationError("element count out of range")
        if self.selection == "fixed":
            chosen = np.arange(k)
        else:
            idx = (self._pointer + np.arange(k)) % self.n_elements
            self._pointer = (self._pointer + k) % self.n_elements
            chosen = idx
        high = float(self.weights[chosen].sum()) if k else 0.0
        # sum(weights) == n_elements by normalization.
        return 2.0 * high / self.n_elements - 1.0


@dataclass(frozen=True)
class MultibitOutput:
    """Result of a multi-bit modulator run."""

    codes: np.ndarray  # quantizer level indices per sample
    values: np.ndarray  # nominal analog values of those levels
    clipped_samples: int


class MultibitSDM:
    """Second-order loop with a multi-bit quantizer and mismatch DAC.

    Same topology as :class:`~repro.sdm.modulator.SecondOrderSDM` but the
    comparator is replaced by a flash quantizer and the two-level feedback
    by the thermometer DAC. Analog noise is omitted here — this model
    isolates quantization and DAC-mismatch behaviour for the ablation.
    """

    def __init__(
        self,
        params: ModulatorParams | None = None,
        quantizer_bits: int = 3,
        dac_mismatch_sigma: float = 0.0,
        dac_selection: str = "dwa",
        coefficients: LoopCoefficients | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.params = params or ModulatorParams()
        self.coefficients = coefficients or LoopCoefficients.boser_wooley()
        self.quantizer = MultibitQuantizer(quantizer_bits)
        self.dac = ThermometerDAC(
            n_elements=self.quantizer.n_levels - 1,
            mismatch_sigma=dac_mismatch_sigma,
            selection=dac_selection,
            rng=rng,
        )
        self._swing = 3.0
        self.reset()

    def reset(self) -> None:
        self._x1 = 0.0
        self._x2 = 0.0
        self.dac.reset()

    @property
    def input_full_scale(self) -> float:
        """Multi-bit loops are stable nearly to the reference."""
        return self.coefficients.input_full_scale

    def simulate(self, loop_input: np.ndarray) -> MultibitOutput:
        """Run the loop over a normalized input sequence (streaming)."""
        u = np.asarray(loop_input, dtype=float)
        if u.ndim != 1:
            raise ConfigurationError("loop input must be 1-D")
        c = self.coefficients
        codes = np.empty(u.size, dtype=np.int16)
        values = np.empty(u.size)
        clipped = 0
        x1, x2 = self._x1, self._x2
        swing = self._swing
        for i in range(u.size):
            code = self.quantizer.quantize(x2)
            # Feedback: `code` elements high out of n_levels - 1.
            fb = self.dac.convert(code)
            codes[i] = code
            values[i] = self.quantizer.level_value(code)
            x1_new = x1 + c.a1 * u[i] - c.b1 * fb
            x2_new = x2 + c.a2 * x1 - c.b2 * fb
            if abs(x1_new) > swing or abs(x2_new) > swing:
                clipped += 1
                x1_new = float(np.clip(x1_new, -swing, swing))
                x2_new = float(np.clip(x2_new, -swing, swing))
            x1, x2 = x1_new, x2_new
        self._x1, self._x2 = x1, x2
        return MultibitOutput(codes=codes, values=values, clipped_samples=clipped)
