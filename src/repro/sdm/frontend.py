"""Input branches of the modulator: capacitive sensing and voltage test.

Fig. 6 shows the sensor capacitor ``Csense`` and reference capacitor
``Cref`` driven by the reference voltages so the first stage integrates a
charge proportional to ``(Csense - Cref) * Vref``. Normalized to the
feedback charge ``Cfb * Vref``, the loop input is

    u = (Csense - Cref) / Cfb.

The chip also has a "differential voltage interface, so a full
characterization of the analog to digital conversion ... can be
accomplished, independent of the connected transducer" (Sec. 3) — that is
:class:`VoltageFrontEnd`, the path used for Fig. 7.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError


class CapacitiveFrontEnd:
    """Capacitance-difference to normalized-loop-input conversion.

    Parameters
    ----------
    reference_cap_f:
        The on-chip reference structure's capacitance [F]. Nominally it
        matches the sensor's rest capacitance so u = 0 at zero pressure.
    feedback_cap_f:
        First-stage feedback capacitor Cfb [F]. Smaller Cfb means more
        gain per farad of sensor change — the paper's proposed resolution
        knob ("adjusting the feedback capacitors of the first modulator
        stage").
    excitation_fraction:
        Ratio of the actual excitation voltage on the sensor/reference
        branch to Vref (1.0 in the nominal design).
    """

    def __init__(
        self,
        reference_cap_f: float,
        feedback_cap_f: float = 200e-15,
        excitation_fraction: float = 1.0,
    ):
        if reference_cap_f <= 0 or feedback_cap_f <= 0:
            raise ConfigurationError("capacitances must be positive")
        if excitation_fraction <= 0:
            raise ConfigurationError("excitation fraction must be positive")
        self.reference_cap_f = float(reference_cap_f)
        self.feedback_cap_f = float(feedback_cap_f)
        self.excitation_fraction = float(excitation_fraction)

    def loop_input(self, sense_cap_f: np.ndarray | float) -> np.ndarray:
        """Normalized modulator input u for sensor capacitance values."""
        sense = np.asarray(sense_cap_f, dtype=float)
        if np.any(sense <= 0):
            raise ConfigurationError("sensor capacitance must be positive")
        return (
            (sense - self.reference_cap_f)
            / self.feedback_cap_f
            * self.excitation_fraction
        )

    def capacitance_for_input(self, u: np.ndarray | float) -> np.ndarray:
        """Inverse transfer: sensor capacitance producing loop input u."""
        u = np.asarray(u, dtype=float)
        return (
            self.reference_cap_f
            + u * self.feedback_cap_f / self.excitation_fraction
        )

    @property
    def gain_per_farad(self) -> float:
        """du/dCsense [1/F]."""
        return self.excitation_fraction / self.feedback_cap_f

    def full_scale_capacitance_delta_f(self, input_full_scale: float = 1.0) -> float:
        """|Csense - Cref| mapping to the loop's input full scale."""
        if input_full_scale <= 0:
            raise ConfigurationError("full scale must be positive")
        return input_full_scale * self.feedback_cap_f / self.excitation_fraction


class VoltageFrontEnd:
    """Differential voltage test input (Sec. 3's characterization path)."""

    def __init__(self, vref_v: float = 2.5):
        if vref_v <= 0:
            raise ConfigurationError("reference voltage must be positive")
        self.vref_v = float(vref_v)

    def loop_input(self, differential_voltage_v: np.ndarray | float) -> np.ndarray:
        """Normalize a differential input voltage to Vref units."""
        return np.asarray(differential_voltage_v, dtype=float) / self.vref_v

    def voltage_for_input(self, u: np.ndarray | float) -> np.ndarray:
        return np.asarray(u, dtype=float) * self.vref_v
