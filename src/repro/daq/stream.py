"""Host-side sample stream reassembly.

Collects decoded frames into per-element contiguous sample streams with
gap accounting — what the PC software behind the paper's USB interface
has to do before any waveform processing.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..errors import ConfigurationError
from .usb import Frame


class SampleStream:
    """Per-element reassembled sample streams.

    Parameters
    ----------
    sample_rate_hz:
        Rate of the decimated words (1 kS/s for the paper chain), used to
        timestamp samples.
    """

    def __init__(self, sample_rate_hz: float = 1000.0):
        if sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be positive")
        self.sample_rate_hz = float(sample_rate_hz)
        self._chunks: dict[int, list[np.ndarray]] = defaultdict(list)
        self._counts: dict[int, int] = defaultdict(int)

    def ingest(self, frames: list[Frame]) -> None:
        """Append decoded frames to their element streams."""
        for frame in frames:
            self._chunks[frame.element].append(frame.samples)
            self._counts[frame.element] += frame.samples.size

    @property
    def elements(self) -> list[int]:
        return sorted(self._chunks)

    def sample_count(self, element: int) -> int:
        return self._counts.get(element, 0)

    def samples(self, element: int) -> np.ndarray:
        """Contiguous int16 record for one element."""
        chunks = self._chunks.get(element)
        if not chunks:
            return np.zeros(0, dtype=np.int16)
        return np.concatenate(chunks)

    def timestamps_s(self, element: int) -> np.ndarray:
        """Sample times assuming gap-free delivery."""
        return np.arange(self.sample_count(element)) / self.sample_rate_hz

    def as_matrix(self) -> np.ndarray:
        """(n_samples, n_elements) matrix over the common sample count.

        Streams are truncated to the shortest element record — scanned
        acquisition delivers near-equal counts per element.
        """
        if not self._chunks:
            return np.zeros((0, 0), dtype=np.int16)
        elements = self.elements
        n = min(self.sample_count(e) for e in elements)
        return np.column_stack([self.samples(e)[:n] for e in elements])

    def duration_s(self, element: int) -> float:
        return self.sample_count(element) / self.sample_rate_hz
