"""Host-side sample stream reassembly.

Collects decoded frames into per-element contiguous sample streams with
gap accounting — what the PC software behind the paper's USB interface
has to do before any waveform processing. Frame sequence numbers are
tracked across ingest calls, so frames lost on the link (detected by
:class:`~repro.daq.usb.FrameDecoder` as sequence jumps) show up here as
explicit per-element gaps rather than silently shortened, mis-timestamped
records.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .usb import Frame


@dataclass(frozen=True)
class StreamGap:
    """One detected loss of frames within an element's stream.

    Attributes
    ----------
    sample_index:
        Position in the element's *received* sample record where the
        missing samples belong (samples ``[sample_index:]`` arrived
        after the loss).
    lost_frames:
        Number of frames the sequence numbers say went missing.
    lost_samples:
        Missing sample count: lost frames times the stream's configured
        ``samples_per_frame`` when known. Without that configuration it
        falls back to the payload size of the frame that *followed* the
        gap — an undercount when the follower is the final (short)
        flush frame of a chunk.
    """

    sample_index: int
    lost_frames: int
    lost_samples: int


class SampleStream:
    """Per-element reassembled sample streams with gap accounting.

    Parameters
    ----------
    sample_rate_hz:
        Rate of the decimated words (1 kS/s for the paper chain), used to
        timestamp samples.
    samples_per_frame:
        Nominal payload size of the link's full frames (the encoder's
        ``samples_per_frame``). When set, a k-frame sequence gap is
        booked as exactly ``k * samples_per_frame`` lost samples — the
        lost frames were full frames. When ``None`` the stream estimates
        from the frame that followed the gap, which undercounts whenever
        a loss lands immediately before a chunk's short flush frame.
    """

    def __init__(
        self,
        sample_rate_hz: float = 1000.0,
        samples_per_frame: int | None = None,
    ):
        if sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be positive")
        if samples_per_frame is not None and samples_per_frame < 1:
            raise ConfigurationError("samples_per_frame must be >= 1")
        self.sample_rate_hz = float(sample_rate_hz)
        self.samples_per_frame = samples_per_frame
        self._chunks: dict[int, list[np.ndarray]] = defaultdict(list)
        self._counts: dict[int, int] = defaultdict(int)
        self._gaps: dict[int, list[StreamGap]] = defaultdict(list)
        self._expected_seq: int | None = None
        #: Lifetime ingest counters (telemetry).
        self.frames_ingested = 0
        self.samples_ingested = 0
        #: Frames skipped because their sequence lies behind the
        #: expectation (mod-2^16 half window) — late duplicates whose
        #: slot was already recorded as a gap. Mirrors
        #: :attr:`~repro.daq.usb.FrameDecoder.stale_frames` for callers
        #: that ingest frames from other sources.
        self.stale_frames = 0

    def expect(self, sequence: int | None) -> None:
        """Seed (or clear) the expected frame sequence number.

        Mirrors :meth:`~repro.daq.usb.FrameDecoder.expect`: a receiver
        that knows where a stream starts (e.g. a gateway after a fresh
        HELLO) sets the expectation so a loss of the very first frames
        is recorded as a gap instead of passing unnoticed.
        """
        if sequence is not None and not 0 <= sequence <= 0xFFFF:
            raise ConfigurationError("expected sequence must fit u16")
        self._expected_seq = sequence

    def ingest(self, frames: list[Frame]) -> None:
        """Append decoded frames to their element streams.

        Frame sequence numbers are checked across calls; a jump of k
        means k frames were lost on the link, recorded as a
        :class:`StreamGap` against the element of the first frame that
        arrived after the loss (the lost frames' own element tags are
        gone with them).
        """
        for frame in frames:
            if (
                self._expected_seq is not None
                and frame.sequence != self._expected_seq
            ):
                # Modular distance: a sequence rollover past 0xFFFF is a
                # small gap, not a ~65k-frame loss.
                lost = (frame.sequence - self._expected_seq) % 0x10000
                if lost >= 0x8000:
                    # Late duplicate of a frame already counted lost:
                    # its stream slot is gone, so ingesting it would
                    # scramble sample order. Skip it, counted.
                    self.stale_frames += 1
                    continue
                per_frame = self.samples_per_frame or frame.samples.size
                self._gaps[frame.element].append(
                    StreamGap(
                        sample_index=self._counts[frame.element],
                        lost_frames=lost,
                        lost_samples=lost * per_frame,
                    )
                )
            self._expected_seq = (frame.sequence + 1) % 0x10000
            self._chunks[frame.element].append(frame.samples)
            self._counts[frame.element] += frame.samples.size
            self.frames_ingested += 1
            self.samples_ingested += frame.samples.size

    @property
    def elements(self) -> list[int]:
        return sorted(self._chunks)

    def sample_count(self, element: int) -> int:
        return self._counts.get(element, 0)

    def samples(self, element: int) -> np.ndarray:
        """Contiguous int16 record of the *received* samples."""
        chunks = self._chunks.get(element)
        if not chunks:
            return np.zeros(0, dtype=np.int16)
        return np.concatenate(chunks)

    # -- gap accounting ------------------------------------------------------

    def gaps(self, element: int) -> tuple[StreamGap, ...]:
        """Detected frame-loss gaps in one element's stream, in order."""
        return tuple(self._gaps.get(element, ()))

    def lost_samples(self, element: int) -> int:
        """Estimated samples lost to dropped frames for one element."""
        return sum(g.lost_samples for g in self._gaps.get(element, ()))

    def total_lost_samples(self) -> int:
        """Estimated samples lost to dropped frames across all elements."""
        return sum(
            g.lost_samples for gaps in self._gaps.values() for g in gaps
        )

    def zero_filled(self, element: int) -> tuple[np.ndarray, np.ndarray]:
        """Gap-repaired record: ``(samples, valid_mask)``.

        Missing stretches are zero-filled and flagged False in the mask,
        so downstream processing can interpolate or excise them instead
        of silently concatenating across the loss.
        """
        received = self.samples(element)
        gaps = self._gaps.get(element)
        if not gaps:
            return received, np.ones(received.size, dtype=bool)
        total = received.size + sum(g.lost_samples for g in gaps)
        out = np.zeros(total, dtype=received.dtype)
        mask = np.zeros(total, dtype=bool)
        src = 0
        dst = 0
        for gap in gaps:
            take = gap.sample_index - src
            out[dst : dst + take] = received[src : src + take]
            mask[dst : dst + take] = True
            src += take
            dst += take + gap.lost_samples
        out[dst:] = received[src:]
        mask[dst:] = True
        return out, mask

    def timestamps_s(self, element: int) -> np.ndarray:
        """Sample times of the received samples, honouring gaps.

        Samples that arrived after a detected frame loss are shifted
        late by the estimated lost-sample count, so timestamps stay
        aligned with acquisition time instead of pretending delivery was
        gap-free.
        """
        t = np.arange(self.sample_count(element), dtype=float)
        for gap in self._gaps.get(element, ()):
            t[gap.sample_index :] += gap.lost_samples
        return t / self.sample_rate_hz

    def as_matrix(self) -> np.ndarray:
        """(n_samples, n_elements) matrix over the common sample count.

        Streams are truncated to the shortest element record — scanned
        acquisition delivers near-equal counts per element.
        """
        if not self._chunks:
            return np.zeros((0, 0), dtype=np.int16)
        elements = self.elements
        n = min(self.sample_count(e) for e in elements)
        return np.column_stack([self.samples(e)[:n] for e in elements])

    def duration_s(self, element: int) -> float:
        """Wall-clock span of one element's record, including gap time."""
        n = self.sample_count(element) + self.lost_samples(element)
        return n / self.sample_rate_hz
