"""Acquisition-side glue: the FPGA filter wrapper and the USB link.

Sec. 2.2/3 of the paper: "the modulator is connected to an external
digital decimation filter. Currently this filter is implemented in an
FPGA, which also provides an interface (USB) to a computer system."
This package models that data path: the FPGA streaming wrapper around the
bit-true decimation filter, USB-style packet framing with integrity
checks, and a host-side stream reassembler.
"""

from .usb import Frame, FrameDecoder, FrameEncoder
from .stream import SampleStream
from .fpga import FPGAFilterBank
from .recording import SessionRecording
from .timestamps import ClockFit, SampleClockModel, TimestampReconstructor

__all__ = [
    "ClockFit",
    "FPGAFilterBank",
    "SampleClockModel",
    "SessionRecording",
    "TimestampReconstructor",
    "Frame",
    "FrameDecoder",
    "FrameEncoder",
    "SampleStream",
]
