"""Vectorized frame deframing + CRC for the gateway's batched decode plane.

:class:`~repro.daq.usb.FrameDecoder.feed` walks the byte stream one
Python loop iteration per frame and one table lookup per byte for the
CRC — fine for a single device, but the dominant cost once a gateway
multiplexes hundreds of streams. This module provides the batched fast
path the :mod:`repro.gateway.batchplane` scheduler runs per tick:

* :func:`stage` appends one (merged) ingest chunk to a decoder's buffer
  and scans the **tiled prefix** — maximal runs of back-to-back frame
  candidates sharing one length — with a handful of NumPy comparisons
  instead of a per-byte hunt.
* :func:`crc_check` validates *all* staged candidates across *all*
  decoders in one table-driven pass: CRC-16/CCITT-FALSE is affine over
  GF(2), so the CRC of a frame body is the XOR of per-(position, byte)
  table entries plus a length-dependent seed constant. One fancy-index
  plus an XOR reduction replaces ``len(frame)`` Python table steps per
  frame.
* :func:`commit` books the validated candidates exactly as
  :meth:`~repro.daq.usb.FrameDecoder._parse` and
  :meth:`~repro.daq.stream.SampleStream.ingest` would — same sequence
  gap/stale arithmetic, same gap records, same counters — in segment
  granularity rather than frame granularity. The moment anything is
  irregular (CRC failure, garbage, a split frame), the committed prefix
  ends and the **reference parser finishes the chunk byte-exactly**, so
  the fast path never changes a single decoded bit, counter, or resync
  decision relative to per-session decoding.

The position tables live in the shared
:class:`~repro.parallel.cache.PrecomputeCache`, so every lane of every
gateway (and every test) shares one ~260 KiB precompute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..parallel.cache import precompute_cache
from .stream import SampleStream, StreamGap
from .usb import _CRC_TABLE, FrameDecoder, SYNC

#: Longest CRC-covered region: header (7 bytes past sync) + 255 words.
_MAX_BODY = 7 + 2 * 255 + 2  # + sync word

_SYNC0, _SYNC1 = SYNC[0], SYNC[1]


def _build_crc_tables() -> tuple[np.ndarray, np.ndarray]:
    """(POS, INIT) for the affine batch CRC.

    ``POS[d, v]`` is the zero-seed CRC-16/CCITT of byte ``v`` followed by
    ``d`` zero bytes; ``INIT[L]`` is the 0xFFFF-seed CRC of ``L`` zero
    bytes. For a message ``m`` of length ``L``::

        crc16_ccitt(m) == INIT[L] ^ XOR_j POS[L - 1 - j, m[j]]

    because one CRC step ``crc' = (crc << 8) ^ T[(crc >> 8) ^ b]`` is
    linear over GF(2) in ``(crc, b)``.
    """
    table = np.array(_CRC_TABLE, dtype=np.uint16)
    pos = np.empty((_MAX_BODY, 256), dtype=np.uint16)
    v = table.copy()  # zero-seed CRC of each single byte
    pos[0] = v
    for d in range(1, _MAX_BODY):
        v = (v << np.uint16(8)) ^ table[v >> np.uint16(8)]
        pos[d] = v
    init = np.empty(_MAX_BODY + 1, dtype=np.uint16)
    crc = 0xFFFF
    for length in range(_MAX_BODY + 1):
        init[length] = crc
        crc = ((crc << 8) & 0xFFFF) ^ _CRC_TABLE[(crc >> 8) & 0xFF]
    pos.setflags(write=False)
    init.setflags(write=False)
    return pos, init


def _crc_tables() -> tuple[np.ndarray, np.ndarray]:
    return precompute_cache().get(("crc16_batch_tables",), _build_crc_tables)


def _distances(length: int) -> np.ndarray:
    """``[L-1, …, 1, 0]`` — the per-column distance-from-end index."""
    return precompute_cache().get(
        ("crc16_batch_distances", length),
        lambda: _readonly(np.arange(length - 1, -1, -1)),
    )


def _readonly(a: np.ndarray) -> np.ndarray:
    a.setflags(write=False)
    return a


def crc16_batch(bodies: np.ndarray) -> np.ndarray:
    """CRC-16/CCITT-FALSE of every row of a ``(n, L)`` uint8 matrix."""
    if bodies.ndim != 2:
        raise ValueError("expected a (n_frames, body_len) uint8 matrix")
    n, length = bodies.shape
    if length == 0:
        return np.full(n, 0xFFFF, dtype=np.uint16)
    pos, init = _crc_tables()
    contrib = pos[_distances(length)[None, :], bodies]
    return np.bitwise_xor.reduce(contrib, axis=1) ^ init[length]


@dataclass
class Run:
    """One tiled run of same-length frame candidates (not yet validated)."""

    pos: int  # offset of the first candidate in the decoder buffer
    total: int  # frame length in bytes (9 + 2 * count)
    count: int  # samples per frame
    k: int  # candidates in the run
    mat: np.ndarray  # (k, total) uint8 copy of the candidate bytes
    crc_ok: np.ndarray | None = None  # (k,) bool, set by crc_check

    @property
    def sequences(self) -> np.ndarray:
        return (
            self.mat[:, 2].astype(np.int64)
            | (self.mat[:, 3].astype(np.int64) << 8)
        )

    @property
    def elements(self) -> np.ndarray:
        return (
            self.mat[:, 4].astype(np.int64)
            | (self.mat[:, 5].astype(np.int64) << 8)
        )


@dataclass
class Staged:
    """The tiled-prefix scan of one decoder's pending bytes."""

    decoder: FrameDecoder
    runs: list[Run] = field(default_factory=list)
    scan_end: int = 0  # where tiling stopped (reference parser takes over)

    @property
    def candidates(self) -> int:
        return sum(run.k for run in self.runs)


def stage(decoder: FrameDecoder, data: bytes) -> Staged:
    """Append ``data`` to the decoder buffer and scan its tiled prefix.

    Candidate bytes are copied out of the buffer immediately (the commit
    trims the ``bytearray`` in place, which would invalidate live
    views); everything from the first irregular byte on is left for the
    reference parser.
    """
    if data:
        decoder._buffer += data
    staged = Staged(decoder=decoder)
    buf = decoder._buffer
    n = len(buf)
    if n < 9:
        return staged
    view = np.frombuffer(buf, dtype=np.uint8)
    pos = 0
    runs: list[tuple[int, int, int, int]] = []
    while n - pos >= 9 and buf[pos] == _SYNC0 and buf[pos + 1] == _SYNC1:
        count = buf[pos + 6]
        total = 9 + 2 * count
        k_cap = (n - pos) // total
        if k_cap == 0:
            break  # split frame: the tail stays buffered
        if k_cap == 1:
            k = 1
        else:
            block = view[pos : pos + k_cap * total].reshape(k_cap, total)
            good = (
                (block[:, 0] == _SYNC0)
                & (block[:, 1] == _SYNC1)
                & (block[:, 6] == count)
            )
            k = k_cap if good.all() else max(int(np.argmin(good)), 1)
        runs.append((pos, total, count, k))
        pos += k * total
    staged.scan_end = pos
    if not runs:
        return staged
    # One copy of the whole scanned region; runs hold views of the copy,
    # so trimming the bytearray later cannot corrupt committed samples.
    region = view[:pos].copy()
    del view
    for rpos, total, count, k in runs:
        staged.runs.append(
            Run(
                pos=rpos,
                total=total,
                count=count,
                k=k,
                mat=region[rpos : rpos + k * total].reshape(k, total),
            )
        )
    return staged


def crc_check(staged_list: list[Staged]) -> int:
    """Validate every staged candidate across all decoders in one pass.

    Runs are grouped by frame length so each group is a single
    rectangular CRC batch; per-run boolean verdicts are scattered back
    onto ``run.crc_ok``. Returns the number of candidates checked.
    """
    groups: dict[int, list[Run]] = {}
    for staged in staged_list:
        for run in staged.runs:
            groups.setdefault(run.total, []).append(run)
    checked = 0
    for total, runs in groups.items():
        if len(runs) == 1:
            big = runs[0].mat
        else:
            big = np.concatenate([run.mat for run in runs], axis=0)
        body = total - 2
        crc = crc16_batch(big[:, :body])
        rx = big[:, body].astype(np.uint16) | (
            big[:, body + 1].astype(np.uint16) << np.uint16(8)
        )
        ok = crc == rx
        checked += big.shape[0]
        offset = 0
        for run in runs:
            run.crc_ok = ok[offset : offset + run.k]
            offset += run.k
    return checked


def commit(
    decoder: FrameDecoder,
    staged: Staged,
    stream: SampleStream,
    frame_hook=None,
    now: float = 0.0,
) -> int:
    """Book the CRC-validated prefix, then let ``_parse`` finish.

    Mirrors exactly what feeding the same (merged) chunk through
    :meth:`FrameDecoder.feed` + :meth:`SampleStream.ingest` would do —
    decoded/lost/stale/CRC/resync counters, gap records, delivered
    samples and hook stamps included — but touches Python once per
    *segment* of in-order frames instead of once per frame.

    Irregular bytes (a CRC failure, garbage, a corrupted length claim)
    are handed to the reference parser **in bounded windows**: the slow
    path eats just the broken region, then the tiled scan resumes on
    whatever follows, so one flipped bit doesn't demote the rest of a
    large batch to byte-at-a-time decoding. Windowing is exact because
    ``FrameDecoder.feed`` is chunk-boundary invariant — a window edge
    behaves like any other TCP chunk edge. Returns the number of frames
    decoded (fast path + reference windows).
    """
    decoded = _commit_staged_runs(decoder, staged, stream, frame_hook, now)
    window = _FALLBACK_WINDOW
    while decoder._buffer:
        before = len(decoder._buffer)
        if before > window:
            # Reference-parse only the window; the rest of the buffer
            # is re-attached afterwards, exactly as if it had arrived
            # in the next TCP chunk.
            rest = decoder._buffer[window:]
            del decoder._buffer[window:]
            frames = decoder._parse(final=False)
            decoder._buffer += rest
        else:
            frames = decoder._parse(final=False)
        if frames:
            stream.ingest(frames)
            if frame_hook is not None:
                for frame in frames:
                    frame_hook(frame.sequence, now)
            decoded += len(frames)
        after = len(decoder._buffer)
        progressed = frames or after < before
        if before <= window and not progressed:
            break  # a split tail: wait for more bytes
        if not progressed:
            # The window cut inside one huge claimed frame; widen so
            # the reference pass can act on the full claim.
            window *= 4
            continue
        window = _FALLBACK_WINDOW
        # Back to the fast path for whatever follows the bad region.
        staged = stage(decoder, b"")
        if staged.runs:
            crc_check([staged])
            decoded += _commit_staged_runs(
                decoder, staged, stream, frame_hook, now
            )
    return decoded


#: Bytes handed to the reference parser per fallback pass — enough to
#: swallow a typical corrupted frame plus its resync scan in one go,
#: small enough that a clean run resumes on the fast path quickly (the
#: window quadruples automatically when a corrupted length claim needs
#: more context).
_FALLBACK_WINDOW = 128


def _commit_staged_runs(
    decoder: FrameDecoder,
    staged: Staged,
    stream: SampleStream,
    frame_hook,
    now: float,
) -> int:
    """Book the validated prefix of ``staged``; trims the buffer."""
    consumed = 0
    decoded = 0
    stopped = False
    for run in staged.runs:
        ok = run.crc_ok
        if ok is None:
            raise RuntimeError("commit before crc_check")
        k_ok = run.k if ok.all() else int(np.argmin(ok))
        if k_ok:
            decoded += _commit_run(
                decoder, stream, run, k_ok, frame_hook, now
            )
            consumed = run.pos + k_ok * run.total
        if k_ok < run.k:
            stopped = True
            break
    if not stopped:
        consumed = staged.scan_end
    if consumed:
        del decoder._buffer[:consumed]
    return decoded


def _commit_run(
    decoder: FrameDecoder,
    stream: SampleStream,
    run: Run,
    k_ok: int,
    frame_hook,
    now: float,
) -> int:
    """Book ``k_ok`` validated candidates of one run, segment-wise."""
    seqs = run.sequences[:k_ok]
    elements = run.elements[:k_ok]
    count = run.count
    # int16 sample matrix (one copy; rows are handed to the stream).
    samples = np.ascontiguousarray(
        run.mat[:k_ok, 7 : 7 + 2 * count]
    ).view("<i2").astype(np.int16)
    if k_ok > 1:
        contiguous = ((seqs[1:] - seqs[:-1]) & 0xFFFF == 1) & (
            elements[1:] == elements[:-1]
        )
        breaks = np.flatnonzero(~contiguous) + 1
    else:
        breaks = np.zeros(0, dtype=np.int64)
    bounds = [0, *breaks.tolist(), k_ok]
    decoded = 0
    # Index-based loop: the stale branch splits the current segment by
    # inserting a bound, which must extend the iteration.
    b = 0
    while b < len(bounds) - 1:
        i = bounds[b]
        j = bounds[b + 1]
        b += 1
        seq0 = int(seqs[i])
        # -- decoder bookkeeping (mirrors FrameDecoder._parse) ----------
        if decoder._expected_seq is not None and seq0 != decoder._expected_seq:
            distance = (seq0 - decoder._expected_seq) % 0x10000
            if distance >= 0x8000:
                # Stale: drop this one frame, keep the expectation, and
                # re-enter the segment from the next frame.
                decoder.stale_frames += 1
                if j - i > 1:
                    bounds.insert(b, i + 1)
                continue
            decoder.lost_frames += distance
        n_frames = j - i
        decoder._expected_seq = (int(seqs[j - 1]) + 1) % 0x10000
        decoder.frames_decoded += n_frames
        decoded += n_frames
        # -- stream bookkeeping (mirrors SampleStream.ingest) -----------
        element = int(elements[i])
        if stream._expected_seq is not None and seq0 != stream._expected_seq:
            lost = (seq0 - stream._expected_seq) % 0x10000
            if lost >= 0x8000:  # pragma: no cover - decoder filters these
                stream.stale_frames += 1
                stream._expected_seq = (seq0 + 1) % 0x10000
            else:
                per_frame = stream.samples_per_frame or count
                stream._gaps[element].append(
                    StreamGap(
                        sample_index=stream._counts[element],
                        lost_frames=lost,
                        lost_samples=lost * per_frame,
                    )
                )
        stream._expected_seq = (int(seqs[j - 1]) + 1) % 0x10000
        if count:
            stream._chunks[element].append(samples[i:j].reshape(-1))
        else:
            stream._chunks[element]  # defaultdict: element becomes known
        stream._counts[element] += n_frames * count
        stream.frames_ingested += n_frames
        stream.samples_ingested += n_frames * count
        if frame_hook is not None:
            for seq in seqs[i:j].tolist():
                frame_hook(seq, now)
    return decoded
