"""Sample-clock reality: crystal error, drift, and host reconstruction.

The FPGA derives the 128 kHz modulator clock (and hence the 1 kS/s output
rate) from a crystal with tens of ppm of static error plus slow thermal
drift. A 30 ppm error is irrelevant to the waveform but biases every
rate-derived quantity — pulse rate most visibly — and breaks alignment
when fusing with other sensors. The host fixes this the standard way:
pair its own wall-clock receive times with the device's sample counter
and regress the true sample rate.

* :class:`SampleClockModel` — generates the device's actual sample
  instants (ppm offset + linear drift + white jitter).
* :class:`TimestampReconstructor` — least-squares rate/offset recovery
  from (host_time, sample_index) observations, with residual diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


class SampleClockModel:
    """The device's imperfect sample clock.

    Parameters
    ----------
    nominal_rate_hz:
        What the label says (1 kS/s output words).
    ppm_offset:
        Static crystal error in parts per million.
    ppm_drift_per_hour:
        Linear thermal drift of the error over time.
    jitter_rms_s:
        White timestamp jitter per sample (crystal phase noise is far
        smaller than transport jitter; this models USB delivery).
    """

    def __init__(
        self,
        nominal_rate_hz: float = 1000.0,
        ppm_offset: float = 30.0,
        ppm_drift_per_hour: float = 2.0,
        jitter_rms_s: float = 0.0,
    ):
        if nominal_rate_hz <= 0:
            raise ConfigurationError("nominal rate must be positive")
        if abs(ppm_offset) > 1000:
            raise ConfigurationError("ppm offset implausibly large")
        if jitter_rms_s < 0:
            raise ConfigurationError("jitter must be >= 0")
        self.nominal_rate_hz = float(nominal_rate_hz)
        self.ppm_offset = float(ppm_offset)
        self.ppm_drift_per_hour = float(ppm_drift_per_hour)
        self.jitter_rms_s = float(jitter_rms_s)

    def true_rate_hz(self, at_time_s: float = 0.0) -> float:
        """Actual sample rate at a given elapsed time."""
        ppm = self.ppm_offset + self.ppm_drift_per_hour * at_time_s / 3600.0
        return self.nominal_rate_hz * (1.0 + ppm * 1e-6)

    def sample_times_s(
        self,
        n_samples: int,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Wall-clock instants of the first ``n_samples`` samples."""
        if n_samples < 1:
            raise ConfigurationError("need at least one sample")
        # Integrate the slowly drifting period.
        nominal_t = np.arange(n_samples) / self.nominal_rate_hz
        ppm = (
            self.ppm_offset
            + self.ppm_drift_per_hour * nominal_t / 3600.0
        )
        periods = 1.0 / (self.nominal_rate_hz * (1.0 + ppm * 1e-6))
        times = np.concatenate([[0.0], np.cumsum(periods[:-1])])
        if self.jitter_rms_s > 0:
            rng = rng or np.random.default_rng(17)
            times = times + self.jitter_rms_s * rng.standard_normal(n_samples)
        return times


@dataclass(frozen=True)
class ClockFit:
    """Recovered clock parameters."""

    rate_hz: float
    offset_s: float
    residual_rms_s: float
    n_observations: int

    def ppm_vs_nominal(self, nominal_rate_hz: float) -> float:
        """Recovered rate error relative to a nominal rate, in ppm."""
        return (self.rate_hz / nominal_rate_hz - 1.0) * 1e6

    def sample_time_s(self, sample_index: np.ndarray | int) -> np.ndarray:
        """Reconstructed wall-clock time of device samples."""
        return np.asarray(sample_index, dtype=float) / self.rate_hz + (
            self.offset_s
        )


class TimestampReconstructor:
    """Least-squares recovery of the device clock from observations.

    Feed (host_receive_time, device_sample_index) pairs — e.g. one per
    USB frame; :meth:`fit` regresses sample_time = index/rate + offset.
    Host-side receive jitter averages out with enough observations.
    """

    def __init__(self):
        self._host_times: list[float] = []
        self._indices: list[int] = []

    def observe(self, host_time_s: float, sample_index: int) -> None:
        if self._indices and sample_index <= self._indices[-1]:
            raise ConfigurationError("sample indices must increase")
        self._host_times.append(float(host_time_s))
        self._indices.append(int(sample_index))

    @property
    def n_observations(self) -> int:
        return len(self._indices)

    def fit(self) -> ClockFit:
        """Regress rate and offset; needs >= 2 observations."""
        if self.n_observations < 2:
            raise ConfigurationError("need >= 2 observations to fit a clock")
        idx = np.asarray(self._indices, dtype=float)
        t = np.asarray(self._host_times, dtype=float)
        # t = idx * period + offset
        period, offset = np.polyfit(idx, t, 1)
        if period <= 0:
            raise ConfigurationError("non-causal observations (period <= 0)")
        residuals = t - (idx * period + offset)
        return ClockFit(
            rate_hz=1.0 / period,
            offset_s=float(offset),
            residual_rms_s=float(np.sqrt(np.mean(residuals**2))),
            n_observations=self.n_observations,
        )
