"""USB-style sample framing between the FPGA and the host.

A small, self-describing binary frame format carrying decimated sample
words plus metadata (selected array element, sequence number), protected
by a CRC-16. It models the paper's FPGA-to-PC USB link closely enough to
exercise real acquisition-path concerns: loss detection via sequence
numbers, corruption detection via CRC, and element tagging for scanned
acquisition.

Frame layout (little-endian):

    0xA5 0x5A | seq (u16) | element (u16) | count (u8) | count * i16 | crc16

The element tag is 16 bits wide so scanned acquisition scales past a
16x16 array: a u8 tag silently caps the scan at 256 elements and a
64x64 (4096-element) frame aborts mid-scan at element 256.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, FramingError

SYNC = b"\xa5\x5a"
MAX_SAMPLES_PER_FRAME = 255
_HEADER = struct.Struct("<2sHHB")
_CRC = struct.Struct("<H")


def _build_crc_table() -> tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return tuple(table)


_CRC_TABLE = _build_crc_table()


def crc16_ccitt(data: bytes, seed: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE (table-driven), the common FPGA-side choice."""
    crc = seed
    table = _CRC_TABLE
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ table[((crc >> 8) ^ byte) & 0xFF]
    return crc


@dataclass(frozen=True)
class Frame:
    """One decoded frame."""

    sequence: int
    element: int
    samples: np.ndarray  # int16 codes

    def __post_init__(self) -> None:
        if not 0 <= self.sequence <= 0xFFFF:
            raise ConfigurationError("sequence must fit u16")
        if not 0 <= self.element <= 0xFFFF:
            raise ConfigurationError("element must fit u16")
        if self.samples.size > MAX_SAMPLES_PER_FRAME:
            raise ConfigurationError(
                f"at most {MAX_SAMPLES_PER_FRAME} samples per frame"
            )


class FrameEncoder:
    """FPGA-side: pack sample words into frames with rolling sequence."""

    def __init__(self, samples_per_frame: int = 64):
        if not 1 <= samples_per_frame <= MAX_SAMPLES_PER_FRAME:
            raise ConfigurationError(
                f"samples_per_frame must be 1..{MAX_SAMPLES_PER_FRAME}"
            )
        self.samples_per_frame = int(samples_per_frame)
        self._sequence = 0
        self._pending: list[tuple[int, int]] = []  # (element, code)
        #: Total frames emitted over the encoder's lifetime (telemetry).
        self.frames_emitted = 0

    @property
    def pending_samples(self) -> int:
        """Samples queued but not yet framed (what :meth:`flush` emits)."""
        return len(self._pending)

    def push(self, codes: np.ndarray, element: int) -> bytes:
        """Queue codes from one element; returns any completed frames.

        An element change flushes the partial frame first, so one frame
        never mixes elements. Full frames are packed straight from the
        array — the per-sample Python loop this replaces dominated the
        framing cost on second-long records.
        """
        codes = np.asarray(codes)
        if codes.dtype.kind not in "iu":
            raise ConfigurationError("codes must be integers")
        if codes.size and (codes.max() > 32767 or codes.min() < -32768):
            raise ConfigurationError("codes must fit int16")
        out = bytearray()
        if self._pending and self._pending[0][0] != element:
            out += self.flush()
        codes16 = codes.astype(np.int16)
        spf = self.samples_per_frame
        pos = 0
        if self._pending:  # top up the partial frame first
            take = min(spf - len(self._pending), codes16.size)
            self._pending.extend(
                (int(element), int(c)) for c in codes16[:take]
            )
            pos = take
            if len(self._pending) >= spf:
                out += self.flush()
        while codes16.size - pos >= spf:
            out += self._emit(element, codes16[pos : pos + spf])
            pos += spf
        self._pending.extend((int(element), int(c)) for c in codes16[pos:])
        return bytes(out)

    def flush(self) -> bytes:
        """Emit the partial frame, if any."""
        if not self._pending:
            return b""
        element = self._pending[0][0]
        samples = np.array([c for _, c in self._pending], dtype=np.int16)
        self._pending.clear()
        return self._emit(element, samples)

    def _emit(self, element: int, samples: np.ndarray) -> bytes:
        body = _HEADER.pack(SYNC, self._sequence, element, samples.size)
        body += samples.tobytes()
        crc = crc16_ccitt(body)
        self._sequence = (self._sequence + 1) & 0xFFFF
        self.frames_emitted += 1
        return body + _CRC.pack(crc)


class FrameDecoder:
    """Host-side: resynchronizing, validating frame parser.

    Feed arbitrary byte chunks; complete valid frames come out. Corrupted
    regions are skipped by hunting for the next sync word; sequence gaps
    are counted in :attr:`lost_frames`.
    """

    def __init__(self):
        self._buffer = bytearray()
        self._expected_seq: int | None = None
        self.lost_frames = 0
        self.crc_errors = 0
        #: Total valid frames decoded over the decoder's lifetime.
        self.frames_decoded = 0
        #: Bytes discarded while re-hunting sync after corruption.
        self.resync_bytes = 0
        #: Valid frames dropped because their sequence number lies
        #: *behind* the expected one (mod-2^16 half window): late
        #: arrivals of frames already counted lost, e.g. link reordering
        #: or a replay overlap. Their samples were already accounted as
        #: a gap, so ingesting them would corrupt the stream order.
        self.stale_frames = 0

    @property
    def expected_sequence(self) -> int | None:
        """Sequence number the next in-order frame should carry.

        ``None`` until the first valid frame arrives (or until
        :meth:`expect` seeds it). ``expected_sequence - 1`` (mod 2^16)
        is the highest in-order sequence acknowledged so far — what a
        gateway reports back to a device for resume-on-reconnect.
        """
        return self._expected_seq

    def expect(self, sequence: int | None) -> None:
        """Seed (or clear) the expected sequence number.

        Resume support: a receiver that knows where a restarted sender
        will continue sets the expectation explicitly, so the first
        frame after the restart is neither a spurious gap nor dropped
        as stale.
        """
        if sequence is not None and not 0 <= sequence <= 0xFFFF:
            raise ConfigurationError("expected sequence must fit u16")
        self._expected_seq = sequence

    def feed(self, data: bytes) -> list[Frame]:
        """Consume bytes, return all frames completed by them.

        The scan walks a cursor through the buffer and trims the consumed
        prefix once at the end — corrupt regions can contain a false sync
        word every other byte, and per-candidate prefix deletion would
        make decoding quadratic in the garbage length. After a CRC
        failure the cursor advances past the failed sync word and
        rescans byte-by-byte, so one corrupted frame never costs the
        later frames in the same feed. An empty ``data`` is an exact
        no-op: no rescan of retained bytes, no counter changes.
        """
        if not data:
            return []
        self._buffer += data
        return self._parse(final=False)

    def finalize(self) -> list[Frame]:
        """Drain frames stalled behind a corrupted length claim.

        A frame whose ``count`` byte was corrupted upward claims more
        bytes than its sender produced; :meth:`feed` keeps waiting for
        them and every later frame sits stranded in the buffer. Call
        this at end of stream (or end of acquisition) to abandon such
        claims and recover the complete frames behind them. Idempotent:
        with nothing stalled (including any repeated call, or an empty
        buffer) it returns zero frames and changes no counters, so
        clean pipelines are unaffected. Feeding may resume afterwards.
        """
        if not self._buffer:
            return []
        return self._parse(final=True)

    def _parse(self, final: bool) -> list[Frame]:
        buf = self._buffer
        n = len(buf)
        frames: list[Frame] = []
        pos = 0
        while True:
            start = buf.find(SYNC, pos)
            if start < 0:
                # Keep at most one trailing byte (a possible first sync
                # byte split across feeds).
                pos = max(n - 1, pos)
                break
            pos = start
            if n - pos < _HEADER.size:
                if not final:
                    break  # wait for the rest of the header
                # End of stream inside a header: no complete frame can
                # start here; skip the sync word and rescan.
                self.resync_bytes += 2
                pos += 2
                continue
            _, seq, element, count = _HEADER.unpack_from(buf, pos)
            total = _HEADER.size + 2 * count + _CRC.size
            if n - pos < total:
                if not final:
                    break  # wait for the rest of the (claimed) frame
                # The claim outruns the stream — a corrupted count byte.
                # Abandon this sync and rescan for frames behind it.
                self.resync_bytes += 2
                pos += 2
                continue
            body = bytes(buf[pos : pos + total - _CRC.size])
            (crc_rx,) = _CRC.unpack_from(buf, pos + total - _CRC.size)
            if crc16_ccitt(body) != crc_rx:
                self.crc_errors += 1
                self.resync_bytes += 2
                pos += 2  # skip this false sync word, rescan
                continue
            samples = np.frombuffer(
                body[_HEADER.size :], dtype="<i2"
            ).astype(np.int16)
            pos += total
            if self._expected_seq is not None and seq != self._expected_seq:
                # Modular distance, so a rollover past 0xFFFF is a small
                # gap rather than a ~65k-frame loss.
                distance = (seq - self._expected_seq) % 0x10000
                if distance >= 0x8000:
                    # Behind the expectation (mod-2^16 half window): a
                    # late duplicate of a frame already counted lost
                    # (link reordering, replay overlap). Its slot in the
                    # stream is gone; drop it, counted, and keep the
                    # expectation where it was.
                    self.stale_frames += 1
                    continue
                self.lost_frames += distance
            self._expected_seq = (seq + 1) % 0x10000
            try:
                frames.append(
                    Frame(sequence=seq, element=element, samples=samples)
                )
            except ConfigurationError as exc:  # pragma: no cover
                raise FramingError(str(exc)) from exc
            self.frames_decoded += 1
        del buf[:pos]
        return frames
