"""FPGA wrapper: decimation filter bank plus frame generation.

The FPGA of Fig. 3 contains the two-stage decimation filter and the USB
interface. This wrapper runs the bit-true filter on incoming bitstream
chunks, tags output words with the currently selected array element, and
emits USB frames — the complete digital back end between the modulator
pads and the host software.
"""

from __future__ import annotations

import numpy as np

from typing import Callable

from ..errors import ConfigurationError
from ..dsp.decimator import DecimationFilter
from ..dsp.fixed_point import saturate
from ..params import DecimationParams
from .usb import FrameEncoder


class FPGAFilterBank:
    """Streaming FPGA model: bitstream in, framed 12-bit words out.

    Parameters
    ----------
    params:
        Decimation filter architecture (paper defaults).
    input_rate_hz:
        Modulator clock (128 kHz).
    samples_per_frame:
        USB frame payload size.
    flush_words_on_switch:
        Output words suppressed after an element switch while the filter
        flushes (see :func:`repro.array.mux.analyze_mux_timing`).
    """

    def __init__(
        self,
        params: DecimationParams | None = None,
        input_rate_hz: float = 128e3,
        samples_per_frame: int = 64,
        flush_words_on_switch: int = 8,
    ):
        if flush_words_on_switch < 0:
            raise ConfigurationError("flush words must be >= 0")
        self.filter = DecimationFilter(params, input_rate_hz=input_rate_hz)
        self.encoder = FrameEncoder(samples_per_frame=samples_per_frame)
        self.flush_words_on_switch = int(flush_words_on_switch)
        self._element = 0
        self._suppress = 0
        #: Optional tap on the delivered-word path (after the post-switch
        #: suppression window, before framing) — the fault injector's
        #: word-corruption hook. Hook output is saturated to the i16
        #: sample range, never wrapped.
        self.word_hook: Callable[[np.ndarray], np.ndarray] | None = None
        #: Lifetime telemetry counters (streaming sessions read deltas).
        self.samples_in = 0
        self.words_filtered = 0
        self.words_suppressed = 0
        self.filter_resets = 0

    @property
    def output_rate_hz(self) -> float:
        return self.filter.output_rate_hz

    @property
    def selected_element(self) -> int:
        return self._element

    def select_element(self, element: int) -> None:
        """Record an element switch; resets the filter and starts the
        post-switch suppression window."""
        if element < 0:
            raise ConfigurationError("element must be >= 0")
        if element != self._element:
            self._element = int(element)
            self.filter.reset()
            self.filter_resets += 1
            self._suppress = self.flush_words_on_switch

    def process(self, bitstream: np.ndarray) -> bytes:
        """Filter a bitstream chunk and emit completed USB frames."""
        bitstream = np.asarray(bitstream)
        result = self.filter.process(bitstream)
        codes = result.codes
        self.samples_in += bitstream.size
        self.words_filtered += codes.size
        if self._suppress > 0:
            drop = min(self._suppress, codes.size)
            codes = codes[drop:]
            self._suppress -= drop
            self.words_suppressed += drop
        if codes.size == 0:
            return b""
        if self.word_hook is not None:
            codes = np.asarray(self.word_hook(codes))
        # Clamp to the i16 sample range ([-32768, 32767], two's-complement
        # asymmetric) instead of the silent wraparound a bare
        # ``astype(np.int16)`` would perform on out-of-range words; the
        # encoder then validates the range rather than mangling it.
        return self.encoder.push(saturate(codes, 16), self._element)

    def flush(self) -> bytes:
        """Flush the partial USB frame at end of acquisition.

        Decimation state is *not* cleared: like the hardware, samples
        still inside the CIC/FIR pipelines (fewer than one output word's
        worth) stay there, ready for the next chunk. Only the framing
        layer holds deliverable words back, so this is the single flush
        point of the whole FPGA.
        """
        return self.encoder.flush()

    def finish(self) -> bytes:
        """Alias of :meth:`flush` (historical batch-path name)."""
        return self.flush()
