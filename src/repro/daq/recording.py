"""Session recording: persist and reload acquisition data.

A monitoring device stores its sessions; reviewers reload them. Sessions
are saved as ``.npz`` archives with a small JSON metadata header —
self-describing, versioned, and safe to reload (`allow_pickle=False`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import ConfigurationError, FramingError

FORMAT_VERSION = 1


@dataclass(frozen=True)
class SessionRecording:
    """One stored monitoring session.

    Attributes
    ----------
    codes:
        Raw decimated converter codes (int16) for the recorded element.
    sample_rate_hz:
        Their rate.
    element:
        Array element the record came from.
    calibrated_mmhg:
        Calibrated waveform, if a calibration was applied (else empty).
    metadata:
        Free-form JSON-serializable session annotations (subject id,
        cuff reading, placement notes, ...).
    """

    codes: np.ndarray
    sample_rate_hz: float
    element: int
    calibrated_mmhg: np.ndarray = field(
        default_factory=lambda: np.zeros(0)
    )
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be positive")
        if self.element < 0:
            raise ConfigurationError("element must be >= 0")
        if (
            self.calibrated_mmhg.size
            and self.calibrated_mmhg.size != self.codes.size
        ):
            raise ConfigurationError(
                "calibrated waveform must match the code count"
            )

    @property
    def duration_s(self) -> float:
        return self.codes.size / self.sample_rate_hz

    @property
    def times_s(self) -> np.ndarray:
        return np.arange(self.codes.size) / self.sample_rate_hz

    # -- persistence -----------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Write the session to ``path`` (.npz)."""
        path = Path(path)
        header = {
            "format_version": FORMAT_VERSION,
            "sample_rate_hz": self.sample_rate_hz,
            "element": self.element,
            "metadata": self.metadata,
        }
        np.savez_compressed(
            path,
            header=np.frombuffer(
                json.dumps(header).encode("utf-8"), dtype=np.uint8
            ),
            codes=self.codes.astype(np.int16),
            calibrated_mmhg=self.calibrated_mmhg.astype(np.float64),
        )
        # np.savez appends .npz when missing.
        return path if path.suffix == ".npz" else path.with_suffix(
            path.suffix + ".npz"
        )

    @classmethod
    def load(cls, path: str | Path) -> "SessionRecording":
        """Read a session back; validates the format header."""
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(f"no such session file: {path}")
        with np.load(path, allow_pickle=False) as archive:
            try:
                header_bytes = archive["header"].tobytes()
                header = json.loads(header_bytes.decode("utf-8"))
                codes = archive["codes"]
                calibrated = archive["calibrated_mmhg"]
            except KeyError as exc:
                raise FramingError(
                    f"session file {path} is missing field {exc}"
                ) from exc
        version = header.get("format_version")
        if version != FORMAT_VERSION:
            raise FramingError(
                f"unsupported session format version {version!r} "
                f"(this build reads {FORMAT_VERSION})"
            )
        return cls(
            codes=codes.astype(np.int16),
            sample_rate_hz=float(header["sample_rate_hz"]),
            element=int(header["element"]),
            calibrated_mmhg=calibrated,
            metadata=dict(header.get("metadata", {})),
        )

    # -- convenience constructors ------------------------------------------

    @classmethod
    def from_monitor_result(cls, result, **metadata) -> "SessionRecording":
        """Build a session from a
        :class:`~repro.core.monitor.MonitorResult`."""
        meta = {
            "selected_element": result.selection.best_index,
            "cuff_systolic_mmhg": result.cuff.systolic_mmhg,
            "cuff_diastolic_mmhg": result.cuff.diastolic_mmhg,
            "calibration_gain": result.calibration.gain_mmhg_per_raw,
            "calibration_offset": result.calibration.offset_mmhg,
            "quality_snr_db": result.quality.snr_db,
        }
        meta.update(metadata)
        return cls(
            codes=result.recording.codes.astype(np.int16),
            sample_rate_hz=result.recording.sample_rate_hz,
            element=result.recording.element,
            calibrated_mmhg=np.asarray(result.calibrated_mmhg, dtype=float),
            metadata=meta,
        )
