"""Command-line interface: run any paper experiment from the shell.

::

    python -m repro list                  # what can be run
    python -m repro run fig7              # one experiment, table output
    python -m repro run all               # everything (a few minutes)
    python -m repro describe              # print the system configuration

Every experiment prints the same paper-vs-measured rows the benchmark
suite asserts on; the CLI is the no-pytest entry point for quick looks.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from . import experiments
from .params import paper_defaults

#: Experiment registry: CLI name -> (description, runner).
EXPERIMENTS: dict[str, tuple[str, Callable]] = {
    "fig7": (
        "Fig. 7 — sigma-delta ADC tone test (SNR > 72 dB)",
        lambda: experiments.run_fig7(),
    ),
    "fig9": (
        "Fig. 9 — continuous BP waveform with cuff calibration",
        lambda: experiments.run_fig9(),
    ),
    "specs": (
        "Secs. 2-3 — specification table",
        lambda: experiments.run_table_specs(),
    ),
    "membrane": (
        "Sec. 2.1 — membrane transducer characterization",
        lambda: experiments.run_membrane_transfer(),
    ),
    "mux": (
        "Sec. 2.2 — mux settling vs converter bandwidth",
        lambda: experiments.run_mux_settling(),
    ),
    "localization": (
        "Secs. 1-2 — placement tolerance and vessel localization",
        lambda: experiments.run_localization(),
    ),
    "baselines": (
        "Sec. 1 — cuff vs tonometer vs catheter",
        lambda: experiments.run_baseline_comparison(),
    ),
    "feedback": (
        "Sec. 4 — feedback-capacitor resolution knob",
        lambda: experiments.run_feedback_ablation(),
    ),
    "osr": (
        "Sec. 4 — resolution vs conversion rate (OSR sweep)",
        lambda: experiments.run_osr_ablation(),
    ),
    "dynamic-range": (
        "Fig. 7 companion — SNR vs input amplitude",
        lambda: experiments.run_dynamic_range(),
    ),
    "noise-budget": (
        "analog noise budget behind the 72 dB",
        lambda: experiments.run_noise_budget(),
    ),
    "architectures": (
        "Sec. 4 — higher-order / multi-bit modulator routes",
        lambda: experiments.run_architecture_comparison(),
    ),
    "robustness": (
        "Sec. 4 — artifacts, thermal drift, hold-down servo",
        lambda: experiments.run_robustness(),
    ),
    "design-space": (
        "(order x OSR) ENOB grid and Pareto front",
        lambda: experiments.run_design_space(),
    ),
    "pressure-linearity": (
        "transducer linearity vs converter noise",
        lambda: experiments.run_pressure_linearity(),
    ),
    "population": (
        "Fig. 9 protocol over a virtual population (AAMI stats)",
        lambda: experiments.run_population(),
    ),
}


def _print_rows(title: str, rows: list[tuple[str, str, str]]) -> None:
    width_q = max(len(r[0]) for r in rows)
    width_p = max(len(r[1]) for r in rows)
    print()
    print(title)
    print("-" * min(width_q + width_p + 20, 100))
    for quantity, paper, measured in rows:
        print(f"  {quantity:<{width_q}}  {paper:<{width_p}}  {measured}")


def cmd_list() -> int:
    print("available experiments:")
    for name, (description, _) in EXPERIMENTS.items():
        print(f"  {name:<15} {description}")
    print("  all             run everything")
    return 0


def cmd_run(names: list[str]) -> int:
    if "all" in names:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use `python -m repro list`", file=sys.stderr)
        return 2
    for name in names:
        description, runner = EXPERIMENTS[name]
        print(f"running {name}: {description} ...", flush=True)
        start = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - start
        _print_rows(f"{name} ({elapsed:.1f} s)", result.rows())
        print()
    return 0


def cmd_describe() -> int:
    from .core.chain import ReadoutChain
    from .core.power import PowerModel

    params = paper_defaults()
    chain = ReadoutChain(params)
    print(chain.chip.describe())
    print(f"  power           : {PowerModel(params.chip).report().describe()}")
    print(
        f"  decimation      : sinc^{params.decimation.cic_order}"
        f"(R={params.decimation.cic_decimation}) + "
        f"{params.decimation.fir_taps}-tap FIR"
        f"(R={params.decimation.fir_decimation}), "
        f"{params.decimation.output_bits} bit out"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Kirstein et al., 'A CMOS-Based Tactile Sensor "
            "for Continuous Blood Pressure Monitoring' (DATE 2004)"
        ),
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "names", nargs="+", help="experiment names, or 'all'"
    )
    sub.add_parser("describe", help="print the paper-default configuration")

    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args.names)
    if args.command == "describe":
        return cmd_describe()
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
