"""Command-line interface: run any paper experiment from the shell.

::

    python -m repro list                  # what can be run
    python -m repro run fig7              # one experiment, table output
    python -m repro run fig7 --backend reference   # Python-loop modulator
    python -m repro run all               # everything (a few minutes)
    python -m repro run --batch 8         # fused batched acquisition demo
    python -m repro run population --jobs 4   # fan out over 4 workers
    python -m repro population --jobs 4   # population + executor telemetry
    python -m repro ablation osr --jobs 4 # ablation sweeps + telemetry
    python -m repro imaging --rows 8 --cols 8   # N x N pressure imaging
    python -m repro faults --jobs 4       # fault matrix, degradation contract
    python -m repro stream                # live chunked acquisition demo
    python -m repro gateway               # serve the acquisition gateway
    python -m repro gateway --chaos 50    # fleet chaos audit (CI smoke)
    python -m repro device --id 3         # one simulated device stream
    python -m repro describe              # print the system configuration

Every experiment prints the same paper-vs-measured rows the benchmark
suite asserts on; the CLI is the no-pytest entry point for quick looks.
``stream`` drives the chunked :class:`~repro.core.session.AcquisitionSession`
pipeline with live per-stage telemetry; ``population`` and ``ablation``
are its multi-core counterparts, printing the
:class:`~repro.parallel.ExecutorTelemetry` of the fan-out (``--jobs``
never changes the numbers — see docs/THEORY.md §8).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from . import experiments
from .params import paper_defaults

#: Experiment registry: CLI name -> (description, runner, supports_backend).
#: Runners with ``supports_backend`` accept a ``backend=`` keyword and are
#: the ones whose wall-time is dominated by the modulator loop; both
#: backends are bit-identical, so ``--backend`` only trades speed for the
#: pure-Python reference path.
EXPERIMENTS: dict[str, tuple[str, Callable, bool]] = {
    "fig7": (
        "Fig. 7 — sigma-delta ADC tone test (SNR > 72 dB)",
        lambda backend="fast": experiments.run_fig7(backend=backend),
        True,
    ),
    "fig9": (
        "Fig. 9 — continuous BP waveform with cuff calibration",
        lambda backend="fast": experiments.run_fig9(backend=backend),
        True,
    ),
    "specs": (
        "Secs. 2-3 — specification table",
        lambda: experiments.run_table_specs(),
        False,
    ),
    "membrane": (
        "Sec. 2.1 — membrane transducer characterization",
        lambda: experiments.run_membrane_transfer(),
        False,
    ),
    "mux": (
        "Sec. 2.2 — mux settling vs converter bandwidth",
        lambda: experiments.run_mux_settling(),
        False,
    ),
    "localization": (
        "Secs. 1-2 — placement tolerance and vessel localization",
        lambda: experiments.run_localization(),
        False,
    ),
    "imaging": (
        "Sec. 2 scaled — N x N pressure imaging (fused scan, artery line)",
        lambda: experiments.run_imaging(),
        False,
    ),
    "baselines": (
        "Sec. 1 — cuff vs tonometer vs catheter",
        lambda: experiments.run_baseline_comparison(),
        False,
    ),
    "feedback": (
        "Sec. 4 — feedback-capacitor resolution knob",
        lambda jobs=1: experiments.run_feedback_ablation(jobs=jobs),
        False,
    ),
    "osr": (
        "Sec. 4 — resolution vs conversion rate (OSR sweep)",
        lambda jobs=1: experiments.run_osr_ablation(jobs=jobs),
        False,
    ),
    "dynamic-range": (
        "Fig. 7 companion — SNR vs input amplitude",
        lambda backend="fast": experiments.run_dynamic_range(backend=backend),
        True,
    ),
    "noise-budget": (
        "analog noise budget behind the 72 dB",
        lambda: experiments.run_noise_budget(),
        False,
    ),
    "architectures": (
        "Sec. 4 — higher-order / multi-bit modulator routes",
        lambda: experiments.run_architecture_comparison(),
        False,
    ),
    "robustness": (
        "Sec. 4 — artifacts, thermal drift, hold-down servo",
        lambda: experiments.run_robustness(),
        False,
    ),
    "robustness-sweep": (
        "Sec. 4 — field stressors over many seeded trials",
        lambda jobs=1: experiments.run_robustness_sweep(jobs=jobs),
        False,
    ),
    "design-space": (
        "(order x OSR) ENOB grid and Pareto front",
        lambda jobs=1: experiments.run_design_space(jobs=jobs),
        False,
    ),
    "pressure-linearity": (
        "transducer linearity vs converter noise",
        lambda: experiments.run_pressure_linearity(),
        False,
    ),
    "population": (
        "Fig. 9 protocol over a virtual population (AAMI stats)",
        lambda backend="fast", jobs=1: experiments.run_population(
            backend=backend, jobs=jobs
        ),
        True,
    ),
    "chopper": (
        "chopper stabilization vs flicker noise (ABL-CHOP)",
        lambda jobs=1: experiments.run_chopper_ablation(jobs=jobs),
        False,
    ),
    "faults": (
        "Sec. 4 reliability — fault-injection matrix, degradation contract",
        lambda backend="fast", jobs=1: experiments.run_fault_matrix(
            backend=backend, jobs=jobs
        ),
        True,
    ),
}

#: Experiments whose runner fans out over the ParallelExecutor and
#: accepts a ``jobs=`` keyword (surfaced as ``repro run --jobs``).
#: Tracked separately from the registry tuples so tests that monkeypatch
#: plain (description, runner, supports_backend) entries keep working.
JOBS_AWARE = {
    "faults",
    "feedback",
    "osr",
    "chopper",
    "design-space",
    "population",
    "robustness-sweep",
}


def _print_rows(title: str, rows: list[tuple[str, str, str]]) -> None:
    width_q = max(len(r[0]) for r in rows)
    width_p = max(len(r[1]) for r in rows)
    print()
    print(title)
    print("-" * min(width_q + width_p + 20, 100))
    for quantity, paper, measured in rows:
        print(f"  {quantity:<{width_q}}  {paper:<{width_p}}  {measured}")


def cmd_list() -> int:
    print("available experiments:")
    for name, (description, _, supports_backend) in EXPERIMENTS.items():
        flags = " [--backend]" if supports_backend else ""
        if name in JOBS_AWARE:
            flags += " [--jobs]"
        print(f"  {name:<17} {description}{flags}")
    print("  all               run everything")
    return 0


def _print_telemetry(result) -> None:
    """Print executor telemetry when the result carries a reconciled one."""
    telemetry = getattr(result, "telemetry", None)
    if telemetry is None:
        return
    telemetry.reconcile()
    print(telemetry.describe())
    print(
        f"{telemetry.tasks_completed} task(s) on {telemetry.workers_used} "
        f"worker(s); telemetry reconciles"
    )


def cmd_run(
    names: list[str],
    backend: str = "fast",
    jobs: int = 1,
    show_telemetry: bool = False,
) -> int:
    if "all" in names:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use `python -m repro list`", file=sys.stderr)
        return 2
    for name in names:
        description, runner, supports_backend = EXPERIMENTS[name]
        if backend != "fast" and not supports_backend:
            print(f"note: {name} ignores --backend", file=sys.stderr)
        if jobs != 1 and name not in JOBS_AWARE:
            print(f"note: {name} ignores --jobs", file=sys.stderr)
        kwargs = {}
        if supports_backend:
            kwargs["backend"] = backend
        if name in JOBS_AWARE:
            kwargs["jobs"] = jobs
        print(f"running {name}: {description} ...", flush=True)
        start = time.perf_counter()
        result = runner(**kwargs)
        elapsed = time.perf_counter() - start
        _print_rows(f"{name} ({elapsed:.1f} s)", result.rows())
        if show_telemetry:
            _print_telemetry(result)
        print()
    return 0


def cmd_batch(
    lanes: int, duration_s: float = 1.0, chunk_s: float = 0.25
) -> int:
    """Batched lockstep acquisition: many concurrent sessions, one pass.

    Streams ``lanes`` concurrent 1 kS/s sessions through the fused
    batch kernel (:mod:`repro.batch`), spot-checks lane 0 bit-for-bit
    against an independent single :class:`~repro.core.session.\
    AcquisitionSession`, reconciles every lane's telemetry and prints
    the aggregate pipeline rate.
    """
    import numpy as np

    from .batch import batch_kernel_available
    from .core.chain import ReadoutChain
    from .core.session import AcquisitionSession
    from .params import NonidealityParams, SystemParams

    if lanes < 1:
        print("--batch needs >= 1 lane", file=sys.stderr)
        return 2
    if duration_s <= 0 or chunk_s <= 0:
        print("duration and chunk must be positive", file=sys.stderr)
        return 2
    params = SystemParams().replace(nonideality=NonidealityParams.ideal())
    chains = [
        ReadoutChain(params, rng=np.random.default_rng(lane))
        for lane in range(lanes)
    ]
    fs = params.modulator.sampling_rate_hz
    n = int(duration_s * fs)
    step = max(1, int(chunk_s * fs))
    n_el = chains[0].chip.mux.array.n_elements
    t = np.arange(n) / fs
    pulse = 2500.0 * np.sin(2 * np.pi * 1.2 * t) + 1500.0 * np.sin(
        2 * np.pi * 7.3 * t
    )
    field = np.repeat(pulse[:, None], n_el, axis=1)

    print(
        f"batch: {lanes} lane(s), {duration_s:.2f} s each, "
        f"chunk {chunk_s:.2f} s ...",
        flush=True,
    )
    session = AcquisitionSession.batched(chains, element=1)
    start = time.perf_counter()
    for lo in range(0, n, step):
        session.feed_pressure([field[lo : lo + step]] * lanes)
    session.finish()
    wall = time.perf_counter() - start

    for tm in session.telemetries:
        tm.reconcile()
    reference = AcquisitionSession(
        ReadoutChain(params, rng=np.random.default_rng(0)), element=1
    )
    reference.feed_pressure(field)
    reference.finish()
    identical = bool(
        np.array_equal(session.codes(0), reference.recording().codes)
    )
    aggregate = session.aggregate_telemetry()
    msps = lanes * n / wall / 1e6 if wall > 0 else 0.0
    _print_rows(
        f"batched acquisition ({wall:.2f} s)",
        [
            ("lanes x samples", "-", f"{lanes} x {n}"),
            ("fused kernel", "compiled", "yes" if batch_kernel_available() else "no (fallback)"),
            ("pipeline rate", "-", f"{msps:.1f} MS/s"),
            (
                "words delivered",
                "-",
                f"{aggregate.words_delivered}",
            ),
            (
                "lane 0 vs single session",
                "bit-identical",
                "bit-identical" if identical else "MISMATCH",
            ),
            ("per-lane telemetry", "reconciles", "reconciles"),
        ],
    )
    return 0 if identical else 1


def cmd_population(
    subjects: int = 10,
    duration_s: float = 10.0,
    jobs: int = 1,
    backend: str = "fast",
) -> int:
    """Population run with the executor telemetry footer.

    The multi-core counterpart of ``repro stream``: runs the Fig. 9
    protocol over N virtual subjects through the
    :class:`~repro.parallel.ParallelExecutor` and prints the executor's
    per-worker telemetry the way ``stream`` prints the pipeline's.
    """
    if subjects < 3:
        print("need >= 3 subjects", file=sys.stderr)
        return 2
    print(
        f"population: {subjects} subject(s), {duration_s:.0f} s each, "
        f"jobs={jobs} ...",
        flush=True,
    )
    start = time.perf_counter()
    result = experiments.run_population(
        n_subjects=subjects,
        duration_s=duration_s,
        backend=backend,
        jobs=jobs,
    )
    elapsed = time.perf_counter() - start
    _print_rows(f"population ({elapsed:.1f} s)", result.rows())
    _print_telemetry(result)
    return 0


def cmd_faults(
    kinds: list[str] | None = None,
    rate: float = 1.0,
    duration_s: float = 4.0,
    seed: int = 20040506,
    jobs: int = 1,
    backend: str = "fast",
) -> int:
    """Fault-injection matrix with the full per-cell table.

    Sweeps fault kind × rate through
    :func:`~repro.experiments.run_fault_matrix` and prints one row per
    cell: events injected/detected, corrupted vs silently corrupted
    samples, loss accounting, autozero re-triggers and survival. Exits
    nonzero if the degradation contract is violated — any silent
    corruption, an undetected event, or a record that did not survive.
    """
    if duration_s <= 0:
        print("duration must be positive", file=sys.stderr)
        return 2
    if rate < 0:
        print("rate must be >= 0", file=sys.stderr)
        return 2
    print(
        f"fault matrix: kinds={'all' if not kinds else ','.join(kinds)}, "
        f"rate={rate:g} Hz, {duration_s:g} s records, jobs={jobs} ...",
        flush=True,
    )
    start = time.perf_counter()
    try:
        result = experiments.run_fault_matrix(
            kinds=kinds or None,
            rates=(rate,),
            duration_s=duration_s,
            seed=seed,
            jobs=jobs,
            backend=backend,
        )
    except Exception as exc:  # unknown kind etc.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start
    rows = result.matrix_rows()
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    print()
    print(f"fault matrix ({elapsed:.1f} s)")
    print("-" * (sum(widths) + 2 * len(widths)))
    for row in rows:
        print("  ".join(f"{cell:<{w}}" for cell, w in zip(row, widths)))
    print()
    print(result.describe())
    return 0 if result.contract_holds else 1


def cmd_imaging(
    rows: int = 8,
    cols: int = 8,
    offset_um: float = 200.0,
    rotation_mrad: float = 60.0,
    drift_um: float = 300.0,
) -> int:
    """N x N pressure-imaging workload with the scan-schedule footer.

    Runs :func:`~repro.experiments.run_imaging` at the requested array
    size, prints the paper-vs-measured rows, the amplitude image and the
    large-array scan timetable (shared converter vs one ΣΔ bank per
    column) that docs/THEORY.md §13 derives.
    """
    from .errors import ReproError

    print(
        f"imaging: {rows}x{cols} array, offset {offset_um:.0f} um, "
        f"rotation {rotation_mrad:.0f} mrad, drift {drift_um:.0f} um ...",
        flush=True,
    )
    start = time.perf_counter()
    try:
        result = experiments.run_imaging(
            rows=rows,
            cols=cols,
            lateral_offset_m=offset_um * 1e-6,
            rotation_rad=rotation_mrad * 1e-3,
            drift_m=drift_um * 1e-6,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start
    _print_rows(f"imaging ({elapsed:.1f} s)", result.rows())
    print()
    print("amplitude image (modulator FS, std over one pulse period):")
    for r in range(rows):
        print(
            "  " + "  ".join(f"{v:.4f}" for v in result.amplitude_map[r])
        )
    return 0


#: Ablation subcommand registry: name -> runner accepting ``jobs=``.
ABLATIONS: dict[str, Callable] = {
    "feedback": lambda jobs=1: experiments.run_feedback_ablation(jobs=jobs),
    "osr": lambda jobs=1: experiments.run_osr_ablation(jobs=jobs),
    "chopper": lambda jobs=1: experiments.run_chopper_ablation(jobs=jobs),
}


def cmd_ablation(names: list[str], jobs: int = 1) -> int:
    """Run ablation sweeps with the executor telemetry footer."""
    if not names or "all" in names:
        names = list(ABLATIONS)
    unknown = [n for n in names if n not in ABLATIONS]
    if unknown:
        print(f"unknown ablation(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(ABLATIONS)}", file=sys.stderr)
        return 2
    for name in names:
        print(f"ablation {name}: jobs={jobs} ...", flush=True)
        start = time.perf_counter()
        result = ABLATIONS[name](jobs=jobs)
        elapsed = time.perf_counter() - start
        _print_rows(f"{name} ({elapsed:.1f} s)", result.rows())
        _print_telemetry(result)
        print()
    return 0


def cmd_stream(
    duration_s: float = 10.0,
    chunk_s: float = 0.25,
    element: int | None = None,
    backend: str = "fast",
) -> int:
    """Live chunked acquisition: the streaming pipeline, narrated.

    Runs the Fig. 9 physical setup through
    :meth:`~repro.core.monitor.BloodPressureMonitor.record_streaming`,
    printing per-chunk progress and the final per-stage telemetry.
    Ctrl-C mid-run flushes the partial acquisition and prints its
    telemetry (exit 0); a broken pipe (``repro stream | head``) exits 0
    without a traceback.
    """
    try:
        return _cmd_stream(
            duration_s=duration_s,
            chunk_s=chunk_s,
            element=element,
            backend=backend,
        )
    except BrokenPipeError:
        # Downstream closed the pipe; there is nowhere left to print.
        # Point stdout at devnull so interpreter shutdown does not try
        # to flush the dead pipe and print a spurious traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _cmd_stream(
    duration_s: float,
    chunk_s: float,
    element: int | None,
    backend: str,
) -> int:
    import numpy as np

    from .baselines.cuff import OscillometricCuff
    from .core.chain import ReadoutChain
    from .core.monitor import BloodPressureMonitor
    from .errors import ConfigurationError
    from .params import PASCAL_PER_MMHG, PatientParams
    from .physiology.patient import VirtualPatient
    from .tonometry.contact import ContactModel
    from .tonometry.coupling import TonometricCoupling
    from .tonometry.placement import ArrayPlacement

    if duration_s <= 0 or chunk_s <= 0:
        print("duration and chunk must be positive", file=sys.stderr)
        return 2
    params = paper_defaults()
    patient_params = PatientParams()
    rng = np.random.default_rng(99)
    chain = ReadoutChain(params, rng=rng, backend=backend)
    patient = VirtualPatient(patient_params, rng=rng)
    map_mmhg = (
        patient_params.diastolic_mmhg + patient_params.pulse_pressure_mmhg / 3.0
    )
    contact = ContactModel(
        contact=params.contact,
        tissue=params.tissue,
        mean_arterial_pressure_pa=map_mmhg * PASCAL_PER_MMHG,
    )
    coupling = TonometricCoupling(
        chain.chip.array.geometry,
        contact,
        placement=ArrayPlacement(lateral_offset_m=0.5e-3),
        rng=rng,
    )
    monitor = BloodPressureMonitor(chain, coupling, cuff=OscillometricCuff())

    scan_dwell_s = 0.5
    scan_total = scan_dwell_s * chain.chip.array.n_elements
    truth = patient.record(
        duration_s=scan_total + duration_s,
        sample_rate_hz=monitor.physiology_rate_hz,
    )
    if element is None:
        selection = monitor.scan(truth, dwell_s=scan_dwell_s)
        element = selection.best_index
        print(
            f"scan: element ({selection.best_row}, {selection.best_col}) "
            f"selected, contrast {selection.contrast:.2f}"
        )
    else:
        print(f"scan: skipped, element {element} forced")

    last_session = None

    def on_chunk(session, delivered) -> None:
        nonlocal last_session
        last_session = session
        t = session.telemetry
        print(
            f"\r  chunk {t.chunks:>4d}: {t.words_delivered:>7d} words, "
            f"{t.lost_frames} lost, {t.crc_errors} CRC err, "
            f"{t.throughput_msps():5.1f} MS/s",
            end="",
            flush=True,
        )

    try:
        recording, telemetry = monitor.record_streaming(
            truth,
            scan_total,
            scan_total + duration_s,
            element=element,
            chunk_s=chunk_s,
            on_chunk=on_chunk,
        )
    except KeyboardInterrupt:
        # Flush what was acquired and report it — an interrupted watch
        # session still ends with honest books.
        print(flush=True)
        if last_session is None:
            print("interrupted before the first chunk")
            return 0
        last_session.finish()
        telemetry = last_session.telemetry
        print(telemetry.describe())
        try:
            telemetry.reconcile()
            print(
                f"interrupted: {telemetry.words_delivered} words flushed "
                f"from element {element}; telemetry reconciles"
            )
        except ConfigurationError:
            # The interrupt landed mid-stage; the counters are a torn
            # snapshot. Still honest output, just flagged as partial.
            print(
                f"interrupted mid-chunk: {telemetry.words_delivered} "
                f"words flushed from element {element}"
            )
        return 0
    print(flush=True)
    telemetry.reconcile()
    print(telemetry.describe())
    print(
        f"recorded {recording.values.size} words at "
        f"{recording.sample_rate_hz:.0f} S/s from element {element} "
        f"({recording.lost_samples} lost samples); telemetry reconciles"
    )
    return 0


def cmd_gateway(
    port: int = 9750,
    metrics_port: int | None = None,
    queue_chunks: int = 64,
    chaos: int | None = None,
    frames: int = 120,
    faulty_fraction: float = 0.5,
    seed: int = 0,
    json_path: str | None = None,
    decode_plane: str = "batch",
    flush_bytes: int = 64 * 1024,
    max_latency_ms: float = 2.0,
    telemetry: bool = False,
) -> int:
    """Serve the acquisition gateway — or audit it at fleet scale.

    Without ``--chaos``, binds the gateway and runs until SIGINT/SIGTERM,
    then prints the fleet metrics JSON; ``--telemetry`` additionally
    streams a one-line batch-plane summary (tick rate, occupancy,
    deadline-flush fraction) to stderr while serving. With ``--chaos N``,
    spins up N in-process simulated devices (half with independent
    seeded link faults and forced reconnects), audits every connection
    for silent corruption / unbounded memory / leaked tasks, prints the
    report and exits nonzero on any violation — the CI smoke gate.
    """
    import asyncio
    import json
    import signal

    from .gateway import GatewayServer, run_chaos

    if chaos is not None:
        if chaos < 1:
            print("need >= 1 chaos device", file=sys.stderr)
            return 2
        report = asyncio.run(
            run_chaos(
                n_devices=chaos,
                frames_per_device=frames,
                faulty_fraction=faulty_fraction,
                seed=seed,
                queue_chunks=queue_chunks,
                decode_plane=decode_plane,
            )
        )
        payload = json.dumps(report.as_dict(), indent=2)
        print(payload)
        if json_path:
            with open(json_path, "w") as fh:
                fh.write(payload + "\n")
        return 0 if report.ok else 1

    async def serve() -> dict:
        server = GatewayServer(
            port=port,
            metrics_port=metrics_port,
            queue_chunks=queue_chunks,
            decode_plane=decode_plane,
            flush_bytes=flush_bytes,
            max_latency_s=max_latency_ms / 1e3,
        )
        host, bound = await server.start()
        note = f"gateway listening on {host}:{bound}"
        if server.metrics_port is not None:
            note += f" (metrics on :{server.metrics_port})"
        print(note, flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)

        async def report_telemetry() -> None:
            while True:
                await asyncio.sleep(2.0)
                if server.plane is None:
                    continue
                m = server.plane.metrics()
                print(
                    f"batch-plane: lanes {m['lanes']}  "
                    f"ticks {m['ticks']} ({m['tick_rate_hz']:.1f}/s)  "
                    f"occupancy {m['occupancy_mean']:.1f} mean / "
                    f"{m['occupancy_max']} max  "
                    f"deadline-flush {m['deadline_flush_fraction']:.0%}  "
                    f"frames {m['frames_decoded']}",
                    file=sys.stderr,
                    flush=True,
                )

        reporter = (
            asyncio.create_task(report_telemetry()) if telemetry else None
        )
        await stop.wait()
        if reporter is not None:
            reporter.cancel()
        await server.stop()
        server.reconcile()
        return server.metrics()

    print(json.dumps(asyncio.run(serve()), indent=2))
    return 0


def cmd_device(
    host: str = "127.0.0.1",
    port: int = 9750,
    device_id: int = 0,
    frames: int = 200,
    samples_per_frame: int = 64,
    fault_kinds: list[str] | None = None,
    fault_rate: float = 0.0,
    seed: int = 0,
    drop_every: int | None = None,
    pace_s: float = 0.0,
) -> int:
    """Run one simulated device against a gateway; print its report."""
    import asyncio

    from .errors import GatewayError, ReproError
    from .gateway import DeviceClient, synthetic_payloads

    faults = None
    if fault_kinds:
        from .faults import FaultInjector, FaultSpec

        try:
            specs = [
                FaultSpec(
                    kind=kind,
                    rate_hz=fault_rate or 1.0,
                    magnitude=0.5 if kind == "frame_truncation" else 1.0,
                )
                for kind in fault_kinds
            ]
            faults = FaultInjector(
                specs, seed=seed, horizon_s=max(frames / 50.0, 1.0)
            )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    client = DeviceClient(
        host,
        port,
        device_id=device_id,
        payloads=synthetic_payloads(frames, samples_per_frame),
        faults=faults,
        drop_every=drop_every,
        pace_s=pace_s,
    )
    try:
        report = asyncio.run(client.run())
    except GatewayError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        f"device {report.device_id}: {report.frames_sent} frames "
        f"({report.bytes_sent} B) in {report.payloads} payloads, "
        f"{report.faults_injected} fault(s) injected, "
        f"{report.reconnects} reconnect(s) "
        f"({report.frames_replayed} frames replayed), "
        f"{report.heartbeats_sent} heartbeat(s), "
        f"{report.acks_received} ack(s), bye={report.bye_sent}"
    )
    return 0


def cmd_describe() -> int:
    from .core.chain import ReadoutChain
    from .core.power import PowerModel

    params = paper_defaults()
    chain = ReadoutChain(params)
    print(chain.chip.describe())
    print(f"  power           : {PowerModel(params.chip).report().describe()}")
    print(
        f"  decimation      : sinc^{params.decimation.cic_order}"
        f"(R={params.decimation.cic_decimation}) + "
        f"{params.decimation.fir_taps}-tap FIR"
        f"(R={params.decimation.fir_decimation}), "
        f"{params.decimation.output_bits} bit out"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Kirstein et al., 'A CMOS-Based Tactile Sensor "
            "for Continuous Blood Pressure Monitoring' (DATE 2004)"
        ),
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "names", nargs="*", default=[],
        help="experiment names, or 'all' (optional with --batch)",
    )
    run_parser.add_argument(
        "--backend",
        choices=["fast", "reference"],
        default="fast",
        help="modulator backend for experiments that support it "
        "(bit-identical; 'reference' is the slow pure-Python loop)",
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for experiments that fan out over the "
        "parallel executor (bit-identical for any value)",
    )
    run_parser.add_argument(
        "--telemetry",
        action="store_true",
        help="print the executor telemetry footer after each experiment",
    )
    run_parser.add_argument(
        "--batch",
        type=int,
        default=0,
        metavar="LANES",
        help="run LANES concurrent acquisition sessions through the "
        "fused batch kernel and spot-check bit-identity against a "
        "single session (ignores experiment names)",
    )
    stream_parser = sub.add_parser(
        "stream", help="live chunked acquisition with per-stage telemetry"
    )
    stream_parser.add_argument(
        "--duration", type=float, default=10.0, help="record length [s]"
    )
    stream_parser.add_argument(
        "--chunk", type=float, default=0.25, help="chunk duration [s]"
    )
    stream_parser.add_argument(
        "--element", type=int, default=None,
        help="element index (default: scan and auto-select)",
    )
    stream_parser.add_argument(
        "--backend", choices=["fast", "reference"], default="fast",
        help="modulator backend",
    )
    population_parser = sub.add_parser(
        "population",
        help="population run over the parallel executor, with telemetry",
    )
    population_parser.add_argument(
        "--subjects", type=int, default=10, help="virtual subject count"
    )
    population_parser.add_argument(
        "--duration", type=float, default=10.0,
        help="record length per subject [s]",
    )
    population_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes"
    )
    population_parser.add_argument(
        "--backend", choices=["fast", "reference"], default="fast",
        help="modulator backend",
    )
    imaging_parser = sub.add_parser(
        "imaging",
        help="N x N pressure-imaging workload (fused scan, artery line, "
        "fusion, drift registration)",
    )
    imaging_parser.add_argument(
        "--rows", type=int, default=8, help="array rows"
    )
    imaging_parser.add_argument(
        "--cols", type=int, default=8, help="array cols"
    )
    imaging_parser.add_argument(
        "--offset-um", type=float, default=200.0,
        help="artery lateral offset [um]",
    )
    imaging_parser.add_argument(
        "--rotation-mrad", type=float, default=60.0,
        help="array rotation vs artery axis [mrad]",
    )
    imaging_parser.add_argument(
        "--drift-um", type=float, default=300.0,
        help="inter-frame placement drift to register [um]",
    )
    ablation_parser = sub.add_parser(
        "ablation",
        help="ablation sweeps over the parallel executor, with telemetry",
    )
    ablation_parser.add_argument(
        "names", nargs="*",
        help=f"ablations to run ({', '.join(ABLATIONS)}) or 'all'",
    )
    ablation_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes"
    )
    faults_parser = sub.add_parser(
        "faults",
        help="fault-injection matrix: inject faults at every pipeline "
        "layer and verify detection/recovery (nonzero exit on silent "
        "corruption)",
    )
    faults_parser.add_argument(
        "kinds", nargs="*",
        help="fault kinds to inject (default: all)",
    )
    faults_parser.add_argument(
        "--rate", type=float, default=1.0,
        help="Poisson event rate per kind [Hz]",
    )
    faults_parser.add_argument(
        "--duration", type=float, default=4.0,
        help="record length per matrix cell [s]",
    )
    faults_parser.add_argument(
        "--seed", type=int, default=20040506,
        help="master seed for the fault schedules",
    )
    faults_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes"
    )
    faults_parser.add_argument(
        "--backend", choices=["fast", "reference"], default="fast",
        help="modulator backend",
    )
    gateway_parser = sub.add_parser(
        "gateway",
        help="serve the acquisition gateway (or --chaos N for the "
        "fleet chaos audit)",
    )
    gateway_parser.add_argument(
        "--port", type=int, default=9750, help="data port (0 = ephemeral)"
    )
    gateway_parser.add_argument(
        "--metrics-port", type=int, default=None,
        help="also serve the metrics JSON on this port",
    )
    gateway_parser.add_argument(
        "--queue-chunks", type=int, default=64,
        help="per-connection ingest queue bound [chunks]",
    )
    gateway_parser.add_argument(
        "--chaos", type=int, default=None, metavar="N",
        help="run the in-process chaos audit with N devices and exit",
    )
    gateway_parser.add_argument(
        "--frames", type=int, default=120,
        help="frames per chaos device",
    )
    gateway_parser.add_argument(
        "--faulty-fraction", type=float, default=0.5,
        help="fraction of chaos devices carrying link faults",
    )
    gateway_parser.add_argument(
        "--seed", type=int, default=0, help="chaos fault-schedule seed"
    )
    gateway_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the chaos report JSON here",
    )
    gateway_parser.add_argument(
        "--decode-plane", choices=("batch", "worker"), default="batch",
        help="decode scheduling: shared micro-batching plane (default) "
        "or one worker task per connection",
    )
    gateway_parser.add_argument(
        "--flush-bytes", type=int, default=64 * 1024,
        help="batch-plane occupancy target [bytes] before a tick fires",
    )
    gateway_parser.add_argument(
        "--max-latency-ms", type=float, default=2.0,
        help="batch-plane deadline: max decode delay under light load",
    )
    gateway_parser.add_argument(
        "--telemetry", action="store_true",
        help="stream a batch-plane telemetry line to stderr while serving",
    )
    device_parser = sub.add_parser(
        "device", help="run one simulated device against a gateway"
    )
    device_parser.add_argument(
        "--host", default="127.0.0.1", help="gateway host"
    )
    device_parser.add_argument(
        "--port", type=int, default=9750, help="gateway data port"
    )
    device_parser.add_argument(
        "--id", type=int, default=0, dest="device_id", help="device id"
    )
    device_parser.add_argument(
        "--frames", type=int, default=200, help="frames to stream"
    )
    device_parser.add_argument(
        "--samples-per-frame", type=int, default=64,
        help="samples per frame",
    )
    device_parser.add_argument(
        "--fault", action="append", default=None, dest="fault_kinds",
        metavar="KIND",
        help="inject a usb-layer fault process (repeatable): "
        "frame_drop, frame_truncation, frame_bitflip, frame_reorder",
    )
    device_parser.add_argument(
        "--fault-rate", type=float, default=1.0,
        help="Poisson rate per fault process [Hz]",
    )
    device_parser.add_argument(
        "--seed", type=int, default=0, help="fault-schedule seed"
    )
    device_parser.add_argument(
        "--drop-every", type=int, default=None, metavar="N",
        help="hard-drop and resume the connection every N payloads",
    )
    device_parser.add_argument(
        "--pace", type=float, default=0.0,
        help="sleep between payloads [s]",
    )
    sub.add_parser("describe", help="print the paper-default configuration")

    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        if args.batch:
            return cmd_batch(args.batch)
        if not args.names:
            run_parser.error("names are required unless --batch is given")
        return cmd_run(
            args.names,
            backend=args.backend,
            jobs=args.jobs,
            show_telemetry=args.telemetry,
        )
    if args.command == "population":
        return cmd_population(
            subjects=args.subjects,
            duration_s=args.duration,
            jobs=args.jobs,
            backend=args.backend,
        )
    if args.command == "imaging":
        return cmd_imaging(
            rows=args.rows,
            cols=args.cols,
            offset_um=args.offset_um,
            rotation_mrad=args.rotation_mrad,
            drift_um=args.drift_um,
        )
    if args.command == "ablation":
        return cmd_ablation(args.names, jobs=args.jobs)
    if args.command == "faults":
        return cmd_faults(
            kinds=args.kinds,
            rate=args.rate,
            duration_s=args.duration,
            seed=args.seed,
            jobs=args.jobs,
            backend=args.backend,
        )
    if args.command == "stream":
        return cmd_stream(
            duration_s=args.duration,
            chunk_s=args.chunk,
            element=args.element,
            backend=args.backend,
        )
    if args.command == "gateway":
        return cmd_gateway(
            port=args.port,
            metrics_port=args.metrics_port,
            queue_chunks=args.queue_chunks,
            chaos=args.chaos,
            frames=args.frames,
            faulty_fraction=args.faulty_fraction,
            seed=args.seed,
            json_path=args.json,
            decode_plane=args.decode_plane,
            flush_bytes=args.flush_bytes,
            max_latency_ms=args.max_latency_ms,
            telemetry=args.telemetry,
        )
    if args.command == "device":
        return cmd_device(
            host=args.host,
            port=args.port,
            device_id=args.device_id,
            frames=args.frames,
            samples_per_frame=args.samples_per_frame,
            fault_kinds=args.fault_kinds,
            fault_rate=args.fault_rate,
            seed=args.seed,
            drop_every=args.drop_every,
            pace_s=args.pace,
        )
    if args.command == "describe":
        return cmd_describe()
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
