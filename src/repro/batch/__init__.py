"""Batched multi-session fast path: one pass over many concurrent chains.

The single-session pipeline converts one subject x element at a time;
its per-stage Python seams (modulator -> CIC -> FIR -> quantize ->
frame -> decode) cost more than the arithmetic once the modulator loop
is compiled. This package adds a *leading batch axis* over whole readout
chains and fuses the full chip->sigma-delta->CIC->FIR->decode cascade
into one compiled pass (:mod:`repro.batch.kernel`), so one core
processes hundreds of concurrent 1 kS/s sessions.

Layering:

* :mod:`repro.batch.kernel` — the fused C kernel (modulator recurrence,
  Hogenauer CIC, polyphase FIR, 12-bit quantizer) plus a bit-exact
  pure-Python fallback, both operating on ``B`` lanes per sample.
* :mod:`repro.batch.engine` — :class:`BatchChainEngine`, which adapts a
  list of :class:`~repro.core.chain.ReadoutChain` objects to the kernel:
  state lives *in the chains* between calls, so any chunk split, and any
  mix of batched and single-session processing, is bit-identical.
* :mod:`repro.batch.session` — :class:`BatchAcquisitionSession`, the
  batched sibling of :class:`~repro.core.session.AcquisitionSession`
  with per-lane :class:`~repro.core.session.PipelineTelemetry` that
  still reconciles exactly.
"""

from .engine import BatchChainEngine
from .kernel import batch_kernel_available
from .session import BatchAcquisitionSession

__all__ = [
    "BatchAcquisitionSession",
    "BatchChainEngine",
    "batch_kernel_available",
]
