"""Fused batched chain kernel: chip front end -> sigma-delta -> CIC ->
FIR -> 12-bit codes.

One call advances ``B`` independent readout chains by ``n`` modulator
samples and returns every decimated 12-bit word the chunk completed, per
lane. The whole digital cascade of :mod:`repro.dsp` runs *inside* the
sample loop, so the bitstream never materializes and the per-stage
Python seams of the single-session path disappear. A second entry point
(:func:`run_frontend_chunk`) evaluates the capacitive front end — the
membrane's Chebyshev transfer, per-element mismatch, the mux
charge-injection glitch and the charge front-end gain — in the same
compiled pass, reading the caller's pressure fields in place (no
``(B, n)`` staging copies).

Bit-identity discipline (the same contract as :mod:`repro.sdm.fastpath`,
extended across the cascade):

* The modulator recurrence performs the identical IEEE-754 double
  operations in the identical order as the reference loop, compiled with
  FP contraction disabled. The deterministic comparator is evaluated
  branchlessly through the offset/hysteresis form, which reduces *bit-
  exactly* to the ideal ``x2 >= 0`` comparator when offset and
  hysteresis are zero (including the ``-0.0`` input case).
* The front-end kernel replays ``numpy.polynomial.chebyshev.chebval``'s
  Clenshaw recurrence and domain map term for term (scalar coefficient
  minus element, then multiply-add with contraction off), so it returns
  the same doubles ``MembraneSensor.capacitance_f`` produces; the
  element/mux/front-end affine steps mirror their NumPy expressions
  operation for operation.
* CIC integrators accumulate the +/-1 decisions in ``uint64`` with
  natural mod-2^64 wraparound; values are sign-extended to the Hogenauer
  register width only where the comb cascade reads them. Wrapping
  commutes with addition, so this matches
  :class:`repro.dsp.cic.CICDecimator` exactly.
* The FIR multiply-accumulate is exact int64 arithmetic (the register
  bound keeps |acc| < 2^31), so summation order is irrelevant.
* Quantization computes ``rint((double)acc * qscale)`` — the same
  half-to-even rounding as ``np.round`` — then clamps to the output
  rails instead of wrapping.

Lanes are processed in blocks of :data:`LANE_BLOCK` so the per-block
working set (modulator and integrator state plus a handful of input
streams) stays register- and L1-resident; the engine pads the batch to a
block multiple with inert lanes. Reordering lanes into blocks never
changes any single lane's operation sequence, so identity is unaffected.

All decimation phases are scalar and shared: the engine requires every
lane to be fed the same number of samples per call (lanes run in
lockstep), which is exactly the batched-acquisition contract.

When no C compiler is available, the engine falls back to per-lane NumPy
processing through the existing single-session stages — slower, but
producing the same bits, so results never depend on the toolchain.
"""

from __future__ import annotations

import ctypes
import os
import subprocess
import tempfile
from dataclasses import dataclass

import numpy as np

# Lanes per register block in the chain kernel; the engine pads B up to
# a multiple of this with inert lanes. Must match #define LB below.
LANE_BLOCK = 8

_BATCH_KERNEL_C_SOURCE = r"""
#include <stdint.h>
#include <math.h>

#define LB 8   /* lanes per register block; Python pads B to a multiple */
#define VW 8   /* samples per front-end vector block */

/* Fused batched chain: B second-order sigma-delta loops feeding B
 * CIC(order 3, diff delay 1) + FIR cascades, sharing scalar decimation
 * phases (lanes run in lockstep).
 *
 * Per-lane inputs (au, noise, dacn) are lane-major: lane l's samples
 * live at base[l*stride + i]. A stride of 0 aliases every lane onto one
 * shared row — the caller uses that to feed an all-zero noise row
 * without materializing (B, n) zeros. Per-lane state vectors have
 * length B; the FIR history is a lane-major (B, taps-1) ring sharing
 * one head index, returned via state_out so the caller can unroll it.
 * Output words are lane-major (B, cap).
 *
 * Lanes advance in blocks of LB whose modulator/integrator/comb state
 * lives in local arrays (registers/L1) for the whole chunk; B must be a
 * multiple of LB (the Python layer pads with inert lanes).
 *
 * Arithmetic mirrors the Python reference stages operation for
 * operation (build with -ffp-contract=off). Returns the number of
 * emitted words per lane; state_out carries the final scalar phases.
 */
long long batch_chain_run(
    long long n, long long B,
    const double *restrict au, long long au_stride,
    const double *restrict noise, long long noise_stride,
    const double *restrict dacn, long long dacn_stride,
    const double *restrict dac_gain,
    const double *restrict p1, const double *restrict b1,
    const double *restrict p2, const double *restrict a2,
    const double *restrict b2,
    const double *restrict swing,
    const double *restrict c_off,    /* (B) comparator offset        */
    const double *restrict c_hys,    /* (B) comparator hysteresis    */
    double *restrict x1, double *restrict x2,   /* (B) in/out        */
    long long *restrict prev,        /* (B) in/out comparator memory */
    long long *restrict clipped,     /* (B) out, caller zeroes       */
    unsigned long long *restrict integ, /* (3, B) in/out, raw mod 2^64 */
    long long *restrict comb,        /* (3, B) in/out, wrapped       */
    long long cic_R, long long cic_phase, long long reg_bits,
    const long long *restrict flip,  /* (taps) reversed Q coeffs     */
    long long taps, long long fir_M, long long fir_phase,
    long long *restrict hist,        /* (B, taps-1) in/out ring      */
    double qscale, long long qmax, long long qmin,
    long long *restrict words,       /* (B, cap) out                 */
    long long cap,
    long long *restrict state_out)   /* [cic_phase, fir_phase, head] */
{
    if (B % LB) {
        return -2; /* caller pads the batch */
    }
    const long long half = 1LL << (reg_bits - 1);
    const unsigned long long mask = ((unsigned long long)1 << reg_bits) - 1;
    const long long nh = taps - 1;
    const long long ftail = flip[taps - 1];
    long long nw = 0, cphase_out = cic_phase, fphase_out = fir_phase;
    long long head_out = 0;
    long long b0, i, j, k, r;

    for (b0 = 0; b0 < B; b0 += LB) {
        double lx1[LB], lx2[LB], lpv[LB];
        double lp1[LB], lb1[LB], lp2[LB], la2[LB], lb2[LB];
        double lsw[LB], loff[LB], lhy[LB], ldg[LB];
        long long lclip[LB];
        unsigned long long li0[LB], li1[LB], li2[LB];
        long long lc0[LB], lc1[LB], lc2[LB], lcur[LB];
        const double *pa[LB], *pn[LB], *pd[LB];

        for (j = 0; j < LB; j++) {
            const long long l = b0 + j;
            lx1[j] = x1[l];
            lx2[j] = x2[l];
            lpv[j] = (double)prev[l];
            lp1[j] = p1[l];
            lb1[j] = b1[l];
            lp2[j] = p2[l];
            la2[j] = a2[l];
            lb2[j] = b2[l];
            lsw[j] = swing[l];
            loff[j] = c_off[l];
            lhy[j] = c_hys[l];
            ldg[j] = dac_gain[l];
            lclip[j] = 0;
            li0[j] = integ[l];
            li1[j] = integ[B + l];
            li2[j] = integ[2 * B + l];
            lc0[j] = comb[l];
            lc1[j] = comb[B + l];
            lc2[j] = comb[2 * B + l];
            pa[j] = au + l * au_stride;
            pn[j] = noise + l * noise_stride;
            pd[j] = dacn + l * dacn_stride;
        }
        long long cphase = cic_phase, fphase = fir_phase, head = 0;
        long long bnw = 0;

        for (i = 0; i < n; i++) {
            for (j = 0; j < LB; j++) {
                double x2v = lx2[j];
                /* Branchless deterministic comparator: with zero offset
                 * and hysteresis this is bit-exactly the ideal x2 >= 0
                 * decision (0.5*0*prev is +/-0.0 and x - (+/-0.0) == x
                 * for every x the margin test distinguishes). */
                double threshold = loff[j] - 0.5 * lhy[j] * lpv[j];
                double margin = x2v - threshold;
                double v = (margin >= 0.0) ? 1.0 : -1.0;
                double fb = v * ldg[j] + pd[j][i];
                double x1v = lx1[j];
                double x1n = lp1[j] * x1v + pa[j][i] - lb1[j] * fb
                             + pn[j][i];
                double x2n = lp2[j] * x2v + la2[j] * x1v - lb2[j] * fb;
                double sw = lsw[j];
                lclip[j] += (x1n > sw) | (x1n < -sw) | (x2n > sw)
                            | (x2n < -sw);
                x1n = (x1n > sw) ? sw : ((x1n < -sw) ? -sw : x1n);
                x2n = (x2n > sw) ? sw : ((x2n < -sw) ? -sw : x2n);
                lx1[j] = x1n;
                lx2[j] = x2n;
                lpv[j] = v;
                /* Integrate the +/-1 decision: uint64 wraparound
                 * commutes with the per-stage two's-complement wrap of
                 * the NumPy CIC, so sign-extension can wait until the
                 * comb reads. */
                unsigned long long bu = (margin >= 0.0)
                    ? 1ULL : (unsigned long long)-1LL;
                li0[j] += bu;
                li1[j] += li0[j];
                li2[j] += li1[j];
            }
            if (cphase == 0) {
                /* CIC output word: wrap the third integrator to the
                 * register width, run the comb cascade. */
                for (j = 0; j < LB; j++) {
                    long long v = (long long)(((li2[j]
                                  + (unsigned long long)half) & mask))
                                  - half;
                    long long t;
                    t = (long long)((((unsigned long long)(v - lc0[j]))
                        + (unsigned long long)half) & mask) - half;
                    lc0[j] = v;
                    v = t;
                    t = (long long)((((unsigned long long)(v - lc1[j]))
                        + (unsigned long long)half) & mask) - half;
                    lc1[j] = v;
                    v = t;
                    t = (long long)((((unsigned long long)(v - lc2[j]))
                        + (unsigned long long)half) & mask) - half;
                    lc2[j] = v;
                    lcur[j] = t;
                }
                if (fphase == 0) {
                    if (bnw >= cap) {
                        return -1; /* caller sized the buffer wrong */
                    }
                    /* FIR word: window = history (oldest first) +
                     * current, times the time-reversed quantized
                     * coefficients. Integer MAC is exact, so order is
                     * free. */
                    for (j = 0; j < LB; j++) {
                        const long long *restrict h = hist + (b0 + j) * nh;
                        long long a = lcur[j] * ftail;
                        k = 0;
                        for (r = head; r < nh; r++, k++) {
                            a += h[r] * flip[k];
                        }
                        for (r = 0; r < head; r++, k++) {
                            a += h[r] * flip[k];
                        }
                        double scaled = (double)a * qscale;
                        long long q = (long long)rint(scaled);
                        q = (q > qmax) ? qmax : ((q < qmin) ? qmin : q);
                        words[(b0 + j) * cap + bnw] = q;
                    }
                    bnw++;
                }
                /* Push the CIC word into each lane's circular history. */
                if (nh > 0) {
                    for (j = 0; j < LB; j++) {
                        hist[(b0 + j) * nh + head] = lcur[j];
                    }
                    head++;
                    if (head == nh) {
                        head = 0;
                    }
                }
                fphase++;
                if (fphase == fir_M) {
                    fphase = 0;
                }
            }
            cphase++;
            if (cphase == cic_R) {
                cphase = 0;
            }
        }
        for (j = 0; j < LB; j++) {
            const long long l = b0 + j;
            x1[l] = lx1[j];
            x2[l] = lx2[j];
            prev[l] = (lpv[j] >= 0.0) ? 1 : -1;
            clipped[l] += lclip[j];
            integ[l] = li0[j];
            integ[B + l] = li1[j];
            integ[2 * B + l] = li2[j];
            comb[l] = lc0[j];
            comb[B + l] = lc1[j];
            comb[2 * B + l] = lc2[j];
        }
        nw = bnw;
        cphase_out = cphase;
        fphase_out = fphase;
        head_out = head;
    }
    state_out[0] = cphase_out;
    state_out[1] = fphase_out;
    state_out[2] = head_out;
    return nw;
}

/* One sample of the capacitive front end: domain map + Clenshaw
 * recurrence, exactly as numpy.polynomial.chebyshev.chebval orders the
 * operations (scalar coefficient minus element, then c1*x2 add). */
static double cheb_one(double pv, const double *restrict cheb,
                       long long ncoef, double dom_off, double dom_scl)
{
    double x = dom_off + dom_scl * pv;
    double c0, c1;
    if (ncoef == 1) {
        c0 = cheb[0];
        c1 = 0.0;
    } else if (ncoef == 2) {
        c0 = cheb[0];
        c1 = cheb[1];
    } else {
        double x2 = 2.0 * x;
        long long k;
        c0 = cheb[ncoef - 2];
        c1 = cheb[ncoef - 1];
        for (k = ncoef - 3; k >= 0; k--) {
            double tmp = c0;
            c0 = cheb[k] - c1;
            c1 = tmp + c1 * x2;
        }
    }
    return c0 + c1 * x;
}

/* Batched capacitive front end: per lane, read the selected element's
 * pressure column in place (pbase[l] points at sample 0, pstep[l] is
 * the sample stride in doubles), evaluate the shared Chebyshev C(P)
 * transfer, apply the element mismatch affine, the mux charge-injection
 * glitch on sample 0 (inj[l] = 0 when the lane was not just switched;
 * adding literal +0.0 only differs for a -0.0 capacitance, which the
 * positivity check rejects on both paths), and the charge front end's
 * (sense - Cref)/Cfb * excitation map; write u * a1 into the lane's au
 * row. u_last[l] returns the pre-gain u of the final sample (the
 * modulator's jitter-slope carry).
 *
 * Returns 0, or -1 if any pressure leaves the interpolant's domain or
 * any capacitance is non-positive — the caller then replays the chunk
 * through the per-lane NumPy path, which raises the exact errors.
 */
long long batch_frontend_run(
    long long n, long long B,
    const unsigned long long *restrict pbase, /* (B) addresses        */
    const long long *restrict pstep,          /* (B) strides, doubles */
    double *restrict au, long long au_stride,
    const double *restrict cheb, long long ncoef,
    double dom_off, double dom_scl,
    double pmin, double pmax,
    const double *restrict cscale,  /* (B) element capacitance_scale  */
    const double *restrict coffs,   /* (B) element offset_cap_f       */
    const double *restrict inj,     /* (B) charge-injection glitch    */
    const double *restrict cref,    /* (B) front-end reference cap    */
    const double *restrict cfb,     /* (B) front-end feedback cap     */
    const double *restrict cexc,    /* (B) excitation fraction        */
    const double *restrict a1,      /* (B) folded modulator gain      */
    double *restrict u_last)        /* (B) out: final pre-gain u      */
{
    long long err = 0;
    long long l, i, v, k;
    for (l = 0; l < B; l++) {
        const double *p = (const double *)pbase[l];
        const long long st = pstep[l];
        double *restrict o = au + l * au_stride;
        const double cs = cscale[l], co = coffs[l], gi = inj[l];
        const double rf = cref[l], fb = cfb[l], ex = cexc[l];
        const double g = a1[l];
        double ul = 0.0;

        /* Sample 0 carries the charge-injection glitch. */
        {
            double pv = p[0];
            err += (pv > pmax) | (pv < pmin);
            double sense = cheb_one(pv, cheb, ncoef, dom_off, dom_scl)
                           * cs + co;
            sense = sense + gi;
            err += (sense <= 0.0);
            double u = (sense - rf) / fb * ex;
            ul = u;
            o[0] = u * g;
        }
        i = 1;
        if (ncoef >= 3) {
            const double ctop0 = cheb[ncoef - 2];
            const double ctop1 = cheb[ncoef - 1];
            for (; i + VW <= n; i += VW) {
                double x[VW], x2[VW], c0[VW], c1[VW], uu[VW];
                long long e = 0;
                for (v = 0; v < VW; v++) {
                    double pv = p[(i + v) * st];
                    e += (pv > pmax) | (pv < pmin);
                    x[v] = dom_off + dom_scl * pv;
                }
                for (v = 0; v < VW; v++) {
                    x2[v] = 2.0 * x[v];
                    c0[v] = ctop0;
                    c1[v] = ctop1;
                }
                for (k = ncoef - 3; k >= 0; k--) {
                    const double ck = cheb[k];
                    for (v = 0; v < VW; v++) {
                        double tmp = c0[v];
                        c0[v] = ck - c1[v];
                        c1[v] = tmp + c1[v] * x2[v];
                    }
                }
                for (v = 0; v < VW; v++) {
                    double sense = (c0[v] + c1[v] * x[v]) * cs + co;
                    e += (sense <= 0.0);
                    double u = (sense - rf) / fb * ex;
                    uu[v] = u;
                    o[i + v] = u * g;
                }
                err += e;
                ul = uu[VW - 1];
            }
        }
        for (; i < n; i++) {
            double pv = p[i * st];
            err += (pv > pmax) | (pv < pmin);
            double sense = cheb_one(pv, cheb, ncoef, dom_off, dom_scl)
                           * cs + co;
            err += (sense <= 0.0);
            double u = (sense - rf) / fb * ex;
            ul = u;
            o[i] = u * g;
        }
        u_last[l] = ul;
    }
    return err ? -1 : 0;
}
"""

# -O3 (vs the single-lane kernel's -O2) lets the compiler vectorize the
# lane-block and front-end inner loops. SIMD across lanes/samples
# preserves each element's operation order, and contraction stays off,
# so identity is unaffected.
_CFLAGS = [
    "-O3",
    "-ffp-contract=off",
    "-fno-fast-math",
    "-fPIC",
    "-shared",
]

# Module-level kernel cache: None = not tried yet, False = unavailable,
# otherwise a (chain_fn, frontend_fn) tuple of loaded ctypes functions.
_kernel: object = None

_DBL_P = ctypes.POINTER(ctypes.c_double)
_LL_P = ctypes.POINTER(ctypes.c_longlong)
_ULL_P = ctypes.POINTER(ctypes.c_uint64)


def _try_compile_kernel():
    """Compile and load the batched C kernels; return the pair or None.

    Mirrors :func:`repro.sdm.fastpath._try_compile_kernel`: the shared
    object lives in a private temporary directory kept for the process
    lifetime, and any failure degrades silently to the Python fallback.
    """
    compilers = [os.environ.get("REPRO_CC"), "cc", "gcc", "clang"]
    build_dir = tempfile.mkdtemp(prefix="repro-batch-kernel-")
    src = os.path.join(build_dir, "batch_kernel.c")
    lib_path = os.path.join(build_dir, "batch_kernel.so")
    try:
        with open(src, "w") as fh:
            fh.write(_BATCH_KERNEL_C_SOURCE)
        for cc in compilers:
            if not cc:
                continue
            try:
                result = subprocess.run(
                    [cc, *_CFLAGS, "-o", lib_path, src, "-lm"],
                    capture_output=True,
                    timeout=60,
                )
            except (OSError, subprocess.SubprocessError):
                continue
            if result.returncode == 0 and os.path.exists(lib_path):
                break
        else:
            return None
        lib = ctypes.CDLL(lib_path)
    except OSError:
        return None

    chain = lib.batch_chain_run
    chain.restype = ctypes.c_longlong
    chain.argtypes = [
        ctypes.c_longlong,  # n
        ctypes.c_longlong,  # B
        _DBL_P, ctypes.c_longlong,  # au, au_stride
        _DBL_P, ctypes.c_longlong,  # noise, noise_stride
        _DBL_P, ctypes.c_longlong,  # dacn, dacn_stride
        _DBL_P,  # dac_gain
        _DBL_P, _DBL_P,  # p1, b1
        _DBL_P, _DBL_P,  # p2, a2
        _DBL_P,  # b2
        _DBL_P,  # swing
        _DBL_P, _DBL_P,  # c_off, c_hys
        _DBL_P, _DBL_P,  # x1, x2
        _LL_P,  # prev
        _LL_P,  # clipped
        _ULL_P,  # integ
        _LL_P,  # comb
        ctypes.c_longlong,  # cic_R
        ctypes.c_longlong,  # cic_phase
        ctypes.c_longlong,  # reg_bits
        _LL_P,  # flip
        ctypes.c_longlong,  # taps
        ctypes.c_longlong,  # fir_M
        ctypes.c_longlong,  # fir_phase
        _LL_P,  # hist
        ctypes.c_double,  # qscale
        ctypes.c_longlong,  # qmax
        ctypes.c_longlong,  # qmin
        _LL_P,  # words
        ctypes.c_longlong,  # cap
        _LL_P,  # state_out
    ]

    front = lib.batch_frontend_run
    front.restype = ctypes.c_longlong
    front.argtypes = [
        ctypes.c_longlong,  # n
        ctypes.c_longlong,  # B
        _ULL_P,  # pbase
        _LL_P,  # pstep
        _DBL_P, ctypes.c_longlong,  # au, au_stride
        _DBL_P, ctypes.c_longlong,  # cheb, ncoef
        ctypes.c_double,  # dom_off
        ctypes.c_double,  # dom_scl
        ctypes.c_double,  # pmin
        ctypes.c_double,  # pmax
        _DBL_P,  # cscale
        _DBL_P,  # coffs
        _DBL_P,  # inj
        _DBL_P,  # cref
        _DBL_P,  # cfb
        _DBL_P,  # cexc
        _DBL_P,  # a1
        _DBL_P,  # u_last
    ]
    return (chain, front)


def _get_kernel():
    global _kernel
    if _kernel is None:
        _kernel = _try_compile_kernel() or False
    return _kernel or None


def batch_kernel_available() -> bool:
    """True when the fused batched C kernels could be built and loaded."""
    return _get_kernel() is not None


def pad_lanes(B: int) -> int:
    """Batch size padded up to the kernel's lane-block multiple."""
    return -(-B // LANE_BLOCK) * LANE_BLOCK


@dataclass
class BatchState:
    """Mutable per-batch cascade state the kernel reads and writes.

    The engine materializes this from the lane chains before every call
    and writes it back afterwards, so the chains stay the single source
    of truth (any chunk split, or a hand-off to single-session
    processing, resumes bit-exactly). Arrays are sized to the padded
    batch (``pad_lanes(B)``); rows past the real batch are inert.
    """

    x1: np.ndarray  # (Bp) float64 first-integrator states
    x2: np.ndarray  # (Bp) float64 second-integrator states
    comp_previous: np.ndarray  # (Bp) int64 comparator memory
    cic_integrators: np.ndarray  # (3, Bp) int64 (wrapped)
    cic_combs: np.ndarray  # (3, Bp) int64
    cic_phase: int
    fir_history: np.ndarray  # (Bp, taps-1) int64, column 0 oldest
    fir_phase: int


@dataclass
class BatchChunkResult:
    """Outcome of one fused batched chunk."""

    codes: np.ndarray  # (Bp, n_words) int64 12-bit codes, pre-suppression
    clipped: np.ndarray  # (Bp) int64 clipped-cycle counts


def run_batch_chunk(
    n: int,
    au: np.ndarray,
    au_stride: int,
    noise: np.ndarray,
    noise_stride: int,
    dac_noise: np.ndarray,
    dacn_stride: int,
    dac_gain: np.ndarray,
    p1: np.ndarray,
    b1: np.ndarray,
    p2: np.ndarray,
    a2: np.ndarray,
    b2: np.ndarray,
    swing: np.ndarray,
    comp_offset: np.ndarray,
    comp_hysteresis: np.ndarray,
    state: BatchState,
    cic_decimation: int,
    register_bits: int,
    fir_flipped: np.ndarray,
    fir_decimation: int,
    qscale: float,
    output_bits: int,
) -> BatchChunkResult:
    """Advance ``Bp`` fused chains by ``n`` samples through the C kernel.

    ``au``/``noise``/``dac_noise`` are lane-major buffers addressed as
    ``base[l * stride + i]`` — a stride of 0 shares one zero row across
    every lane. ``state`` is updated in place. The caller is responsible
    for checking :func:`batch_kernel_available` first — there is no
    Python fallback at this layer (the engine falls back through the
    existing single-session stages instead).
    """
    kernel = _get_kernel()
    if kernel is None:  # pragma: no cover - engine guards this
        raise RuntimeError("batched kernel unavailable; use the engine fallback")
    chain_fn = kernel[0]
    B = int(dac_gain.size)
    taps = int(fir_flipped.size)
    R = int(cic_decimation)
    M = int(fir_decimation)

    # CIC words appear at chunk-local samples first_c, first_c + R, ...
    first_c = (R - state.cic_phase) % R
    n_cic = 0 if n <= first_c else (n - first_c + R - 1) // R
    cap = max(1, n_cic)

    integ = np.ascontiguousarray(
        state.cic_integrators.astype(np.int64).view(np.uint64)
    )
    comb = np.ascontiguousarray(state.cic_combs, dtype=np.int64)
    hist = np.ascontiguousarray(state.fir_history, dtype=np.int64)
    words = np.empty((B, cap), dtype=np.int64)
    clipped = np.zeros(B, dtype=np.int64)
    state_out = np.zeros(3, dtype=np.int64)
    qmax = (1 << (output_bits - 1)) - 1
    qmin = -(1 << (output_bits - 1))

    def dp(a):
        return a.ctypes.data_as(_DBL_P)

    def lp(a):
        return a.ctypes.data_as(_LL_P)

    nw = chain_fn(
        n,
        B,
        dp(au),
        int(au_stride),
        dp(noise),
        int(noise_stride),
        dp(dac_noise),
        int(dacn_stride),
        dp(dac_gain),
        dp(p1),
        dp(b1),
        dp(p2),
        dp(a2),
        dp(b2),
        dp(swing),
        dp(comp_offset),
        dp(comp_hysteresis),
        dp(state.x1),
        dp(state.x2),
        lp(state.comp_previous),
        lp(clipped),
        integ.ctypes.data_as(_ULL_P),
        lp(comb),
        R,
        state.cic_phase,
        register_bits,
        lp(np.ascontiguousarray(fir_flipped, dtype=np.int64)),
        taps,
        M,
        state.fir_phase,
        lp(hist),
        qscale,
        qmax,
        qmin,
        lp(words),
        cap,
        lp(state_out),
    )
    if nw < 0:  # pragma: no cover - capacity/padding invariants are exact
        raise RuntimeError("batched kernel invariant violation")

    # Write the cascade state back in the layout the chains use.
    from ..dsp.fixed_point import wrap_twos_complement

    state.cic_integrators = wrap_twos_complement(
        integ.view(np.int64), register_bits
    ).astype(np.int64)
    state.cic_combs = comb
    state.cic_phase = int(state_out[0])
    head = int(state_out[2])
    state.fir_history = np.concatenate(
        [hist[:, head:], hist[:, :head]], axis=1
    )
    state.fir_phase = int(state_out[1])
    return BatchChunkResult(codes=words[:, : int(nw)], clipped=clipped)


def run_frontend_chunk(
    n: int,
    pbase: np.ndarray,
    pstep: np.ndarray,
    au: np.ndarray,
    au_stride: int,
    cheb_coef: np.ndarray,
    dom_off: float,
    dom_scl: float,
    p_min: float,
    p_max: float,
    cap_scale: np.ndarray,
    cap_offset: np.ndarray,
    injection: np.ndarray,
    ref_cap: np.ndarray,
    fb_cap: np.ndarray,
    excitation: np.ndarray,
    a1: np.ndarray,
    u_last: np.ndarray,
) -> bool:
    """Evaluate the capacitive front end for ``B`` lanes in one pass.

    Reads each lane's selected-element pressure column in place via
    ``(pbase[l], pstep[l])`` and writes ``a1 * u`` into the lane's
    ``au`` row. Returns False when any sample violates the transfer's
    domain or positivity constraints — the caller then replays the
    chunk through the per-lane NumPy front end, which raises the exact
    error the single-session path raises.
    """
    kernel = _get_kernel()
    if kernel is None:  # pragma: no cover - engine guards this
        raise RuntimeError("batched kernel unavailable; use the engine fallback")
    front_fn = kernel[1]
    rc = front_fn(
        int(n),
        int(pbase.size),
        pbase.ctypes.data_as(_ULL_P),
        pstep.ctypes.data_as(_LL_P),
        au.ctypes.data_as(_DBL_P),
        int(au_stride),
        cheb_coef.ctypes.data_as(_DBL_P),
        int(cheb_coef.size),
        float(dom_off),
        float(dom_scl),
        float(p_min),
        float(p_max),
        cap_scale.ctypes.data_as(_DBL_P),
        cap_offset.ctypes.data_as(_DBL_P),
        injection.ctypes.data_as(_DBL_P),
        ref_cap.ctypes.data_as(_DBL_P),
        fb_cap.ctypes.data_as(_DBL_P),
        excitation.ctypes.data_as(_DBL_P),
        a1.ctypes.data_as(_DBL_P),
        u_last.ctypes.data_as(_DBL_P),
    )
    return rc == 0
