"""Adapter between readout chains and the fused batched kernel.

:class:`BatchChainEngine` takes ``B`` independent
:class:`~repro.core.chain.ReadoutChain` objects (one per concurrent
session) and advances them all by one loop-input chunk per call. The
cascade state (integrators, comparator memory, CIC/FIR registers and
phases) is read out of the chain objects before each call and written
back afterwards, so the chains remain the single source of truth:

* any chunk split produces bit-identical output,
* a lane can be handed back to single-session processing at any chunk
  boundary and resumes bit-exactly,
* the pure-Python fallback (no C compiler) and the kernel are
  interchangeable mid-stream.

Stochastic terms are drawn per lane through each modulator's own
:meth:`~repro.sdm.modulator.SecondOrderSDM._prepare_inputs`, preserving
the per-term child-stream discipline that makes noisy configurations
chunk-invariant. Fully deterministic lanes (no jitter, noise, flicker or
DAC noise) skip that call entirely: its only effects are the identity
transform and the jitter-slope carry, which the engine replays directly.

The kernel runs on a batch padded to :data:`~repro.batch.kernel.LANE_BLOCK`
lanes; padded lanes carry zero coefficients and inputs, and their
outputs are discarded. Input staging buffers persist across chunks
(lane-major, stride-addressed) so a steady-state feed allocates nothing
proportional to ``B * n``, and lanes without a given stochastic term
share one all-zero row instead of materializing ``(B, n)`` zeros.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from . import kernel as batch_kernel
from .kernel import BatchState


class BatchChainEngine:
    """Lockstep executor for ``B`` chains' modulator+decimation cascades.

    Parameters
    ----------
    chains:
        Distinct :class:`~repro.core.chain.ReadoutChain` objects, one
        per lane. Lanes must share the decimation architecture (CIC
        order/decimation/differential delay, FIR taps/decimation and
        quantized coefficients, output width); per-lane analog
        parameters (mismatch, noise, comparator imperfections) are free.
    force_python:
        Pin the per-lane fallback path (used by the equivalence tests to
        prove both engines agree bit-for-bit).
    """

    def __init__(self, chains, force_python: bool = False):
        self._force_python = bool(force_python)
        self._configure(list(chains))

    def _configure(self, chains) -> None:
        """(Re)build every per-lane constant for ``chains``.

        Called by ``__init__`` and by the dynamic lane operations
        (:meth:`attach_lane` / :meth:`detach_lane`): all per-lane
        coefficient vectors, masks and the padded batch geometry are
        derived from the chain objects alone, so membership changes are
        a pure rebuild. Staging buffers are dropped because lane
        *indices* shift — a stale noise row from a previous occupant
        must never be read by its new one.
        """
        if not chains:
            raise ConfigurationError("batch needs at least one chain")
        if len({id(c) for c in chains}) != len(chains):
            raise ConfigurationError(
                "batch lanes must be distinct chain objects; sharing one "
                "chain across lanes would interleave its analog state"
            )
        self.chains = chains
        ref = chains[0].fpga.filter
        for c in chains:
            filt = c.fpga.filter
            if (
                filt.cic.order != ref.cic.order
                or filt.cic.decimation != ref.cic.decimation
                or filt.cic.diff_delay != ref.cic.diff_delay
                or filt.fir.decimation != ref.fir.decimation
                or filt.fir.taps != ref.fir.taps
                or filt.params.output_bits != ref.params.output_bits
                or not np.array_equal(
                    filt.fir.coefficients_int, ref.fir.coefficients_int
                )
            ):
                raise ConfigurationError(
                    "batch lanes must share the decimation architecture "
                    "(CIC/FIR geometry and quantized coefficients)"
                )
        self._filter = ref

        # Constant per-lane modulator coefficient vectors, padded to the
        # kernel's lane-block multiple with inert lanes (zero gains).
        B = len(chains)
        Bp = batch_kernel.pad_lanes(B)
        self._padded = Bp
        self._dac_gain = np.zeros(Bp)
        self._p1 = np.zeros(Bp)
        self._b1 = np.zeros(Bp)
        self._p2 = np.zeros(Bp)
        self._a2 = np.zeros(Bp)
        self._b2 = np.zeros(Bp)
        self._a1 = np.zeros(Bp)
        self._swing = np.ones(Bp)
        self._c_off = np.zeros(Bp)
        self._c_hys = np.zeros(Bp)
        self._ideal_comp = np.zeros(Bp, dtype=bool)
        self._det = np.zeros(B, dtype=bool)  # fully deterministic lanes
        self._has_noise = np.zeros(B, dtype=bool)
        self._has_dacn = np.zeros(B, dtype=bool)
        kernel_ok = True
        for l, c in enumerate(chains):
            m = c.chip.modulator
            s1, s2 = m.stage1, m.stage2
            comp = m.comparator
            self._a1[l] = s1.signal_gain * s1.gain_error
            self._p1[l] = s1.leak
            self._b1[l] = s1.feedback_gain * s1.gain_error
            self._p2[l] = s2.leak
            self._a2[l] = s2.signal_gain * s2.gain_error
            self._b2[l] = s2.feedback_gain * s2.gain_error
            self._swing[l] = s1.swing_limit
            self._dac_gain[l] = 1.0 + m.dac.reference_error
            ideal = comp.is_ideal()
            self._ideal_comp[l] = ideal
            self._c_off[l] = 0.0 if ideal else comp.offset_v
            self._c_hys[l] = 0.0 if ideal else comp.hysteresis_v
            self._has_noise[l] = (
                m._noise_sigma_u > 0.0 or m._flicker is not None
            )
            self._has_dacn[l] = m.dac.reference_noise_sigma > 0.0
            self._det[l] = not (
                m.nonideality.clock_jitter_s > 0.0
                or self._has_noise[l]
                or self._has_dacn[l]
            )
            if comp.metastable_band_v != 0.0:
                # In-loop random draws: reference loop only.
                kernel_ok = False
            if self._dac_gain[l] == 0.0 and m.dac.reference_noise_sigma == 0.0:
                # Degenerate zero DAC gain: the unified comparator form
                # would see -0.0 where the reference sees +0.0.
                kernel_ok = False
        if ref.cic.order != 3 or ref.cic.diff_delay != 1:
            kernel_ok = False
        self._kernel_ok = kernel_ok
        self._qscale = (1 << (ref.params.output_bits - 1)) / (
            float(ref.cic.dc_gain) / ref.fir.coeff_format.scale
        )
        self._flip = np.ascontiguousarray(
            ref.fir.coefficients_int[::-1], dtype=np.int64
        )

        # Lane-major staging buffers, grown on demand and reused across
        # chunks. Rows that are never written (inert padding, lanes
        # without a stochastic term) stay zero. When *no* lane has a
        # term, the whole batch shares one zero row via stride 0.
        self._buf_n = 0
        self._au: np.ndarray | None = None
        self._noise: np.ndarray | None = None
        self._dacn: np.ndarray | None = None
        self._zero_row: np.ndarray | None = None
        self._any_noise = bool(self._has_noise.any())
        self._any_dacn = bool(self._has_dacn.any())

    @property
    def lanes(self) -> int:
        return len(self.chains)

    @property
    def uses_kernel(self) -> bool:
        """True when chunks run through the fused compiled kernel."""
        return (
            self._kernel_ok
            and not self._force_python
            and batch_kernel.batch_kernel_available()
        )

    @property
    def deterministic_lanes(self) -> np.ndarray:
        """Mask of lanes with no stochastic terms (read-only view)."""
        return self._det

    # -- dynamic lane membership -------------------------------------------

    def attach_lane(self, chain) -> int:
        """Join ``chain`` as a new lane at a chunk boundary.

        The chain's cascade state is whatever it is — a freshly built
        chain or one that has been running solo — but its decimation
        *phases* must match the batch's, because the fused kernel
        advances all lanes in lockstep (a fresh chain therefore joins
        when the batch sits at a decimation boundary). Returns the new
        lane's index; subsequent chunks advance it bit-identically to
        the solo path, exactly like the founding lanes.
        """
        if any(chain is c for c in self.chains):
            raise ConfigurationError("chain is already a lane of this batch")
        ref = self.chains[0].fpga.filter
        filt = chain.fpga.filter
        if (
            filt.cic._phase != ref.cic._phase
            or filt.fir._phase != ref.fir._phase
        ):
            raise ConfigurationError(
                "joining lane must match the batch's decimation phase; "
                "attach at a shared decimation boundary"
            )
        self._configure(self.chains + [chain])
        return len(self.chains) - 1

    def detach_lane(self, lane: int):
        """Remove one lane at a chunk boundary; returns its chain.

        The chain objects are the single source of truth for cascade
        state, so the detached chain resumes single-session processing
        bit-exactly — and may later :meth:`attach_lane` again.
        """
        if not 0 <= lane < len(self.chains):
            raise ConfigurationError(f"no lane {lane} in this batch")
        if len(self.chains) == 1:
            raise ConfigurationError(
                "cannot detach the last lane; a batch needs at least one"
            )
        chain = self.chains[lane]
        self._configure(
            [c for i, c in enumerate(self.chains) if i != lane]
        )
        return chain

    # -- staging buffers ---------------------------------------------------

    def ensure_buffers(self, n: int) -> np.ndarray:
        """Size the staging buffers for ``n``-sample chunks; return au.

        The returned ``(padded_lanes, >=n)`` array is the kernel's
        loop-input staging area; callers that precompute ``a1 * u`` (the
        fused front end) write rows ``[:B, :n]`` directly.
        """
        if self._au is None or n > self._buf_n:
            size = max(n, 2 * self._buf_n)
            self._buf_n = size
            self._au = np.zeros((self._padded, size))
            self._noise = (
                np.zeros((self._padded, size)) if self._any_noise else None
            )
            self._dacn = (
                np.zeros((self._padded, size)) if self._any_dacn else None
            )
            self._zero_row = np.zeros(size)
        return self._au

    # -- state marshalling -------------------------------------------------

    def _collect_state(self) -> BatchState:
        Bp = self._padded
        taps = self._filter.fir.taps
        order = self._filter.cic.order
        st = BatchState(
            x1=np.zeros(Bp),
            x2=np.zeros(Bp),
            comp_previous=np.ones(Bp, dtype=np.int64),
            cic_integrators=np.zeros((order, Bp), dtype=np.int64),
            cic_combs=np.zeros((order, Bp), dtype=np.int64),
            cic_phase=self.chains[0].fpga.filter.cic._phase,
            fir_history=np.zeros((Bp, taps - 1), dtype=np.int64),
            fir_phase=self.chains[0].fpga.filter.fir._phase,
        )
        for l, c in enumerate(self.chains):
            m = c.chip.modulator
            st.x1[l] = m.stage1.state
            st.x2[l] = m.stage2.state
            st.comp_previous[l] = m.comparator.previous_decision
            filt = c.fpga.filter
            if filt.cic._phase != st.cic_phase or filt.fir._phase != st.fir_phase:
                raise ConfigurationError(
                    "batch lanes fell out of decimation lockstep; every "
                    "lane must be fed the same number of samples"
                )
            st.cic_integrators[:, l] = filt.cic._integrators
            st.cic_combs[:, l] = filt.cic._combs[:, 0]
            st.fir_history[l, :] = filt.fir._history
        return st

    def _restore_state(self, st: BatchState) -> None:
        for l, c in enumerate(self.chains):
            m = c.chip.modulator
            m.stage1.state = float(st.x1[l])
            m.stage2.state = float(st.x2[l])
            if not self._ideal_comp[l]:
                # The ideal comparator has no memory; the reference path
                # leaves its _previous untouched, so mirror that.
                m.comparator._previous = int(st.comp_previous[l])
            filt = c.fpga.filter
            filt.cic._integrators = st.cic_integrators[:, l].copy()
            filt.cic._combs[:, 0] = st.cic_combs[:, l]
            filt.cic._phase = st.cic_phase
            filt.fir._history = st.fir_history[l].copy()
            filt.fir._phase = st.fir_phase

    # -- execution ---------------------------------------------------------

    def feed_loop_inputs(self, loop_inputs: np.ndarray):
        """Advance every lane by one loop-input chunk.

        Parameters
        ----------
        loop_inputs:
            ``(n, B)`` array of modulator loop inputs in FS units (after
            the front end), one column per lane.

        Returns
        -------
        codes:
            ``(B, n_words)`` int64 array of 12-bit decimated codes —
            everything the cascade emitted this chunk, *before* the
            FPGA's post-switch suppression window.
        clipped:
            ``(B,)`` int64 clipped-cycle counts for the chunk.
        """
        u = np.asarray(loop_inputs, dtype=float)
        if u.ndim != 2 or u.shape[1] != len(self.chains):
            raise ConfigurationError(
                "loop inputs must be (n_samples, n_lanes)"
            )
        n, B = u.shape
        if n == 0:
            return (
                np.zeros((B, 0), dtype=np.int64),
                np.zeros(B, dtype=np.int64),
            )

        if not self.uses_kernel:
            return self._feed_fallback(u)

        au = self.ensure_buffers(n)
        for l in range(B):
            au[l, :n] = u[:, l]
        return self.run_prepared(n)

    def run_prepared(self, n: int, folded=None, u_last=None):
        """Run one chunk whose loop inputs are already staged in ``au``.

        ``au`` rows (from :meth:`ensure_buffers`) hold each lane's raw
        loop input ``u``, except lanes flagged in ``folded`` (a mask
        over deterministic lanes) whose rows already hold ``a1 * u`` —
        the fused front end writes those directly, passing the raw final
        sample per lane in ``u_last`` for the jitter-slope carry.
        """
        B = len(self.chains)
        au = self._au
        for l, c in enumerate(self.chains):
            m = c.chip.modulator
            row = au[l, :n]
            if folded is not None and folded[l]:
                m._last_input = float(u_last[l])
                continue
            if self._det[l]:
                # _prepare_inputs with every stochastic term disabled is
                # the identity transform plus the jitter-slope carry.
                m._last_input = float(row[-1])
                np.multiply(row, self._a1[l], out=row)
                continue
            ul, nl, dl, _dg = m._prepare_inputs(row)
            np.multiply(ul, self._a1[l], out=row)
            if self._has_noise[l]:
                self._noise[l, :n] = nl
            if dl is not None:
                self._dacn[l, :n] = dl

        stride = self._au.shape[1]
        if self._any_noise:
            noise, nstride = self._noise, stride
        else:
            noise, nstride = self._zero_row, 0
        if self._any_dacn:
            dacn, dstride = self._dacn, stride
        else:
            dacn, dstride = self._zero_row, 0

        st = self._collect_state()
        result = batch_kernel.run_batch_chunk(
            n=n,
            au=au,
            au_stride=stride,
            noise=noise,
            noise_stride=nstride,
            dac_noise=dacn,
            dacn_stride=dstride,
            dac_gain=self._dac_gain,
            p1=self._p1,
            b1=self._b1,
            p2=self._p2,
            a2=self._a2,
            b2=self._b2,
            swing=self._swing,
            comp_offset=self._c_off,
            comp_hysteresis=self._c_hys,
            state=st,
            cic_decimation=self._filter.cic.decimation,
            register_bits=self._filter.cic.register_bits,
            fir_flipped=self._flip,
            fir_decimation=self._filter.fir.decimation,
            qscale=self._qscale,
            output_bits=self._filter.params.output_bits,
        )
        self._restore_state(st)
        return result.codes[:B], result.clipped[:B]

    def _feed_fallback(self, u: np.ndarray):
        """Per-lane processing through the existing single-session stages.

        Exact by construction: each lane runs the same
        :mod:`repro.sdm.fastpath` recurrence and
        :class:`~repro.dsp.decimator.DecimationFilter` the single
        session would, against the same chain state.
        """
        n, B = u.shape
        clipped = np.zeros(B, dtype=np.int64)
        lane_codes = []
        for l, c in enumerate(self.chains):
            m = c.chip.modulator
            ul, nl, dl, dg = m._prepare_inputs(u[:, l])
            if m.comparator.metastable_band_v != 0.0:
                out = m._simulate_reference(ul, nl, dl, dg, False, "ignore")
            else:
                out = m._simulate_fast(ul, nl, dl, dg, False, "ignore")
            clipped[l] = out.clipped_samples
            lane_codes.append(c.fpga.filter.process(out.bitstream).codes)
        widths = {codes.size for codes in lane_codes}
        if len(widths) != 1:  # pragma: no cover - lockstep guard
            raise ConfigurationError(
                "batch lanes fell out of decimation lockstep"
            )
        if lane_codes[0].size == 0:
            return np.zeros((B, 0), dtype=np.int64), clipped
        return np.stack(lane_codes, axis=0), clipped
