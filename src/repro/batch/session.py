"""Batched streaming acquisition: many concurrent sessions, one pass.

:class:`BatchAcquisitionSession` is the batched sibling of
:class:`~repro.core.session.AcquisitionSession`: ``B`` independent
readout chains (one per concurrent subject/element) advance in lockstep
through the fused kernel of :mod:`repro.batch.kernel`, and every lane
keeps its own :class:`~repro.core.session.PipelineTelemetry` whose
counters reconcile exactly.

Differences from the single-session path, by design:

* **Framing is elided.** Words go straight from the decimator to the
  per-lane sample buffer; the USB encoder/decoder pair — a lossless
  identity on a clean pipeline — is skipped, and the frame counters are
  synthesized from the same ``samples_per_frame`` grouping the encoder
  would have used, so ``frames_framed == frames_decoded`` holds exactly
  and matches what a single session reports for the same input.
* **Fault injection is not supported** (``faults=`` must stay ``None``);
  degraded-link studies remain on the single-session path where the
  wire format actually exists. The per-lane
  :attr:`~repro.daq.fpga.FPGAFilterBank.word_hook` *is* honored, and
  hook output is saturated to the i16 rails exactly as the FPGA does.

Everything else matches bit-for-bit: any chunk split, any batch size,
and the per-lane fallback (no C compiler) all produce the same codes a
single :class:`~repro.core.session.AcquisitionSession` produces per
lane.
"""

from __future__ import annotations

import time

import numpy as np

from numpy.polynomial import polyutils as _pu

from ..array.element import ArrayElement
from ..array.mux import AnalogMultiplexer
from ..core.chain import ChainRecording
from ..core.session import PipelineTelemetry
from ..dsp.fixed_point import saturate
from ..errors import ConfigurationError
from ..faults.detection import QualityConfig, quality_mask
from ..mems.membrane import MembraneSensor
from ..sdm.frontend import CapacitiveFrontEnd
from . import kernel as batch_kernel
from .engine import BatchChainEngine


class BatchAcquisitionSession:
    """Lockstep streaming acquisition across ``B`` readout chains.

    Parameters
    ----------
    chains:
        Distinct :class:`~repro.core.chain.ReadoutChain` objects, one
        per lane (see :class:`~repro.batch.engine.BatchChainEngine` for
        the compatibility requirements).
    element:
        Element to select on every lane before the first chunk
        (default: keep each chain's current selection).
    quality:
        Detector thresholds for the recordings' quality masks.
    faults:
        Unsupported in batched mode; must be ``None``.
    force_python:
        Pin the per-lane fallback engine (equivalence tests).
    """

    def __init__(
        self,
        chains,
        element: int | None = None,
        quality: QualityConfig | None = None,
        faults=None,
        force_python: bool = False,
    ):
        if faults is not None:
            raise ConfigurationError(
                "fault injection is not supported in batched mode; run "
                "faulted acquisitions through AcquisitionSession"
            )
        self.engine = BatchChainEngine(chains, force_python=force_python)
        self.chains = self.engine.chains
        if element is not None:
            for c in self.chains:
                c.chip.select_element(element)
                c.fpga.select_element(element)
        self.elements = [c.chip.selected_element for c in self.chains]
        for c in self.chains:
            if c.fpga.encoder.pending_samples:
                raise ConfigurationError(
                    "chain has a partial USB frame pending; finish the "
                    "previous session before batching"
                )
        self.telemetries = [
            PipelineTelemetry(
                decimation_factor=c.fpga.filter.params.total_decimation
            )
            for c in self.chains
        ]
        self._codes: list[list[np.ndarray]] = [[] for _ in self.chains]
        self._pending = [0 for _ in self.chains]
        self._spf = [c.fpga.encoder.samples_per_frame for c in self.chains]
        self._quality_config = quality or QualityConfig()
        self._kind: str | None = None
        self._finished = False
        self._fast_front = self._build_fast_front()

    def _build_fast_front(self):
        """Per-lane constants for the fused C front end, or None.

        The compiled front end covers the stock chip composition: a
        plain mux routing one :class:`~repro.array.element.ArrayElement`
        whose membrane transfer is the shared Chebyshev interpolant,
        into the stock charge front end. Anything exotic (subclasses,
        per-lane membrane fits, loop-input hooks) falls back to the
        per-lane NumPy front end, which stays bit-identical — just
        slower.
        """
        B = self.lanes
        fit = None
        sel = np.zeros(B, dtype=np.int64)
        n_el = np.zeros(B, dtype=np.int64)
        cscale = np.zeros(B)
        coff = np.zeros(B)
        inj_amt = np.zeros(B)
        ref = np.zeros(B)
        fb = np.zeros(B)
        exc = np.zeros(B)
        for l, c in enumerate(self.chains):
            chip = c.chip
            mux = chip.mux
            fe = chip.frontend
            if (
                type(mux) is not AnalogMultiplexer
                or type(fe) is not CapacitiveFrontEnd
            ):
                return None
            el = mux.array.elements[mux._selected]
            if type(el) is not ArrayElement:
                return None
            s = el.sensor
            if type(s) is not MembraneSensor:
                return None
            if fit is None:
                fit = s._fit
                p_min, p_max = s._p_min, s._p_max
            elif s._fit is not fit or s._p_min != p_min or s._p_max != p_max:
                # Lanes with distinct membrane transfers (the shared
                # precompute cache makes one fit object the norm).
                return None
            sel[l] = mux._selected
            n_el[l] = mux.array.n_elements
            cscale[l] = el.capacitance_scale
            coff[l] = el.offset_cap_f
            inj_amt[l] = mux.charge_injection_c / 2.5
            ref[l] = fe.reference_cap_f
            fb[l] = fe.feedback_cap_f
            exc[l] = fe.excitation_fraction
        if fit is None:  # pragma: no cover - B >= 1 always
            return None
        dom_off, dom_scl = _pu.mapparms(fit.domain, fit.window)
        det = self.engine.deterministic_lanes
        return {
            "coef": np.ascontiguousarray(fit.coef, dtype=float),
            "dom_off": float(dom_off),
            "dom_scl": float(dom_scl),
            "p_min": float(p_min),
            "p_max": float(p_max),
            "sel": sel,
            "n_el": n_el,
            "cscale": cscale,
            "coff": coff,
            "inj_amt": inj_amt,
            "ref": ref,
            "fb": fb,
            "exc": exc,
            # Fold the modulator input gain only for lanes whose prep is
            # the identity; other lanes receive raw u for _prepare_inputs.
            "a1_eff": np.where(det, self.engine._a1[:B], 1.0),
            "folded": det,
        }

    def _fused_frontend(self, fields, n: int) -> bool:
        """Try the compiled front end + chain kernel staging for a chunk.

        Returns True when the lanes' ``au`` rows (and ``u_last``) were
        staged by the C front end; False means the caller must use the
        per-lane NumPy path (which also raises the exact errors for
        out-of-range or non-positive inputs).
        """
        ff = self._fast_front
        if ff is None or not self.engine.uses_kernel:
            return False
        B = self.lanes
        pbase = np.zeros(B, dtype=np.uint64)
        pstep = np.zeros(B, dtype=np.int64)
        inj = np.zeros(B)
        for l, c in enumerate(self.chains):
            chip = c.chip
            mux = chip.mux
            if chip.loop_input_hook is not None:
                return False
            if mux._selected != ff["sel"][l]:
                # Element switched behind the session's back; let the
                # per-lane path handle (and re-validate) it.
                return False
            arr = fields[l]
            if (
                arr.dtype != np.float64
                or arr.ndim != 2
                or arr.shape[1] != ff["n_el"][l]
                or arr.strides[0] % 8
                or arr.strides[1] % 8
            ):
                return False
            pbase[l] = arr.ctypes.data + int(ff["sel"][l]) * arr.strides[1]
            pstep[l] = arr.strides[0] // 8
            if mux._just_switched:
                inj[l] = ff["inj_amt"][l]
        au = self.engine.ensure_buffers(n)
        u_last = np.empty(B)
        ok = batch_kernel.run_frontend_chunk(
            n=n,
            pbase=pbase,
            pstep=pstep,
            au=au,
            au_stride=au.shape[1],
            cheb_coef=ff["coef"],
            dom_off=ff["dom_off"],
            dom_scl=ff["dom_scl"],
            p_min=ff["p_min"],
            p_max=ff["p_max"],
            cap_scale=ff["cscale"],
            cap_offset=ff["coff"],
            injection=inj,
            ref_cap=ff["ref"],
            fb_cap=ff["fb"],
            excitation=ff["exc"],
            a1=ff["a1_eff"],
            u_last=u_last,
        )
        if not ok:
            # Domain or positivity violation somewhere in the batch: the
            # front end is pure (no state was touched), so replay through
            # the per-lane path to raise the exact per-lane error.
            return False
        for c in self.chains:
            c.chip.mux._just_switched = False
        self._staged_u_last = u_last
        return True

    @property
    def lanes(self) -> int:
        return len(self.chains)

    @property
    def finished(self) -> bool:
        return self._finished

    # -- feeding -----------------------------------------------------------

    def feed_pressure(self, element_pressure_fields) -> list[np.ndarray]:
        """Convert one membrane-pressure chunk per lane.

        ``element_pressure_fields`` is either a sequence of ``B``
        ``(n_samples, n_elements)`` arrays (one field per lane/subject)
        or a single ``(n_samples, B, n_elements)`` array. Every lane
        must receive the same number of samples. Returns the list of
        words each lane's cascade completed this chunk.
        """
        if isinstance(element_pressure_fields, np.ndarray):
            element_pressure_fields = np.asarray(
                element_pressure_fields, dtype=float
            )
            if element_pressure_fields.ndim != 3:
                raise ConfigurationError(
                    "batched pressure input must be (n, B, n_elements) "
                    "or a sequence of B (n, n_elements) fields"
                )
            fields = [
                element_pressure_fields[:, l, :] for l in range(self.lanes)
            ]
        else:
            fields = [np.asarray(f, dtype=float) for f in element_pressure_fields]
        if len(fields) != self.lanes:
            raise ConfigurationError(
                f"expected {self.lanes} pressure fields, got {len(fields)}"
            )
        sizes = {f.shape[0] for f in fields}
        if len(sizes) != 1:
            raise ConfigurationError(
                "all lanes must receive the same number of samples"
            )
        for f in fields:
            if f.ndim != 2:
                raise ConfigurationError(
                    "each lane's field must be (n_samples, n_elements)"
                )
        return self._feed("pressure", fields)

    def feed_voltage(self, differential_voltages_v) -> list[np.ndarray]:
        """Convert one test-voltage chunk per lane (``(n, B)`` array)."""
        u = np.asarray(differential_voltages_v, dtype=float)
        if u.ndim != 2 or u.shape[1] != self.lanes:
            raise ConfigurationError(
                "batched voltage input must be (n_samples, n_lanes)"
            )
        return self._feed("voltage", [u[:, l] for l in range(self.lanes)])

    def _feed(self, kind: str, lane_inputs) -> list[np.ndarray]:
        if self._finished:
            raise ConfigurationError(
                "session already finished; start a new "
                "BatchAcquisitionSession"
            )
        if self._kind is None:
            self._kind = kind
        elif self._kind != kind:
            raise ConfigurationError(
                f"cannot mix acquisition paths in one session "
                f"(started with {self._kind!r}, got {kind!r})"
            )
        n = lane_inputs[0].shape[0]
        if n == 0:
            return [np.zeros(0, dtype=np.int64) for _ in self.chains]

        B = self.lanes
        t0 = time.perf_counter()
        if kind == "pressure" and self._fused_frontend(lane_inputs, n):
            # Compiled front end staged a1*u (deterministic lanes) or
            # raw u directly into the kernel buffers — no (n, B) copies.
            codes, clipped = self.engine.run_prepared(
                n,
                folded=self._fast_front["folded"],
                u_last=self._staged_u_last,
            )
        else:
            # Front end per lane: route, convert to loop input, honor
            # hooks.
            u = np.empty((n, B))
            for l, c in enumerate(self.chains):
                chip = c.chip
                if kind == "pressure":
                    caps = chip.mux.routed_capacitance_f(lane_inputs[l])
                    ul = chip.frontend.loop_input(caps)
                else:
                    ul = chip.voltage_input.loop_input(lane_inputs[l])
                if chip.loop_input_hook is not None:
                    ul = chip.loop_input_hook(ul)
                u[:, l] = ul
            codes, clipped = self.engine.feed_loop_inputs(u)
        t1 = time.perf_counter()
        mod_dt = (t1 - t0) / B

        delivered: list[np.ndarray] = []
        for l, c in enumerate(self.chains):
            tm = self.telemetries[l]
            tm.chunks += 1
            tm.peak_chunk_bytes = max(
                tm.peak_chunk_bytes, lane_inputs[l].nbytes
            )
            tm.add_stage_seconds("modulator", mod_dt)
            tm.mod_samples_in += n
            tm.bits_out += n
            tm.clipped_samples += int(clipped[l])

            fpga = c.fpga
            lane_codes = codes[l]
            fpga.samples_in += n
            fpga.words_filtered += lane_codes.size
            tm.words_filtered += lane_codes.size
            if fpga._suppress > 0:
                drop = min(fpga._suppress, lane_codes.size)
                lane_codes = lane_codes[drop:]
                fpga._suppress -= drop
                fpga.words_suppressed += drop
                tm.words_suppressed += drop
            if lane_codes.size and fpga.word_hook is not None:
                lane_codes = np.asarray(fpga.word_hook(lane_codes))
            # Same rail handling as FPGAFilterBank.process: saturate to
            # the i16 sample range, never wrap.
            lane_codes = saturate(lane_codes, 16).astype(np.int64)

            # Framing elided: synthesize the frame counters from the
            # encoder's grouping so the reconcile identities hold.
            whole, self._pending[l] = divmod(
                self._pending[l] + lane_codes.size, self._spf[l]
            )
            tm.frames_framed += whole
            tm.frames_decoded += whole
            if lane_codes.size:
                self._codes[l].append(lane_codes)
                tm.words_delivered += lane_codes.size
            delivered.append(lane_codes)
        fpga_dt = (time.perf_counter() - t1) / B
        for tm in self.telemetries:
            tm.add_stage_seconds("fpga", fpga_dt)
        return delivered

    # -- dynamic lane membership -------------------------------------------

    def attach_lane(self, chain) -> int:
        """Join a device's chain as a new lane mid-session.

        The gateway-facing lifecycle: devices connect while the fleet
        is already streaming. The chain joins at the current chunk
        boundary (its decimation phases must match the batch's — a
        fresh chain joins while the batch sits at a decimation
        boundary, see :meth:`BatchChainEngine.attach_lane`) and gets
        its own telemetry, code buffer and synthesized frame counters,
        exactly as a founding lane would. Returns the new lane index.
        """
        if self._finished:
            raise ConfigurationError(
                "session already finished; start a new "
                "BatchAcquisitionSession"
            )
        if chain.fpga.encoder.pending_samples:
            raise ConfigurationError(
                "chain has a partial USB frame pending; finish the "
                "previous session before batching"
            )
        lane = self.engine.attach_lane(chain)
        self.chains = self.engine.chains
        self.elements.append(chain.chip.selected_element)
        self.telemetries.append(
            PipelineTelemetry(
                decimation_factor=chain.fpga.filter.params.total_decimation
            )
        )
        self._codes.append([])
        self._pending.append(0)
        self._spf.append(chain.fpga.encoder.samples_per_frame)
        self._fast_front = self._build_fast_front()
        return lane

    def detach_lane(self, lane: int):
        """Drop one lane mid-session; returns ``(chain, recording)``.

        The device disconnected: its chain leaves the batch at the
        current chunk boundary and can keep running solo (or rejoin
        later) bit-exactly. The returned recording closes the lane's
        books — the final partial frame is counted exactly as
        :meth:`finish` would have.
        """
        chain = self.engine.detach_lane(lane)
        self.chains = self.engine.chains
        tm = self.telemetries.pop(lane)
        if self._pending[lane]:
            tm.frames_framed += 1
            tm.frames_decoded += 1
        self._pending.pop(lane)
        self._spf.pop(lane)
        element = self.elements.pop(lane)
        chunks = self._codes.pop(lane)
        codes = (
            np.concatenate(chunks).astype(np.int64)
            if chunks
            else np.zeros(0, dtype=np.int64)
        )
        self._fast_front = self._build_fast_front()
        recording = ChainRecording(
            codes=codes,
            sample_rate_hz=chain.output_rate_hz,
            element=element,
            lost_frames=0,
            crc_errors=0,
            lost_samples=0,
            quality=quality_mask(
                codes, gaps=[], config=self._quality_config
            ),
        )
        return chain, recording

    # -- completion --------------------------------------------------------

    def finish(self) -> None:
        """Close the session: count each lane's final partial frame.

        Idempotent. No new words appear (the decimation cascades keep
        their in-flight residue, exactly like the hardware), so unlike
        :meth:`AcquisitionSession.finish` there is nothing to return.
        """
        if self._finished:
            return
        self._finished = True
        for l, tm in enumerate(self.telemetries):
            if self._pending[l]:
                tm.frames_framed += 1
                tm.frames_decoded += 1
                self._pending[l] = 0

    def codes(self, lane: int) -> np.ndarray:
        """All words delivered for one lane so far."""
        if self._codes[lane]:
            return np.concatenate(self._codes[lane]).astype(np.int64)
        return np.zeros(0, dtype=np.int64)

    def recording(self, lane: int) -> ChainRecording:
        """Finish (if needed) and assemble one lane's recording.

        Bit-identical to the recording a single
        :class:`~repro.core.session.AcquisitionSession` produces for
        the same lane input, regardless of batch size or chunk split.
        """
        self.finish()
        codes = self.codes(lane)
        return ChainRecording(
            codes=codes,
            sample_rate_hz=self.chains[lane].output_rate_hz,
            element=self.elements[lane],
            lost_frames=0,
            crc_errors=0,
            lost_samples=0,
            quality=quality_mask(
                codes, gaps=[], config=self._quality_config
            ),
        )

    def recordings(self) -> list[ChainRecording]:
        """Recordings for every lane, in lane order."""
        return [self.recording(l) for l in range(self.lanes)]

    def aggregate_telemetry(self) -> PipelineTelemetry:
        """Fleet-wide counter view (reconcile the lanes individually)."""
        return PipelineTelemetry.aggregate(self.telemetries)
