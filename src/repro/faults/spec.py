"""Fault taxonomy: what can break, where, and how it is parameterized.

Every fault kind belongs to one pipeline layer, which fixes where the
injector applies it and on which index timeline (modulator samples,
decimated words or USB frames) its events are scheduled:

========================  =======  ============================================
kind                      layer    effect / ``magnitude`` semantics
========================  =======  ============================================
``element_dropout``       array    membrane decouples: pressure field forced to
                                   zero for the event window (magnitude unused)
``element_stiction``      array    membrane sticks: the field is frozen at its
                                   event-start value (magnitude unused)
``capacitance_drift``     array    baseline ramps away at ``magnitude`` Pa/s,
                                   clamped to the membrane's safe range
``sdm_saturation``        sdm      loop input pinned at ``magnitude`` × the
                                   modulator full scale (>= 1 rails it)
``stuck_comparator``      sdm      quantizer output stuck at +1 (``magnitude``
                                   >= 0) or -1 for the window
``word_corruption``       fpga     one decimated word XORed with
                                   ``int(magnitude)`` (a bit mask, >= 1)
``frame_drop``            usb      one frame vanishes from the link
``frame_truncation``      usb      one frame is cut to ``magnitude`` of its
                                   bytes (a fraction in (0, 1); default 0.5)
``frame_bitflip``         usb      one bit of one frame byte flips (position
                                   drawn from the event's seeded detail)
``frame_reorder``         usb      one frame is held back and delivered after
                                   the frame that follows it (magnitude unused)
========================  =======  ============================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

#: Fault kind -> pipeline layer it is injected at.
KIND_LAYERS: dict[str, str] = {
    "element_dropout": "array",
    "element_stiction": "array",
    "capacitance_drift": "array",
    "sdm_saturation": "sdm",
    "stuck_comparator": "sdm",
    "word_corruption": "fpga",
    "frame_drop": "usb",
    "frame_truncation": "usb",
    "frame_bitflip": "usb",
    "frame_reorder": "usb",
}

#: All supported fault kinds, in pipeline order.
FAULT_KINDS: tuple[str, ...] = tuple(KIND_LAYERS)

#: Layers whose events are windows on the modulator-sample timeline.
_MOD_RATE_LAYERS = ("array", "sdm")


@dataclass(frozen=True)
class FaultSpec:
    """One fault process to schedule.

    Either give a ``rate_hz`` (events drawn from a seeded Poisson process
    over the injector's horizon) or pin a single event with ``start_s``.
    ``duration_s`` only matters for window kinds (array/sdm layers);
    word- and frame-level faults are point events.
    """

    kind: str
    rate_hz: float = 0.0
    start_s: float | None = None
    duration_s: float = 0.2
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in KIND_LAYERS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.rate_hz < 0:
            raise ConfigurationError("fault rate must be >= 0")
        if self.rate_hz == 0 and self.start_s is None:
            raise ConfigurationError(
                "fault spec needs a rate_hz or an explicit start_s"
            )
        if self.duration_s <= 0:
            raise ConfigurationError("fault duration must be positive")
        if not np.isfinite(self.magnitude):
            raise ConfigurationError("fault magnitude must be finite")
        if self.kind == "word_corruption" and int(self.magnitude) < 1:
            raise ConfigurationError(
                "word_corruption magnitude is an XOR bit mask and must "
                "be >= 1 (e.g. 1024 to flip bit 10)"
            )
        if self.kind == "frame_truncation" and not (
            0.0 < self.magnitude < 1.0
        ):
            raise ConfigurationError(
                "frame_truncation magnitude is the kept byte fraction "
                "and must lie in (0, 1)"
            )

    @property
    def layer(self) -> str:
        return KIND_LAYERS[self.kind]


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault occurrence (resolved from a spec)."""

    spec_index: int
    kind: str
    layer: str
    start_s: float
    duration_s: float
    magnitude: float
    #: Seeded uniform draw in [0, 1) that parameterizes per-event detail
    #: (e.g. which byte/bit of a frame flips) without runtime randomness.
    detail: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def is_window(self) -> bool:
        """Whether the event spans a time window (array/sdm layers)."""
        return self.layer in _MOD_RATE_LAYERS
