"""Per-sample quality mask: flag degraded samples instead of hiding them.

The mask is the detection half of the fault contract (docs/THEORY.md
§9): every delivered sample is either good (``True``) or flagged
(``False``), and downstream consumers — calibration above all — must
treat flagged samples as untrustworthy rather than silently mapping them
to mmHg. Five detectors contribute, each matched to a fault class:

* **rails** — codes at or near the 12-bit limits (modulator saturation,
  stuck comparator);
* **gap guard** — samples just after a detected frame-loss gap, where
  the record's timeline is broken;
* **spike** — isolated departures from a 3-point median (word
  corruption);
* **jump** — sample-to-sample steps beyond a threshold (dropout edges);
* **flatline / baseline drift** — rolling-window statistics (stiction,
  capacitance drift). These two are *opt-in*: a resting physiologic
  record can be legitimately quiet, so their thresholds default to off
  and are enabled by harnesses that know their signal.

Flagged regions are dilated by a guard radius so the decimation filter's
memory (~9 output words) around a fault never leaks unflagged corrupted
samples; window detectors flag their whole evidence window backwards,
covering detection lag.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class QualityConfig:
    """Detector thresholds for :func:`quality_mask`.

    Thresholds are in code LSB (the 12-bit output words). ``None``
    disables a detector. Defaults are conservative: only rail, gap and
    spike detection — safe on any physiologic record — are active.
    """

    #: |code| at or above this counts as railed (0.98 of full scale).
    rail_level: int = 2007
    #: Samples flagged after each detected frame-loss gap.
    gap_guard: int = 12
    #: Deviation from the 3-point running median that flags a spike.
    spike_threshold: float | None = 32.0
    #: Sample-to-sample step that flags both neighbours (off by default).
    jump_threshold: float | None = None
    #: Rolling window [samples] for the drift and flatline detectors.
    window: int = 64
    #: Rolling-mean departure from the initial baseline that flags drift.
    drift_threshold: float | None = None
    #: Rolling standard deviation below which the record is flat.
    flat_threshold: float | None = None
    #: Samples skipped before the drift baseline window starts.
    warmup: int = 16
    #: Radius of the final dilation of all flagged regions.
    dilate: int = 8

    def __post_init__(self) -> None:
        if self.rail_level < 1:
            raise ConfigurationError("rail level must be >= 1 LSB")
        if self.gap_guard < 0 or self.warmup < 0 or self.dilate < 0:
            raise ConfigurationError(
                "gap guard, warmup and dilation must be >= 0"
            )
        if self.window < 2:
            raise ConfigurationError("detector window must be >= 2")


def _dilate(bad: np.ndarray, radius: int) -> np.ndarray:
    if radius <= 0 or not bad.any():
        return bad
    kernel = np.ones(2 * radius + 1)
    return np.convolve(bad.astype(float), kernel, mode="same") > 0.0


def _flag_windows(
    size: int, ends: np.ndarray, window: int
) -> np.ndarray:
    """Flag ``[end - window + 1, end]`` for each hit-window end index."""
    bad = np.zeros(size, dtype=bool)
    for end in ends:
        bad[max(0, int(end) - window + 1) : int(end) + 1] = True
    return bad


def _rolling_mean_std(
    x: np.ndarray, window: int
) -> tuple[np.ndarray, np.ndarray]:
    """Windowed mean/std; entry ``i`` covers ``x[i : i + window]``."""
    padded = np.concatenate(([0.0], np.cumsum(x)))
    padded2 = np.concatenate(([0.0], np.cumsum(x * x)))
    total = padded[window:] - padded[:-window]
    total2 = padded2[window:] - padded2[:-window]
    mean = total / window
    var = np.maximum(total2 / window - mean * mean, 0.0)
    return mean, np.sqrt(var)


def quality_mask(
    codes: np.ndarray,
    gaps: tuple = (),
    config: QualityConfig | None = None,
) -> np.ndarray:
    """Build the per-sample quality mask of one decimated record.

    Parameters
    ----------
    codes:
        The received decimated words (any integer dtype).
    gaps:
        :class:`~repro.daq.stream.StreamGap` entries of the element's
        stream, whose ``sample_index`` positions anchor the gap guard.
    config:
        Detector thresholds (default :class:`QualityConfig`).

    Returns a boolean array of ``codes.size``; ``True`` means good.
    """
    cfg = config or QualityConfig()
    x = np.asarray(codes, dtype=float)
    n = x.size
    bad = np.zeros(n, dtype=bool)
    if n == 0:
        return ~bad

    # Rails: saturation at either 12-bit limit (asymmetric two's
    # complement: the negative rail sits one LSB lower).
    bad |= (x >= cfg.rail_level) | (x <= -(cfg.rail_level + 1))

    # Frame-loss gap guard: the timeline is broken at the gap, so the
    # first words after it cannot be trusted for feature timing.
    for gap in gaps:
        start = int(gap.sample_index)
        bad[max(0, start - 1) : start + cfg.gap_guard] = True

    if cfg.spike_threshold is not None and n >= 3:
        stacked = np.column_stack((x[:-2], x[1:-1], x[2:]))
        med = np.median(stacked, axis=1)
        bad[1:-1] |= np.abs(x[1:-1] - med) > cfg.spike_threshold

    if cfg.jump_threshold is not None and n >= 2:
        step = np.abs(np.diff(x)) > cfg.jump_threshold
        bad[:-1] |= step
        bad[1:] |= step

    w = cfg.window
    if n >= w and (
        cfg.drift_threshold is not None or cfg.flat_threshold is not None
    ):
        mean, std = _rolling_mean_std(x, w)
        ends = np.arange(mean.size) + w - 1  # window end indices
        if cfg.drift_threshold is not None and n >= cfg.warmup + w:
            baseline = float(np.mean(x[cfg.warmup : cfg.warmup + w]))
            hits = np.abs(mean - baseline) > cfg.drift_threshold
            # Never flag the baseline window itself.
            hits[: cfg.warmup + 1] = False
            bad |= _flag_windows(n, ends[hits], w)
        if cfg.flat_threshold is not None:
            hits = std < cfg.flat_threshold
            bad |= _flag_windows(n, ends[hits], w)

    return ~_dilate(bad, cfg.dilate)


def timeline_quality(
    received_quality: np.ndarray, valid_mask: np.ndarray
) -> np.ndarray:
    """Expand a received-sample quality mask onto the gap-filled timeline.

    ``valid_mask`` is the second output of
    :meth:`~repro.daq.stream.SampleStream.zero_filled`; positions where
    frames were lost are flagged bad (there is no sample to trust).
    """
    received_quality = np.asarray(received_quality, dtype=bool)
    valid_mask = np.asarray(valid_mask, dtype=bool)
    if int(valid_mask.sum()) != received_quality.size:
        raise ConfigurationError(
            "valid mask does not match the received sample count"
        )
    out = np.zeros(valid_mask.size, dtype=bool)
    out[np.flatnonzero(valid_mask)] = received_quality
    return out
