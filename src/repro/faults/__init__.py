"""Seeded fault injection and graceful degradation for the pipeline.

The paper's system is a wearable acquisition chain whose field failure
modes — membrane dropout/stiction and capacitance drift, modulator
railing, corrupted FPGA words, dropped or mangled USB frames — are
exactly what a production monitor must survive. This package provides
both sides of that story:

* **Injection** — :class:`FaultSpec` describes one fault process (kind,
  rate, magnitude); :class:`FaultInjector` turns a list of specs into a
  deterministic, ``SeedSequence``-derived event schedule and applies the
  events at the right pipeline layer when wired through
  :class:`~repro.core.session.AcquisitionSession` (``faults=``).
* **Detection** — :func:`quality_mask` builds the per-sample quality
  mask carried by :class:`~repro.core.chain.ChainRecording`, from rail,
  spike, jump, flatline and baseline-drift detectors plus the stream's
  frame-loss gaps (:class:`QualityConfig` tunes them).
* **Recovery** — :class:`SaturationEpisodeDetector` finds railing
  episodes in the decimated record; :class:`AutoZeroRetrigger` answers
  them with a fresh auto-zero measurement.

The contract (docs/THEORY.md §9): with ``faults=None`` the pipeline is
bit-identical to the un-instrumented one; with faults, every injected
event is either recovered, accounted (loss counters/gaps) or flagged in
the quality mask — never silently calibrated. The
:func:`~repro.experiments.run_fault_matrix` harness sweeps fault kind ×
rate and asserts exactly that.
"""

from .spec import FAULT_KINDS, KIND_LAYERS, FaultEvent, FaultSpec
from .injector import FaultInjector
from .detection import QualityConfig, quality_mask, timeline_quality
from .recovery import (
    AutoZeroRetrigger,
    SaturationEpisode,
    SaturationEpisodeDetector,
)

__all__ = [
    "AutoZeroRetrigger",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultSpec",
    "KIND_LAYERS",
    "QualityConfig",
    "SaturationEpisode",
    "SaturationEpisodeDetector",
    "quality_mask",
    "timeline_quality",
]
