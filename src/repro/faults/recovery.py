"""Recovery actions: saturation episodes answered with a fresh auto-zero.

Detection (the quality mask) flags what went wrong; recovery is what the
monitor *does* about it. The concrete loop implemented here mirrors what
the paper's host software would run: watch the decimated record for
railing episodes — a saturated modulator output pinned at the 12-bit
limits — and, once an episode ends, re-trigger the digital auto-zero
(:class:`~repro.core.autozero.AutoZeroController`) so the post-fault
pedestal is measured out instead of polluting every later reading.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class SaturationEpisode:
    """One contiguous railing episode in a decimated record."""

    #: First railed sample (global index across all fed chunks).
    start_index: int
    #: One past the last railed sample.
    end_index: int

    @property
    def duration_samples(self) -> int:
        return self.end_index - self.start_index


class SaturationEpisodeDetector:
    """Streaming run-length detector for railed output words.

    Feed decimated code chunks in order; closed episodes come back as
    soon as the record has stayed off the rails for ``clear_run``
    samples. State carries across chunks, so chunked and batch feeds
    find identical episodes.

    Parameters
    ----------
    rail_level:
        |code| at or above this counts as railed (matches the quality
        mask's rail detector).
    min_run:
        Railed samples required before an episode opens — rejects the
        odd legitimate full-scale word.
    clear_run:
        Clean samples required to close an open episode.
    """

    def __init__(
        self,
        rail_level: int = 2007,
        min_run: int = 4,
        clear_run: int = 8,
    ):
        if rail_level < 1:
            raise ConfigurationError("rail level must be >= 1 LSB")
        if min_run < 1 or clear_run < 1:
            raise ConfigurationError("run lengths must be >= 1")
        self.rail_level = int(rail_level)
        self.min_run = int(min_run)
        self.clear_run = int(clear_run)
        self._pos = 0
        self._run = 0
        self._clean = 0
        self._open_start: int | None = None
        self._open_end = 0

    @property
    def episode_open(self) -> bool:
        return self._open_start is not None

    def feed(self, codes: np.ndarray) -> list[SaturationEpisode]:
        """Consume one chunk; return episodes that closed inside it."""
        railed = np.abs(np.asarray(codes, dtype=np.int64)) >= self.rail_level
        closed: list[SaturationEpisode] = []
        for offset, is_railed in enumerate(railed):
            index = self._pos + offset
            if is_railed:
                self._run += 1
                self._clean = 0
                if self._open_start is None and self._run >= self.min_run:
                    self._open_start = index - self.min_run + 1
                if self._open_start is not None:
                    self._open_end = index + 1
            else:
                self._run = 0
                if self._open_start is not None:
                    self._clean += 1
                    if self._clean >= self.clear_run:
                        closed.append(
                            SaturationEpisode(
                                start_index=self._open_start,
                                end_index=self._open_end,
                            )
                        )
                        self._open_start = None
                        self._clean = 0
        self._pos += railed.size
        return closed

    def flush(self) -> SaturationEpisode | None:
        """Close any episode still open at end of record."""
        if self._open_start is None:
            return None
        episode = SaturationEpisode(
            start_index=self._open_start, end_index=self._open_end
        )
        self._open_start = None
        self._clean = 0
        self._run = 0
        return episode


class AutoZeroRetrigger:
    """Answers closed saturation episodes with a fresh auto-zero.

    Parameters
    ----------
    controller:
        The :class:`~repro.core.autozero.AutoZeroController` to fire.
        Its ``measure()`` drives the chain, so call :meth:`observe` on
        records *after* their acquisition session has finished — never
        mid-session.
    detector:
        Episode detector (default thresholds when omitted).
    """

    def __init__(self, controller, detector: SaturationEpisodeDetector | None = None):
        self.controller = controller
        self.detector = detector or SaturationEpisodeDetector()
        self.episodes: list[SaturationEpisode] = []
        #: Auto-zero measurements fired so far.
        self.retriggers = 0
        #: The most recent post-episode auto-zero state.
        self.state = None

    def observe(
        self, codes: np.ndarray, time_s: float = 0.0, final: bool = False
    ) -> list[SaturationEpisode]:
        """Scan one record chunk; re-zero after each closed episode.

        Returns the episodes that closed in this chunk (after a final
        chunk, including one still open at the record's end when
        ``final=True``).
        """
        closed = self.detector.feed(codes)
        if final:
            tail = self.detector.flush()
            if tail is not None:
                closed.append(tail)
        if closed:
            self.episodes.extend(closed)
            self.state = self.controller.measure(time_s=time_s)
            self.retriggers += 1
        return closed
