"""Deterministic fault injection across the acquisition pipeline.

A :class:`FaultInjector` resolves a list of :class:`~repro.faults.spec.
FaultSpec` processes into a concrete event schedule *at construction
time*, from ``SeedSequence`` children spawned per spec — no randomness
is consumed while the pipeline runs, so the same seed gives the same
faults for any chunking of the input and any worker count. Binding the
injector to a chain (:meth:`FaultInjector.bind`) converts event times to
indices on the three pipeline timelines:

* modulator samples (128 kS/s) for array- and sdm-layer windows,
* decimated words (1 kS/s) for FPGA word corruption,
* USB frames for link faults.

:class:`~repro.core.session.AcquisitionSession` wires the four
``apply_*`` hooks into the matching pipeline stages; each hook keeps a
global position counter so events land at the same absolute sample no
matter how the session is chunked.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .spec import FaultEvent, FaultSpec

#: Fraction of the membrane's safe pressure range that injected drift is
#: clamped into (the membrane model raises on true overpressure, which
#: would abort the acquisition instead of degrading it).
_MEMBRANE_GUARD = 0.98


class FaultInjector:
    """Schedules and applies seeded faults at every pipeline layer.

    Parameters
    ----------
    specs:
        Fault processes to schedule. Each spec gets its own spawned
        ``SeedSequence`` child, so adding a spec never changes the
        events another spec produces.
    seed:
        Master entropy for the schedule.
    horizon_s:
        Scheduling horizon for rate-driven specs (events are drawn over
        ``[0, horizon_s)``); feed data past the horizon runs fault-free.

    One injector drives one acquisition: positions reset when a session
    binds it, so reusing the instance replays the identical schedule on
    the next session.
    """

    def __init__(
        self,
        specs: list[FaultSpec] | tuple[FaultSpec, ...],
        seed: int = 0,
        horizon_s: float = 64.0,
    ):
        if horizon_s <= 0:
            raise ConfigurationError("fault horizon must be positive")
        self.specs = tuple(specs)
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(
                    "faults must be FaultSpec instances"
                )
        self.seed = int(seed)
        self.horizon_s = float(horizon_s)
        self.events: tuple[FaultEvent, ...] = self._schedule()
        self._bound = False
        self.applied: list[FaultEvent] = []
        self._applied_ids: set[int] = set()
        self.reset()

    # -- scheduling --------------------------------------------------------

    def _schedule(self) -> tuple[FaultEvent, ...]:
        events: list[FaultEvent] = []
        for index, spec in enumerate(self.specs):
            rng = np.random.default_rng(
                np.random.SeedSequence(
                    entropy=self.seed, spawn_key=(index,)
                )
            )
            if spec.start_s is not None:
                starts = np.array([float(spec.start_s)])
            else:
                count = int(rng.poisson(spec.rate_hz * self.horizon_s))
                starts = np.sort(rng.uniform(0.0, self.horizon_s, count))
            details = rng.uniform(size=starts.size)
            for start, detail in zip(starts, details):
                events.append(
                    FaultEvent(
                        spec_index=index,
                        kind=spec.kind,
                        layer=spec.layer,
                        start_s=float(start),
                        duration_s=float(spec.duration_s),
                        magnitude=float(spec.magnitude),
                        detail=float(detail),
                    )
                )
        events.sort(key=lambda e: (e.start_s, e.spec_index))
        return tuple(events)

    # -- binding -----------------------------------------------------------

    def bind(self, chain) -> None:
        """Resolve event times to the chain's pipeline timelines.

        Called by :class:`~repro.core.session.AcquisitionSession` when a
        session opens with this injector; also resets the runtime
        positions, so the schedule replays from t=0.
        """
        fs = float(chain.params.modulator.sampling_rate_hz)
        out_rate = float(chain.output_rate_hz)
        self._fs = fs
        self._full_scale = float(chain.chip.modulator.input_full_scale)
        lo, hi = chain.chip.array.sensor.pressure_range_pa
        self._pressure_clamp = (
            float(lo) * _MEMBRANE_GUARD,
            float(hi) * _MEMBRANE_GUARD,
        )
        spf = int(chain.fpga.encoder.samples_per_frame)

        self._array_windows: list[tuple[int, int, FaultEvent]] = []
        self._sdm_windows: list[tuple[int, int, FaultEvent]] = []
        self._word_events: list[tuple[int, FaultEvent]] = []
        self._frame_events: dict[int, list[FaultEvent]] = {}
        for event in self.events:
            if event.layer in ("array", "sdm"):
                i0 = int(round(event.start_s * fs))
                i1 = i0 + max(1, int(round(event.duration_s * fs)))
                target = (
                    self._array_windows
                    if event.layer == "array"
                    else self._sdm_windows
                )
                target.append((i0, i1, event))
            elif event.layer == "fpga":
                self._word_events.append(
                    (int(round(event.start_s * out_rate)), event)
                )
            else:  # usb
                frame = int(event.start_s * out_rate / spf)
                self._frame_events.setdefault(frame, []).append(event)
        self._word_events.sort(key=lambda we: we[0])
        self._bound = True
        self.reset()

    def reset(self) -> None:
        """Rewind the runtime position counters and the applied log."""
        self._array_pos = 0
        self._sdm_pos = 0
        self._bit_pos = 0
        self._word_pos = 0
        self._frame_pos = 0
        self._stiction_hold: dict[int, np.ndarray] = {}
        self._reorder_pending = b""
        self.applied = []
        self._applied_ids = set()

    def bind_link(self, frames_per_second: float) -> None:
        """Resolve USB-layer events straight to frame indices — no chain.

        Link-level binding for device-link chaos (the acquisition
        gateway's wire): every spec must be a usb-layer kind, and an
        event at ``start_s`` lands on frame ``int(start_s *
        frames_per_second)``. The ``apply_payload`` hook then works on
        raw framed payloads without a bound
        :class:`~repro.core.chain.ReadoutChain`.
        """
        if frames_per_second <= 0:
            raise ConfigurationError("frame rate must be positive")
        offenders = sorted(
            {spec.kind for spec in self.specs if spec.layer != "usb"}
        )
        if offenders:
            raise ConfigurationError(
                f"bind_link only supports usb-layer faults; got "
                f"{', '.join(offenders)} (bind a chain for those)"
            )
        self._array_windows = []
        self._sdm_windows = []
        self._word_events = []
        self._frame_events = {}
        for event in self.events:
            frame = int(event.start_s * frames_per_second)
            self._frame_events.setdefault(frame, []).append(event)
        self._bound = True
        self.reset()

    def _require_bound(self) -> None:
        if not self._bound:
            raise ConfigurationError(
                "FaultInjector must be bound to a chain before applying "
                "faults (AcquisitionSession does this automatically)"
            )

    def _mark_applied(self, event: FaultEvent) -> None:
        event_id = id(event)
        if event_id not in self._applied_ids:
            self._applied_ids.add(event_id)
            self.applied.append(event)

    @property
    def events_applied(self) -> int:
        """Distinct scheduled events that have touched data so far."""
        return len(self.applied)

    def applied_windows(self) -> list[tuple[str, str, float, float]]:
        """(kind, layer, start_s, end_s) of every applied event."""
        return [
            (
                e.kind,
                e.layer,
                e.start_s,
                e.end_s if e.is_window() else e.start_s,
            )
            for e in self.applied
        ]

    # -- pipeline hooks ----------------------------------------------------

    @staticmethod
    def _overlap(
        i0: int, i1: int, pos: int, length: int
    ) -> tuple[int, int] | None:
        a = max(i0 - pos, 0)
        b = min(i1 - pos, length)
        return (a, b) if a < b else None

    def apply_array(self, pressures: np.ndarray) -> np.ndarray:
        """Array-layer faults on one (n, n_elements) pressure chunk."""
        self._require_bound()
        pos, n = self._array_pos, pressures.shape[0]
        self._array_pos += n
        out = pressures
        for i0, i1, event in self._array_windows:
            span = self._overlap(i0, i1, pos, n)
            if span is None:
                continue
            a, b = span
            if out is pressures:
                out = pressures.copy()
            if event.kind == "element_dropout":
                out[a:b, :] = 0.0
            elif event.kind == "element_stiction":
                event_id = id(event)
                if event_id not in self._stiction_hold:
                    # Freeze at the field value where the event begins
                    # (chunking-invariant: the start row is reached
                    # exactly once).
                    self._stiction_hold[event_id] = out[a].copy()
                out[a:b, :] = self._stiction_hold[event_id]
            else:  # capacitance_drift: baseline ramps at magnitude Pa/s
                since_onset = pos + a - i0  # samples since event onset
                t_rel = (
                    np.arange(b - a, dtype=float) + since_onset
                ) / self._fs
                out[a:b, :] = np.clip(
                    out[a:b, :] + event.magnitude * t_rel[:, None],
                    self._pressure_clamp[0],
                    self._pressure_clamp[1],
                )
            self._mark_applied(event)
        return out

    def apply_loop_input(self, u: np.ndarray) -> np.ndarray:
        """sdm_saturation: pin the loop input at magnitude × full scale."""
        self._require_bound()
        pos, n = self._sdm_pos, u.shape[0]
        self._sdm_pos += n
        out = u
        for i0, i1, event in self._sdm_windows:
            if event.kind != "sdm_saturation":
                continue
            span = self._overlap(i0, i1, pos, n)
            if span is None:
                continue
            a, b = span
            if out is u:
                out = u.copy()
            out[a:b] = event.magnitude * self._full_scale
            self._mark_applied(event)
        return out

    def apply_bitstream(self, bits: np.ndarray) -> np.ndarray:
        """stuck_comparator: force the quantizer output to one rail."""
        self._require_bound()
        pos, n = self._bit_pos, bits.shape[0]
        self._bit_pos += n
        out = bits
        for i0, i1, event in self._sdm_windows:
            if event.kind != "stuck_comparator":
                continue
            span = self._overlap(i0, i1, pos, n)
            if span is None:
                continue
            a, b = span
            if out is bits:
                out = bits.copy()
            out[a:b] = 1 if event.magnitude >= 0 else -1
            self._mark_applied(event)
        return out

    def apply_words(self, codes: np.ndarray) -> np.ndarray:
        """word_corruption: XOR scheduled decimated words with the mask."""
        self._require_bound()
        pos, n = self._word_pos, codes.shape[0]
        self._word_pos += n
        out = codes
        for word, event in self._word_events:
            if not pos <= word < pos + n:
                continue
            if out is codes:
                out = codes.astype(np.int64, copy=True)
            out[word - pos] = int(out[word - pos]) ^ int(event.magnitude)
            self._mark_applied(event)
        return out

    def apply_payload(self, payload: bytes) -> bytes:
        """USB-layer faults: drop, truncate or bit-flip whole frames.

        The payload is the encoder's output — a concatenation of
        well-formed frames — so frames are walked by their length field
        (sync 2 + seq 2 + element 2 + count 1 + 2·count + crc 2 bytes).
        """
        self._require_bound()
        if not payload:
            return payload
        out = bytearray()
        pos, n = 0, len(payload)
        while pos < n:
            count = payload[pos + 6]
            total = 9 + 2 * count
            frame = payload[pos : pos + total]
            hold = False
            for event in self._frame_events.get(self._frame_pos, ()):
                if event.kind == "frame_reorder":
                    hold = True
                    self._mark_applied(event)
                    continue
                frame = self._mangle_frame(frame, event)
                self._mark_applied(event)
                if not frame:
                    break
            if hold and frame:
                # Held back: delivered right after the next frame that
                # goes out (possibly in a later payload). A held frame
                # the stream never follows up on simply stays undelivered
                # — tail loss, visible as an unaccounted frame.
                self._reorder_pending += frame
            else:
                out += frame
                if self._reorder_pending:
                    out += self._reorder_pending
                    self._reorder_pending = b""
            self._frame_pos += 1
            pos += total
        return bytes(out)

    @staticmethod
    def _mangle_frame(frame: bytes, event: FaultEvent) -> bytes:
        if event.kind == "frame_drop":
            return b""
        if event.kind == "frame_truncation":
            keep = max(1, int(len(frame) * event.magnitude))
            return frame[:keep]
        # frame_bitflip: byte and bit position from the seeded detail.
        mangled = bytearray(frame)
        byte = min(int(event.detail * len(mangled)), len(mangled) - 1)
        bit = int(event.detail * 65536) % 8
        mangled[byte] ^= 1 << bit
        return bytes(mangled)
