"""Reproduction of Kirstein et al., "A CMOS-Based Tactile Sensor for
Continuous Blood Pressure Monitoring" (DATE 2004).

A behavioural, laptop-scale simulation of the full system: the released
CMOS membrane array, the second-order switched-capacitor sigma-delta
readout, the FPGA decimation filter and USB link, the tonometric coupling
to a virtual patient, and the cuff-anchored calibration -- plus the
baseline methods the paper's introduction compares against.

Quick start::

    from repro import BloodPressureMonitor, ReadoutChain, VirtualPatient
    from repro.params import paper_defaults
    from repro.tonometry import ContactModel, TonometricCoupling

    params = paper_defaults()
    chain = ReadoutChain(params)
    contact = ContactModel()
    coupling = TonometricCoupling(chain.chip.array.geometry, contact)
    monitor = BloodPressureMonitor(chain, coupling)
    result = monitor.measure(VirtualPatient())
    print(result.summary())
"""

from .core import (
    BloodPressureMonitor,
    ChainRecording,
    MonitorResult,
    PowerModel,
    PowerReport,
    ReadoutChain,
    SensorChip,
)
from .errors import (
    CalibrationError,
    ConfigurationError,
    FixedPointOverflowError,
    FramingError,
    ModulatorOverloadError,
    ReproError,
    SignalQualityError,
    SimulationError,
)
from .params import (
    ArrayParams,
    ChipParams,
    ContactParams,
    DecimationParams,
    FrontEndParams,
    MembraneParams,
    ModulatorParams,
    NonidealityParams,
    PatientParams,
    SystemParams,
    TissueParams,
    paper_defaults,
)
from .physiology import VirtualPatient

__version__ = "1.0.0"

__all__ = [
    "ArrayParams",
    "BloodPressureMonitor",
    "CalibrationError",
    "ChainRecording",
    "ChipParams",
    "ConfigurationError",
    "ContactParams",
    "DecimationParams",
    "FixedPointOverflowError",
    "FramingError",
    "FrontEndParams",
    "MembraneParams",
    "ModulatorOverloadError",
    "ModulatorParams",
    "MonitorResult",
    "NonidealityParams",
    "PatientParams",
    "PowerModel",
    "PowerReport",
    "ReadoutChain",
    "ReproError",
    "SensorChip",
    "SignalQualityError",
    "SimulationError",
    "SystemParams",
    "TissueParams",
    "VirtualPatient",
    "__version__",
    "paper_defaults",
]
