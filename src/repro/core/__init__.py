"""The paper's system, assembled: chip, readout chain, monitor, power.

This is the public top level most users want:

* :class:`~repro.core.chip.SensorChip` — array + multiplexer + capacitive
  front end + sigma-delta modulator (everything on the die of Fig. 5).
* :class:`~repro.core.chain.ReadoutChain` — chip plus the FPGA decimation
  filter and USB link: pressures in, 12-bit words out.
* :class:`~repro.core.session.AcquisitionSession` — the chunked
  streaming pipeline behind the chain's record methods, with per-stage
  :class:`~repro.core.session.PipelineTelemetry`.
* :class:`~repro.core.monitor.BloodPressureMonitor` — the application:
  scan, select, record, calibrate against a cuff, report beats.
* :class:`~repro.core.power.PowerModel` — the 11.5 mW budget and its
  scaling.
"""

from .chip import SensorChip
from .chain import ChainRecording, ReadoutChain
from .session import AcquisitionSession, PipelineTelemetry
from .monitor import BloodPressureMonitor, MonitorResult
from .power import PowerModel, PowerReport
from .autozero import AutoZeroController, AutoZeroState

__all__ = [
    "AcquisitionSession",
    "AutoZeroController",
    "AutoZeroState",
    "BloodPressureMonitor",
    "ChainRecording",
    "MonitorResult",
    "PipelineTelemetry",
    "PowerModel",
    "PowerReport",
    "ReadoutChain",
    "SensorChip",
]
