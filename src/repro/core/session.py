"""Streaming acquisition sessions: the chunked chip→FPGA→USB pipeline.

The paper's system is inherently streaming — the modulator, the SINC³+FIR
decimator and the USB link run continuously at 128 kS/s while the PC
consumes 1 kS/s words. :class:`AcquisitionSession` exposes exactly that
contract in software: feed bounded pressure (or voltage) chunks, receive
the decimated words they complete, and never hold more than one chunk of
modulator-rate data in memory. Modulator, CIC/FIR and framing state all
persist across chunk boundaries, so the concatenated chunked output is
*bit-identical* to the one-shot batch path for any split of the record
(:meth:`~repro.core.chain.ReadoutChain.record_pressure` is itself a thin
wrapper over a session).

Every session carries a :class:`PipelineTelemetry` that counts what each
stage consumed and produced (modulator samples in, bits out, words
filtered/suppressed, frames framed/decoded/lost, words delivered) and
accumulates per-stage wall time plus the peak chunk byte size — the
observability the batch path never had. The counters reconcile exactly:

* ``bits_out == mod_samples_in`` (the ΣΔ emits one bit per clock),
* ``mod_samples_in == R * (words_filtered - 1) + 1 + filter_remainder``
  with ``0 <= filter_remainder < R`` — the cascade emits word *w* at
  modulator sample ``R*(w-1) + 1`` (both stages produce an output on
  their first input, from zero-padded history), so ``words_filtered ==
  ceil(mod_samples_in / R)`` and the remainder counts samples consumed
  since the last word,
* ``frames_framed == frames_decoded + lost_frames`` on a lossless or
  merely lossy (non-corrupting) link,
* ``words_delivered == words_filtered - words_suppressed`` when nothing
  was lost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..daq.stream import SampleStream
from ..daq.usb import FrameDecoder
from ..faults.detection import QualityConfig, quality_mask
from .chain import ChainRecording

#: Pipeline stages, in dataflow order, as they appear in telemetry.
STAGES = ("synthesis", "modulator", "fpga", "decode", "ingest")


@dataclass
class PipelineTelemetry:
    """Per-stage counters and timings of one acquisition session.

    All counters are cumulative over the session's lifetime. Stage wall
    times land in :attr:`stage_seconds` under the :data:`STAGES` keys
    (``synthesis`` is filled by callers that generate the input field
    chunk-by-chunk, e.g. the streaming monitor).
    """

    #: Decimation factor R of the chain (modulator clocks per word).
    decimation_factor: int = 0
    #: Chunks fed so far.
    chunks: int = 0
    #: Modulator-rate input samples consumed.
    mod_samples_in: int = 0
    #: Bitstream bits produced by the modulator.
    bits_out: int = 0
    #: Modulator cycles in which an integrator clipped.
    clipped_samples: int = 0
    #: Decimated words out of the CIC+FIR cascade.
    words_filtered: int = 0
    #: Words dropped by the post-switch flush window.
    words_suppressed: int = 0
    #: USB frames emitted by the FPGA framer (including the final flush).
    frames_framed: int = 0
    #: Valid frames recovered by the host-side decoder.
    frames_decoded: int = 0
    #: Frames the decoder's sequence numbers say went missing.
    lost_frames: int = 0
    #: Frames rejected by CRC.
    crc_errors: int = 0
    #: Late-arriving frames the decoder dropped as stale (their slot in
    #: the stream was already counted lost — link reordering, replay
    #: overlap on a resumed connection).
    stale_frames: int = 0
    #: Bytes the decoder discarded while re-hunting sync (garbage or
    #: corrupt regions on the link).
    resync_bytes: int = 0
    #: Decimated words delivered to the consumer.
    words_delivered: int = 0
    #: Fault events the session's injector has applied so far (0 when no
    #: injector is wired — the counters then reconcile strictly).
    faults_injected: int = 0
    #: Largest single input chunk, in bytes (the memory high-water mark
    #: of the acquisition-rate data).
    peak_chunk_bytes: int = 0
    #: Wall time per pipeline stage [s].
    stage_seconds: dict[str, float] = field(
        default_factory=lambda: {stage: 0.0 for stage in STAGES}
    )

    def add_stage_seconds(self, stage: str, seconds: float) -> None:
        """Accumulate wall time against one pipeline stage."""
        if stage not in self.stage_seconds:
            raise ConfigurationError(
                f"unknown stage {stage!r}; expected one of {STAGES}"
            )
        self.stage_seconds[stage] += float(seconds)

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    @property
    def filter_remainder(self) -> int:
        """Modulator samples consumed since the cascade's last word.

        The CIC and FIR stages each emit on their first input (from
        zero-padded history), so word *w* appears at modulator sample
        ``R*(w-1) + 1`` and after ``n`` samples the cascade holds
        ``n - R*(words - 1) - 1`` samples toward the next word.
        """
        if self.words_filtered == 0:
            return self.mod_samples_in
        return (
            self.mod_samples_in
            - self.decimation_factor * (self.words_filtered - 1)
            - 1
        )

    @property
    def frames_unaccounted(self) -> int:
        """Framed frames neither decoded nor seen missing by a later
        frame's sequence number — e.g. a frame dropped at the very end
        of a stream, which no gap can reveal. Conservation at this
        counter is what catches tail loss the sequence numbers cannot.
        """
        return self.frames_framed - self.frames_decoded - self.lost_frames

    def reconcile(
        self,
        lossless: bool | None = None,
        allow_unaccounted: bool | None = None,
    ) -> None:
        """Assert the stage counters agree with each other.

        Raises :class:`~repro.errors.ConfigurationError` on any
        inconsistency. ``lossless=True`` additionally requires that every
        filtered, unsuppressed word arrived (``words_delivered ==
        words_filtered - words_suppressed`` and no lost/CRC-errored
        frames); ``None`` (default) applies it automatically when the
        decoder saw no loss or corruption. ``allow_unaccounted=True``
        relaxes strict frame conservation to ``frames_unaccounted >= 0``
        for receivers that legitimately discard link bytes — injected
        tail faults, or a gateway shedding a slow consumer's queue;
        ``None`` (default) allows it exactly when faults were injected.
        """
        def require(ok: bool, what: str) -> None:
            if not ok:
                raise ConfigurationError(
                    f"telemetry inconsistency: {what} ({self})"
                )

        require(self.bits_out == self.mod_samples_in,
                "modulator must emit one bit per input sample")
        if self.decimation_factor > 0:
            if self.mod_samples_in == 0:
                require(self.words_filtered == 0,
                        "no words can be filtered from no samples")
            else:
                remainder = self.filter_remainder
                require(0 <= remainder < self.decimation_factor,
                        "decimator residue must be less than one output word")
        require(self.words_suppressed <= self.words_filtered,
                "cannot suppress more words than were filtered")
        if allow_unaccounted is None:
            allow_unaccounted = self.faults_injected > 0
        if allow_unaccounted:
            # An injected tail drop or truncation (or a shed ingest
            # chunk, on a gateway) can leave frames that no later
            # sequence number ever reports missing; they stay visible
            # as frames_unaccounted instead.
            require(self.frames_unaccounted >= 0,
                    "cannot decode or lose more frames than were framed")
        else:
            require(self.frames_unaccounted == 0,
                    "framed frames must be decoded or counted lost")
        if lossless is None:
            lossless = (
                self.lost_frames == 0
                and self.crc_errors == 0
                and self.stale_frames == 0
                and self.faults_injected == 0
                and not allow_unaccounted
            )
        if lossless:
            require(
                self.words_delivered
                == self.words_filtered - self.words_suppressed,
                "every filtered, unsuppressed word must be delivered",
            )

    @classmethod
    def aggregate(cls, parts: "list[PipelineTelemetry]") -> "PipelineTelemetry":
        """Sum counters across sessions into one fleet-wide view.

        Counters add, ``peak_chunk_bytes`` takes the maximum, and the
        decimation factor carries over only when every part agrees. The
        aggregate is a reporting view: the reconciliation identities are
        per-session invariants (the filter-remainder identity in
        particular does not survive summation), so reconcile the parts,
        then aggregate.
        """
        total = cls()
        factors = {p.decimation_factor for p in parts}
        if len(factors) == 1:
            total.decimation_factor = factors.pop()
        for p in parts:
            total.chunks += p.chunks
            total.mod_samples_in += p.mod_samples_in
            total.bits_out += p.bits_out
            total.clipped_samples += p.clipped_samples
            total.words_filtered += p.words_filtered
            total.words_suppressed += p.words_suppressed
            total.frames_framed += p.frames_framed
            total.frames_decoded += p.frames_decoded
            total.lost_frames += p.lost_frames
            total.crc_errors += p.crc_errors
            total.stale_frames += p.stale_frames
            total.resync_bytes += p.resync_bytes
            total.words_delivered += p.words_delivered
            total.faults_injected += p.faults_injected
            total.peak_chunk_bytes = max(
                total.peak_chunk_bytes, p.peak_chunk_bytes
            )
            for stage in STAGES:
                total.stage_seconds[stage] += p.stage_seconds[stage]
        return total

    def throughput_msps(self) -> float:
        """Modulator samples per second of pipeline wall time, in MS/s."""
        total = self.total_seconds
        return self.mod_samples_in / total / 1e6 if total > 0 else 0.0

    def describe(self) -> str:
        """Human-readable telemetry table (the CLI's live footer)."""
        lines = [
            "PipelineTelemetry",
            f"  chunks            : {self.chunks} "
            f"(peak {self.peak_chunk_bytes / 1024:.0f} KiB)",
            f"  modulator         : {self.mod_samples_in} samples in, "
            f"{self.bits_out} bits out, {self.clipped_samples} clipped",
            f"  decimator         : {self.words_filtered} words "
            f"(+{self.filter_remainder} samples in flight), "
            f"{self.words_suppressed} suppressed",
            f"  framing           : {self.frames_framed} framed, "
            f"{self.frames_decoded} decoded, {self.lost_frames} lost, "
            f"{self.crc_errors} CRC errors, {self.stale_frames} stale",
            f"  delivered         : {self.words_delivered} words",
        ]
        if self.faults_injected:
            lines.append(
                f"  faults            : {self.faults_injected} event(s) "
                f"injected, {self.frames_unaccounted} frame(s) unaccounted"
            )
        for stage in STAGES:
            seconds = self.stage_seconds[stage]
            if seconds > 0.0:
                lines.append(f"  t({stage:<9})      : {seconds * 1e3:.1f} ms")
        if self.total_seconds > 0:
            lines.append(
                f"  throughput        : {self.throughput_msps():.2f} MS/s"
            )
        return "\n".join(lines)


class AcquisitionSession:
    """One stateful streaming acquisition through a readout chain.

    Feed modulator-rate chunks with :meth:`feed_pressure` or
    :meth:`feed_voltage`; each call returns the decimated words that
    chunk completed (possibly empty — the decimator and the framer hold
    partial words/frames across boundaries). :meth:`finish` flushes the
    final partial USB frame; :meth:`recording` assembles the standard
    :class:`~repro.core.chain.ChainRecording`.

    Memory is O(chunk) at the modulator rate: only the caller's current
    chunk and the pipeline's transients exist at 128 kS/s. The delivered
    1 kS/s words accumulate (128x smaller), so even long sessions stay
    cheap.

    Parameters
    ----------
    chain:
        The :class:`~repro.core.chain.ReadoutChain` to stream through.
        The session shares the chain's chip and FPGA state (framer
        sequence numbers continue across sessions, as on hardware) but
        owns a fresh host-side decoder and sample stream.
    element:
        Element to select before the first chunk (default: keep the
        chain's current selection). Switching resets the decimation
        filter and starts the post-switch suppression window, exactly as
        the batch path does.
    faults:
        Optional :class:`~repro.faults.FaultInjector`. The session binds
        it to the chain, installs its hooks at every pipeline layer
        (pressure field, loop input, bitstream, decimated words, USB
        payload) and restores the hooks on :meth:`finish`. With ``None``
        (default) the pipeline is bit-identical to an un-instrumented
        session.
    quality:
        Detector thresholds for the recording's per-sample quality mask
        (default :class:`~repro.faults.QualityConfig`).
    """

    def __init__(
        self,
        chain,
        element: int | None = None,
        faults=None,
        quality: QualityConfig | None = None,
    ):
        self.chain = chain
        if element is not None:
            chain.chip.select_element(element)
            chain.fpga.select_element(element)
        self.element = chain.chip.selected_element
        self._decoder = FrameDecoder()
        self._stream = SampleStream(
            sample_rate_hz=chain.output_rate_hz,
            samples_per_frame=chain.fpga.encoder.samples_per_frame,
        )
        self.telemetry = PipelineTelemetry(
            decimation_factor=chain.fpga.filter.params.total_decimation
        )
        self._kind: str | None = None
        self._finished = False
        self._quality_config = quality or QualityConfig()
        self.faults = faults
        if faults is not None:
            faults.bind(chain)
            self._prev_loop_hook = chain.chip.loop_input_hook
            self._prev_word_hook = chain.fpga.word_hook
            chain.chip.loop_input_hook = faults.apply_loop_input
            chain.fpga.word_hook = faults.apply_words

    @classmethod
    def batched(cls, chains, **kwargs):
        """Open a batched session over ``chains`` (one lane per chain).

        The batched mode advances every lane in lockstep through the
        fused chip->sigma-delta->CIC->FIR->decode kernel of
        :mod:`repro.batch`; per-lane codes and telemetry are
        bit-identical to ``len(chains)`` independent single sessions.
        Keyword arguments are forwarded to
        :class:`~repro.batch.session.BatchAcquisitionSession`.
        """
        from ..batch import BatchAcquisitionSession

        return BatchAcquisitionSession(chains, **kwargs)

    # -- feeding -----------------------------------------------------------

    def feed_pressure(self, element_pressures_pa: np.ndarray) -> np.ndarray:
        """Convert one membrane-pressure chunk; return completed words.

        ``element_pressures_pa`` is (n_chunk_samples, n_elements) at the
        modulator clock — the same layout the batch path takes, just
        bounded.
        """
        chunk = np.asarray(element_pressures_pa, dtype=float)
        if chunk.ndim != 2:
            raise ConfigurationError(
                "expected (n_samples, n_elements) pressures"
            )
        return self._feed("pressure", chunk)

    def feed_voltage(self, differential_voltage_v: np.ndarray) -> np.ndarray:
        """Convert one test-voltage chunk (Fig. 7 path); return words."""
        chunk = np.asarray(differential_voltage_v, dtype=float)
        if chunk.ndim != 1:
            raise ConfigurationError("voltage chunk must be 1-D")
        return self._feed("voltage", chunk)

    def _feed(self, kind: str, chunk: np.ndarray) -> np.ndarray:
        if self._finished:
            raise ConfigurationError(
                "session already finished; start a new AcquisitionSession"
            )
        if self._kind is None:
            self._kind = kind
        elif self._kind != kind:
            raise ConfigurationError(
                f"cannot mix acquisition paths in one session "
                f"(started with {self._kind!r}, got {kind!r})"
            )
        if chunk.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)

        tm = self.telemetry
        chip, fpga = self.chain.chip, self.chain.fpga
        tm.chunks += 1
        tm.peak_chunk_bytes = max(tm.peak_chunk_bytes, chunk.nbytes)

        t0 = time.perf_counter()
        if self.faults is not None and kind == "pressure":
            chunk = self.faults.apply_array(chunk)
        if kind == "pressure":
            mod_out = chip.acquire_pressure(chunk)
        else:
            mod_out = chip.acquire_voltage(chunk)
        t1 = time.perf_counter()
        tm.add_stage_seconds("modulator", t1 - t0)
        tm.mod_samples_in += chunk.shape[0]
        tm.bits_out += mod_out.bitstream.size
        tm.clipped_samples += mod_out.clipped_samples

        bitstream = mod_out.bitstream
        if self.faults is not None:
            bitstream = self.faults.apply_bitstream(bitstream)
        words_before = fpga.words_filtered
        suppressed_before = fpga.words_suppressed
        frames_before = fpga.encoder.frames_emitted
        payload = fpga.process(bitstream.astype(np.int64))
        t2 = time.perf_counter()
        tm.add_stage_seconds("fpga", t2 - t1)
        tm.words_filtered += fpga.words_filtered - words_before
        tm.words_suppressed += fpga.words_suppressed - suppressed_before
        tm.frames_framed += fpga.encoder.frames_emitted - frames_before
        if self.faults is not None:
            payload = self.faults.apply_payload(payload)
            tm.faults_injected = self.faults.events_applied

        return self._deliver(payload, t2)

    def _deliver(
        self, payload: bytes, t_start: float, final: bool = False
    ) -> np.ndarray:
        """Decode and ingest one payload; return this element's new words."""
        tm = self.telemetry
        frames = self._decoder.feed(payload)
        if final:
            # End of stream: drain any frames stalled behind a corrupted
            # length claim (a no-op on clean pipelines).
            frames += self._decoder.finalize()
        t3 = time.perf_counter()
        tm.add_stage_seconds("decode", t3 - t_start)
        tm.frames_decoded = self._decoder.frames_decoded
        tm.lost_frames = self._decoder.lost_frames
        tm.crc_errors = self._decoder.crc_errors
        tm.stale_frames = self._decoder.stale_frames
        tm.resync_bytes = self._decoder.resync_bytes

        self._stream.ingest(frames)
        tm.add_stage_seconds("ingest", time.perf_counter() - t3)
        mine = [f.samples for f in frames if f.element == self.element]
        if not mine:
            return np.zeros(0, dtype=np.int64)
        delivered = np.concatenate(mine).astype(np.int64)
        tm.words_delivered += delivered.size
        return delivered

    # -- completion --------------------------------------------------------

    def finish(self) -> np.ndarray:
        """Flush the partial USB frame; return the words it delivers.

        Idempotent: later calls return an empty array. Samples still
        inside the decimation cascade (:attr:`PipelineTelemetry.
        filter_remainder` of them) stay there — fewer than one output
        word's worth, exactly as in the hardware.
        """
        if self._finished:
            return np.zeros(0, dtype=np.int64)
        self._finished = True
        tm = self.telemetry
        t0 = time.perf_counter()
        frames_before = self.chain.fpga.encoder.frames_emitted
        payload = self.chain.fpga.flush()
        t1 = time.perf_counter()
        tm.add_stage_seconds("fpga", t1 - t0)
        tm.frames_framed += (
            self.chain.fpga.encoder.frames_emitted - frames_before
        )
        if self.faults is not None:
            payload = self.faults.apply_payload(payload)
            tm.faults_injected = self.faults.events_applied
        delivered = self._deliver(payload, t1, final=True)
        if self.faults is not None:
            # Hand the chain back fault-free.
            self.chain.chip.loop_input_hook = self._prev_loop_hook
            self.chain.fpga.word_hook = self._prev_word_hook
        return delivered

    def recording(self) -> ChainRecording:
        """Finish (if needed) and assemble the session's recording.

        Bit-identical to what the batch path returns for the same input,
        regardless of how the input was chunked.
        """
        self.finish()
        codes = self._stream.samples(self.element).astype(np.int64)
        return ChainRecording(
            codes=codes,
            sample_rate_hz=self.chain.output_rate_hz,
            element=self.element,
            lost_frames=self._decoder.lost_frames,
            crc_errors=self._decoder.crc_errors,
            lost_samples=self._stream.lost_samples(self.element),
            quality=quality_mask(
                codes,
                gaps=self._stream.gaps(self.element),
                config=self._quality_config,
            ),
        )

    # -- introspection -----------------------------------------------------

    @property
    def words_available(self) -> int:
        """Words delivered for the selected element so far."""
        return self._stream.sample_count(self.element)

    @property
    def stream(self) -> SampleStream:
        """The session's host-side sample stream (gap accounting etc.)."""
        return self._stream

    @property
    def decoder(self) -> FrameDecoder:
        """The session's USB frame decoder (loss/CRC/resync counters)."""
        return self._decoder

    @property
    def finished(self) -> bool:
        return self._finished
