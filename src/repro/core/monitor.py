"""The complete application: continuous blood-pressure monitoring.

Implements the measurement protocol of Sec. 3.2 / Fig. 9 against a
virtual patient:

1. **Scan** — visit every array element briefly and pick the one with the
   strongest pulsatile signal (Sec. 2's placement-tolerance mechanism).
2. **Record** — stream the selected element continuously at 1 kS/s.
3. **Extract** — low-pass to the cardiac band, detect beats, read the raw
   systolic/diastolic feature levels.
4. **Calibrate** — take one oscillometric cuff reading and anchor the raw
   levels to mmHg with the two-point calibration.

Because the patient is synthetic, the result also carries ground-truth
errors — the numbers Fig. 9 could only show qualitatively.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from ..array.scan import ElementSelection, ScanController
from ..baselines.cuff import CuffReading, OscillometricCuff
from ..calibration.artifacts import ArtifactDetector, ArtifactReport
from ..calibration.features import BeatFeatures, detect_beats, lowpass_cardiac
from ..calibration.quality import SignalQualityReport, assess_quality
from ..calibration.twopoint import TwoPointCalibration
from ..errors import ConfigurationError
from ..physiology.patient import PatientRecording, VirtualPatient
from ..tonometry.coupling import TonometricCoupling
from .chain import ChainRecording, ReadoutChain
from .session import AcquisitionSession, PipelineTelemetry


@dataclass(frozen=True)
class MonitorResult:
    """Everything one monitoring session produces."""

    selection: ElementSelection
    recording: ChainRecording
    raw_waveform: np.ndarray  # cardiac-band-filtered raw values
    features: BeatFeatures
    quality: SignalQualityReport
    cuff: CuffReading
    calibration: TwoPointCalibration
    calibrated_mmhg: np.ndarray
    ground_truth: PatientRecording
    #: Artifact flags over the record (None when rejection is disabled).
    artifact_report: ArtifactReport | None = None
    #: Pipeline telemetry of the record step (streaming sessions only).
    telemetry: PipelineTelemetry | None = None

    # -- derived accuracy metrics -------------------------------------------

    @property
    def times_s(self) -> np.ndarray:
        return self.recording.times_s

    @property
    def measured_systolic_mmhg(self) -> float:
        return float(self.calibration.apply(self.features.mean_systolic_raw))

    @property
    def measured_diastolic_mmhg(self) -> float:
        return float(self.calibration.apply(self.features.mean_diastolic_raw))

    @property
    def systolic_error_mmhg(self) -> float:
        return self.measured_systolic_mmhg - self.ground_truth.systolic_mmhg

    @property
    def diastolic_error_mmhg(self) -> float:
        return self.measured_diastolic_mmhg - self.ground_truth.diastolic_mmhg

    def waveform_rms_error_mmhg(self) -> float:
        """RMS error of the calibrated waveform against ground truth.

        The ground-truth record is resampled onto the measurement grid and
        both are compared after discarding the filter's settling edges.
        """
        t = self.times_s
        truth = np.interp(
            t, self.ground_truth.times_s, self.ground_truth.pressure_mmhg
        )
        skip = min(200, t.size // 10)
        a = self.calibrated_mmhg[skip:-skip] if skip else self.calibrated_mmhg
        b = truth[skip:-skip] if skip else truth
        return float(np.sqrt(np.mean((a - b) ** 2)))

    def summary(self) -> str:
        gt = self.ground_truth
        return "\n".join(
            [
                "BloodPressureMonitor result",
                f"  selected element : ({self.selection.best_row}, "
                f"{self.selection.best_col}), "
                f"contrast {self.selection.contrast:.2f}",
                f"  {self.quality.describe()}",
                f"  cuff reading     : {self.cuff.systolic_mmhg:.1f}/"
                f"{self.cuff.diastolic_mmhg:.1f} mmHg",
                f"  measured         : {self.measured_systolic_mmhg:.1f}/"
                f"{self.measured_diastolic_mmhg:.1f} mmHg",
                f"  ground truth     : {gt.systolic_mmhg:.1f}/"
                f"{gt.diastolic_mmhg:.1f} mmHg",
                f"  sys/dia error    : {self.systolic_error_mmhg:+.1f}/"
                f"{self.diastolic_error_mmhg:+.1f} mmHg",
                f"  waveform RMS err : {self.waveform_rms_error_mmhg():.2f} mmHg",
            ]
        )


class BloodPressureMonitor:
    """Scan-select-record-calibrate measurement orchestrator.

    Parameters
    ----------
    chain:
        The readout chain (chip + FPGA + USB).
    coupling:
        Tonometric coupling mapping arterial to membrane pressures.
    cuff:
        The calibration reference device.
    physiology_rate_hz:
        Internal rate at which the patient waveform is synthesized before
        interpolation to the modulator clock (the waveform lives below
        25 Hz, so 2 kHz is generous).
    artifact_rejection:
        Run the :class:`~repro.calibration.artifacts.ArtifactDetector`
        on every record and extract beat features only from unflagged
        stretches. Costs a little compute; essential under motion.
    """

    def __init__(
        self,
        chain: ReadoutChain,
        coupling: TonometricCoupling,
        cuff: OscillometricCuff | None = None,
        physiology_rate_hz: float = 2000.0,
        artifact_rejection: bool = False,
    ):
        if physiology_rate_hz < 200.0:
            raise ConfigurationError(
                "physiology rate must be >= 200 Hz to resolve the pulse"
            )
        self.chain = chain
        self.coupling = coupling
        self.cuff = cuff or OscillometricCuff()
        self.physiology_rate_hz = float(physiology_rate_hz)
        self.artifact_rejection = bool(artifact_rejection)
        self._detector = ArtifactDetector() if artifact_rejection else None

    # -- pieces ------------------------------------------------------------

    def _pressure_field(
        self, recording: PatientRecording, start_s: float, stop_s: float
    ) -> np.ndarray:
        """Membrane-pressure field at the modulator clock for [start, stop)."""
        fs = self.chain.params.modulator.sampling_rate_hz
        n = int(round((stop_s - start_s) * fs))
        t_mod = start_s + np.arange(n) / fs
        arterial_pa = recording.interp_pressure_pa(t_mod)
        return self.coupling.element_pressures_pa(arterial_pa)

    def _pressure_field_chunks(
        self,
        recording: PatientRecording,
        start_s: float,
        stop_s: float,
        chunk_s: float,
    ) -> Iterator[np.ndarray]:
        """Chunked :meth:`_pressure_field`: bounded synthesis on demand.

        Yields (n_chunk, n_elements) fields whose concatenation is
        bit-identical to the monolithic field — sample times come from
        one global index grid and the coupling operating point is frozen
        once — while only ever holding one chunk of 128 kHz data.
        """
        if chunk_s <= 0:
            raise ConfigurationError("chunk duration must be positive")
        fs = self.chain.params.modulator.sampling_rate_hz
        n = int(round((stop_s - start_s) * fs))
        step = max(int(round(chunk_s * fs)), 2)
        field_fn = self.coupling.pressure_field_fn()
        for i0 in range(0, n, step):
            t_mod = start_s + np.arange(i0, min(i0 + step, n)) / fs
            yield field_fn(recording.interp_pressure_pa(t_mod))

    def record_streaming(
        self,
        recording: PatientRecording,
        start_s: float,
        stop_s: float,
        element: int | None = None,
        chunk_s: float = 0.25,
        on_chunk: Callable[[AcquisitionSession, np.ndarray], None] | None = None,
        faults=None,
    ) -> tuple[ChainRecording, PipelineTelemetry]:
        """Stream one element's record without materializing the field.

        Synthesizes the membrane-pressure field chunk-by-chunk from the
        physiology-rate ground truth and feeds it through an
        :class:`~repro.core.session.AcquisitionSession`, so a session of
        any duration costs O(chunk) memory at the modulator rate. The
        returned recording is bit-identical to
        ``chain.record_pressure(self._pressure_field(...), element)``;
        the telemetry additionally carries the per-chunk synthesis time.

        Parameters
        ----------
        recording:
            Ground-truth patient record covering [start_s, stop_s).
        start_s, stop_s:
            Window of the record to acquire.
        element:
            Element to select first (default: keep current selection).
        chunk_s:
            Chunk duration; 0.25 s at 128 kS/s x 4 elements is ~1 MiB.
        on_chunk:
            Optional live observer called after every chunk with the
            session and the newly delivered words (the CLI's hook).
        faults:
            Optional :class:`~repro.faults.FaultInjector` active for
            this record; the returned recording's ``quality`` mask flags
            the degraded stretches.
        """
        session = AcquisitionSession(self.chain, element=element, faults=faults)
        chunks = self._pressure_field_chunks(recording, start_s, stop_s, chunk_s)
        while True:
            # The generator interpolates and couples lazily, so the time
            # spent pulling the next chunk IS the synthesis time.
            t0 = time.perf_counter()
            chunk = next(chunks, None)
            session.telemetry.add_stage_seconds(
                "synthesis", time.perf_counter() - t0
            )
            if chunk is None:
                break
            delivered = session.feed_pressure(chunk)
            if on_chunk is not None:
                on_chunk(session, delivered)
        session.finish()
        return session.recording(), session.telemetry

    def scan(
        self,
        recording: PatientRecording,
        dwell_s: float = 1.5,
        batched: bool = False,
    ) -> ElementSelection:
        """Visit every element and select the strongest one."""
        n_elements = self.chain.chip.array.n_elements
        field = self._pressure_field(
            recording, 0.0, dwell_s * n_elements
        )
        controller = ScanController(self.chain.chip.mux)
        # Drop the filter-flush words at the start of the record.
        return controller.scan_and_select(
            self.chain, field, dwell_s=dwell_s, batched=batched,
            settle_words=8,
        )

    def measure(
        self,
        patient: VirtualPatient,
        duration_s: float = 16.0,
        scan_dwell_s: float = 1.5,
        rng: np.random.Generator | None = None,
        streaming: bool = False,
        chunk_s: float = 0.25,
    ) -> MonitorResult:
        """Run the full protocol and return the session result.

        With ``streaming=True`` the record step runs through
        :meth:`record_streaming` in ``chunk_s`` chunks — bit-identical
        output, O(chunk) memory at the modulator rate, and the result
        carries :class:`~repro.core.session.PipelineTelemetry`.
        """
        if duration_s < 5.0:
            raise ConfigurationError(
                "need >= 5 s of recording for stable beat features"
            )
        rng = rng or np.random.default_rng(77)
        n_elements = self.chain.chip.array.n_elements
        scan_total = scan_dwell_s * n_elements
        total = scan_total + duration_s

        truth = patient.record(
            duration_s=total, sample_rate_hz=self.physiology_rate_hz
        )

        selection = self.scan(truth, dwell_s=scan_dwell_s)

        telemetry: PipelineTelemetry | None = None
        if streaming:
            recording, telemetry = self.record_streaming(
                truth, scan_total, total,
                element=selection.best_index, chunk_s=chunk_s,
            )
        else:
            field = self._pressure_field(truth, scan_total, total)
            recording = self.chain.record_pressure(
                field, element=selection.best_index
            )

        raw = lowpass_cardiac(
            recording.values, recording.sample_rate_hz
        )
        artifact_report = None
        feature_input = recording.values
        if self._detector is not None:
            artifact_report = self._detector.detect(
                recording.values, recording.sample_rate_hz
            )
            if 0 < artifact_report.fraction_flagged < 0.6:
                # Patch flagged spans with the clean median so beat
                # detection keeps its time base; features from flagged
                # beats are suppressed by the patching.
                feature_input = recording.values.copy()
                clean_median = float(
                    np.median(recording.values[~artifact_report.mask])
                )
                feature_input[artifact_report.mask] = clean_median
        features = detect_beats(
            feature_input,
            recording.sample_rate_hz,
            expected_rate_bpm=patient.params.heart_rate_bpm,
        )
        quality = assess_quality(
            recording.values,
            recording.sample_rate_hz,
            expected_rate_bpm=patient.params.heart_rate_bpm,
        )

        cuff_reading = self.cuff.measure(patient, rng=rng)
        calibration = TwoPointCalibration.from_features(
            features,
            cuff_systolic_mmhg=cuff_reading.systolic_mmhg,
            cuff_diastolic_mmhg=cuff_reading.diastolic_mmhg,
        )
        calibrated = calibration.apply(raw)

        # Ground truth restricted to the measurement window, re-based to
        # the recording clock.
        measured_truth = PatientRecording(
            times_s=truth.times_s[truth.times_s >= scan_total] - scan_total,
            pressure_mmhg=truth.pressure_mmhg[truth.times_s >= scan_total],
            schedule=truth.schedule,
            beat_truth=truth.beat_truth[
                truth.beat_truth[:, 0] >= scan_total
            ],
        )

        return MonitorResult(
            selection=selection,
            recording=recording,
            raw_waveform=raw,
            features=features,
            quality=quality,
            cuff=cuff_reading,
            calibration=calibration,
            calibrated_mmhg=calibrated,
            ground_truth=measured_truth,
            artifact_report=artifact_report,
            telemetry=telemetry,
        )
