"""Digital auto-zero using the on-chip reference structure.

The die carries "a reference structure" (Sec. 3) whose capacitor matches
the transducers' rest capacitance but has no released membrane — it
cannot respond to pressure. Anything it *does* read is therefore readout
offset: front-end mismatch, comparator offset leakage, drift. The
auto-zero controller periodically routes the multiplexer to a designated
reference position, averages a short burst of output words, and subtracts
that pedestal from subsequent sensor readings.

In this behavioural model the reference position is emulated by holding
the selected element at zero membrane pressure (the array's reference
capacitor is already wired into the front end differentially; the
auto-zero removes the *residual* mismatch pedestal that the differential
pair leaves behind — exactly what the raw records show as per-element DC
offsets).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.chain import ReadoutChain
from ..errors import ConfigurationError


@dataclass(frozen=True)
class AutoZeroState:
    """Measured pedestal per array element (modulator-FS units)."""

    offsets_fs: np.ndarray
    measured_at_s: float
    burst_words: int

    def correct(self, values: np.ndarray, element: int) -> np.ndarray:
        """Subtract the element's pedestal from raw values."""
        if not 0 <= element < self.offsets_fs.size:
            raise ConfigurationError("element index out of range")
        return np.asarray(values, dtype=float) - self.offsets_fs[element]


class AutoZeroController:
    """Measures and applies per-element offset pedestals.

    Parameters
    ----------
    chain:
        The readout chain to calibrate.
    burst_words:
        Output words averaged per element (after filter flush).
    flush_words:
        Words discarded after each element switch.
    """

    def __init__(
        self,
        chain: ReadoutChain,
        burst_words: int = 64,
        flush_words: int = 16,
    ):
        if burst_words < 4:
            raise ConfigurationError("need >= 4 words per burst")
        if flush_words < 0:
            raise ConfigurationError("flush words must be >= 0")
        self.chain = chain
        self.burst_words = int(burst_words)
        self.flush_words = int(flush_words)

    def measure(self, time_s: float = 0.0) -> AutoZeroState:
        """Visit every element at zero membrane pressure and record its
        pedestal (the mismatch between its rest capacitance and the
        reference capacitor, as seen through the full chain)."""
        n_elements = self.chain.chip.array.n_elements
        osr = self.chain.params.modulator.osr
        n_mod = (self.burst_words + self.flush_words) * osr
        quiet = np.zeros((n_mod, n_elements))
        offsets = np.empty(n_elements)
        for element in range(n_elements):
            recording = self.chain.record_pressure(quiet, element=element)
            settled = recording.values[self.flush_words :]
            offsets[element] = float(np.mean(settled))
        return AutoZeroState(
            offsets_fs=offsets,
            measured_at_s=float(time_s),
            burst_words=self.burst_words,
        )

    def expected_offsets_fs(self) -> np.ndarray:
        """Analytic pedestal prediction from the array mismatch.

        (C_rest,k - C_ref) / C_fb in modulator-FS units — what
        :meth:`measure` should find, up to converter noise. Tests compare
        the two.
        """
        chip = self.chain.chip
        deltas = chip.array.offsets_vs_reference_f()
        return deltas * chip.frontend.gain_per_farad
