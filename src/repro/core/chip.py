"""The monolithic sensor chip: everything inside the die of Fig. 5.

A 2x2 membrane array with reference structure, the row/column analog
multiplexers, the capacitive front end and the second-order single-bit
sigma-delta modulator — one object with the two acquisition paths the
silicon offers:

* :meth:`acquire_pressure` — transducer path (Figs. 3/4/6),
* :meth:`acquire_voltage` — the differential voltage test input used for
  the Fig. 7 characterization.
"""

from __future__ import annotations

import numpy as np

from ..array.array2d import SensorArray
from ..array.mux import AnalogMultiplexer
from ..errors import ConfigurationError
from ..params import SystemParams
from ..sdm.frontend import CapacitiveFrontEnd, VoltageFrontEnd
from ..sdm.modulator import ModulatorOutput, SecondOrderSDM


class SensorChip:
    """The fabricated device, behaviourally.

    Parameters
    ----------
    params:
        Full system parameters (paper defaults via
        :func:`repro.params.paper_defaults`).
    rng:
        Randomness for mismatch and analog noise; seeded default.
    backend:
        Modulator simulation backend, ``"fast"`` (default) or
        ``"reference"`` — see
        :class:`~repro.sdm.modulator.SecondOrderSDM`.
    """

    def __init__(
        self,
        params: SystemParams | None = None,
        rng: np.random.Generator | None = None,
        backend: str = "fast",
    ):
        self.params = params or SystemParams()
        rng = rng or np.random.default_rng(1958)
        self.array = SensorArray(self.params.array, rng=rng)
        self.mux = AnalogMultiplexer(self.array)
        self.frontend = CapacitiveFrontEnd(
            reference_cap_f=self.array.reference_cap_f,
            feedback_cap_f=self.params.frontend.feedback_cap_f,
            excitation_fraction=self.params.frontend.excitation_fraction,
        )
        self.voltage_input = VoltageFrontEnd(vref_v=self.params.modulator.vref_v)
        self.modulator = SecondOrderSDM(
            params=self.params.modulator,
            nonideality=self.params.nonideality,
            rng=rng,
            backend=backend,
        )
        #: Optional tap on the modulator loop input (FS units), applied
        #: by both acquisition paths just before conversion — the fault
        #: injector's sdm-saturation hook.
        self.loop_input_hook = None

    # -- element selection -------------------------------------------------

    def select_element(self, index: int) -> None:
        """Drive the row/column multiplexers to an element."""
        self.mux.select_index(index)

    @property
    def selected_element(self) -> int:
        return self.mux.selected

    @property
    def sampling_rate_hz(self) -> float:
        return self.params.modulator.sampling_rate_hz

    # -- resumable state ---------------------------------------------------

    def state_snapshot(self):
        """Resumable modulator state at a chunk boundary.

        Both backends resume bit-exactly from a snapshot (the fast
        kernel and the reference loop carry identical state), which is
        what lets :class:`~repro.core.session.AcquisitionSession`
        suspend an acquisition between chunks.
        """
        return self.modulator.state_snapshot()

    def restore_state(self, state) -> None:
        """Resume the modulator from a :meth:`state_snapshot`."""
        self.modulator.restore_state(state)

    # -- acquisition paths -----------------------------------------------------

    def acquire_pressure(
        self, element_pressures_pa: np.ndarray
    ) -> ModulatorOutput:
        """Convert membrane pressures on the selected element to bits.

        Parameters
        ----------
        element_pressures_pa:
            (n_samples, n_elements) membrane pressure field sampled at
            the modulator clock; only the selected element's column is
            routed (the others exist because the physics computes the
            whole field).
        """
        pressures = np.asarray(element_pressures_pa, dtype=float)
        if pressures.ndim != 2:
            raise ConfigurationError(
                "expected (n_samples, n_elements) pressures"
            )
        caps = self.mux.routed_capacitance_f(pressures)
        u = self.frontend.loop_input(caps)
        if self.loop_input_hook is not None:
            u = self.loop_input_hook(u)
        return self.modulator.simulate(u)

    def acquire_pressure_scan(
        self, element_pressures_pa: np.ndarray, dwell_samples: int
    ) -> list[ModulatorOutput]:
        """Convert a whole row-major scan in one batched modulator call.

        The batched counterpart of selecting each element and calling
        :meth:`acquire_pressure` on its dwell segment: element k converts
        samples ``[k*dwell, (k+1)*dwell)`` of the field. Each segment
        runs from the modulator's current analog state (a bank of
        matched modulators converting in parallel) rather than
        continuing the previous element's state, which only perturbs the
        post-switch transient that the decimation filter flushes anyway.
        """
        pressures = np.asarray(element_pressures_pa, dtype=float)
        if pressures.ndim != 2:
            raise ConfigurationError(
                "expected (n_samples, n_elements) pressures"
            )
        caps = self.mux.scan_routed_capacitance_f(pressures, dwell_samples)
        u = self.frontend.loop_input(caps)
        return self.modulator.simulate_batch(u)

    def acquire_scan_segments(
        self, dwell_pressures_pa: np.ndarray
    ) -> list[ModulatorOutput]:
        """:meth:`acquire_pressure_scan` from per-element dwell segments.

        Takes the (n_elements, dwell_samples) matrix of pressures each
        element sees during its own visit — the only samples a scan ever
        routes — so a large-array scan never materializes the
        O(samples x elements) full field. Routing, charge injection and
        batched-conversion semantics are identical to
        :meth:`acquire_pressure_scan`.
        """
        caps = self.mux.scan_segments_capacitance_f(dwell_pressures_pa)
        u = self.frontend.loop_input(caps)
        return self.modulator.simulate_batch(u)

    def acquire_voltage(
        self, differential_voltage_v: np.ndarray
    ) -> ModulatorOutput:
        """Convert a differential test voltage to bits (Fig. 7 path)."""
        u = self.voltage_input.loop_input(
            np.asarray(differential_voltage_v, dtype=float)
        )
        if self.loop_input_hook is not None:
            u = self.loop_input_hook(u)
        return self.modulator.simulate(u)

    # -- derived figures --------------------------------------------------------

    def pressure_to_loop_gain(self, operating_pressure_pa: float = 0.0) -> float:
        """End-to-end small-signal gain d(u)/d(P_membrane) [1/Pa]."""
        sens = self.array.sensor.pressure_sensitivity_f_per_pa(
            operating_pressure_pa
        )
        return sens * self.frontend.gain_per_farad

    def full_scale_pressure_pa(self) -> float:
        """Membrane pressure swing mapping to the modulator full scale."""
        gain = self.pressure_to_loop_gain()
        if gain == 0:
            raise ConfigurationError("degenerate transducer gain")
        return self.modulator.input_full_scale / gain

    def describe(self) -> str:
        gain = self.pressure_to_loop_gain()
        return "\n".join(
            [
                "SensorChip",
                self.array.describe(),
                self.modulator.describe(),
                f"  front-end Cfb   : "
                f"{self.params.frontend.feedback_cap_f * 1e15:.0f} fF",
                f"  pressure gain   : {gain:.3e} FS/Pa "
                f"(full scale {self.full_scale_pressure_pa() / 1e3:.1f} kPa)",
            ]
        )
