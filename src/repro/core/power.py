"""Power model anchored at the paper's measurement.

Sec. 3.1: "The power consumption of the sensor chip is 11.5 mW at 5 V
supply voltage for 128 kHz sampling frequency." The model splits that
budget into a static analog part (bias currents of the two integrator
op-amps and the comparator, frequency-independent) and a dynamic
switched-capacitor/digital part (C V^2 f, scaling linearly with clock and
quadratically with supply), then lets experiments ask what-if questions —
e.g. the future-work "increased conversion rate".

The 60/40 static/dynamic split is an estimate typical for 0.8 um SC
designs; it is a model *assumption*, exposed as a parameter and documented
as such.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..params import ChipParams


@dataclass(frozen=True)
class PowerReport:
    """Power at one operating point."""

    total_w: float
    static_w: float
    dynamic_w: float
    supply_v: float
    sampling_rate_hz: float

    @property
    def energy_per_conversion_j(self) -> float:
        """Energy per *modulator* cycle."""
        return self.total_w / self.sampling_rate_hz

    def describe(self) -> str:
        return (
            f"{self.total_w * 1e3:.2f} mW at {self.supply_v:.1f} V / "
            f"{self.sampling_rate_hz / 1e3:.0f} kHz "
            f"({self.static_w * 1e3:.2f} static + "
            f"{self.dynamic_w * 1e3:.2f} dynamic)"
        )


class PowerModel:
    """Static + dynamic chip power, anchored to the paper's data point.

    Parameters
    ----------
    chip:
        Carries the anchor: power, supply and clock of the measurement.
    static_fraction:
        Fraction of the anchor power that is frequency-independent analog
        bias (default 0.6).
    """

    def __init__(
        self, chip: ChipParams | None = None, static_fraction: float = 0.6
    ):
        if not 0.0 <= static_fraction <= 1.0:
            raise ConfigurationError("static fraction must be in [0, 1]")
        self.chip = chip or ChipParams()
        self.static_fraction = float(static_fraction)
        anchor = self.chip
        self._static_w = anchor.power_w * static_fraction
        # Dynamic: P = k * V^2 * f; solve k at the anchor point.
        self._k_dynamic = (
            anchor.power_w
            * (1.0 - static_fraction)
            / (anchor.supply_v**2 * anchor.reference_sampling_rate_hz)
        )

    def report(
        self,
        sampling_rate_hz: float | None = None,
        supply_v: float | None = None,
    ) -> PowerReport:
        """Power at an operating point (defaults: the paper's)."""
        fs = (
            float(sampling_rate_hz)
            if sampling_rate_hz is not None
            else self.chip.reference_sampling_rate_hz
        )
        vdd = float(supply_v) if supply_v is not None else self.chip.supply_v
        if fs <= 0 or vdd <= 0:
            raise ConfigurationError("rate and supply must be positive")
        # Static bias currents scale ~linearly with supply.
        static = self._static_w * (vdd / self.chip.supply_v)
        dynamic = self._k_dynamic * vdd**2 * fs
        return PowerReport(
            total_w=static + dynamic,
            static_w=static,
            dynamic_w=dynamic,
            supply_v=vdd,
            sampling_rate_hz=fs,
        )

    def anchor_error_w(self) -> float:
        """Deviation of the model from the paper's anchor (exactly 0 by
        construction; kept as a regression guard)."""
        return abs(self.report().total_w - self.chip.power_w)

    def rate_for_power_budget_w(
        self, budget_w: float, supply_v: float | None = None
    ) -> float:
        """Highest sampling rate fitting a power budget."""
        vdd = float(supply_v) if supply_v is not None else self.chip.supply_v
        if budget_w <= 0:
            raise ConfigurationError("budget must be positive")
        static = self._static_w * (vdd / self.chip.supply_v)
        headroom = budget_w - static
        if headroom <= 0:
            raise ConfigurationError(
                f"budget {budget_w * 1e3:.1f} mW below the static floor "
                f"{static * 1e3:.1f} mW"
            )
        return headroom / (self._k_dynamic * vdd**2)
