"""The full readout chain: chip -> FPGA decimation -> USB -> host stream.

Fig. 3's block diagram end to end. One call converts a membrane-pressure
field (or a test voltage) into decimated 12-bit words exactly as the PC
behind the USB cable would receive them — including framing, so the
acquisition-path integrity machinery is exercised on every run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..daq.fpga import FPGAFilterBank
from ..daq.stream import SampleStream
from ..daq.usb import FrameDecoder
from ..errors import ConfigurationError
from ..faults.detection import quality_mask
from ..params import SystemParams
from .chip import SensorChip


@dataclass(frozen=True)
class ChainRecording:
    """Decimated output of one acquisition."""

    codes: np.ndarray  # int 12-bit codes
    sample_rate_hz: float
    element: int
    lost_frames: int
    crc_errors: int
    #: Samples the host stream's sequence-gap accounting says were lost
    #: for this element (``SampleStream.lost_samples``) — the per-element
    #: view behind the decoder-level ``lost_frames``.
    lost_samples: int = 0
    #: Per-sample quality mask (True = good); built by
    #: :func:`~repro.faults.quality_mask` from rail/gap/spike detection
    #: so degraded stretches are flagged instead of silently calibrated.
    #: ``None`` only on records built before the mask existed.
    quality: np.ndarray | None = None

    @property
    def values(self) -> np.ndarray:
        """Codes scaled to modulator-input units (FS = 1)."""
        return self.codes.astype(float) / 2048.0

    @property
    def quality_fraction(self) -> float:
        """Fraction of received samples the quality mask calls good."""
        if self.quality is None or self.quality.size == 0:
            return 1.0
        return float(np.count_nonzero(self.quality)) / self.quality.size

    @property
    def times_s(self) -> np.ndarray:
        return np.arange(self.codes.size) / self.sample_rate_hz

    @property
    def duration_s(self) -> float:
        return self.codes.size / self.sample_rate_hz


class ReadoutChain:
    """Chip + FPGA + USB, streaming.

    Parameters
    ----------
    params:
        System parameters; the FPGA filter and modulator rates are wired
        consistently from them.
    chip:
        Optional pre-built chip (to share one chip across experiments).
    backend:
        Modulator simulation backend, ``"fast"`` (default) or
        ``"reference"``; ignored when a pre-built ``chip`` is passed.
    """

    def __init__(
        self,
        params: SystemParams | None = None,
        chip: SensorChip | None = None,
        rng: np.random.Generator | None = None,
        backend: str = "fast",
    ):
        self.params = params or SystemParams()
        self.chip = chip or SensorChip(self.params, rng=rng, backend=backend)
        self.fpga = FPGAFilterBank(
            params=self.params.decimation,
            input_rate_hz=self.params.modulator.sampling_rate_hz,
        )

    @property
    def output_rate_hz(self) -> float:
        return self.fpga.output_rate_hz

    def _collect(self, payload: bytes, element: int) -> ChainRecording:
        decoder = FrameDecoder()
        frames = decoder.feed(payload) + decoder.finalize()
        stream = SampleStream(
            sample_rate_hz=self.output_rate_hz,
            samples_per_frame=self.fpga.encoder.samples_per_frame,
        )
        stream.ingest(frames)
        codes = stream.samples(element).astype(np.int64)
        return ChainRecording(
            codes=codes,
            sample_rate_hz=self.output_rate_hz,
            element=element,
            lost_frames=decoder.lost_frames,
            crc_errors=decoder.crc_errors,
            lost_samples=stream.lost_samples(element),
            quality=quality_mask(codes, gaps=stream.gaps(element)),
        )

    def session(
        self, element: int | None = None, faults=None, quality=None
    ):
        """Open a streaming :class:`~repro.core.session.AcquisitionSession`.

        The chunked-first entry point: feed bounded chunks, read words
        incrementally, inspect per-stage telemetry. The batch record
        methods below are thin wrappers over exactly this. ``faults``
        wires a :class:`~repro.faults.FaultInjector` through every
        pipeline layer; ``quality`` tunes the recording's quality-mask
        detectors.
        """
        from .session import AcquisitionSession

        return AcquisitionSession(
            self, element=element, faults=faults, quality=quality
        )

    def record_pressure(
        self,
        element_pressures_pa: np.ndarray,
        element: int | None = None,
        faults=None,
    ) -> ChainRecording:
        """Acquire one element's record from a membrane-pressure field.

        A one-chunk streaming session: output is bit-identical to
        feeding the same field through :meth:`session` in any chunking.

        Parameters
        ----------
        element_pressures_pa:
            (n_mod_samples, n_elements) field at the modulator clock.
        element:
            Element to select first (default: keep current selection).
        faults:
            Optional :class:`~repro.faults.FaultInjector` applied for
            the duration of this record.
        """
        session = self.session(element=element, faults=faults)
        session.feed_pressure(element_pressures_pa)
        return session.recording()

    def record_voltage(
        self, differential_voltage_v: np.ndarray
    ) -> ChainRecording:
        """Acquire through the voltage test input (Fig. 7 path)."""
        v = np.asarray(differential_voltage_v, dtype=float)
        if v.ndim != 1:
            raise ConfigurationError("voltage record must be 1-D")
        session = self.session()
        session.feed_voltage(v)
        return session.recording()

    def scan_elements(
        self,
        element_pressures_pa: np.ndarray | None = None,
        dwell_s: float = 2.0,
        batched: bool = False,
        jobs: int | None = None,
        *,
        segments: np.ndarray | None = None,
        fused: bool = False,
    ) -> np.ndarray:
        """Visit every element for ``dwell_s`` and return their records.

        Returns (n_words, n_elements) decimated values — the input to
        strongest-element selection. The pressure field must be long
        enough for ``n_elements * dwell_s``.

        The scan sequencing itself is owned by
        :class:`~repro.array.scan.ScanController` (this method delegates
        to :meth:`~repro.array.scan.ScanController.scan_records`).

        ``batched=True`` converts all elements' dwell segments through
        one batched modulator call
        (:meth:`~repro.core.chip.SensorChip.acquire_pressure_scan`)
        instead of visiting them sequentially. Each segment then starts
        from the modulator's pre-scan state instead of the previous
        element's final state; the difference is confined to the
        post-switch words the FPGA already suppresses.

        ``jobs`` fans the elements out over a
        :class:`~repro.parallel.ParallelExecutor` pool on private chain
        copies (see
        :meth:`~repro.array.scan.ScanController.scan_records`); results
        are bit-identical for every worker count.

        For large arrays pass ``segments`` ((n_elements, dwell) pressures,
        O(elements x dwell) memory) and/or ``fused=True`` to run the whole
        scan as one fused batch-kernel pass (bit-identical to
        ``batched=True``; see :mod:`repro.array.fusedscan`).
        """
        from ..array.scan import ScanController

        controller = ScanController(self.chip.mux)
        return controller.scan_records(
            self,
            element_pressures_pa,
            dwell_s=dwell_s,
            batched=batched,
            jobs=jobs,
            segments=segments,
            fused=fused,
        )
