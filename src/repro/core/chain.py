"""The full readout chain: chip -> FPGA decimation -> USB -> host stream.

Fig. 3's block diagram end to end. One call converts a membrane-pressure
field (or a test voltage) into decimated 12-bit words exactly as the PC
behind the USB cable would receive them — including framing, so the
acquisition-path integrity machinery is exercised on every run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..daq.fpga import FPGAFilterBank
from ..daq.stream import SampleStream
from ..daq.usb import FrameDecoder
from ..errors import ConfigurationError
from ..params import SystemParams
from .chip import SensorChip


@dataclass(frozen=True)
class ChainRecording:
    """Decimated output of one acquisition."""

    codes: np.ndarray  # int 12-bit codes
    sample_rate_hz: float
    element: int
    lost_frames: int
    crc_errors: int

    @property
    def values(self) -> np.ndarray:
        """Codes scaled to modulator-input units (FS = 1)."""
        return self.codes.astype(float) / 2048.0

    @property
    def times_s(self) -> np.ndarray:
        return np.arange(self.codes.size) / self.sample_rate_hz

    @property
    def duration_s(self) -> float:
        return self.codes.size / self.sample_rate_hz


class ReadoutChain:
    """Chip + FPGA + USB, streaming.

    Parameters
    ----------
    params:
        System parameters; the FPGA filter and modulator rates are wired
        consistently from them.
    chip:
        Optional pre-built chip (to share one chip across experiments).
    backend:
        Modulator simulation backend, ``"fast"`` (default) or
        ``"reference"``; ignored when a pre-built ``chip`` is passed.
    """

    def __init__(
        self,
        params: SystemParams | None = None,
        chip: SensorChip | None = None,
        rng: np.random.Generator | None = None,
        backend: str = "fast",
    ):
        self.params = params or SystemParams()
        self.chip = chip or SensorChip(self.params, rng=rng, backend=backend)
        self.fpga = FPGAFilterBank(
            params=self.params.decimation,
            input_rate_hz=self.params.modulator.sampling_rate_hz,
        )

    @property
    def output_rate_hz(self) -> float:
        return self.fpga.output_rate_hz

    def _collect(self, payload: bytes, element: int) -> ChainRecording:
        decoder = FrameDecoder()
        frames = decoder.feed(payload)
        stream = SampleStream(sample_rate_hz=self.output_rate_hz)
        stream.ingest(frames)
        codes = stream.samples(element).astype(np.int64)
        return ChainRecording(
            codes=codes,
            sample_rate_hz=self.output_rate_hz,
            element=element,
            lost_frames=decoder.lost_frames,
            crc_errors=decoder.crc_errors,
        )

    def record_pressure(
        self,
        element_pressures_pa: np.ndarray,
        element: int | None = None,
    ) -> ChainRecording:
        """Acquire one element's record from a membrane-pressure field.

        Parameters
        ----------
        element_pressures_pa:
            (n_mod_samples, n_elements) field at the modulator clock.
        element:
            Element to select first (default: keep current selection).
        """
        if element is not None:
            self.chip.select_element(element)
            self.fpga.select_element(element)
        mod_out = self.chip.acquire_pressure(element_pressures_pa)
        payload = self.fpga.process(mod_out.bitstream.astype(np.int64))
        payload += self.fpga.finish()
        return self._collect(payload, self.chip.selected_element)

    def record_voltage(
        self, differential_voltage_v: np.ndarray
    ) -> ChainRecording:
        """Acquire through the voltage test input (Fig. 7 path)."""
        v = np.asarray(differential_voltage_v, dtype=float)
        if v.ndim != 1:
            raise ConfigurationError("voltage record must be 1-D")
        mod_out = self.chip.acquire_voltage(v)
        payload = self.fpga.process(mod_out.bitstream.astype(np.int64))
        payload += self.fpga.finish()
        return self._collect(payload, self.chip.selected_element)

    def scan_elements(
        self,
        element_pressures_pa: np.ndarray,
        dwell_s: float = 2.0,
        batched: bool = False,
    ) -> np.ndarray:
        """Visit every element for ``dwell_s`` and return their records.

        Returns (n_words, n_elements) decimated values — the input to
        strongest-element selection. The pressure field must be long
        enough for ``n_elements * dwell_s``.

        ``batched=True`` converts all elements' dwell segments through
        one batched modulator call
        (:meth:`~repro.core.chip.SensorChip.acquire_pressure_scan`)
        instead of visiting them sequentially. Each segment then starts
        from the modulator's pre-scan state instead of the previous
        element's final state; the difference is confined to the
        post-switch words the FPGA already suppresses.
        """
        pressures = np.asarray(element_pressures_pa, dtype=float)
        n_elements = self.chip.array.n_elements
        fs = self.params.modulator.sampling_rate_hz
        dwell_mod = int(dwell_s * fs)
        if pressures.shape[0] < dwell_mod * n_elements:
            raise ConfigurationError(
                "pressure field too short for the requested scan"
            )
        records = []
        if batched:
            mod_outs = self.chip.acquire_pressure_scan(
                pressures[: dwell_mod * n_elements], dwell_mod
            )
            for k, mod_out in enumerate(mod_outs):
                self.fpga.select_element(k)
                payload = self.fpga.process(mod_out.bitstream.astype(np.int64))
                payload += self.fpga.finish()
                records.append(self._collect(payload, k).values)
        else:
            for k in range(n_elements):
                chunk = pressures[k * dwell_mod : (k + 1) * dwell_mod]
                rec = self.record_pressure(chunk, element=k)
                records.append(rec.values)
        n = min(r.size for r in records)
        return np.column_stack([r[:n] for r in records])
