"""FAULTS: fault-injection matrix across the acquisition pipeline.

Sec. 4's field-test concern, turned into a falsifiable harness: inject
every fault kind the taxonomy defines (``repro.faults``) at each layer of
the chain — membrane array, modulator, FPGA word path, USB link — and
check that the pipeline *never corrupts data silently*. For each
(kind, rate) cell the harness runs a clean and a faulted acquisition
from identical entropy, compares them sample-by-sample on the
gap-repaired timeline, and classifies every deviating sample:

* **flagged** — the per-sample quality mask (or the stream's gap
  accounting) marks it bad: degradation was *detected*; downstream
  consumers can excise it.
* **silent** — the sample deviates beyond the kind's tolerance but the
  mask calls it good. This is the failure mode the whole fault layer
  exists to prevent; the matrix reports it per cell and the CLI exits
  nonzero if any cell shows one.

Detection is judged per injected event: window/point faults must put at
least one flagged sample near their scheduled position; link faults must
show up in the decoder/stream loss counters (including the
``frames_unaccounted`` telemetry that catches tail-of-stream drops no
sequence number can witness). Modulator-saturation cells additionally
exercise the recovery path: a :class:`~repro.faults.AutoZeroRetrigger`
replays the record and must re-trigger the autozero sequencer.

The (kind, rate) cells are independent, so they fan out over a
:class:`~repro.parallel.ParallelExecutor` pool (``jobs=N``) with
per-task-index spawned seeds — results are bit-identical for every
worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.autozero import AutoZeroController
from ..core.chain import ReadoutChain
from ..errors import ConfigurationError
from ..faults import (
    FAULT_KINDS,
    KIND_LAYERS,
    AutoZeroRetrigger,
    FaultInjector,
    FaultSpec,
    QualityConfig,
    SaturationEpisodeDetector,
    timeline_quality,
)
from ..parallel import ParallelExecutor

#: Test field: a strong pulsatile signal well inside the membrane range
#: (offset + amplitude stay below half the ±50 kPa span) but large on the
#: 12-bit code scale, so corruption is visible above quantization noise.
_FIELD_OFFSET_PA = 10_000.0
_FIELD_AMPLITUDE_PA = 15_000.0
_FIELD_FREQ_HZ = 8.0

#: Per-kind injection parameters and the |clean - faulted| tolerance (in
#: LSB) above which a timeline sample counts as corrupted. Tolerances
#: absorb the filter-memory transients that trail each fault window;
#: anything larger must be flagged by the quality mask.
_KIND_PROFILES: dict[str, dict[str, float]] = {
    "element_dropout": {"duration_s": 0.6, "magnitude": 1.0, "tol": 6.0},
    "element_stiction": {"duration_s": 0.6, "magnitude": 1.0, "tol": 6.0},
    "capacitance_drift": {
        "duration_s": 0.6,
        "magnitude": 30_000.0,  # Pa/s: ~21 LSB of ramp over the window
        "tol": 16.0,
    },
    "sdm_saturation": {"duration_s": 0.3, "magnitude": 1.5, "tol": 8.0},
    "stuck_comparator": {"duration_s": 0.3, "magnitude": 1.0, "tol": 8.0},
    "word_corruption": {"duration_s": 0.2, "magnitude": 1024.0, "tol": 8.0},
    "frame_drop": {"duration_s": 0.2, "magnitude": 1.0, "tol": 8.0},
    "frame_truncation": {"duration_s": 0.2, "magnitude": 0.5, "tol": 8.0},
    "frame_bitflip": {"duration_s": 0.2, "magnitude": 1.0, "tol": 8.0},
    "frame_reorder": {"duration_s": 0.2, "magnitude": 1.0, "tol": 8.0},
}

#: Detection window slack around an event's scheduled word position:
#: ``_SLACK_PRE`` absorbs the FPGA's post-switch suppression offset,
#: ``_SLACK_POST`` the windowed detectors' lag (they flag backward over
#: one full detection window once a fault's statistics accumulate).
_SLACK_PRE = 48
_SLACK_POST = 160

#: Element the matrix records (the fault hooks are element-agnostic; one
#: is enough).
_ELEMENT = 1


def _harness_quality() -> QualityConfig:
    """Quality-mask tuning for the matrix's known test field.

    The windowed detectors (jump/drift/flatline) default off in
    :class:`~repro.faults.QualityConfig` because their thresholds are
    signal-dependent; here the field is known, so they are enabled with
    margins derived from it. The 125-sample window spans exactly one
    8 Hz cycle at 1 kS/s, which nulls the pulsatile component out of the
    rolling mean the drift detector compares.
    """
    return QualityConfig(
        jump_threshold=8.0,
        drift_threshold=6.0,
        flat_threshold=0.75,
        window=125,
    )


def _test_field(n_samples: int, fs_hz: float, n_elements: int) -> np.ndarray:
    t = np.arange(n_samples) / fs_hz
    wave = _FIELD_OFFSET_PA + _FIELD_AMPLITUDE_PA * np.sin(
        2.0 * np.pi * _FIELD_FREQ_HZ * t
    )
    return np.tile(wave[:, None], (1, n_elements))


@dataclass(frozen=True)
class FaultCellResult:
    """Outcome of one (kind, rate) matrix cell."""

    kind: str
    rate_hz: float
    backend: str
    seed: int
    #: Scheduled events that actually touched data during the record.
    events_injected: int
    #: Events with a flagged sample in their slack window (window/point
    #: kinds) or accounted for by a loss counter (link kinds).
    events_detected: int
    #: Timeline samples deviating from the clean record beyond the
    #: kind's tolerance (received samples only; lost ones are excluded
    #: because the gap accounting already reports them).
    corrupted_samples: int
    #: Corrupted samples the quality mask flagged bad.
    flagged_corrupted_samples: int
    #: Corrupted samples the mask called good — the metric that must be
    #: zero for the degradation contract to hold.
    silent_corruption_samples: int
    quality_fraction: float
    words: int
    lost_samples: int
    crc_errors: int
    resync_bytes: int
    frames_unaccounted: int
    #: Autozero re-triggers the recovery path fired (sdm kinds only).
    autozero_retriggers: int
    #: Record completed and the pipeline telemetry reconciled.
    survived: bool

    @property
    def detection_fraction(self) -> float:
        if self.events_injected == 0:
            return 1.0
        return self.events_detected / self.events_injected

    @property
    def silent(self) -> bool:
        return self.silent_corruption_samples > 0


@dataclass(frozen=True)
class FaultMatrixResult:
    """All cells of one fault-matrix run."""

    cells: tuple[FaultCellResult, ...]
    duration_s: float
    seed: int
    backend: str

    @property
    def silent_corruption_total(self) -> int:
        return sum(c.silent_corruption_samples for c in self.cells)

    @property
    def all_survived(self) -> bool:
        return all(c.survived for c in self.cells)

    @property
    def all_detected(self) -> bool:
        return all(
            c.events_detected >= c.events_injected for c in self.cells
        )

    @property
    def contract_holds(self) -> bool:
        """Every fault detected, nothing silent, every record survived."""
        return (
            self.all_survived
            and self.all_detected
            and self.silent_corruption_total == 0
        )

    def rows(self) -> list[tuple[str, str, str]]:
        """Summary rows in the standard experiment 3-column format."""
        survived = sum(c.survived for c in self.cells)
        return [
            (
                "matrix cells (kind x rate)",
                "(all 4 pipeline layers)",
                f"{len(self.cells)}",
            ),
            (
                "fault events injected",
                "(seeded schedules)",
                f"{sum(c.events_injected for c in self.cells)}",
            ),
            (
                "fault events detected",
                "(must equal injected)",
                f"{sum(c.events_detected for c in self.cells)}",
            ),
            (
                "silent corruption samples",
                "(must be 0)",
                f"{self.silent_corruption_total}",
            ),
            (
                "records survived",
                "(graceful degradation)",
                f"{survived}/{len(self.cells)}",
            ),
            (
                "degradation contract",
                "(detect, flag or recover)",
                "holds" if self.contract_holds else "VIOLATED",
            ),
        ]

    def matrix_rows(self) -> list[tuple[str, ...]]:
        """Full per-cell table (header row first)."""
        header = (
            "kind",
            "layer",
            "rate/Hz",
            "inj",
            "det",
            "corrupt",
            "silent",
            "lost",
            "retrig",
            "quality",
            "ok",
        )
        rows: list[tuple[str, ...]] = [header]
        for c in self.cells:
            ok = c.survived and not c.silent and (
                c.events_detected >= c.events_injected
            )
            rows.append(
                (
                    c.kind,
                    KIND_LAYERS[c.kind],
                    f"{c.rate_hz:.2f}",
                    f"{c.events_injected}",
                    f"{c.events_detected}",
                    f"{c.corrupted_samples}",
                    f"{c.silent_corruption_samples}",
                    f"{c.lost_samples}",
                    f"{c.autozero_retriggers}",
                    f"{c.quality_fraction:.3f}",
                    "yes" if ok else "NO",
                )
            )
        return rows

    def describe(self) -> str:
        verdict = (
            "contract holds: every fault detected or recovered, "
            "zero silent corruption"
            if self.contract_holds
            else "CONTRACT VIOLATED"
        )
        return (
            f"fault matrix: {len(self.cells)} cells, "
            f"{sum(c.events_injected for c in self.cells)} events over "
            f"{self.duration_s:.1f} s records ({self.backend} backend) — "
            f"{verdict}"
        )


def _cell_specs(
    kind: str, rate_hz: float, duration_s: float
) -> list[FaultSpec]:
    """One pinned event (guarantees coverage at any rate) + the Poisson
    process under test."""
    profile = _KIND_PROFILES[kind]
    specs = [
        FaultSpec(
            kind,
            start_s=0.31 * duration_s,
            duration_s=profile["duration_s"],
            magnitude=profile["magnitude"],
        )
    ]
    if rate_hz > 0:
        specs.append(
            FaultSpec(
                kind,
                rate_hz=rate_hz,
                duration_s=profile["duration_s"],
                magnitude=profile["magnitude"],
            )
        )
    return specs


def _failed_cell(
    kind: str, rate_hz: float, backend: str, seed: int
) -> FaultCellResult:
    return FaultCellResult(
        kind=kind,
        rate_hz=rate_hz,
        backend=backend,
        seed=seed,
        events_injected=0,
        events_detected=0,
        corrupted_samples=0,
        flagged_corrupted_samples=0,
        silent_corruption_samples=0,
        quality_fraction=0.0,
        words=0,
        lost_samples=0,
        crc_errors=0,
        resync_bytes=0,
        frames_unaccounted=0,
        autozero_retriggers=0,
        survived=False,
    )


def _detect_events(
    injector: FaultInjector,
    bad_received: np.ndarray,
    out_rate_hz: float,
    counters_fired: int,
) -> int:
    """Count applied events the pipeline noticed.

    Window and point faults must leave at least one flagged sample near
    their scheduled position. Link faults destroy whole frames, so their
    witness is the loss accounting: every lost/CRC-failed/unaccounted
    frame counter increment credits one event (capped at the number
    injected — one event can trip several counters).
    """
    detected = 0
    usb_events = 0
    for kind, layer, start_s, end_s in injector.applied_windows():
        if layer == "usb":
            usb_events += 1
            continue
        w0 = int(start_s * out_rate_hz) - _SLACK_PRE
        w1 = int(end_s * out_rate_hz) + _SLACK_POST
        lo = max(w0, 0)
        hi = min(w1, bad_received.size)
        if lo < hi and bool(bad_received[lo:hi].any()):
            detected += 1
    detected += min(usb_events, counters_fired)
    return detected


def _fault_cell_task(
    item: tuple[str, float, float, str],
    seed: np.random.SeedSequence,
) -> FaultCellResult:
    """Run one matrix cell (module-level: executor tasks must pickle)."""
    kind, rate_hz, duration_s, backend = item
    entropy = int(seed.generate_state(1)[0])
    try:
        return _run_cell(kind, rate_hz, duration_s, backend, entropy)
    except Exception:
        # Survival is itself a metric: a fault that crashes the
        # acquisition (or breaks telemetry reconciliation) is a
        # graceful-degradation failure, not a harness error.
        return _failed_cell(kind, rate_hz, backend, entropy)


def _run_cell(
    kind: str,
    rate_hz: float,
    duration_s: float,
    backend: str,
    entropy: int,
) -> FaultCellResult:
    profile = _KIND_PROFILES[kind]
    probe = ReadoutChain(backend=backend)
    fs = float(probe.chip.params.modulator.sampling_rate_hz)
    n_elements = probe.chip.params.array.n_elements
    field = _test_field(int(duration_s * fs), fs, n_elements)

    # Clean reference from the same entropy: with no faults the chains
    # are bit-identical, so every timeline deviation is fault-caused.
    clean_chain = ReadoutChain(
        rng=np.random.default_rng(entropy), backend=backend
    )
    clean = clean_chain.record_pressure(field, element=_ELEMENT)

    chain = ReadoutChain(rng=np.random.default_rng(entropy), backend=backend)
    injector = FaultInjector(
        _cell_specs(kind, rate_hz, duration_s),
        seed=entropy,
        horizon_s=duration_s,
    )
    session = chain.session(
        element=_ELEMENT, faults=injector, quality=_harness_quality()
    )
    # Chunked feed: fault application must be chunking-invariant, so the
    # harness always exercises the chunked path.
    for chunk in np.array_split(field, max(1, int(duration_s * 2))):
        if chunk.size:
            session.feed_pressure(chunk)
    session.finish()
    rec = session.recording()
    tm = session.telemetry
    tm.reconcile()

    values, valid = session.stream.zero_filled(_ELEMENT)
    tq = timeline_quality(rec.quality, valid)
    n = min(clean.codes.size, values.size)
    diff = np.abs(values[:n].astype(float) - clean.codes[:n].astype(float))
    corrupted = valid[:n] & (diff > profile["tol"])
    flagged = corrupted & ~tq[:n]
    silent = corrupted & tq[:n]

    counters_fired = (
        session.decoder.lost_frames
        + session.decoder.crc_errors
        + tm.frames_unaccounted
    )
    detected = _detect_events(
        injector, ~rec.quality, chain.output_rate_hz, counters_fired
    )

    retriggers = 0
    if KIND_LAYERS[kind] == "sdm":
        # Recovery path: replay the degraded record through the
        # saturation-episode detector; closed episodes must re-trigger
        # the autozero sequencer. Runs after the session finished, since
        # measure() drives the chain.
        retrigger = AutoZeroRetrigger(
            AutoZeroController(chain), SaturationEpisodeDetector()
        )
        retrigger.observe(rec.codes, time_s=duration_s, final=True)
        retriggers = retrigger.retriggers

    return FaultCellResult(
        kind=kind,
        rate_hz=rate_hz,
        backend=backend,
        seed=entropy,
        events_injected=injector.events_applied,
        events_detected=detected,
        corrupted_samples=int(np.count_nonzero(corrupted)),
        flagged_corrupted_samples=int(np.count_nonzero(flagged)),
        silent_corruption_samples=int(np.count_nonzero(silent)),
        quality_fraction=rec.quality_fraction,
        words=int(rec.codes.size),
        lost_samples=int(rec.lost_samples),
        crc_errors=int(session.decoder.crc_errors),
        resync_bytes=int(session.decoder.resync_bytes),
        frames_unaccounted=int(tm.frames_unaccounted),
        autozero_retriggers=int(retriggers),
        survived=True,
    )


def run_fault_matrix(
    kinds: tuple[str, ...] | list[str] | None = None,
    rates: tuple[float, ...] = (1.0,),
    duration_s: float = 4.0,
    seed: int = 20040506,
    jobs: int = 1,
    backend: str = "fast",
) -> FaultMatrixResult:
    """Sweep fault kind × rate and score the degradation contract.

    Parameters
    ----------
    kinds:
        Fault kinds to inject (default: all of
        :data:`~repro.faults.FAULT_KINDS`).
    rates:
        Poisson event rates [Hz] to sweep per kind; each cell also pins
        one deterministic event so every cell exercises its fault even
        at low rate × duration.
    duration_s:
        Record length per cell.
    seed:
        Master seed; per-cell entropy comes from ``SeedSequence``
        children indexed by cell position, so results are reproducible
        and independent of ``jobs``.
    jobs:
        Worker processes for the cell fan-out.
    backend:
        Modulator backend for every cell.
    """
    kinds = tuple(kinds) if kinds is not None else FAULT_KINDS
    for kind in kinds:
        if kind not in KIND_LAYERS:
            raise ConfigurationError(
                f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
            )
    if duration_s <= 0:
        raise ConfigurationError("matrix record duration must be positive")
    items = [
        (kind, float(rate), float(duration_s), backend)
        for kind in kinds
        for rate in rates
    ]
    executor = ParallelExecutor(jobs=jobs)
    cells = executor.map(_fault_cell_task, items, seed=seed)
    return FaultMatrixResult(
        cells=tuple(cells),
        duration_s=float(duration_s),
        seed=int(seed),
        backend=backend,
    )
