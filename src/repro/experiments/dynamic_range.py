"""ABL-DR: SNR vs input amplitude — the converter's dynamic-range plot.

The classic companion to a tone-test spectrum (Fig. 7 shows one
amplitude). Sweeping the sine amplitude maps the whole transfer: SNR
grows 1 dB/dB in the noise-limited region, peaks just below the loop's
stable limit, and collapses at overload. The dynamic range is the span
from the 0 dB-SNR intercept to the peak — for the paper's 12-bit chain,
expected ~72 dB.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.chain import ReadoutChain
from ..dsp.spectrum import analyze_tone, coherent_tone_frequency
from ..errors import ConfigurationError
from ..params import SystemParams


@dataclass(frozen=True)
class DynamicRangeResult:
    """SNR-vs-amplitude sweep."""

    amplitudes_dbfs: np.ndarray
    snr_db: np.ndarray
    peak_snr_db: float
    peak_amplitude_dbfs: float
    dynamic_range_db: float

    def rows(self) -> list[tuple[str, str, str]]:
        return [
            ("peak SNR [dB]", "> 72 (Fig. 7 point)", f"{self.peak_snr_db:.1f}"),
            (
                "peak SNR amplitude [dBFS]",
                "(not quoted)",
                f"{self.peak_amplitude_dbfs:.1f}",
            ),
            (
                "dynamic range [dB]",
                "~72 (12-bit chain)",
                f"{self.dynamic_range_db:.1f}",
            ),
            (
                "slope in linear region [dB/dB]",
                "1.0",
                f"{self.linear_slope():.2f}",
            ),
        ]

    def linear_slope(self) -> float:
        """SNR-vs-amplitude slope over the mid region (should be ~1)."""
        mask = (self.amplitudes_dbfs >= -50.0) & (self.amplitudes_dbfs <= -10.0)
        if mask.sum() < 2:
            return float("nan")
        fit = np.polyfit(self.amplitudes_dbfs[mask], self.snr_db[mask], 1)
        return float(fit[0])


def run_dynamic_range(
    params: SystemParams | None = None,
    amplitudes_dbfs: np.ndarray | None = None,
    n_fft: int = 2048,
    rng: np.random.Generator | None = None,
    backend: str = "fast",
) -> DynamicRangeResult:
    """Sweep tone amplitude through the full chain, measuring SNR."""
    params = params or SystemParams()
    if amplitudes_dbfs is None:
        amplitudes_dbfs = np.array(
            [-70, -60, -50, -40, -30, -20, -10, -6, -3, -1.9, -1, -0.5]
        )
    amplitudes_dbfs = np.asarray(amplitudes_dbfs, dtype=float)
    if np.any(amplitudes_dbfs > 0):
        raise ConfigurationError("amplitudes are dBFS, must be <= 0")

    out_rate = params.modulator.output_rate_hz
    tone = coherent_tone_frequency(15.625, out_rate, n_fft)
    fs = params.modulator.sampling_rate_hz
    settle = 64
    n_mod = (n_fft + settle) * params.modulator.osr
    t = np.arange(n_mod) / fs
    carrier = np.sin(2.0 * np.pi * tone * t)
    vref = params.modulator.vref_v

    snrs = np.empty(amplitudes_dbfs.size)
    for i, dbfs in enumerate(amplitudes_dbfs):
        amplitude = 10.0 ** (dbfs / 20.0)
        chain = ReadoutChain(
            params, rng=np.random.default_rng(1000 + i), backend=backend
        )
        rec = chain.record_voltage(amplitude * vref * carrier)
        codes = rec.values[settle : settle + n_fft]
        try:
            snrs[i] = analyze_tone(
                codes, out_rate, tone_hz=tone,
                max_band_hz=params.decimation.cutoff_hz,
            ).snr_db
        except Exception:
            snrs[i] = float("nan")

    peak_idx = int(np.nanargmax(snrs))
    peak_snr = float(snrs[peak_idx])
    # Dynamic range: peak SNR extrapolated down the 1 dB/dB line to 0 dB
    # SNR — equivalently peak SNR itself when the slope is unity.
    return DynamicRangeResult(
        amplitudes_dbfs=amplitudes_dbfs,
        snr_db=snrs,
        peak_snr_db=peak_snr,
        peak_amplitude_dbfs=float(amplitudes_dbfs[peak_idx]),
        dynamic_range_db=peak_snr - float(amplitudes_dbfs[peak_idx]),
    )
