"""FIG7: the measured ADC spectrum of Fig. 7.

Paper setup (Sec. 3.1): the sigma-delta modulator driven through its
differential voltage input with a 15.625 Hz sine at 128 kHz sampling,
OSR 128, decimated to 1 kS/s / 12 bit by the sinc^3 + 32-tap FIR; the
reported figure of merit is "a signal-to-noise ratio better than 72 dB".

This harness runs exactly that tone test on the behavioural chain and
returns the spectrum plus SNR/SNDR/ENOB. Expected shape: SNR > 72 dB,
ENOB ~ 11.7 bit, a flat in-band floor set by the 12-bit output quantizer
(the float-path reference, also measured, shows the underlying modulator
reaches ~86 dB — the silicon's own margin is unknown, but the 12-bit
interface is the binding constraint in both worlds).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.chain import ReadoutChain
from ..dsp.spectrum import SpectrumAnalysis, analyze_tone, coherent_tone_frequency
from ..errors import ConfigurationError
from ..params import SystemParams

PAPER_TONE_HZ = 15.625
PAPER_SNR_DB = 72.0


@dataclass(frozen=True)
class Fig7Result:
    """Spectrum + metrics for the Fig. 7 tone test."""

    analysis: SpectrumAnalysis
    float_path_analysis: SpectrumAnalysis
    amplitude_fraction_fs: float
    tone_hz: float
    n_fft: int

    @property
    def snr_db(self) -> float:
        return self.analysis.snr_db

    @property
    def meets_paper_spec(self) -> bool:
        return self.snr_db > PAPER_SNR_DB

    def rows(self) -> list[tuple[str, str, str]]:
        """(quantity, paper, measured) comparison rows."""
        a = self.analysis
        return [
            ("tone frequency [Hz]", f"{PAPER_TONE_HZ}", f"{self.tone_hz:.4f}"),
            ("SNR [dB]", f"> {PAPER_SNR_DB:.0f}", f"{a.snr_db:.1f}"),
            ("SNDR [dB]", "(not quoted)", f"{a.sndr_db:.1f}"),
            ("ENOB [bit]", "12 (output width)", f"{a.enob_bits:.2f}"),
            ("SFDR [dB]", "(not quoted)", f"{a.sfdr_db:.1f}"),
            (
                "float-path SNR [dB]",
                "(n/a: silicon)",
                f"{self.float_path_analysis.snr_db:.1f}",
            ),
        ]

    def spectrum_db(self) -> tuple[np.ndarray, np.ndarray]:
        """(freqs, dB-re-peak-bin) series matching the Fig. 7 axes (the
        paper plots the tone bin at 0 dB)."""
        return self.analysis.freqs_hz, self.analysis.power_db("peak")


def run_fig7(
    params: SystemParams | None = None,
    amplitude_fraction_fs: float = 0.8,
    n_fft: int = 4096,
    settle_words: int = 256,
    rng: np.random.Generator | None = None,
    backend: str = "fast",
) -> Fig7Result:
    """Run the Fig. 7 tone test.

    Parameters
    ----------
    params:
        System configuration (paper defaults).
    amplitude_fraction_fs:
        Sine amplitude relative to the loop full scale. 0.8 is a typical
        "near full scale but stable" test level for a single-bit
        second-order loop.
    n_fft:
        Coherent analysis record length at the output rate.
    settle_words:
        Output words discarded while the chain settles.
    backend:
        Modulator simulation backend (``"fast"``/``"reference"``); both
        produce bit-identical spectra, the fast one in a fraction of the
        wall-time.
    """
    params = params or SystemParams()
    if not 0 < amplitude_fraction_fs < 1:
        raise ConfigurationError("amplitude fraction must be in (0, 1)")
    chain = ReadoutChain(params, rng=rng, backend=backend)

    out_rate = chain.output_rate_hz
    tone = coherent_tone_frequency(PAPER_TONE_HZ, out_rate, n_fft)
    fs = params.modulator.sampling_rate_hz
    n_mod = (n_fft + settle_words) * params.modulator.osr
    t = np.arange(n_mod) / fs
    amplitude_v = (
        amplitude_fraction_fs
        * chain.chip.modulator.input_full_scale
        * params.modulator.vref_v
    )
    stimulus_v = amplitude_v * np.sin(2.0 * np.pi * tone * t)

    recording = chain.record_voltage(stimulus_v)
    codes = recording.values[settle_words : settle_words + n_fft]
    analysis = analyze_tone(
        codes, out_rate, tone_hz=tone, max_band_hz=params.decimation.cutoff_hz
    )

    # Float-path reference: same bitstream through the double-precision
    # cascade, no 12-bit quantizer.
    chain_float = ReadoutChain(params, rng=np.random.default_rng(8), backend=backend)
    mod_out = chain_float.chip.acquire_voltage(stimulus_v)
    float_vals = chain_float.fpga.filter.process_float(
        mod_out.bitstream.astype(float)
    )[settle_words : settle_words + n_fft]
    float_analysis = analyze_tone(
        float_vals, out_rate, tone_hz=tone, max_band_hz=params.decimation.cutoff_hz
    )

    return Fig7Result(
        analysis=analysis,
        float_path_analysis=float_analysis,
        amplitude_fraction_fs=amplitude_fraction_fs,
        tone_hz=tone,
        n_fft=n_fft,
    )
