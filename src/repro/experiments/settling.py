"""FIG4/MUX: element-switch settling (Sec. 2.2's bandwidth claim).

The paper states the settling when switching between sensor elements "is
limited by the signal bandwidth of the sigma-delta-AD-converter" — i.e. by
the decimation filter, not the analog switches. The harness verifies this
two ways:

1. analytically, comparing the electrical switch time constant against
   the filter's impulse-response length;
2. empirically, stepping the modulator input (as an element switch with a
   different static offset does) and counting output words until the
   output settles to within one LSB band of its final value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..array.array2d import SensorArray
from ..array.mux import AnalogMultiplexer, MuxTimingAnalysis, analyze_mux_timing
from ..core.chain import ReadoutChain
from ..errors import ConfigurationError
from ..params import SystemParams


@dataclass(frozen=True)
class MuxSettlingResult:
    """Analytic budget + empirical step-settling measurement."""

    timing: MuxTimingAnalysis
    empirical_settle_words: int
    step_size_fs: float
    electrical_to_filter_ratio: float
    max_scan_rate_hz: float

    def rows(self) -> list[tuple[str, str, str]]:
        return [
            (
                "settling limited by",
                "sigma-delta bandwidth (Sec. 2.2)",
                self.timing.dominant,
            ),
            (
                "electrical settling [us]",
                "(negligible)",
                f"{self.timing.electrical_settling_s * 1e6:.3f}",
            ),
            (
                "filter flush [ms]",
                "(sets the limit)",
                f"{self.timing.filter_flush_s * 1e3:.2f}",
            ),
            (
                "electrical/filter ratio",
                "<< 1",
                f"{self.electrical_to_filter_ratio:.2e}",
            ),
            (
                "empirical settle [output words]",
                "(not quoted)",
                f"{self.empirical_settle_words}",
            ),
            (
                "max full-array scan rate [Hz]",
                "(not quoted)",
                f"{self.max_scan_rate_hz:.0f} per element",
            ),
        ]


def run_mux_settling(
    params: SystemParams | None = None,
    step_size_fs: float = 0.2,
    n_words: int = 128,
) -> MuxSettlingResult:
    """Measure the switching budget analytically and empirically."""
    params = params or SystemParams()
    if not 0 < step_size_fs < 1:
        raise ConfigurationError("step size must be in (0, 1) FS")

    array = SensorArray(params.array)
    mux = AnalogMultiplexer(array)
    chain = ReadoutChain(params)
    timing = analyze_mux_timing(mux, chain.fpga.filter)

    # Empirical: a step at the loop input (the element-switch transient as
    # the modulator sees it), counting words to settle within 1 LSB.
    fs = params.modulator.sampling_rate_hz
    osr = params.modulator.osr
    n_mod = n_words * osr
    u = np.full(n_mod, step_size_fs)
    u[: n_mod // 4] = -step_size_fs  # step at the quarter mark
    vref = params.modulator.vref_v
    recording = chain.record_voltage(u * vref)
    codes = recording.codes.astype(float)
    final = float(np.median(codes[-n_words // 8 :]))
    lsb_band = 1.0
    step_word = n_words // 4
    settled_at = n_words
    for k in range(step_word, codes.size):
        if np.all(np.abs(codes[k:] - final) <= lsb_band):
            settled_at = k
            break
    empirical = settled_at - step_word

    ratio = (
        timing.electrical_settling_s / timing.filter_flush_s
        if timing.filter_flush_s > 0
        else float("inf")
    )
    return MuxSettlingResult(
        timing=timing,
        empirical_settle_words=int(empirical),
        step_size_fs=step_size_fs,
        electrical_to_filter_ratio=float(ratio),
        max_scan_rate_hz=timing.max_scan_rate_hz,
    )
