"""ABL-NOISE: the analog noise budget, one contributor at a time.

Answers "what actually limits this converter?" by measuring SNR with
each non-ideality isolated on an otherwise ideal loop, then with the
full default budget. Expected shape: the 12-bit output quantizer
dominates; among analog terms, reference noise (un-shaped) costs more
per volt than comparator imperfections (shaped).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dsp.decimator import DecimationFilter
from ..dsp.spectrum import analyze_tone, coherent_tone_frequency
from ..params import NonidealityParams, SystemParams
from ..sdm.feedback import FeedbackDAC
from ..sdm.modulator import SecondOrderSDM


@dataclass(frozen=True)
class NoiseBudgetResult:
    """SNR per configuration, 12-bit path and float path."""

    labels: tuple[str, ...]
    snr_db: np.ndarray
    snr_float_db: np.ndarray

    def rows(self) -> list[tuple[str, str, str]]:
        out = []
        for label, snr, snr_f in zip(
            self.labels, self.snr_db, self.snr_float_db
        ):
            out.append(
                (f"SNR [{label}]", "(budget item)", f"{snr:.1f} dB "
                 f"(float path {snr_f:.1f} dB)")
            )
        return out

    def by_label(self, label: str) -> tuple[float, float]:
        idx = self.labels.index(label)
        return float(self.snr_db[idx]), float(self.snr_float_db[idx])


def _measure(
    params: SystemParams,
    nonideality: NonidealityParams,
    dac: FeedbackDAC | None,
    n_fft: int,
    seed: int,
) -> tuple[float, float]:
    mod_params = params.modulator
    out_rate = mod_params.output_rate_hz
    tone = coherent_tone_frequency(15.625, out_rate, n_fft)
    settle = 32
    fs = mod_params.sampling_rate_hz
    n_mod = (n_fft + settle) * mod_params.osr
    t = np.arange(n_mod) / fs
    u = 0.8 * np.sin(2.0 * np.pi * tone * t)
    sdm = SecondOrderSDM(
        params=mod_params,
        nonideality=nonideality,
        dac=dac,
        rng=np.random.default_rng(seed),
    )
    bits = sdm.simulate(u).bitstream

    filt = DecimationFilter(params.decimation, input_rate_hz=fs)
    fixed = filt.process(bits.astype(np.int64)).values[settle : settle + n_fft]
    snr = analyze_tone(
        fixed, out_rate, tone_hz=tone, max_band_hz=params.decimation.cutoff_hz
    ).snr_db
    float_vals = filt.process_float(bits.astype(float))
    float_vals = float_vals[settle : settle + n_fft]
    snr_f = analyze_tone(
        float_vals, out_rate, tone_hz=tone,
        max_band_hz=params.decimation.cutoff_hz,
    ).snr_db
    return float(snr), float(snr_f)


def run_noise_budget(
    params: SystemParams | None = None, n_fft: int = 2048
) -> NoiseBudgetResult:
    """Measure the SNR stack: ideal, each contributor alone, full budget."""
    params = params or SystemParams()
    ideal = NonidealityParams.ideal()
    cases: list[tuple[str, NonidealityParams, FeedbackDAC | None]] = [
        ("ideal loop", ideal, None),
        (
            "kT/C only (C = 5 fF)",
            NonidealityParams(
                sampling_cap_f=5e-15, opamp_gain=1e12, clock_jitter_s=0.0
            ),
            None,
        ),
        (
            "finite op-amp gain only (A = 50)",
            NonidealityParams(
                sampling_cap_f=float("inf"), opamp_gain=50.0,
                clock_jitter_s=0.0,
            ),
            None,
        ),
        (
            "comparator offset only (100 mV)",
            NonidealityParams(
                sampling_cap_f=float("inf"), opamp_gain=1e12,
                comparator_offset_v=0.1, clock_jitter_s=0.0,
            ),
            None,
        ),
        (
            "reference noise only (1 mVref)",
            ideal,
            FeedbackDAC(reference_noise_sigma=1e-3),
        ),
        (
            "flicker only (5 kHz corner)",
            NonidealityParams(
                sampling_cap_f=1e-12, opamp_gain=1e12, clock_jitter_s=0.0,
                flicker_corner_hz=5000.0,
            ),
            None,
        ),
        ("full default budget", params.nonideality, None),
    ]
    snrs = np.empty(len(cases))
    snrs_f = np.empty(len(cases))
    for i, (label, ni, dac) in enumerate(cases):
        snrs[i], snrs_f[i] = _measure(params, ni, dac, n_fft, seed=2000 + i)
    return NoiseBudgetResult(
        labels=tuple(label for label, _, _ in cases),
        snr_db=snrs,
        snr_float_db=snrs_f,
    )
