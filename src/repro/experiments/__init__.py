"""Experiment harnesses: one per paper figure/table (see DESIGN.md §4).

Each harness is a plain function returning a frozen result dataclass with
a ``rows()`` method that prints the paper-vs-measured comparison. The
benchmark suite in ``benchmarks/`` wraps these with pytest-benchmark; the
EXPERIMENTS.md numbers come from running them at full length.

| id        | harness                                   | paper artifact |
|-----------|-------------------------------------------|----------------|
| FIG7      | :func:`fig7_spectrum.run_fig7`            | Fig. 7 ADC spectrum, SNR > 72 dB |
| FIG9      | :func:`fig9_waveform.run_fig9`            | Fig. 9 calibrated BP waveform |
| TAB-SPEC  | :func:`table_specs.run_table_specs`       | Sec. 3 prose spec table |
| FIG2/MEM  | :func:`membrane_transfer.run_membrane_transfer` | Sec. 2.1 transducer |
| FIG4/MUX  | :func:`settling.run_mux_settling`         | Sec. 2.2 settling claim |
| FIG1/LOC  | :func:`localization.run_localization`     | Sec. 2 placement/localization |
| IMG       | :func:`imaging.run_imaging`               | Sec. 2 scaled to N x N pressure imaging |
| INTRO-BASE| :func:`baseline_comparison.run_baseline_comparison` | Sec. 1 motivation |
| ABL-FB    | :func:`ablations.run_feedback_ablation`   | Sec. 4 future work |
| ABL-OSR   | :func:`ablations.run_osr_ablation`        | Sec. 4 future work |
| ABL-DR    | :func:`dynamic_range.run_dynamic_range`   | Fig. 7 companion: SNR vs amplitude |
| ABL-NOISE | :func:`noise_budget.run_noise_budget`     | analog budget behind the 72 dB |
| ABL-ARCH  | :func:`architectures.run_architecture_comparison` | Sec. 4: order / multi-bit routes |
| ROBUST    | :func:`robustness.run_robustness`         | Sec. 4: "field tests ... reliability and stability" |
| ABL-CHOP  | :func:`ablations.run_chopper_ablation`    | (not in paper) chopper vs flicker noise |
| ROBUST-SW | :func:`robustness.run_robustness_sweep`   | Sec. 4 field tests, many seeded trials |
| FAULTS    | :func:`fault_matrix.run_fault_matrix`     | Sec. 4 reliability: fault matrix, degradation contract |

The sweep-style harnesses (population, design space, the ablations, the
robustness sweep) fan their independent work items out over a
:class:`~repro.parallel.ParallelExecutor` pool — pass ``jobs=N`` — and
are bit-identical for every worker count.
"""

from .fig7_spectrum import Fig7Result, run_fig7
from .fig9_waveform import Fig9Result, run_fig9
from .table_specs import SpecTable, run_table_specs
from .membrane_transfer import MembraneTransferResult, run_membrane_transfer
from .settling import MuxSettlingResult, run_mux_settling
from .localization import LocalizationResult, run_localization
from .imaging import ImagingResult, run_imaging
from .baseline_comparison import BaselineComparisonResult, run_baseline_comparison
from .ablations import (
    ChopperAblationResult,
    FeedbackAblationResult,
    OSRAblationResult,
    run_chopper_ablation,
    run_feedback_ablation,
    run_osr_ablation,
)
from .dynamic_range import DynamicRangeResult, run_dynamic_range
from .noise_budget import NoiseBudgetResult, run_noise_budget
from .architectures import ArchitectureResult, run_architecture_comparison
from .robustness import (
    RobustnessResult,
    RobustnessSweepResult,
    run_robustness,
    run_robustness_sweep,
)
from .design_space import DesignSpaceResult, run_design_space
from .fault_matrix import (
    FaultCellResult,
    FaultMatrixResult,
    run_fault_matrix,
)
from .pressure_linearity import PressureLinearityResult, run_pressure_linearity
from .population import PopulationResult, run_population

__all__ = [
    "ArchitectureResult",
    "BaselineComparisonResult",
    "ChopperAblationResult",
    "DesignSpaceResult",
    "DynamicRangeResult",
    "FaultCellResult",
    "FaultMatrixResult",
    "FeedbackAblationResult",
    "Fig7Result",
    "Fig9Result",
    "ImagingResult",
    "LocalizationResult",
    "MembraneTransferResult",
    "MuxSettlingResult",
    "NoiseBudgetResult",
    "OSRAblationResult",
    "PopulationResult",
    "PressureLinearityResult",
    "RobustnessResult",
    "RobustnessSweepResult",
    "SpecTable",
    "run_architecture_comparison",
    "run_baseline_comparison",
    "run_chopper_ablation",
    "run_design_space",
    "run_dynamic_range",
    "run_fault_matrix",
    "run_feedback_ablation",
    "run_fig7",
    "run_fig9",
    "run_imaging",
    "run_localization",
    "run_membrane_transfer",
    "run_mux_settling",
    "run_noise_budget",
    "run_osr_ablation",
    "run_population",
    "run_pressure_linearity",
    "run_robustness",
    "run_robustness_sweep",
    "run_table_specs",
]
