"""ABL-ARCH: modulator-architecture exploration beyond the paper.

The paper's outlook asks for more resolution and rate; two standard
routes are compared against the fabricated 2nd-order single-bit loop:

* **higher order** — a 3rd-order single-bit CIFB loop (+2 bit/octave of
  OSR slope, at reduced stable input range), and
* **multi-bit** — a 3-bit quantizer with unit-element DAC, with and
  without data-weighted averaging, under realistic element mismatch.

All are measured at the paper's operating point (OSR 128, 128 kHz) with
an ideal analog front end, decimated by a float sinc^(order+1) so the
modulators themselves are compared (no 12-bit ceiling).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dsp.cic import CICDecimator
from ..dsp.spectrum import analyze_tone, coherent_tone_frequency
from ..params import ModulatorParams, NonidealityParams, SystemParams
from ..sdm.higher_order import HigherOrderSDM
from ..sdm.modulator import SecondOrderSDM
from ..sdm.multibit import MultibitSDM


@dataclass(frozen=True)
class ArchitectureResult:
    """SNR per architecture at the paper's operating point."""

    labels: tuple[str, ...]
    snr_db: np.ndarray
    amplitudes: np.ndarray  # test amplitude used per architecture

    def rows(self) -> list[tuple[str, str, str]]:
        return [
            (
                f"SNR [{label}] @ {amp:.2f} FS",
                "(architecture ablation)",
                f"{snr:.1f} dB",
            )
            for label, snr, amp in zip(
                self.labels, self.snr_db, self.amplitudes
            )
        ]

    def by_label(self, label: str) -> float:
        return float(self.snr_db[self.labels.index(label)])


def _snr_of_stream(
    values: np.ndarray, osr: int, fs: float, tone: float, n_out: int,
    cic_order: int, scale: float = 896.0,
) -> float:
    """Decimate a modulator output stream and measure its SNR.

    ``scale`` must map every representable level to an exact integer;
    896 = 128 * 7 covers the +/-1 bitstream and the 3-bit DAC grid
    (multiples of 2/7).
    """
    cic = CICDecimator(order=cic_order, decimation=osr, input_bits=16)
    scaled = np.round(values * scale).astype(np.int64)
    out = cic.process(scaled).astype(float) / (cic.dc_gain * scale)
    seg = out[16 : 16 + n_out]
    return float(
        analyze_tone(seg, fs / osr, tone_hz=tone, max_band_hz=500.0).snr_db
    )


def run_architecture_comparison(
    params: SystemParams | None = None,
    n_out: int = 2048,
    dac_mismatch_sigma: float = 0.003,
) -> ArchitectureResult:
    """Measure all architectures at OSR 128."""
    params = params or SystemParams()
    mod_params = params.modulator
    osr = mod_params.osr
    fs = mod_params.sampling_rate_hz
    out_rate = fs / osr
    tone = coherent_tone_frequency(15.625, out_rate, n_out)
    n_mod = (n_out + 16) * osr
    t = np.arange(n_mod) / fs

    labels: list[str] = []
    snrs: list[float] = []
    amps: list[float] = []

    def add(label: str, snr: float, amp: float) -> None:
        labels.append(label)
        snrs.append(snr)
        amps.append(amp)

    # Paper loop: 2nd-order single-bit.
    amp2 = 0.75
    sdm2 = SecondOrderSDM(
        ModulatorParams(osr=osr), NonidealityParams.ideal(),
        rng=np.random.default_rng(3001),
    )
    bits = sdm2.simulate(amp2 * np.sin(2 * np.pi * tone * t)).bitstream
    add(
        "2nd order, 1 bit (paper)",
        _snr_of_stream(bits.astype(float), osr, fs, tone, n_out, 3),
        amp2,
    )

    # 3rd-order single-bit.
    sdm3 = HigherOrderSDM(order=3)
    amp3 = sdm3.recommended_max_amplitude
    bits3 = sdm3.simulate(amp3 * np.sin(2 * np.pi * tone * t)).bitstream
    add(
        "3rd order, 1 bit",
        _snr_of_stream(bits3.astype(float), osr, fs, tone, n_out, 4),
        amp3,
    )

    # 3-bit quantizer variants.
    for label, mismatch, selection in [
        ("2nd order, 3 bit, ideal DAC", 0.0, "dwa"),
        (
            f"2nd order, 3 bit, {dac_mismatch_sigma * 100:.1f}% mismatch, fixed",
            dac_mismatch_sigma,
            "fixed",
        ),
        (
            f"2nd order, 3 bit, {dac_mismatch_sigma * 100:.1f}% mismatch, DWA",
            dac_mismatch_sigma,
            "dwa",
        ),
    ]:
        sdm_mb = MultibitSDM(
            ModulatorParams(osr=osr),
            quantizer_bits=3,
            dac_mismatch_sigma=mismatch,
            dac_selection=selection,
            rng=np.random.default_rng(3002),
        )
        amp_mb = 0.9
        out = sdm_mb.simulate(amp_mb * np.sin(2 * np.pi * tone * t))
        add(
            label,
            _snr_of_stream(out.values, osr, fs, tone, n_out, 3),
            amp_mb,
        )

    return ArchitectureResult(
        labels=tuple(labels), snr_db=np.array(snrs), amplitudes=np.array(amps)
    )
