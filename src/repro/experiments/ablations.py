"""ABL-FB / ABL-OSR: the paper's future-work knobs, measured.

Sec. 4: "Future work will include an improvement of the resolution during
blood pressure measurements. This can be achieved by adjusting the
feedback capacitors of the first modulator stage. Also an increased
conversion rate would be desirable."

* :func:`run_feedback_ablation` sweeps the first-stage feedback-capacitor
  ratio (smaller Cfb = more conversion gain) and measures SNR for a
  fixed *capacitance-domain* stimulus — showing where the resolution gain
  saturates into overload.
* :func:`run_osr_ablation` sweeps the OSR (i.e. the conversion rate at
  fixed modulator clock) and measures ENOB — the resolution-vs-rate
  trade-off behind "an increased conversion rate would be desirable",
  including the 1st-order-loop comparison (DESIGN.md §5 ablation).
* :func:`run_chopper_ablation` (ABL-CHOP) measures the SNR recovered by
  chopping the first integrator on a loop with a deliberately bad
  flicker corner — the canonical CMOS fix for the 1/f noise the paper's
  front end fights.

Every sweep arm is an independent deterministic task (fixed per-arm
seeds), so all three harnesses fan out over a
:class:`~repro.parallel.ParallelExecutor` pool and are bit-identical
for every ``jobs`` value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dsp.cic import CICDecimator
from ..dsp.spectrum import analyze_tone, coherent_tone_frequency, enob_from_sndr
from ..errors import ConfigurationError
from ..parallel import ExecutorTelemetry, ParallelExecutor
from ..params import ModulatorParams, NonidealityParams, SystemParams
from ..sdm.chopper import ChoppedSecondOrderSDM
from ..sdm.feedback import FeedbackDAC
from ..sdm.modulator import SecondOrderSDM


@dataclass(frozen=True)
class FeedbackAblationResult:
    """SNR vs first-stage feedback-capacitor scaling."""

    cfb_ratios: np.ndarray
    snr_db: np.ndarray
    clipped_fraction: np.ndarray
    stimulus_fraction_of_nominal_fs: float
    #: Executor counters of the run that produced this result.
    telemetry: ExecutorTelemetry | None = None

    @property
    def best_ratio(self) -> float:
        return float(self.cfb_ratios[int(np.argmax(self.snr_db))])

    def rows(self) -> list[tuple[str, str, str]]:
        nominal_idx = int(np.argmin(np.abs(self.cfb_ratios - 1.0)))
        best_idx = int(np.argmax(self.snr_db))
        return [
            (
                "SNR at nominal Cfb [dB]",
                "(baseline)",
                f"{self.snr_db[nominal_idx]:.1f}",
            ),
            (
                "best Cfb ratio",
                "< 1 (paper: adjust Cfb)",
                f"{self.best_ratio:.2f}",
            ),
            (
                "SNR at best Cfb [dB]",
                "improved resolution (Sec. 4)",
                f"{self.snr_db[best_idx]:.1f}",
            ),
            (
                "improvement [dB]",
                "> 0",
                f"{self.snr_db[best_idx] - self.snr_db[nominal_idx]:+.1f}",
            ),
        ]


def _feedback_task(
    item: tuple[SystemParams, float, float, int],
) -> tuple[float, float]:
    """(SNR, clipped fraction) of one Cfb-ratio arm (executor task)."""
    params, ratio, stimulus_fraction, n_out = item
    mod_params = params.modulator
    osr = mod_params.osr
    fs = mod_params.sampling_rate_hz
    out_rate = fs / osr
    tone = coherent_tone_frequency(15.625, out_rate, n_out)
    n_mod = (n_out + 32) * osr
    t = np.arange(n_mod) / fs
    # Stimulus fixed in capacitance-equivalent units: at nominal Cfb it
    # spans `stimulus_fraction` of the loop full scale.
    base_u = stimulus_fraction * np.sin(2.0 * np.pi * tone * t)

    dac = FeedbackDAC(cfb_ratio=float(ratio))
    sdm = SecondOrderSDM(
        params=mod_params,
        nonideality=params.nonideality,
        dac=dac,
        rng=np.random.default_rng(42),
    )
    # Shrinking the physical Cfb boosts the front-end gain by 1/ratio.
    u = base_u * dac.conversion_gain_boost / 1.0
    # ... but the loop's own full scale also scales with b1; the
    # simulation captures both effects faithfully.
    out = sdm.simulate(u)
    clipped = out.clipped_samples / n_mod
    cic = CICDecimator(order=3, decimation=osr, input_bits=2)
    stream = cic.process(out.bitstream.astype(np.int64))
    vals = stream.astype(float)[32 : 32 + n_out] / cic.dc_gain
    try:
        snr = analyze_tone(
            vals, out_rate, tone_hz=tone, max_band_hz=500.0
        ).snr_db
    except Exception:
        snr = float("nan")
    return (float(snr), float(clipped))


def run_feedback_ablation(
    params: SystemParams | None = None,
    cfb_ratios: np.ndarray | None = None,
    stimulus_fraction: float = 0.25,
    n_out: int = 2048,
    jobs: int = 1,
    chunk_size: int | None = None,
) -> FeedbackAblationResult:
    """Sweep the feedback-capacitor ratio at a fixed small stimulus.

    The stimulus is fixed in *capacitance* terms (a fraction of the
    nominal full scale), modelling the small blood-pressure signal; as
    Cfb shrinks, the same stimulus occupies more of the loop range, so
    SNR rises — until the loop overloads.
    """
    params = params or SystemParams()
    if cfb_ratios is None:
        cfb_ratios = np.array([2.0, 1.5, 1.0, 0.75, 0.5, 0.35, 0.25, 0.15])
    if not 0 < stimulus_fraction < 1:
        raise ConfigurationError("stimulus fraction must be in (0, 1)")

    ratios = np.asarray(cfb_ratios, dtype=float)
    items = [
        (params, float(ratio), float(stimulus_fraction), int(n_out))
        for ratio in ratios
    ]
    executor = ParallelExecutor(jobs=jobs, chunk_size=chunk_size)
    arms = executor.map(_feedback_task, items)
    return FeedbackAblationResult(
        cfb_ratios=ratios,
        snr_db=np.array([arm[0] for arm in arms]),
        clipped_fraction=np.array([arm[1] for arm in arms]),
        stimulus_fraction_of_nominal_fs=stimulus_fraction,
        telemetry=executor.telemetry,
    )


@dataclass(frozen=True)
class OSRAblationResult:
    """ENOB vs OSR for 2nd- and 1st-order loops."""

    osrs: np.ndarray
    enob_2nd: np.ndarray
    enob_1st: np.ndarray
    conversion_rates_hz: np.ndarray
    slope_2nd_bits_per_octave: float
    slope_1st_bits_per_octave: float
    #: Executor counters of the run that produced this result.
    telemetry: ExecutorTelemetry | None = None

    def rows(self) -> list[tuple[str, str, str]]:
        idx128 = int(np.argmin(np.abs(self.osrs - 128)))
        return [
            (
                "ENOB at OSR 128 (2nd order) [bit]",
                "~12 (paper)",
                f"{self.enob_2nd[idx128]:.2f}",
            ),
            (
                "2nd-order slope [bit/octave]",
                "2.5 (theory)",
                f"{self.slope_2nd_bits_per_octave:.2f}",
            ),
            (
                "1st-order slope [bit/octave]",
                "1.5 (theory)",
                f"{self.slope_1st_bits_per_octave:.2f}",
            ),
            (
                "rate at OSR 32 [S/s]",
                "4000 (4x faster conversion)",
                f"{self.conversion_rates_hz[np.argmin(np.abs(self.osrs - 32))]:.0f}",
            ),
        ]


def _first_order_bitstream(
    u: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Ideal 1st-order single-bit modulator (baseline loop)."""
    bits = np.empty(u.size, dtype=np.int8)
    x = 0.0
    for i in range(u.size):
        v = 1.0 if x >= 0.0 else -1.0
        x = x + u[i] - v
        bits[i] = 1 if v > 0 else -1
    return bits


def _osr_task(
    item: tuple[float, int, float, int],
) -> tuple[float, float, float]:
    """(ENOB 2nd, ENOB 1st, out rate) at one OSR (executor task).

    Both loops are ideal (no stochastic draws), so the fresh per-cell
    generator makes the cell bit-identical to the legacy serial sweep
    that shared one generator across cells.
    """
    fs, osr, amplitude, n_out = item
    rng = np.random.default_rng(4242)
    out_rate = fs / osr
    tone = coherent_tone_frequency(out_rate / 64.0, out_rate, n_out)
    n_mod = (n_out + 16) * osr
    t = np.arange(n_mod) / fs
    u = amplitude * np.sin(2.0 * np.pi * tone * t)

    mod_params = ModulatorParams(sampling_rate_hz=fs, osr=int(osr))
    sdm = SecondOrderSDM(
        params=mod_params,
        nonideality=NonidealityParams.ideal(),
        rng=rng,
    )
    bits2 = sdm.simulate(u).bitstream
    cic3 = CICDecimator(order=3, decimation=int(osr), input_bits=2)
    vals2 = (
        cic3.process(bits2.astype(np.int64)).astype(float) / cic3.dc_gain
    )[16 : 16 + n_out]
    a2 = analyze_tone(vals2, out_rate, tone_hz=tone)

    bits1 = _first_order_bitstream(u, rng)
    cic2 = CICDecimator(order=2, decimation=int(osr), input_bits=2)
    vals1 = (
        cic2.process(bits1.astype(np.int64)).astype(float) / cic2.dc_gain
    )[16 : 16 + n_out]
    a1 = analyze_tone(vals1, out_rate, tone_hz=tone)
    return (
        float(enob_from_sndr(a2.snr_db)),
        float(enob_from_sndr(a1.snr_db)),
        float(out_rate),
    )


def run_osr_ablation(
    params: SystemParams | None = None,
    osrs: np.ndarray | None = None,
    amplitude: float = 0.5,
    n_out: int = 2048,
    jobs: int = 1,
    chunk_size: int | None = None,
) -> OSRAblationResult:
    """Sweep OSR, measuring ENOB via sinc^(N+1) decimation (no 12-bit
    quantizer, so the modulator's own scaling is visible)."""
    params = params or SystemParams()
    if osrs is None:
        osrs = np.array([16, 32, 64, 128, 256])
    osrs = np.asarray(osrs, dtype=int)
    if np.any(osrs < 4):
        raise ConfigurationError("OSR sweep must stay >= 4")

    fs = params.modulator.sampling_rate_hz
    items = [
        (float(fs), int(osr), float(amplitude), int(n_out)) for osr in osrs
    ]
    executor = ParallelExecutor(jobs=jobs, chunk_size=chunk_size)
    cells = executor.map(_osr_task, items)
    enob2 = np.array([cell[0] for cell in cells])
    enob1 = np.array([cell[1] for cell in cells])
    rates = np.array([cell[2] for cell in cells])

    def slope(enobs: np.ndarray) -> float:
        octaves = np.log2(osrs / osrs[0])
        fit = np.polyfit(octaves, enobs, 1)
        return float(fit[0])

    return OSRAblationResult(
        osrs=osrs,
        enob_2nd=enob2,
        enob_1st=enob1,
        conversion_rates_hz=rates,
        slope_2nd_bits_per_octave=slope(enob2),
        slope_1st_bits_per_octave=slope(enob1),
        telemetry=executor.telemetry,
    )


@dataclass(frozen=True)
class ChopperAblationResult:
    """SNR with first-integrator chopping off vs on (ABL-CHOP)."""

    snr_off_db: float
    snr_on_db: float
    flicker_corner_hz: float
    #: Executor counters of the run that produced this result.
    telemetry: ExecutorTelemetry | None = None

    @property
    def recovered_db(self) -> float:
        return self.snr_on_db - self.snr_off_db

    def rows(self) -> list[tuple[str, str, str]]:
        return [
            (
                "SNR, chopping off [dB]",
                "(flicker-degraded)",
                f"{self.snr_off_db:.1f}",
            ),
            (
                "SNR, chopping on [dB]",
                "(flicker shifted out of band)",
                f"{self.snr_on_db:.1f}",
            ),
            ("recovered [dB]", "> 4", f"{self.recovered_db:+.1f}"),
        ]


def _chopper_task(item: tuple[bool, int, int, float]) -> float:
    """SNR of one chopper arm (executor task, fixed per-arm seed)."""
    chopped, osr, n_out, flicker_corner_hz = item
    flickery = NonidealityParams(
        sampling_cap_f=0.1e-12,
        opamp_gain=1e12,
        clock_jitter_s=0.0,
        flicker_corner_hz=flicker_corner_hz,
    )
    fs = 128e3
    out_rate = fs / osr
    tone = coherent_tone_frequency(15.625, out_rate, n_out)
    t = np.arange((n_out + 16) * osr) / fs
    sdm = ChoppedSecondOrderSDM(
        ModulatorParams(osr=osr),
        flickery,
        enabled=chopped,
        rng=np.random.default_rng(4),
    )
    bits = sdm.simulate(0.8 * np.sin(2 * np.pi * tone * t)).bitstream
    cic = CICDecimator(order=3, decimation=osr, input_bits=2)
    vals = (cic.process(bits.astype(np.int64)).astype(float) / cic.dc_gain)[
        16 : 16 + n_out
    ]
    return float(
        analyze_tone(vals, out_rate, tone_hz=tone, max_band_hz=500.0).snr_db
    )


def run_chopper_ablation(
    osr: int = 128,
    n_out: int = 2048,
    flicker_corner_hz: float = 20e3,
    jobs: int = 1,
    chunk_size: int | None = None,
) -> ChopperAblationResult:
    """Measure the SNR recovered by chopping on a flicker-heavy loop.

    Not in the paper, but the canonical fix for the 1/f noise any CMOS
    implementation of this front end fights: chop the first integrator
    and the amplifier's low-frequency noise moves out of band. Both arms
    use the same fixed seed, so the comparison isolates the chopper.
    """
    items = [
        (False, int(osr), int(n_out), float(flicker_corner_hz)),
        (True, int(osr), int(n_out), float(flicker_corner_hz)),
    ]
    executor = ParallelExecutor(jobs=jobs, chunk_size=chunk_size)
    off, on = executor.map(_chopper_task, items)
    return ChopperAblationResult(
        snr_off_db=off,
        snr_on_db=on,
        flicker_corner_hz=float(flicker_corner_hz),
        telemetry=executor.telemetry,
    )
