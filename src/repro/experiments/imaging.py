"""IMG: N x N pressure imaging — artery line, fusion, drift tracking.

The paper's array is 2x2 but "modular ... extensible to larger arrays";
its amplitude scan "can also be used for localizing blood vessels, buried
in tissue". This harness runs that claim at imaging scale:

1. an N x N (default 8x8) scan through the *full readout chain* — every
   element's dwell converted by the fused batch kernel in one pass
   (:mod:`repro.array.fusedscan`) — folded into a pulsatile amplitude
   image;
2. the artery recovered as a sub-pixel *line* (transverse position +
   tilt) from that image and checked against the placement ground truth;
3. matched-filter fusion of many elements against the paper's
   strongest-element selection over a placement-drift sweep (the fusion
   gain is guaranteed >= 1 whenever more than one element couples);
4. sub-pixel registration of two amplitude images bracketing a known
   drift — the frame-to-frame tracking primitive.

The scan timetable (settling budget vs frame rate, shared converter vs
per-column ΣΔ banks) comes from :meth:`ScanController.schedule`.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

import numpy as np

from ..array.imaging import amplitude_image, fuse_elements, localize_artery
from ..array.scan import ScanController
from ..core.chain import ReadoutChain
from ..errors import ConfigurationError
from ..params import ArrayParams, NonidealityParams, SystemParams
from ..tonometry.contact import ContactModel
from ..tonometry.coupling import TonometricCoupling
from ..tonometry.placement import ArrayPlacement


@dataclass(frozen=True)
class ImagingResult:
    """Imaging workload outcome (chain scan + analytic drift sweeps)."""

    array_shape: tuple[int, int]
    #: Whether the chain scan ran through the fused batch kernel.
    fused: bool
    #: Pulsatile amplitude image from the chain scan (rows, cols).
    amplitude_map: np.ndarray
    #: Ground-truth artery line in array coordinates.
    true_transverse_m: float
    true_angle_rad: float
    #: Line estimate from the amplitude image.
    est_transverse_m: float
    est_angle_rad: float
    #: Strongest-element selection contrast on the same records.
    selection_contrast: float
    #: Words the scan alignment dropped (booked, not silent).
    truncated_words: int
    #: Matched-filter fusion vs strongest element over the drift sweep.
    fusion_gain_predicted: float
    fusion_gain_measured: float
    #: Sub-pixel registration of the drifted amplitude image.
    drift_m: float
    registered_drift_m: float
    #: Scan timetable: shared converter vs one ΣΔ bank per column.
    frame_rate_shared_hz: float
    frame_rate_banked_hz: float

    @property
    def transverse_error_m(self) -> float:
        return abs(self.est_transverse_m - self.true_transverse_m)

    @property
    def angle_error_rad(self) -> float:
        return abs(self.est_angle_rad - self.true_angle_rad)

    @property
    def registration_error_m(self) -> float:
        return abs(self.registered_drift_m - (-self.drift_m))

    def rows(self) -> list[tuple[str, str, str]]:
        rows_, cols_ = self.array_shape
        return [
            (
                "scan path",
                "fused batch kernel",
                "fused" if self.fused else "batched fallback",
            ),
            (
                f"artery transverse error ({rows_}x{cols_}) [um]",
                "sub-pixel (< element pitch)",
                f"{self.transverse_error_m * 1e6:.1f}",
            ),
            (
                "artery angle error [mrad]",
                "(not quoted)",
                f"{self.angle_error_rad * 1e3:.2f}",
            ),
            (
                "selection contrast (best/median)",
                "> 1",
                f"{self.selection_contrast:.3f}",
            ),
            (
                "fusion SNR gain vs strongest [dB]",
                ">= 0 (Cauchy-Schwarz)",
                f"{20 * math.log10(self.fusion_gain_measured):.2f} "
                f"(predicted {20 * math.log10(self.fusion_gain_predicted):.2f})",
            ),
            (
                "registered drift [um]",
                f"{-self.drift_m * 1e6:.0f} (truth)",
                f"{self.registered_drift_m * 1e6:.0f}",
            ),
            (
                "frame rate, shared converter [Hz]",
                "(timetable)",
                f"{self.frame_rate_shared_hz:.3f}",
            ),
            (
                "frame rate, per-column banks [Hz]",
                "(timetable)",
                f"{self.frame_rate_banked_hz:.3f}",
            ),
            (
                "scan words truncated (booked)",
                "accounted",
                f"{self.truncated_words}",
            ),
        ]


def _matched_snr(record: np.ndarray, template: np.ndarray) -> float:
    """SNR of one record against a unit-norm template."""
    amp = float(record @ template)
    residual = record - amp * template
    noise = float(residual.std(ddof=1))
    return amp / noise if noise > 0 else math.inf


def run_imaging(
    params: SystemParams | None = None,
    rows: int = 8,
    cols: int = 8,
    pitch_m: float = 0.6e-3,
    lateral_offset_m: float = 0.2e-3,
    rotation_rad: float = 0.06,
    drift_m: float = 0.3e-3,
    pulse_rate_hz: float = 1.25,
    noise_fraction: float = 0.2,
    seed: int = 20040204,
) -> ImagingResult:
    """Image the artery with an N x N scan and quantify the estimates.

    The chain scan is noiseless (ideal nonidealities) so the image is the
    deterministic coupling footprint; the fusion sweep adds seeded white
    noise at ``noise_fraction`` of the strongest element's amplitude to
    measure the matched-filter gain the image predicts.

    ``pitch_m`` spaces the imaging array at wrist scale (default 0.6 mm,
    an 8x8 footprint of ~4 mm): the paper's 150 um pitch makes the 2x2
    array insensitive to placement, but an *imaging* array must span the
    tissue coupling profile (sigma ~2.5 mm) to resolve its shape. The
    amplitude metric is ``std`` over one full pulse period — unlike
    peak-to-peak it integrates every word, so the sub-LSB amplitude
    differences between neighboring elements survive quantization.
    """
    if rows < 2 or cols < 3:
        raise ConfigurationError("imaging needs >= 2 rows and >= 3 cols")
    base = params or SystemParams()
    membrane = dataclasses.replace(base.array.membrane, pitch_m=pitch_m)
    params = base.replace(
        array=ArrayParams(rows=rows, cols=cols, membrane=membrane),
        nonideality=NonidealityParams.ideal(),
    )
    chain = ReadoutChain(params)
    controller = ScanController(chain.chip.mux)
    geometry = chain.chip.array.geometry
    n_elements = rows * cols

    # Scan timetable: the settling budget fixes words discarded per
    # visit; one cardiac period of valid words per element.
    decim = params.decimation.total_decimation
    period_words = int(round(chain.output_rate_hz / pulse_rate_hz))
    shared = controller.schedule(chain.fpga.filter, valid_words=period_words)
    banked = controller.schedule(
        chain.fpga.filter, valid_words=period_words, banks=cols
    )

    # Ground truth: the artery runs along y in the patient frame; in
    # array coordinates it is the line x(y) = tan(rot) y - off / cos(rot).
    placement = ArrayPlacement(
        lateral_offset_m=lateral_offset_m, rotation_rad=rotation_rad
    )
    true_transverse = -lateral_offset_m / math.cos(rotation_rad)
    contact = ContactModel(contact=params.contact, tissue=params.tissue)
    coupling = TonometricCoupling(
        geometry, contact, placement=placement, contact_heterogeneity=0.0
    )

    # One arterial pulse per element visit, in O(elements x dwell)
    # memory via per-element segments. The dwell carries the settling
    # budget plus exactly one pulse period of valid words so the
    # peak-to-peak amplitude is phase-invariant across elements.
    dwell_words = shared.words_per_visit
    dwell_mod = dwell_words * decim
    fs = params.modulator.sampling_rate_hz
    t = np.arange(n_elements * dwell_mod) / fs
    pp_pa = 5000.0
    arterial = (
        coupling.contact.map_pa
        + 0.5 * pp_pa * np.sin(2 * np.pi * pulse_rate_hz * t)
        + 0.15 * pp_pa * np.sin(2 * np.pi * 2 * pulse_rate_hz * t)
    )
    segments = coupling.scan_pressure_segments(arterial, dwell_mod)
    records = controller.scan_records(chain, segments=segments, fused=True)
    truncation = controller.last_scan_truncation
    settled = records[shared.settle_words :][:period_words]

    amp_map = amplitude_image(settled, rows, cols, metric="std")
    estimate = localize_artery(amp_map, geometry)
    selection = controller.select_strongest(settled, metric="std")

    # Fusion vs strongest-element over a placement drift sweep, with
    # seeded per-element noise on analytically coupled records.
    rng = np.random.default_rng(seed)
    out_rate = chain.output_rate_hz
    n_t = int(2 * out_rate)
    tt = np.arange(n_t) / out_rate
    template = np.sin(2 * np.pi * pulse_rate_hz * tt)
    template /= np.linalg.norm(template)
    predicted = []
    measured = []
    for d in np.linspace(0.0, drift_m, 4):
        moved = coupling.with_placement(placement.perturbed(float(d)))
        gains = moved.effective_gain()
        sigma = noise_fraction * float(gains.max())
        synth = np.outer(template, gains) + sigma / math.sqrt(n_t) * (
            rng.standard_normal((n_t, n_elements))
        )
        fusion = fuse_elements(synth)
        predicted.append(fusion.predicted_snr_gain)
        measured.append(
            _matched_snr(fusion.waveform, template)
            / _matched_snr(synth[:, fusion.best_index], template)
        )

    # Frame-to-frame drift tracking by registration-through-localization:
    # the artery is a ridge, so plain 2-D cross-correlation is blind
    # along the vessel axis (aperture problem) — but the difference of
    # the two frames' sub-pixel line estimates measures exactly the
    # observable component. Moving the array by +d moves the pattern by
    # -d/cos(rot) in array coordinates.
    ref_map = coupling.element_weights().reshape(rows, cols)
    drifted = coupling.with_placement(placement.perturbed(drift_m))
    moved_map = drifted.element_weights().reshape(rows, cols)
    dx = (
        localize_artery(moved_map, geometry).transverse_m
        - localize_artery(ref_map, geometry).transverse_m
    )

    return ImagingResult(
        array_shape=(rows, cols),
        fused=controller.last_scan_fused,
        amplitude_map=amp_map,
        true_transverse_m=true_transverse,
        true_angle_rad=rotation_rad,
        est_transverse_m=estimate.transverse_m,
        est_angle_rad=estimate.angle_rad,
        selection_contrast=selection.contrast,
        truncated_words=truncation.total_dropped if truncation else 0,
        fusion_gain_predicted=float(np.mean(predicted)),
        fusion_gain_measured=float(np.mean(measured)),
        drift_m=drift_m / math.cos(rotation_rad),
        registered_drift_m=dx,
        frame_rate_shared_hz=shared.frame_rate_hz,
        frame_rate_banked_hz=banked.frame_rate_hz,
    )
