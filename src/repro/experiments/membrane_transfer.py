"""FIG2/MEM: transducer characterization (Sec. 2.1, Fig. 2).

The paper specifies the membrane (100 um side, 3 um thick, capacitive
readout) without publishing its transfer curve. This harness characterizes
our model of it: pressure sweep -> deflection and capacitance, sensitivity,
linearity over the physiologic range, touch-down full scale and resonance
— the numbers a datasheet for the device would carry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..mems.membrane import MembraneSensor
from ..params import MembraneParams, PASCAL_PER_MMHG


@dataclass(frozen=True)
class MembraneTransferResult:
    """Transducer characterization data."""

    pressures_pa: np.ndarray
    deflections_m: np.ndarray
    capacitances_f: np.ndarray
    rest_capacitance_f: float
    sensitivity_f_per_pa: float
    max_linearity_error_fraction: float
    full_scale_pressure_pa: float
    resonance_hz: float

    def rows(self) -> list[tuple[str, str, str]]:
        return [
            ("membrane side [um]", "100", "100 (by construction)"),
            ("membrane thickness [um]", "3", "3 (by construction)"),
            (
                "rest capacitance [fF]",
                "(not quoted)",
                f"{self.rest_capacitance_f * 1e15:.1f}",
            ),
            (
                "sensitivity [aF/Pa]",
                "(not quoted)",
                f"{self.sensitivity_f_per_pa * 1e18:.4f}",
            ),
            (
                "linearity error over +/-40 mmHg [%]",
                "(not quoted)",
                f"{self.max_linearity_error_fraction * 100:.4f}",
            ),
            (
                "touch-down full scale [kPa]",
                "(not quoted)",
                f"{self.full_scale_pressure_pa / 1e3:.0f}",
            ),
            (
                "resonance [MHz]",
                "(not quoted, >> signal band)",
                f"{self.resonance_hz / 1e6:.2f}",
            ),
        ]


def run_membrane_transfer(
    params: MembraneParams | None = None,
    sweep_span_mmhg: float = 40.0,
    n_points: int = 81,
) -> MembraneTransferResult:
    """Characterize the membrane over a +/-``sweep_span_mmhg`` sweep."""
    if n_points < 5:
        raise ConfigurationError("need at least 5 sweep points")
    sensor = MembraneSensor(params)
    span_pa = sweep_span_mmhg * PASCAL_PER_MMHG
    pressures = np.linspace(-span_pa, span_pa, n_points)
    deflections = sensor.deflection_m(pressures)
    capacitances = sensor.capacitance_f(pressures)
    linearity = np.max(np.abs(sensor.linearity_error(pressures)))
    return MembraneTransferResult(
        pressures_pa=pressures,
        deflections_m=deflections,
        capacitances_f=capacitances,
        rest_capacitance_f=sensor.rest_capacitance_f,
        sensitivity_f_per_pa=sensor.pressure_sensitivity_f_per_pa(0.0),
        max_linearity_error_fraction=float(linearity),
        full_scale_pressure_pa=sensor.full_scale_pressure_pa,
        resonance_hz=sensor.plate.resonance_frequency_hz(),
    )
