"""ROBUST: field-condition robustness (the paper's future "field tests").

Sec. 4: "Field tests have to be performed in order [to] evaluate
reliability and stability of blood pressure monitoring." This harness
simulates the two dominant field stressors and the countermeasures this
library ships:

1. **Motion artifacts** — taps and wrist flexion contaminate the record;
   the artifact detector flags them; beat features are extracted with
   and without rejection and compared against ground truth.
2. **Thermal drift** — the sensor warms from ambient to skin
   temperature; the induced gain drift decays the t=0 cuff calibration;
   the drift monitor + recalibration policy bound the error.
3. **Hold-down servo** — the applanation search finds the transmission
   optimum from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..calibration.artifacts import ArtifactDetector, score_against_truth
from ..calibration.drift import DriftMonitor, RecalibrationPolicy
from ..calibration.features import detect_beats
from ..calibration.twopoint import TwoPointCalibration
from ..errors import ConfigurationError
from ..parallel import ExecutorTelemetry, ParallelExecutor
from ..mems.thermal import (
    ThermalMembraneModel,
    ThermalState,
    drift_induced_bp_error_mmhg,
)
from ..params import PASCAL_PER_MMHG, SystemParams
from ..physiology.artifacts import MotionArtifactGenerator
from ..physiology.patient import VirtualPatient
from ..tonometry.contact import ContactModel
from ..tonometry.servo import HoldDownServo


@dataclass(frozen=True)
class RobustnessResult:
    """Field-stressor outcomes."""

    # Artifacts
    artifact_sensitivity: float
    artifact_specificity: float
    sys_error_no_rejection_mmhg: float
    sys_error_with_rejection_mmhg: float
    # Thermal drift
    warmup_gain_drift_fraction: float
    drift_error_uncorrected_mmhg: float
    recalibrations_in_30min: int
    # Servo
    servo_found_pa: float
    servo_true_optimum_pa: float
    servo_oracle_calls_equivalent: int

    def rows(self) -> list[tuple[str, str, str]]:
        return [
            (
                "artifact detector sensitivity",
                "(field-test metric)",
                f"{self.artifact_sensitivity:.2f}",
            ),
            (
                "artifact detector specificity",
                "(field-test metric)",
                f"{self.artifact_specificity:.2f}",
            ),
            (
                "systolic error, no rejection [mmHg]",
                "(contaminated)",
                f"{self.sys_error_no_rejection_mmhg:+.1f}",
            ),
            (
                "systolic error, with rejection [mmHg]",
                "(recovered)",
                f"{self.sys_error_with_rejection_mmhg:+.1f}",
            ),
            (
                "warm-up gain drift [%]",
                "(stability, Sec. 4)",
                f"{self.warmup_gain_drift_fraction * 100:.2f}",
            ),
            (
                "drift error if never re-cuffed [mmHg]",
                "(uncorrected)",
                f"{self.drift_error_uncorrected_mmhg:.2f}",
            ),
            (
                "re-calibrations in 30 min",
                "(policy outcome)",
                f"{self.recalibrations_in_30min}",
            ),
            (
                "servo hold-down error [kPa]",
                "(applanation search)",
                f"{abs(self.servo_found_pa - self.servo_true_optimum_pa) / 1e3:.2f}",
            ),
        ]


def run_robustness(
    params: SystemParams | None = None,
    duration_s: float = 30.0,
    rng: np.random.Generator | None = None,
    artifact_rng: np.random.Generator | None = None,
    servo_rng: np.random.Generator | None = None,
) -> RobustnessResult:
    """Run all three field stressors (physiology-level; no modulator loop
    needed, so this is fast despite the long simulated durations).

    ``artifact_rng`` draws the motion-artifact schedule and ``servo_rng``
    the hold-down oracle's readout noise; both default to the fixed
    seeds earlier revisions hard-coded, so single runs are unchanged.
    :func:`run_robustness_sweep` passes per-trial spawned generators.
    """
    params = params or SystemParams()
    if duration_s < 15.0:
        raise ConfigurationError("need >= 15 s for artifact statistics")
    rng = rng or np.random.default_rng(7007)
    artifact_rng = artifact_rng or np.random.default_rng(7008)
    servo_rng = servo_rng or np.random.default_rng(4242)
    fs = 250.0

    # ---- 1. Motion artifacts ------------------------------------------------
    patient = VirtualPatient(rng=rng)
    truth = patient.record(duration_s=duration_s, sample_rate_hz=fs)
    artifacts = MotionArtifactGenerator(
        tap_rate_per_min=10.0, flexion_rate_per_min=4.0
    ).generate(duration_s, fs, rng=artifact_rng)
    contaminated = truth.pressure_mmhg + artifacts.pressure_mmhg

    detector = ArtifactDetector()
    report = detector.detect(contaminated, fs)
    sensitivity, specificity = score_against_truth(
        report, artifacts.contaminated_mask()
    )

    feats_dirty = detect_beats(contaminated, fs)
    sys_dirty = feats_dirty.mean_systolic_raw - truth.systolic_mmhg
    clean_samples = contaminated.copy()
    # Replace flagged spans by the record median (simple excision that
    # keeps the time base for beat detection).
    clean_samples[report.mask] = np.median(contaminated[~report.mask])
    feats_clean = detect_beats(clean_samples, fs)
    sys_clean = feats_clean.mean_systolic_raw - truth.systolic_mmhg

    # ---- 2. Thermal drift -----------------------------------------------------
    thermal = ThermalMembraneModel()
    state = ThermalState()
    drift_series = thermal.gain_drift_over_warmup(
        state, np.array([0.0, 300.0, 1800.0])
    )
    final_drift = float(drift_series[-1])
    uncorrected = abs(
        drift_induced_bp_error_mmhg(final_drift, pulse_pressure_mmhg=40.0)
    )

    # Policy simulation over 30 minutes with the drift trajectory.
    calibration = TwoPointCalibration.from_features(
        _anchor(0.05, 0.01), 120.0, 80.0
    )
    monitor = DriftMonitor(calibration)
    policy = RecalibrationPolicy(
        max_interval_s=1800.0, drift_threshold_mmhg=2.0
    )
    recalibrations = 0
    last_cuff = 0.0
    for t in np.arange(30.0, 1801.0, 30.0):
        drift_frac = float(
            thermal.gain_drift_over_warmup(state, np.array([t]))[0]
        )
        pp = (0.05 - 0.01) * (1.0 + drift_frac)
        monitor.update(t, 0.01 + pp, 0.01)
        estimate = monitor.estimate()
        if policy.should_recalibrate(t - last_cuff, estimate):
            recalibrations += 1
            last_cuff = t
            calibration = TwoPointCalibration.from_features(
                _anchor(0.01 + pp, 0.01), 120.0, 80.0
            )
            monitor = DriftMonitor(calibration)

    # ---- 3. Hold-down servo ------------------------------------------------------
    contact = ContactModel(
        contact=params.contact,
        tissue=params.tissue,
        mean_arterial_pressure_pa=(80 + 40 / 3) * PASCAL_PER_MMHG,
    )
    def oracle(hold_pa: float) -> float:
        # Pulse amplitude ~ transmission * pulse pressure, + readout noise.
        trans = float(contact.transmission(hold_pa))
        return trans * 40.0 + 0.1 * servo_rng.standard_normal()

    servo = HoldDownServo()
    result = servo.search(oracle)

    return RobustnessResult(
        artifact_sensitivity=sensitivity,
        artifact_specificity=specificity,
        sys_error_no_rejection_mmhg=float(sys_dirty),
        sys_error_with_rejection_mmhg=float(sys_clean),
        warmup_gain_drift_fraction=final_drift,
        drift_error_uncorrected_mmhg=uncorrected,
        recalibrations_in_30min=recalibrations,
        servo_found_pa=result.optimal_hold_down_pa,
        servo_true_optimum_pa=contact.optimal_hold_down_pa,
        servo_oracle_calls_equivalent=(
            servo.coarse_points + 2 * result.refinement_steps + 3
        ),
    )


class _anchor:
    """Feature-level stand-in for TwoPointCalibration.from_features."""

    def __init__(self, sys_raw: float, dia_raw: float):
        self.mean_systolic_raw = sys_raw
        self.mean_diastolic_raw = dia_raw


@dataclass(frozen=True)
class RobustnessSweepResult:
    """Field-stressor outcomes over many independently-seeded trials."""

    artifact_sensitivity: np.ndarray
    artifact_specificity: np.ndarray
    sys_error_no_rejection_mmhg: np.ndarray
    sys_error_with_rejection_mmhg: np.ndarray
    servo_error_pa: np.ndarray
    #: Executor counters of the run that produced this result.
    telemetry: ExecutorTelemetry | None = None

    @property
    def n_trials(self) -> int:
        return self.artifact_sensitivity.size

    def rows(self) -> list[tuple[str, str, str]]:
        recovered = np.abs(self.sys_error_with_rejection_mmhg)
        return [
            ("trials", "(field-test repeats)", f"{self.n_trials}"),
            (
                "artifact sensitivity, median",
                "(field-test metric)",
                f"{np.median(self.artifact_sensitivity):.2f}",
            ),
            (
                "artifact specificity, median",
                "(field-test metric)",
                f"{np.median(self.artifact_specificity):.2f}",
            ),
            (
                "worst |systolic error| w/ rejection [mmHg]",
                "(recovered)",
                f"{np.max(recovered):.1f}",
            ),
            (
                "worst servo hold-down error [kPa]",
                "(applanation search)",
                f"{np.max(self.servo_error_pa) / 1e3:.2f}",
            ),
        ]


def _robustness_trial(
    item: tuple[SystemParams, float], seed: np.random.SeedSequence
) -> tuple[float, float, float, float, float]:
    """One independently-seeded field-stressor trial (executor task)."""
    params, duration_s = item
    trial_rng, artifact_rng, servo_rng = (
        np.random.default_rng(child) for child in seed.spawn(3)
    )
    result = run_robustness(
        params,
        duration_s=duration_s,
        rng=trial_rng,
        artifact_rng=artifact_rng,
        servo_rng=servo_rng,
    )
    return (
        result.artifact_sensitivity,
        result.artifact_specificity,
        result.sys_error_no_rejection_mmhg,
        result.sys_error_with_rejection_mmhg,
        abs(result.servo_found_pa - result.servo_true_optimum_pa),
    )


def run_robustness_sweep(
    params: SystemParams | None = None,
    n_trials: int = 8,
    duration_s: float = 30.0,
    seed: int = 7007,
    jobs: int = 1,
    chunk_size: int | None = None,
) -> RobustnessSweepResult:
    """Repeat :func:`run_robustness` over independently-seeded trials.

    One fixed-seed run shows the countermeasures work once; the sweep
    asks how they hold up across artifact schedules and servo noise.
    Each trial's three generators come from the ``SeedSequence.spawn``
    child at its trial index, so the sweep is bit-identical for every
    ``jobs`` value.
    """
    params = params or SystemParams()
    if n_trials < 2:
        raise ConfigurationError("need >= 2 trials for a sweep")
    executor = ParallelExecutor(jobs=jobs, chunk_size=chunk_size)
    items = [(params, float(duration_s))] * n_trials
    trials = executor.map(_robustness_trial, items, seed=seed)
    columns = list(zip(*trials))
    return RobustnessSweepResult(
        artifact_sensitivity=np.array(columns[0]),
        artifact_specificity=np.array(columns[1]),
        sys_error_no_rejection_mmhg=np.array(columns[2]),
        sys_error_with_rejection_mmhg=np.array(columns[3]),
        servo_error_pa=np.array(columns[4]),
        telemetry=executor.telemetry,
    )
