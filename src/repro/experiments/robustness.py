"""ROBUST: field-condition robustness (the paper's future "field tests").

Sec. 4: "Field tests have to be performed in order [to] evaluate
reliability and stability of blood pressure monitoring." This harness
simulates the two dominant field stressors and the countermeasures this
library ships:

1. **Motion artifacts** — taps and wrist flexion contaminate the record;
   the artifact detector flags them; beat features are extracted with
   and without rejection and compared against ground truth.
2. **Thermal drift** — the sensor warms from ambient to skin
   temperature; the induced gain drift decays the t=0 cuff calibration;
   the drift monitor + recalibration policy bound the error.
3. **Hold-down servo** — the applanation search finds the transmission
   optimum from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..calibration.artifacts import ArtifactDetector, score_against_truth
from ..calibration.drift import DriftMonitor, RecalibrationPolicy
from ..calibration.features import detect_beats
from ..calibration.twopoint import TwoPointCalibration
from ..errors import ConfigurationError
from ..mems.thermal import (
    ThermalMembraneModel,
    ThermalState,
    drift_induced_bp_error_mmhg,
)
from ..params import PASCAL_PER_MMHG, SystemParams
from ..physiology.artifacts import MotionArtifactGenerator
from ..physiology.patient import VirtualPatient
from ..tonometry.contact import ContactModel
from ..tonometry.servo import HoldDownServo


@dataclass(frozen=True)
class RobustnessResult:
    """Field-stressor outcomes."""

    # Artifacts
    artifact_sensitivity: float
    artifact_specificity: float
    sys_error_no_rejection_mmhg: float
    sys_error_with_rejection_mmhg: float
    # Thermal drift
    warmup_gain_drift_fraction: float
    drift_error_uncorrected_mmhg: float
    recalibrations_in_30min: int
    # Servo
    servo_found_pa: float
    servo_true_optimum_pa: float
    servo_oracle_calls_equivalent: int

    def rows(self) -> list[tuple[str, str, str]]:
        return [
            (
                "artifact detector sensitivity",
                "(field-test metric)",
                f"{self.artifact_sensitivity:.2f}",
            ),
            (
                "artifact detector specificity",
                "(field-test metric)",
                f"{self.artifact_specificity:.2f}",
            ),
            (
                "systolic error, no rejection [mmHg]",
                "(contaminated)",
                f"{self.sys_error_no_rejection_mmhg:+.1f}",
            ),
            (
                "systolic error, with rejection [mmHg]",
                "(recovered)",
                f"{self.sys_error_with_rejection_mmhg:+.1f}",
            ),
            (
                "warm-up gain drift [%]",
                "(stability, Sec. 4)",
                f"{self.warmup_gain_drift_fraction * 100:.2f}",
            ),
            (
                "drift error if never re-cuffed [mmHg]",
                "(uncorrected)",
                f"{self.drift_error_uncorrected_mmhg:.2f}",
            ),
            (
                "re-calibrations in 30 min",
                "(policy outcome)",
                f"{self.recalibrations_in_30min}",
            ),
            (
                "servo hold-down error [kPa]",
                "(applanation search)",
                f"{abs(self.servo_found_pa - self.servo_true_optimum_pa) / 1e3:.2f}",
            ),
        ]


def run_robustness(
    params: SystemParams | None = None,
    duration_s: float = 30.0,
    rng: np.random.Generator | None = None,
) -> RobustnessResult:
    """Run all three field stressors (physiology-level; no modulator loop
    needed, so this is fast despite the long simulated durations)."""
    params = params or SystemParams()
    if duration_s < 15.0:
        raise ConfigurationError("need >= 15 s for artifact statistics")
    rng = rng or np.random.default_rng(7007)
    fs = 250.0

    # ---- 1. Motion artifacts ------------------------------------------------
    patient = VirtualPatient(rng=rng)
    truth = patient.record(duration_s=duration_s, sample_rate_hz=fs)
    artifacts = MotionArtifactGenerator(
        tap_rate_per_min=10.0, flexion_rate_per_min=4.0
    ).generate(duration_s, fs, rng=np.random.default_rng(7008))
    contaminated = truth.pressure_mmhg + artifacts.pressure_mmhg

    detector = ArtifactDetector()
    report = detector.detect(contaminated, fs)
    sensitivity, specificity = score_against_truth(
        report, artifacts.contaminated_mask()
    )

    feats_dirty = detect_beats(contaminated, fs)
    sys_dirty = feats_dirty.mean_systolic_raw - truth.systolic_mmhg
    clean_samples = contaminated.copy()
    # Replace flagged spans by the record median (simple excision that
    # keeps the time base for beat detection).
    clean_samples[report.mask] = np.median(contaminated[~report.mask])
    feats_clean = detect_beats(clean_samples, fs)
    sys_clean = feats_clean.mean_systolic_raw - truth.systolic_mmhg

    # ---- 2. Thermal drift -----------------------------------------------------
    thermal = ThermalMembraneModel()
    state = ThermalState()
    drift_series = thermal.gain_drift_over_warmup(
        state, np.array([0.0, 300.0, 1800.0])
    )
    final_drift = float(drift_series[-1])
    uncorrected = abs(
        drift_induced_bp_error_mmhg(final_drift, pulse_pressure_mmhg=40.0)
    )

    # Policy simulation over 30 minutes with the drift trajectory.
    calibration = TwoPointCalibration.from_features(
        _anchor(0.05, 0.01), 120.0, 80.0
    )
    monitor = DriftMonitor(calibration)
    policy = RecalibrationPolicy(
        max_interval_s=1800.0, drift_threshold_mmhg=2.0
    )
    recalibrations = 0
    last_cuff = 0.0
    for t in np.arange(30.0, 1801.0, 30.0):
        drift_frac = float(
            thermal.gain_drift_over_warmup(state, np.array([t]))[0]
        )
        pp = (0.05 - 0.01) * (1.0 + drift_frac)
        monitor.update(t, 0.01 + pp, 0.01)
        estimate = monitor.estimate()
        if policy.should_recalibrate(t - last_cuff, estimate):
            recalibrations += 1
            last_cuff = t
            calibration = TwoPointCalibration.from_features(
                _anchor(0.01 + pp, 0.01), 120.0, 80.0
            )
            monitor = DriftMonitor(calibration)

    # ---- 3. Hold-down servo ------------------------------------------------------
    contact = ContactModel(
        contact=params.contact,
        tissue=params.tissue,
        mean_arterial_pressure_pa=(80 + 40 / 3) * PASCAL_PER_MMHG,
    )
    servo_rng = np.random.default_rng(4242)

    def oracle(hold_pa: float) -> float:
        # Pulse amplitude ~ transmission * pulse pressure, + readout noise.
        trans = float(contact.transmission(hold_pa))
        return trans * 40.0 + 0.1 * servo_rng.standard_normal()

    servo = HoldDownServo()
    result = servo.search(oracle)

    return RobustnessResult(
        artifact_sensitivity=sensitivity,
        artifact_specificity=specificity,
        sys_error_no_rejection_mmhg=float(sys_dirty),
        sys_error_with_rejection_mmhg=float(sys_clean),
        warmup_gain_drift_fraction=final_drift,
        drift_error_uncorrected_mmhg=uncorrected,
        recalibrations_in_30min=recalibrations,
        servo_found_pa=result.optimal_hold_down_pa,
        servo_true_optimum_pa=contact.optimal_hold_down_pa,
        servo_oracle_calls_equivalent=(
            servo.coarse_points + 2 * result.refinement_steps + 3
        ),
    )


class _anchor:
    """Feature-level stand-in for TwoPointCalibration.from_features."""

    def __init__(self, sys_raw: float, dia_raw: float):
        self.mean_systolic_raw = sys_raw
        self.mean_diastolic_raw = dia_raw
