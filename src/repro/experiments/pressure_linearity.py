"""PRESS-LIN: pressure-path linearity through the complete chain.

The Fig. 7 characterization uses the voltage input, bypassing the
transducer. This experiment characterizes what the voltage path cannot:
the *pressure* path's distortion budget — membrane stress-stiffening
(cubic) plus deflected-plate capacitance curvature (1/(g-w)).

The headline finding is a *negative* result worth stating precisely: over
the transducer's entire practical drive range the harmonic products stay
below the converter's noise floor — the measured "THD" is noise, not
distortion, and tracks the SNR. The analytic INL of the membrane transfer
(computable exactly, no noise) confirms why: 2e-4 % at physiologic
drives, still only ~0.01 % at 40 kPa. The transducer is never the
linearity bottleneck; the converter noise is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.chain import ReadoutChain
from ..dsp.spectrum import analyze_tone, coherent_tone_frequency
from ..errors import ConfigurationError
from ..params import ArrayParams, NonidealityParams, SystemParams


@dataclass(frozen=True)
class PressureLinearityResult:
    """THD of the pressure path vs drive amplitude."""

    amplitudes_pa: np.ndarray
    thd_db: np.ndarray
    snr_db: np.ndarray
    physiologic_amplitude_pa: float

    def thd_at(self, amplitude_pa: float) -> float:
        idx = int(np.argmin(np.abs(self.amplitudes_pa - amplitude_pa)))
        return float(self.thd_db[idx])

    #: Analytic membrane INL (fraction of C0) per amplitude.
    membrane_inl: np.ndarray = None  # type: ignore[assignment]

    def rows(self) -> list[tuple[str, str, str]]:
        phys = self.physiologic_amplitude_pa
        rows = [
            (
                "chain THD at physiologic drive [dBc]",
                "(= noise floor, not distortion)",
                f"{self.thd_at(phys):.1f}",
            ),
            (
                "chain THD at 40 kPa drive [dBc]",
                "(still noise-floor limited)",
                f"{self.thd_at(40e3):.1f}",
            ),
        ]
        if self.membrane_inl is not None:
            rows += [
                (
                    "membrane INL at physiologic drive [%]",
                    "(analytic, noise-free)",
                    f"{self.membrane_inl[0] * 100:.5f}",
                ),
                (
                    "membrane INL at 40 kPa [%]",
                    "(analytic, noise-free)",
                    f"{self.membrane_inl[-1] * 100:.5f}",
                ),
            ]
        rows.append(
            (
                "transducer limits linearity?",
                "no (noise dominates everywhere)",
                "no"
                if np.all(self.thd_db < -25.0)
                else "yes",
            )
        )
        return rows


def run_pressure_linearity(
    params: SystemParams | None = None,
    amplitudes_pa: np.ndarray | None = None,
    n_fft: int = 2048,
) -> PressureLinearityResult:
    """Drive the selected membrane with pure-tone pressure; measure THD.

    Mismatch and analog noise are disabled so the measured distortion is
    attributable to the transducer physics alone.
    """
    base = params or SystemParams()
    params = base.replace(
        array=ArrayParams(capacitance_mismatch_sigma=0.0),
        nonideality=NonidealityParams.ideal(),
    )
    if amplitudes_pa is None:
        # 2.7 kPa ~ a 20 mmHg pulsatile swing at the membrane.
        amplitudes_pa = np.array([2.7e3, 10e3, 27e3, 40e3])
    amplitudes_pa = np.asarray(amplitudes_pa, dtype=float)
    if np.any(amplitudes_pa <= 0):
        raise ConfigurationError("amplitudes must be positive")

    out_rate = params.modulator.output_rate_hz
    tone = coherent_tone_frequency(15.625, out_rate, n_fft)
    fs = params.modulator.sampling_rate_hz
    settle = 64
    n_mod = (n_fft + settle) * params.modulator.osr
    t = np.arange(n_mod) / fs
    carrier = np.sin(2.0 * np.pi * tone * t)

    thd = np.empty(amplitudes_pa.size)
    snr = np.empty(amplitudes_pa.size)
    # Analytic membrane INL at each amplitude (exact, no noise).
    sensor = None
    for i, amplitude in enumerate(amplitudes_pa):
        chain = ReadoutChain(params, rng=np.random.default_rng(5000 + i))
        n_elements = chain.chip.array.n_elements
        field = np.tile(
            (amplitude * carrier)[:, None], (1, n_elements)
        )
        rec = chain.record_pressure(field, element=0)
        codes = rec.values[settle : settle + n_fft]
        analysis = analyze_tone(
            codes, out_rate, tone_hz=tone,
            max_band_hz=params.decimation.cutoff_hz,
        )
        thd[i] = analysis.thd_db
        snr[i] = analysis.snr_db
        if sensor is None:
            sensor = chain.chip.array.sensor
    inl = np.array(
        [
            float(
                np.max(
                    np.abs(
                        sensor.linearity_error(
                            np.linspace(-a, a, 41)
                        )
                    )
                )
            )
            for a in amplitudes_pa
        ]
    )
    return PressureLinearityResult(
        amplitudes_pa=amplitudes_pa,
        thd_db=thd,
        snr_db=snr,
        physiologic_amplitude_pa=2.7e3,
        membrane_inl=inl,
    )
