"""FIG9: the continuous blood-pressure recording of Fig. 9.

Paper setup (Sec. 3.2): the assembled sensor attached to a test person's
wrist; the relative pressure signal is recorded continuously and the
systolic/diastolic scale anchored with a conventional hand-cuff reading.

The harness runs the full protocol against the virtual patient — scan,
strongest-element selection, continuous recording, cuff calibration — and
reports the quantities the paper could only show as a plot: systolic and
diastolic extraction error against ground truth, waveform RMS error, and
morphology checks (dicrotic notch present, pulse rate correct).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.cuff import OscillometricCuff
from ..core.chain import ReadoutChain
from ..core.monitor import BloodPressureMonitor, MonitorResult
from ..errors import ConfigurationError
from ..params import PASCAL_PER_MMHG, PatientParams, SystemParams
from ..physiology.patient import VirtualPatient
from ..tonometry.contact import ContactModel
from ..tonometry.coupling import TonometricCoupling
from ..tonometry.placement import ArrayPlacement


@dataclass(frozen=True)
class Fig9Result:
    """Monitoring-session outcome for the Fig. 9 reproduction."""

    result: MonitorResult
    patient: PatientParams
    dicrotic_notch_detected: bool
    pulse_rate_error_bpm: float

    def rows(self) -> list[tuple[str, str, str]]:
        r = self.result
        return [
            (
                "systolic [mmHg]",
                f"{self.patient.systolic_mmhg:.0f} (ground truth)",
                f"{r.measured_systolic_mmhg:.1f}",
            ),
            (
                "diastolic [mmHg]",
                f"{self.patient.diastolic_mmhg:.0f} (ground truth)",
                f"{r.measured_diastolic_mmhg:.1f}",
            ),
            (
                "systolic error [mmHg]",
                "few mmHg (cuff-anchored)",
                f"{r.systolic_error_mmhg:+.1f}",
            ),
            (
                "diastolic error [mmHg]",
                "few mmHg (cuff-anchored)",
                f"{r.diastolic_error_mmhg:+.1f}",
            ),
            (
                "waveform RMS error [mmHg]",
                "(not quantified)",
                f"{r.waveform_rms_error_mmhg():.2f}",
            ),
            (
                "pulse rate error [bpm]",
                "0 (continuous waveform)",
                f"{self.pulse_rate_error_bpm:+.1f}",
            ),
            (
                "dicrotic notch visible",
                "yes (Fig. 9 morphology)",
                "yes" if self.dicrotic_notch_detected else "no",
            ),
            (
                "signal quality SNR [dB]",
                "(not quantified)",
                f"{r.quality.snr_db:.1f}",
            ),
        ]


def _has_dicrotic_notch(
    waveform: np.ndarray, sample_rate_hz: float, features
) -> bool:
    """Morphology check: a local minimum between peak and the next foot.

    Looks for at least one secondary extremum pair (notch + dicrotic
    wave) in the decay limb of the median beat.
    """
    from scipy.signal import argrelextrema

    peaks = features.peak_times_s
    if peaks.size < 3:
        return False
    found = 0
    total = 0
    for k in range(peaks.size - 1):
        start = int(peaks[k] * sample_rate_hz)
        stop = int(peaks[k + 1] * sample_rate_hz)
        seg = waveform[start:stop]
        if seg.size < 8:
            continue
        total += 1
        minima = argrelextrema(seg, np.less, order=3)[0]
        # Interior minimum well before the next beat's foot = notch.
        interior = minima[(minima > 2) & (minima < 0.8 * seg.size)]
        if interior.size >= 1:
            found += 1
    return total > 0 and found >= 0.5 * total


def run_fig9(
    params: SystemParams | None = None,
    patient_params: PatientParams | None = None,
    duration_s: float = 16.0,
    lateral_offset_m: float = 0.5e-3,
    rng: np.random.Generator | None = None,
    backend: str = "fast",
) -> Fig9Result:
    """Run the Fig. 9 monitoring session."""
    params = params or SystemParams()
    patient_params = patient_params or PatientParams()
    if duration_s < 5.0:
        raise ConfigurationError("need >= 5 s for stable features")
    rng = rng or np.random.default_rng(99)

    chain = ReadoutChain(params, rng=rng, backend=backend)
    patient = VirtualPatient(patient_params, rng=rng)
    map_mmhg = (
        patient_params.diastolic_mmhg + patient_params.pulse_pressure_mmhg / 3.0
    )
    contact = ContactModel(
        contact=params.contact,
        tissue=params.tissue,
        mean_arterial_pressure_pa=map_mmhg * PASCAL_PER_MMHG,
    )
    coupling = TonometricCoupling(
        chain.chip.array.geometry,
        contact,
        placement=ArrayPlacement(lateral_offset_m=lateral_offset_m),
        rng=rng,
    )
    monitor = BloodPressureMonitor(chain, coupling, cuff=OscillometricCuff())
    result = monitor.measure(patient, duration_s=duration_s, rng=rng)

    notch = _has_dicrotic_notch(
        result.raw_waveform, result.recording.sample_rate_hz, result.features
    )
    rate_error = (
        result.features.pulse_rate_bpm() - patient_params.heart_rate_bpm
    )
    return Fig9Result(
        result=result,
        patient=patient_params,
        dicrotic_notch_detected=notch,
        pulse_rate_error_bpm=float(rate_error),
    )
