"""EVAL-POP: Fig. 9 across a virtual population (AAMI-style statistics).

The paper demonstrates one subject. A device validation (the "field
tests" of Sec. 4) runs a population and reports error statistics against
a reference — the AAMI/ISO criterion being mean error <= 5 mmHg with
standard deviation <= 8 mmHg. This harness runs the full monitoring
protocol over N virtual subjects spanning hypo- to hypertensive operating
points, heart rates 55-95 bpm, varying placement error and contact
quality, and reports the population statistics the paper's single trace
cannot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.cuff import OscillometricCuff
from ..core.chain import ReadoutChain
from ..core.monitor import BloodPressureMonitor
from ..errors import ConfigurationError
from ..parallel import ExecutorTelemetry, ParallelExecutor
from ..params import PASCAL_PER_MMHG, PatientParams, SystemParams
from ..physiology.patient import VirtualPatient
from ..tonometry.contact import ContactModel
from ..tonometry.coupling import TonometricCoupling
from ..tonometry.placement import ArrayPlacement


@dataclass(frozen=True)
class PopulationResult:
    """Per-subject and aggregate accuracy."""

    systolic_errors_mmhg: np.ndarray
    diastolic_errors_mmhg: np.ndarray
    waveform_rms_mmhg: np.ndarray
    subjects: tuple[dict, ...]
    #: Executor counters of the run that produced this result.
    telemetry: ExecutorTelemetry | None = None

    @property
    def n_subjects(self) -> int:
        return self.systolic_errors_mmhg.size

    def mean_sd(self, errors: np.ndarray) -> tuple[float, float]:
        return float(np.mean(errors)), float(np.std(errors))

    def passes_aami(self) -> bool:
        """Mean error <= 5 mmHg and SD <= 8 mmHg for both pressures."""
        for errors in (self.systolic_errors_mmhg, self.diastolic_errors_mmhg):
            mean, sd = self.mean_sd(errors)
            if abs(mean) > 5.0 or sd > 8.0:
                return False
        return True

    def rows(self) -> list[tuple[str, str, str]]:
        sys_mean, sys_sd = self.mean_sd(self.systolic_errors_mmhg)
        dia_mean, dia_sd = self.mean_sd(self.diastolic_errors_mmhg)
        return [
            ("subjects", "1 (the paper)", f"{self.n_subjects}"),
            (
                "systolic error mean +/- SD [mmHg]",
                "AAMI: <= 5 +/- 8",
                f"{sys_mean:+.1f} +/- {sys_sd:.1f}",
            ),
            (
                "diastolic error mean +/- SD [mmHg]",
                "AAMI: <= 5 +/- 8",
                f"{dia_mean:+.1f} +/- {dia_sd:.1f}",
            ),
            (
                "worst |systolic error| [mmHg]",
                "(not quoted)",
                f"{np.max(np.abs(self.systolic_errors_mmhg)):.1f}",
            ),
            (
                "median waveform RMS error [mmHg]",
                "(not quoted)",
                f"{np.median(self.waveform_rms_mmhg):.2f}",
            ),
            (
                "passes AAMI criterion",
                "(the field-test question)",
                "yes" if self.passes_aami() else "no",
            ),
        ]


def _subject_task(
    item: tuple[SystemParams, float, str], seed: np.random.SeedSequence
) -> tuple[float, float, float, dict]:
    """Measure one virtual subject end to end (executor task)."""
    params, duration_s, backend = item
    rng = np.random.default_rng(seed)
    systolic = float(rng.uniform(100.0, 160.0))
    diastolic = float(rng.uniform(60.0, min(95.0, systolic - 30.0)))
    heart_rate = float(rng.uniform(55.0, 95.0))
    offset = float(rng.uniform(-1.0e-3, 1.0e-3))

    patient_params = PatientParams(
        systolic_mmhg=systolic,
        diastolic_mmhg=diastolic,
        heart_rate_bpm=heart_rate,
    )
    patient = VirtualPatient(patient_params, rng=rng)
    map_pa = (diastolic + (systolic - diastolic) / 3.0) * PASCAL_PER_MMHG

    chain = ReadoutChain(params, rng=rng, backend=backend)
    contact = ContactModel(
        contact=params.contact,
        tissue=params.tissue,
        mean_arterial_pressure_pa=map_pa,
    )
    coupling = TonometricCoupling(
        chain.chip.array.geometry,
        contact,
        placement=ArrayPlacement(lateral_offset_m=offset),
        rng=rng,
    )
    monitor = BloodPressureMonitor(chain, coupling, cuff=OscillometricCuff())
    result = monitor.measure(
        patient, duration_s=duration_s, scan_dwell_s=0.5, rng=rng
    )
    subject = {
        "systolic": systolic,
        "diastolic": diastolic,
        "heart_rate": heart_rate,
        "placement_offset_mm": offset * 1e3,
    }
    return (
        result.systolic_error_mmhg,
        result.diastolic_error_mmhg,
        result.waveform_rms_error_mmhg(),
        subject,
    )


def run_population(
    params: SystemParams | None = None,
    n_subjects: int = 10,
    duration_s: float = 10.0,
    seed: int = 4040,
    backend: str = "fast",
    jobs: int = 1,
    chunk_size: int | None = None,
) -> PopulationResult:
    """Run the full protocol over a diversified virtual population.

    Subjects are independent work items: they fan out over a
    :class:`~repro.parallel.ParallelExecutor` pool. Each subject's
    generator is seeded from the ``SeedSequence.spawn`` child at its
    subject index, so the result is bit-identical for every ``jobs``
    value (including the in-process ``jobs=1`` default).
    """
    params = params or SystemParams()
    if n_subjects < 3:
        raise ConfigurationError("need >= 3 subjects for statistics")

    executor = ParallelExecutor(jobs=jobs, chunk_size=chunk_size)
    items = [(params, float(duration_s), backend)] * n_subjects
    rows = executor.map(_subject_task, items, seed=seed)

    sys_errors = [row[0] for row in rows]
    dia_errors = [row[1] for row in rows]
    rms_errors = [row[2] for row in rows]
    subjects = [row[3] for row in rows]
    return PopulationResult(
        systolic_errors_mmhg=np.array(sys_errors),
        diastolic_errors_mmhg=np.array(dia_errors),
        waveform_rms_mmhg=np.array(rms_errors),
        subjects=tuple(subjects),
        telemetry=executor.telemetry,
    )
