"""ABL-SPACE: the (loop order x OSR) design space, mapped.

Generalizes the two Sec.-4 outlook knobs into the full design grid the
paper's authors would have consulted for a second silicon spin: for every
loop order 1..3 and OSR 16..256, measure the ENOB at the corresponding
conversion rate, then extract the Pareto front of (conversion rate, ENOB)
— which architecture to pick for any target resolution/rate point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dsp.cic import CICDecimator
from ..dsp.spectrum import analyze_tone, coherent_tone_frequency, enob_from_sndr
from ..errors import ConfigurationError
from ..parallel import ExecutorTelemetry, ParallelExecutor
from ..params import SystemParams
from ..sdm.higher_order import HigherOrderSDM


@dataclass(frozen=True)
class DesignSpaceResult:
    """ENOB grid over (order, OSR)."""

    orders: tuple[int, ...]
    osrs: np.ndarray
    enob: np.ndarray  # shape (len(orders), len(osrs))
    conversion_rates_hz: np.ndarray
    #: Executor counters of the run that produced this result.
    telemetry: ExecutorTelemetry | None = None

    def pareto_front(self) -> list[tuple[float, float, int, int]]:
        """(rate, enob, order, osr) points not dominated by any other."""
        points = []
        for i, order in enumerate(self.orders):
            for j, osr in enumerate(self.osrs):
                points.append(
                    (
                        float(self.conversion_rates_hz[j]),
                        float(self.enob[i, j]),
                        order,
                        int(osr),
                    )
                )
        front = []
        for p in points:
            dominated = any(
                q[0] >= p[0] and q[1] > p[1] or q[0] > p[0] and q[1] >= p[1]
                for q in points
            )
            if not dominated and np.isfinite(p[1]):
                front.append(p)
        front.sort(key=lambda p: p[0])
        return front

    def best_at_rate(self, rate_hz: float) -> tuple[int, int, float]:
        """(order, osr, enob) of the best architecture at one rate."""
        j = int(np.argmin(np.abs(self.conversion_rates_hz - rate_hz)))
        i = int(np.nanargmax(self.enob[:, j]))
        return (self.orders[i], int(self.osrs[j]), float(self.enob[i, j]))

    def rows(self) -> list[tuple[str, str, str]]:
        out = []
        for rate in (1000.0, 4000.0):
            order, osr, enob = self.best_at_rate(rate)
            out.append(
                (
                    f"best architecture at {rate:.0f} S/s",
                    "(design-space query)",
                    f"order {order}, OSR {osr}: {enob:.1f} bit",
                )
            )
        front = self.pareto_front()
        out.append(
            (
                "Pareto points (rate, ENOB)",
                "(not in paper)",
                "; ".join(
                    f"{p[0]:.0f} S/s -> {p[1]:.1f} b (N{p[2]}/OSR{p[3]})"
                    for p in front[:6]
                ),
            )
        )
        paper_j = int(np.argmin(np.abs(self.osrs - 128)))
        paper_i = self.orders.index(2)
        out.append(
            (
                "paper's point (order 2, OSR 128) [bit]",
                "~12 (chip interface)",
                f"{self.enob[paper_i, paper_j]:.1f} (modulator capability)",
            )
        )
        return out


def _cell_task(item: tuple[float, int, int, int]) -> float:
    """ENOB of one (order, OSR) grid cell (executor task)."""
    fs, order, osr, n_out = item
    out_rate = fs / osr
    tone = coherent_tone_frequency(out_rate / 64, out_rate, n_out)
    t = np.arange((n_out + 16) * osr) / fs
    sdm = HigherOrderSDM(order=order)
    amp = sdm.recommended_max_amplitude
    bits = sdm.simulate(amp * np.sin(2.0 * np.pi * tone * t)).bitstream
    cic = CICDecimator(order=order + 1, decimation=int(osr), input_bits=2)
    vals = (cic.process(bits.astype(np.int64)).astype(float) / cic.dc_gain)[
        16 : 16 + n_out
    ]
    analysis = analyze_tone(vals, out_rate, tone_hz=tone)
    # ENOB at each architecture's own maximum stable amplitude —
    # the comparison a designer actually faces (higher orders pay
    # their reduced stable range here automatically).
    return enob_from_sndr(analysis.snr_db)


def run_design_space(
    params: SystemParams | None = None,
    orders: tuple[int, ...] = (1, 2, 3),
    osrs: np.ndarray | None = None,
    n_out: int = 1024,
    jobs: int = 1,
    chunk_size: int | None = None,
) -> DesignSpaceResult:
    """Measure the ENOB grid (ideal loops, float sinc^(N+1) decimation).

    Grid cells are independent and deterministic (ideal loops draw no
    randomness), so they fan out over a
    :class:`~repro.parallel.ParallelExecutor` pool; the grid is
    bit-identical for every ``jobs`` value.
    """
    params = params or SystemParams()
    if osrs is None:
        osrs = np.array([16, 32, 64, 128, 256])
    osrs = np.asarray(osrs, dtype=int)
    if any(order not in (1, 2, 3, 4) for order in orders):
        raise ConfigurationError("orders must be within 1..4")

    fs = params.modulator.sampling_rate_hz
    rates = fs / osrs
    items = [
        (float(fs), int(order), int(osr), int(n_out))
        for order in orders
        for osr in osrs
    ]
    executor = ParallelExecutor(jobs=jobs, chunk_size=chunk_size)
    cells = executor.map(_cell_task, items)
    enob = np.asarray(cells, dtype=float).reshape(len(orders), osrs.size)
    return DesignSpaceResult(
        orders=tuple(orders),
        osrs=osrs,
        enob=enob,
        conversion_rates_hz=rates,
        telemetry=executor.telemetry,
    )
