"""INTRO-BASE: cuff vs. tonometer vs. catheter (Sec. 1's motivation).

The paper motivates the sensor by the incumbents' limitations: cuffs
deliver "single measurements at a rate of some Hertz" (actually per
minutes once venous rest is honoured) and catheters are invasive. The
harness subjects all three to the same event — a hypertensive transient
(pressure ramps up mid-record and back down) — and measures how well each
tracks the true systolic trajectory:

* **cuff**: one reading per measurement cycle; between readings it can
  only hold the last value;
* **tonometer** (this work): continuous calibrated waveform;
* **catheter**: continuous and accurate, but invasive (the reference).

Expected shape: tonometer tracking error ~ catheter's (few mmHg), cuff
error growing with the transient's slope — the motivation figure the
paper sketches in words.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.catheter import CatheterReference
from ..baselines.cuff import OscillometricCuff
from ..calibration.features import detect_beats
from ..calibration.twopoint import TwoPointCalibration
from ..core.chain import ReadoutChain
from ..errors import ConfigurationError, SignalQualityError
from ..params import PASCAL_PER_MMHG, PatientParams, SystemParams
from ..physiology.patient import VirtualPatient
from ..tonometry.contact import ContactModel
from ..tonometry.coupling import TonometricCoupling
from ..tonometry.placement import ArrayPlacement


@dataclass(frozen=True)
class BaselineComparisonResult:
    """Per-method tracking errors against ground truth."""

    times_s: np.ndarray
    truth_mmhg: np.ndarray  # beat-systolic trajectory, interpolated
    tonometer_mmhg: np.ndarray
    cuff_mmhg: np.ndarray  # sample-and-hold between readings
    catheter_mmhg: np.ndarray
    tonometer_rmse: float
    cuff_rmse: float
    catheter_rmse: float
    cuff_readings: int

    def rows(self) -> list[tuple[str, str, str]]:
        return [
            (
                "catheter RMSE [mmHg]",
                "continuous, accurate, invasive",
                f"{self.catheter_rmse:.2f}",
            ),
            (
                "tonometer RMSE [mmHg]",
                "continuous, non-invasive (this work)",
                f"{self.tonometer_rmse:.2f}",
            ),
            (
                "cuff RMSE [mmHg]",
                "intermittent (misses transients)",
                f"{self.cuff_rmse:.2f}",
            ),
            (
                "cuff readings in record",
                "~1 per minute",
                f"{self.cuff_readings}",
            ),
            (
                "tonometer beats cuff",
                "yes (the paper's thesis)",
                "yes" if self.tonometer_rmse < self.cuff_rmse else "no",
            ),
        ]


def _transient(times: np.ndarray, duration: float, magnitude: float) -> np.ndarray:
    """Smooth up-and-down pressure excursion centered mid-record."""
    center = duration / 2.0
    width = duration / 6.0
    return magnitude * np.exp(-((times - center) ** 2) / (2.0 * width**2))


def run_baseline_comparison(
    params: SystemParams | None = None,
    duration_s: float = 120.0,
    transient_mmhg: float = 25.0,
    rng: np.random.Generator | None = None,
) -> BaselineComparisonResult:
    """Run the three methods through a hypertensive transient.

    The tonometer path is physics-accurate but, to keep this 2-minute
    experiment tractable, the readout chain is run on a decimated segment
    schedule: the full modulator simulation covers repeated 4 s windows
    whose beat features are interpolated between windows (the signal
    varies on a 20 s scale, so this loses nothing).
    """
    params = params or SystemParams()
    if duration_s < 60.0:
        raise ConfigurationError("need >= 60 s to fit multiple cuff cycles")
    rng = rng or np.random.default_rng(1212)

    patient_params = PatientParams()
    patient = VirtualPatient(patient_params, rng=rng)
    trend = lambda t: _transient(t, duration_s, transient_mmhg)  # noqa: E731

    truth = patient.record(
        duration_s=duration_s, sample_rate_hz=500.0, pressure_trend_mmhg=trend
    )
    # Ground-truth systolic trajectory: per-beat maxima, interpolated.
    beat_t = truth.beat_truth[:, 0]
    beat_sys = truth.beat_truth[:, 1]
    grid = np.linspace(0.0, duration_s, 601)
    truth_sys = np.interp(grid, beat_t, beat_sys)

    # --- catheter: continuous, direct.
    catheter = CatheterReference()
    cath_wave = catheter.measure(truth.pressure_mmhg, 500.0, rng=rng)
    cath_feats = detect_beats(cath_wave, 500.0)
    cath_sys = np.interp(grid, cath_feats.peak_times_s, cath_feats.systolic_raw)

    # --- cuff: one reading per cycle, sample-and-hold.
    cuff = OscillometricCuff()
    interval = cuff.measurement_interval_s()
    reading_times = np.arange(5.0, duration_s, interval)
    cuff_sys_readings = []
    for t0 in reading_times:
        # The cuff measures the *current* pressure state: re-anchor the
        # patient's systolic target to the transient level at t0.
        local = PatientParams(
            systolic_mmhg=patient_params.systolic_mmhg + float(trend(np.array([t0]))[0]),
            diastolic_mmhg=patient_params.diastolic_mmhg
            + 0.5 * float(trend(np.array([t0]))[0]),
            heart_rate_bpm=patient_params.heart_rate_bpm,
        )
        reading = cuff.measure(VirtualPatient(local, rng=rng), rng=rng)
        cuff_sys_readings.append(reading.systolic_mmhg)
    cuff_sys = np.interp(
        grid,
        reading_times,
        cuff_sys_readings,
        left=cuff_sys_readings[0],
        right=cuff_sys_readings[-1],
    )
    # Sample-and-hold, not interpolation: the cuff cannot see between
    # readings.
    hold_idx = np.clip(
        np.searchsorted(reading_times, grid, side="right") - 1,
        0,
        len(cuff_sys_readings) - 1,
    )
    cuff_sys = np.asarray(cuff_sys_readings)[hold_idx]

    # --- tonometer: windowed full-chain measurements.
    chain = ReadoutChain(params, rng=rng)
    map_pa = (
        patient_params.diastolic_mmhg + patient_params.pulse_pressure_mmhg / 3.0
    ) * PASCAL_PER_MMHG
    contact = ContactModel(
        contact=params.contact, tissue=params.tissue,
        mean_arterial_pressure_pa=map_pa,
    )
    coupling = TonometricCoupling(
        chain.chip.array.geometry,
        contact,
        placement=ArrayPlacement(lateral_offset_m=0.3e-3),
        rng=rng,
    )
    window_s = 4.0
    window_starts = np.arange(0.0, duration_s - window_s, 8.0)
    fs = params.modulator.sampling_rate_hz
    tono_t, tono_sys_raw = [], []
    first_features = None
    for t0 in window_starts:
        n = int(window_s * fs)
        t_mod = t0 + np.arange(n) / fs
        arterial_pa = np.interp(
            t_mod, truth.times_s, truth.pressure_mmhg
        ) * PASCAL_PER_MMHG
        field = coupling.element_pressures_pa(arterial_pa)
        rec = chain.record_pressure(field, element=0)
        try:
            feats = detect_beats(rec.values, rec.sample_rate_hz)
        except SignalQualityError:
            continue
        if first_features is None:
            first_features = feats
        tono_t.append(t0 + window_s / 2.0)
        tono_sys_raw.append(feats.mean_systolic_raw)
    if len(tono_t) < 3 or first_features is None:
        raise ConfigurationError("tonometer windows failed to detect beats")

    # Calibrate the tonometer once, on the first window's features with
    # the first cuff reading (the Fig. 9 procedure).
    first_reading = cuff.measure(patient, rng=rng)
    calibration = TwoPointCalibration.from_features(
        first_features,
        cuff_systolic_mmhg=first_reading.systolic_mmhg,
        cuff_diastolic_mmhg=first_reading.diastolic_mmhg,
    )
    tono_sys = np.interp(
        grid, np.asarray(tono_t), calibration.apply(np.asarray(tono_sys_raw))
    )

    def rmse(x: np.ndarray) -> float:
        return float(np.sqrt(np.mean((x - truth_sys) ** 2)))

    return BaselineComparisonResult(
        times_s=grid,
        truth_mmhg=truth_sys,
        tonometer_mmhg=tono_sys,
        cuff_mmhg=cuff_sys,
        catheter_mmhg=cath_sys,
        tonometer_rmse=rmse(tono_sys),
        cuff_rmse=rmse(cuff_sys),
        catheter_rmse=rmse(cath_sys),
        cuff_readings=len(cuff_sys_readings),
    )

