"""TAB-SPEC: the prose specification table of Secs. 2-3 / the abstract.

The paper's quantitative claims, gathered into one table and re-measured
on the behavioural system:

* sampling rate 128 kS/s, OSR 128, conversion rate 1 kS/s,
* output resolution 12 bit (ENOB measured via the Fig. 7 tone test),
* decimation filter: sinc^3 + 32-tap FIR, 500 Hz cutoff,
* power 11.5 mW at 5 V / 128 kHz,
* die 2.6 x 1.9 mm^2 in 0.8 um CMOS with a 2x2 array at 150 um pitch.

Also includes the decimator-architecture ablation called out in
DESIGN.md §5: the cascade measured against a sinc^3-only and an ideal
brickwall decimator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.power import PowerModel
from ..dsp.cic import CICDecimator
from ..dsp.decimator import DecimationFilter
from ..dsp.spectrum import analyze_tone, coherent_tone_frequency
from ..params import SystemParams
from ..sdm.modulator import SecondOrderSDM
from .fig7_spectrum import run_fig7


@dataclass(frozen=True)
class SpecTable:
    """Paper-vs-measured specification rows."""

    output_rate_hz: float
    measured_cutoff_hz: float
    enob_bits: float
    snr_db: float
    power_w: float
    die_area_mm2: float
    array_span_ok: bool
    sinc_only_snr_db: float
    brickwall_snr_db: float

    def rows(self) -> list[tuple[str, str, str]]:
        return [
            ("sampling rate [kS/s]", "128", "128 (by construction)"),
            ("OSR", "128", "128 (by construction)"),
            ("conversion rate [S/s]", "1000", f"{self.output_rate_hz:.0f}"),
            ("filter cutoff [Hz]", "500", f"{self.measured_cutoff_hz:.0f}"),
            ("resolution [bit]", "12", f"{self.enob_bits:.2f} (ENOB)"),
            ("SNR [dB]", "> 72", f"{self.snr_db:.1f}"),
            ("power @ 5 V, 128 kHz [mW]", "11.5", f"{self.power_w * 1e3:.1f}"),
            ("die area [mm^2]", "4.94 (2.6 x 1.9)", f"{self.die_area_mm2:.2f}"),
            (
                "2x2 array fits die",
                "yes (Fig. 5)",
                "yes" if self.array_span_ok else "no",
            ),
            (
                "SNR, sinc^3-only decimator [dB]",
                "(ablation)",
                f"{self.sinc_only_snr_db:.1f}",
            ),
            (
                "SNR, ideal brickwall [dB]",
                "(ablation)",
                f"{self.brickwall_snr_db:.1f}",
            ),
        ]


def _sinc_only_snr(
    params: SystemParams, tone_hz: float, n_out: int, amplitude: float
) -> float:
    """SNR with only the CIC (decimating by the full OSR), no FIR."""
    fs = params.modulator.sampling_rate_hz
    osr = params.modulator.osr
    n_mod = (n_out + 64) * osr
    t = np.arange(n_mod) / fs
    sdm = SecondOrderSDM(params.modulator, params.nonideality)
    bits = sdm.simulate(amplitude * np.sin(2 * np.pi * tone_hz * t)).bitstream
    cic = CICDecimator(order=3, decimation=osr, input_bits=2)
    out = cic.process(bits.astype(np.int64)).astype(float) / cic.dc_gain
    seg = out[64 : 64 + n_out]
    return analyze_tone(
        seg, fs / osr, tone_hz=tone_hz, max_band_hz=params.decimation.cutoff_hz
    ).snr_db


def _brickwall_snr(
    params: SystemParams, tone_hz: float, n_out: int, amplitude: float
) -> float:
    """SNR with an ideal FFT brickwall decimator (no 12-bit quantizer)."""
    fs = params.modulator.sampling_rate_hz
    osr = params.modulator.osr
    n_mod = n_out * osr
    t = np.arange(n_mod) / fs
    sdm = SecondOrderSDM(params.modulator, params.nonideality)
    bits = sdm.simulate(
        amplitude * np.sin(2 * np.pi * tone_hz * t)
    ).bitstream.astype(float)
    spectrum = np.fft.rfft(bits)
    keep = n_out // 2 + 1
    decimated = np.fft.irfft(spectrum[:keep], n=n_out) * (n_out / n_mod)
    return analyze_tone(
        decimated,
        fs / osr,
        tone_hz=tone_hz,
        max_band_hz=params.decimation.cutoff_hz,
    ).snr_db


def run_table_specs(
    params: SystemParams | None = None, n_fft: int = 4096
) -> SpecTable:
    """Measure every spec-table row."""
    params = params or SystemParams()
    fig7 = run_fig7(params, n_fft=n_fft)
    decimator = DecimationFilter(
        params.decimation, input_rate_hz=params.modulator.sampling_rate_hz
    )
    power = PowerModel(params.chip).report()

    from ..mems.geometry import ArrayGeometry

    geometry = ArrayGeometry(params.array)
    fits = geometry.footprint_fits_die(
        params.chip.die_width_m, params.chip.die_height_m
    )

    out_rate = params.modulator.output_rate_hz
    tone = coherent_tone_frequency(15.625, out_rate, n_fft)
    amplitude = 0.8
    sinc_snr = _sinc_only_snr(params, tone, n_fft, amplitude)
    brick_snr = _brickwall_snr(params, tone, n_fft, amplitude)

    return SpecTable(
        output_rate_hz=decimator.output_rate_hz,
        measured_cutoff_hz=decimator.measured_cutoff_hz(),
        enob_bits=fig7.analysis.enob_bits,
        snr_db=fig7.snr_db,
        power_w=power.total_w,
        die_area_mm2=params.chip.die_area_m2 * 1e6,
        array_span_ok=fits,
        sinc_only_snr_db=float(sinc_snr),
        brickwall_snr_db=float(brick_snr),
    )
