"""FIG1/LOC: placement tolerance and vessel localization (Secs. 1-2).

Two claims from the paper's system description are quantified:

1. "In order to relax the necessary accuracy of sensor placement, an
   array of force detectors is used and the sensor element with the
   strongest signal is selected" — measured as the retained coupling of
   the *selected* element vs. a fixed single element over a lateral
   placement sweep.
2. "This can also be used for localizing blood vessels, buried in
   tissue" — measured as the error of the amplitude-centroid position
   estimate over the same sweep, demonstrated on the modular larger
   array (8x8) the paper says the design extends to.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..array.imaging import log_parabola_vertex
from ..errors import ConfigurationError
from ..mems.geometry import ArrayGeometry
from ..params import ArrayParams, SystemParams
from ..physiology.tissue import TissueTransfer
from ..tonometry.contact import ContactModel
from ..tonometry.coupling import TonometricCoupling
from ..tonometry.placement import ArrayPlacement


@dataclass(frozen=True)
class LocalizationResult:
    """Placement sweep + localization accuracy."""

    offsets_m: np.ndarray
    selected_gain: np.ndarray  # best-element coupling per offset
    fixed_gain: np.ndarray  # element-0 coupling per offset
    centroid_error_m: np.ndarray  # 8x8 localization error per offset
    array_shape: tuple[int, int]
    large_array_shape: tuple[int, int]

    @property
    def selection_advantage(self) -> float:
        """Mean coupling gain of selecting vs. staying on element 0."""
        fixed = np.where(self.fixed_gain > 0, self.fixed_gain, np.nan)
        return float(np.nanmean(self.selected_gain / fixed))

    def rows(self) -> list[tuple[str, str, str]]:
        mid = self.offsets_m.size // 2
        return [
            (
                "selection advantage (mean best/fixed)",
                "> 1 (array relaxes placement)",
                f"{self.selection_advantage:.2f}",
            ),
            (
                "best-element coupling at 1 mm offset",
                "(not quoted)",
                f"{np.interp(1e-3, self.offsets_m, self.selected_gain):.3f}",
            ),
            (
                "localization error at center [um]",
                "(not quoted)",
                f"{self.centroid_error_m[mid] * 1e6:.0f}",
            ),
            (
                "median localization error [um]",
                "(not quoted)",
                f"{np.median(self.centroid_error_m) * 1e6:.0f}",
            ),
        ]


def _log_parabola_peak(geometry: ArrayGeometry, weights: np.ndarray) -> float:
    """Estimate the Gaussian-profile peak from per-element amplitudes.

    Column-averages the amplitude map (the artery runs along rows), then
    locates the profile peak with
    :func:`repro.array.imaging.log_parabola_vertex`: for a Gaussian
    profile the log-parabola fit is exact and the vertex is the artery's
    transverse coordinate, even outside the array footprint.
    """
    amp = weights.reshape(geometry.rows, geometry.cols)
    col_amp = amp.mean(axis=0)
    centers = geometry.element_centers_m()
    xs = np.unique(np.round(centers[:, 0], 12))
    return log_parabola_vertex(xs, col_amp)


def run_localization(
    params: SystemParams | None = None,
    max_offset_m: float = 2.0e-3,
    n_offsets: int = 21,
    large_array: tuple[int, int] = (8, 8),
    heterogeneity: float = 0.25,
) -> LocalizationResult:
    """Sweep lateral placement; measure selection benefit + localization."""
    params = params or SystemParams()
    if max_offset_m <= 0 or n_offsets < 3:
        raise ConfigurationError("need positive offset span, >= 3 points")

    tissue = TissueTransfer(params.tissue)
    contact = ContactModel(contact=params.contact, tissue=params.tissue)
    geometry = ArrayGeometry(params.array)
    offsets = np.linspace(-max_offset_m, max_offset_m, n_offsets)

    base = TonometricCoupling(
        geometry, contact, tissue=tissue, contact_heterogeneity=heterogeneity
    )
    selected = np.empty(n_offsets)
    fixed = np.empty(n_offsets)
    for i, off in enumerate(offsets):
        moved = base.with_placement(ArrayPlacement(lateral_offset_m=float(off)))
        gains = moved.effective_gain()
        selected[i] = gains.max()
        fixed[i] = gains[0]

    # Localization on the extensible larger array. The coupling profile
    # (sigma ~ 2.5 mm) is nearly flat across a 1 mm array, so a raw
    # amplitude centroid barely moves; fitting the *log* of the Gaussian
    # profile with a parabola recovers the peak position — including
    # peaks outside the array footprint.
    rows, cols = large_array
    big_params = ArrayParams(
        rows=rows, cols=cols, membrane=params.array.membrane
    )
    big_geometry = ArrayGeometry(big_params)
    big = TonometricCoupling(
        big_geometry, contact, tissue=tissue, contact_heterogeneity=0.05
    )
    centroid_error = np.empty(n_offsets)
    for i, off in enumerate(offsets):
        moved = big.with_placement(ArrayPlacement(lateral_offset_m=float(off)))
        weights = moved.element_weights()
        est_x = _log_parabola_peak(big_geometry, weights)
        # The artery's transverse position in array coordinates is -off.
        centroid_error[i] = abs(est_x - (-float(off)))

    return LocalizationResult(
        offsets_m=offsets,
        selected_gain=selected,
        fixed_gain=fixed,
        centroid_error_m=centroid_error,
        array_shape=(params.array.rows, params.array.cols),
        large_array_shape=large_array,
    )
