"""Applanation contact mechanics: hold-down pressure and pulse transmission.

Tonometry's central mechanism: pressing the sensor onto the wrist
partially flattens (applanates) the artery. When the hold-down pressure
matches the mean transmural pressure, the wall carries no net load and
the full intra-arterial pulsation transmits to the contact; pressing too
lightly leaves tissue compliance in series (attenuation), pressing too
hard collapses the vessel (the pulse amplitude rolls off). The classic
inverted-U transmission curve is modelled as a Gaussian in hold-down
pressure around the optimum, with the PDMS layer adding a series-spring
attenuation.

References [1, 2] of the paper describe this measurement principle; the
quantitative curve here is phenomenological but reproduces its shape and
the calibration consequences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..params import ContactParams, PASCAL_PER_MMHG, TissueParams


@dataclass(frozen=True)
class ContactState:
    """Operating point of the sensor-tissue contact."""

    hold_down_pa: float
    transmission: float  # pulsatile coupling gain in [0, 1]
    static_membrane_pressure_pa: float  # net DC pressure on the membranes
    optimal_hold_down_pa: float

    @property
    def is_over_pressed(self) -> bool:
        return self.hold_down_pa > 1.5 * self.optimal_hold_down_pa


class ContactModel:
    """Hold-down-dependent pulse transmission.

    Parameters
    ----------
    contact:
        Hold-down, PDMS and backpressure parameters.
    tissue:
        Tissue stack parameters (for the series-compliance attenuation).
    mean_arterial_pressure_pa:
        The subject's MAP, which sets the optimum hold-down. In a real
        measurement this is unknown; the hold-down sweep of the
        localization experiment shows the optimum empirically.
    transmission_width_fraction:
        Width of the transmission curve relative to the optimum pressure.
    """

    def __init__(
        self,
        contact: ContactParams | None = None,
        tissue: TissueParams | None = None,
        mean_arterial_pressure_pa: float = 93.0 * PASCAL_PER_MMHG,
        transmission_width_fraction: float = 0.6,
    ):
        if mean_arterial_pressure_pa <= 0:
            raise ConfigurationError("MAP must be positive")
        if transmission_width_fraction <= 0:
            raise ConfigurationError("transmission width must be positive")
        self.contact = contact or ContactParams()
        self.tissue = tissue or TissueParams()
        self.map_pa = float(mean_arterial_pressure_pa)
        self.width_fraction = float(transmission_width_fraction)

    @property
    def optimal_hold_down_pa(self) -> float:
        """Hold-down pressure at peak transmission (≈ MAP)."""
        return self.map_pa

    @property
    def pdms_attenuation(self) -> float:
        """Series-spring attenuation of the PDMS contact layer.

        The PDMS (stiffness E_pdms / t_pdms per unit area) is in series
        with the tissue (E_tissue / depth); the membrane sees the divider
        ratio. PDMS is far stiffer per unit thickness than tissue, so the
        attenuation is mild — the reason the paper can afford a protective
        elastomer at all.
        """
        k_pdms = self.contact.pdms_modulus_pa / self.contact.pdms_thickness_m
        k_tissue = self.tissue.tissue_modulus_pa / self.tissue.artery_depth_m
        return k_pdms / (k_pdms + k_tissue)

    def transmission(self, hold_down_pa: np.ndarray | float) -> np.ndarray:
        """Pulsatile transmission vs hold-down (the inverted-U curve)."""
        hold = np.asarray(hold_down_pa, dtype=float)
        if np.any(hold < 0):
            raise ConfigurationError("hold-down pressure must be >= 0")
        width = self.width_fraction * self.optimal_hold_down_pa
        curve = np.exp(
            -((hold - self.optimal_hold_down_pa) ** 2) / (2.0 * width**2)
        )
        # No contact, no signal: force transmission to zero at zero
        # hold-down with a soft engagement threshold.
        engagement = 1.0 - np.exp(-hold / (0.1 * self.optimal_hold_down_pa))
        return curve * engagement * self.pdms_attenuation

    def state(self, hold_down_pa: float | None = None) -> ContactState:
        """Full operating point at a hold-down pressure (default: params)."""
        hold = (
            float(hold_down_pa)
            if hold_down_pa is not None
            else self.contact.hold_down_pa
        )
        trans = float(self.transmission(hold))
        # DC pressure on the membranes: the hold-down reaction minus the
        # backside bias that pre-bends them outward.
        static = hold - self.contact.backpressure_pa
        return ContactState(
            hold_down_pa=hold,
            transmission=trans,
            static_membrane_pressure_pa=static,
            optimal_hold_down_pa=self.optimal_hold_down_pa,
        )

    def hold_down_sweep(
        self, pressures_pa: np.ndarray
    ) -> np.ndarray:
        """Transmission over a hold-down sweep (the clinician's ritual of
        adjusting wrist-strap tension maps to this curve)."""
        return self.transmission(pressures_pa)
