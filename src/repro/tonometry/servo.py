"""Hold-down pressure servo: automatic applanation search.

Clinically, a tonometer is useless until the hold-down pressure sits
near the top of the inverted-U transmission curve — the paper's authors
did this by hand ("attached to a test person's wrist"); a wearable must
do it automatically. The servo implements the standard two-phase
procedure:

1. **Sweep** — coarse ramp of hold-down pressures, recording the
   pulsatile amplitude at each (via any callable measurement oracle), to
   find the hill.
2. **Track** — hill-climbing around the optimum with a shrinking step,
   so slow drift (strap loosening, wrist movement) is followed.

The measurement oracle abstracts the full chain: production code passes
a closure that runs the real readout; tests pass the contact model's
transmission curve plus noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ConfigurationError, SignalQualityError

#: Measurement oracle: hold-down pressure [Pa] -> pulsatile amplitude.
AmplitudeOracle = Callable[[float], float]


@dataclass(frozen=True)
class ServoResult:
    """Outcome of an applanation search."""

    optimal_hold_down_pa: float
    peak_amplitude: float
    sweep_pressures_pa: np.ndarray
    sweep_amplitudes: np.ndarray
    refinement_steps: int

    def transmission_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """The recorded inverted-U (for plotting/inspection)."""
        return self.sweep_pressures_pa, self.sweep_amplitudes


class HoldDownServo:
    """Two-phase applanation pressure search.

    Parameters
    ----------
    min_pa, max_pa:
        Search range of hold-down pressures. The default span covers
        40-300 % of a normotensive MAP.
    coarse_points:
        Sweep resolution.
    refine_tolerance_pa:
        Stop refining when the bracket is narrower than this.
    min_peak_amplitude:
        Below this best amplitude the servo declares "no pulse found"
        (sensor not on the artery at any pressure).
    """

    def __init__(
        self,
        min_pa: float = 3e3,
        max_pa: float = 30e3,
        coarse_points: int = 12,
        refine_tolerance_pa: float = 300.0,
        min_peak_amplitude: float = 0.0,
    ):
        if not 0 <= min_pa < max_pa:
            raise ConfigurationError("need 0 <= min_pa < max_pa")
        if coarse_points < 4:
            raise ConfigurationError("need at least 4 sweep points")
        if refine_tolerance_pa <= 0:
            raise ConfigurationError("tolerance must be positive")
        self.min_pa = float(min_pa)
        self.max_pa = float(max_pa)
        self.coarse_points = int(coarse_points)
        self.refine_tolerance_pa = float(refine_tolerance_pa)
        self.min_peak_amplitude = float(min_peak_amplitude)

    def search(self, oracle: AmplitudeOracle) -> ServoResult:
        """Run sweep + refinement against a measurement oracle."""
        pressures = np.linspace(self.min_pa, self.max_pa, self.coarse_points)
        amplitudes = np.array([float(oracle(p)) for p in pressures])
        if not np.any(np.isfinite(amplitudes)):
            raise SignalQualityError("oracle returned no finite amplitudes")
        best = int(np.nanargmax(amplitudes))
        if amplitudes[best] <= self.min_peak_amplitude:
            raise SignalQualityError(
                "no pulsatile signal at any hold-down pressure; "
                "the sensor is probably not over the artery"
            )

        # Golden-section refinement inside the bracketing neighbours.
        lo = pressures[max(best - 1, 0)]
        hi = pressures[min(best + 1, pressures.size - 1)]
        steps = 0
        golden = 0.38196601125010515
        a, b = lo, hi
        x1 = a + golden * (b - a)
        x2 = b - golden * (b - a)
        f1, f2 = float(oracle(x1)), float(oracle(x2))
        while (b - a) > self.refine_tolerance_pa and steps < 40:
            if f1 < f2:
                a, x1, f1 = x1, x2, f2
                x2 = b - golden * (b - a)
                f2 = float(oracle(x2))
            else:
                b, x2, f2 = x2, x1, f1
                x1 = a + golden * (b - a)
                f1 = float(oracle(x1))
            steps += 1
        optimum = 0.5 * (a + b)
        peak = float(oracle(optimum))
        return ServoResult(
            optimal_hold_down_pa=float(optimum),
            peak_amplitude=peak,
            sweep_pressures_pa=pressures,
            sweep_amplitudes=amplitudes,
            refinement_steps=steps,
        )

    def track(
        self,
        oracle: AmplitudeOracle,
        current_pa: float,
        step_pa: float = 500.0,
    ) -> float:
        """One hill-climbing update for drift tracking.

        Samples one step up and one down from the current pressure and
        moves toward the larger amplitude (or stays). Cheap enough to run
        between heartbeats.
        """
        if current_pa < 0 or step_pa <= 0:
            raise ConfigurationError("pressures must be non-negative")
        candidates = np.array(
            [max(current_pa - step_pa, self.min_pa), current_pa,
             min(current_pa + step_pa, self.max_pa)]
        )
        amplitudes = [float(oracle(p)) for p in candidates]
        return float(candidates[int(np.argmax(amplitudes))])
