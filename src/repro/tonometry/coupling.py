"""End-to-end tonometric coupling: arterial pressure to membrane pressure.

Combines the contact model (hold-down transmission), the placement model
(per-element coupling weights) and the static operating point into the
per-element membrane pressure time series the sensor array converts to
capacitance:

    P_elem(t) = P_static + T(hold_down) * w_elem * (P_art(t) - MAP)

where T is the applanation transmission, w_elem the lateral coupling
weight, and P_static the DC pressure (hold-down reaction minus
backpressure bias). The recorded waveform is thus *relative* — exactly as
the paper notes: "the acquired signal is relative to the pressure applied
to the skin surface ... In order to get absolute pressure values, a
calibration has to be performed."
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..mems.geometry import ArrayGeometry
from ..physiology.tissue import TissueTransfer
from .contact import ContactModel
from .placement import ArrayPlacement


class TonometricCoupling:
    """Arterial-pressure-to-element-pressure transfer.

    Parameters
    ----------
    geometry:
        Array layout (element positions).
    contact:
        Applanation/contact model, carrying the subject's MAP.
    tissue:
        Tissue transfer (lateral coupling profile).
    placement:
        Where the array sits relative to the artery.
    contact_heterogeneity:
        1-sigma of log-normal per-element contact-quality factors. At the
        150 um array pitch the smooth tissue bump couples almost equally
        into every element; what actually differentiates them in practice
        is local contact quality (skin texture, trapped air under the
        PDMS, epoxy edges). This is the physical reason the paper's
        strongest-element selection exists. Set 0 for perfectly uniform
        contact.
    rng:
        Randomness for the heterogeneity draw (seeded default).
    """

    def __init__(
        self,
        geometry: ArrayGeometry,
        contact: ContactModel,
        tissue: TissueTransfer | None = None,
        placement: ArrayPlacement | None = None,
        contact_heterogeneity: float = 0.25,
        rng: np.random.Generator | None = None,
    ):
        if contact_heterogeneity < 0:
            raise ConfigurationError("contact heterogeneity must be >= 0")
        self.geometry = geometry
        self.contact = contact
        self.tissue = tissue or TissueTransfer(contact.tissue)
        self.placement = placement or ArrayPlacement()
        self.contact_heterogeneity = float(contact_heterogeneity)
        rng = rng or np.random.default_rng(347)
        n = geometry.rows * geometry.cols
        if contact_heterogeneity > 0:
            draw = rng.lognormal(
                mean=-0.5 * contact_heterogeneity**2,
                sigma=contact_heterogeneity,
                size=n,
            )
            self.contact_quality = np.clip(draw, 0.0, 1.0)
        else:
            self.contact_quality = np.ones(n)

    def element_weights(self) -> np.ndarray:
        """Per-element coupling: lateral profile times contact quality."""
        lateral = self.placement.coupling_weights(self.geometry, self.tissue)
        return lateral * self.contact_quality

    def pressure_field_fn(self, hold_down_pa: float | None = None):
        """Freeze the operating point into a per-chunk field converter.

        Returns ``field(arterial_pressure_pa) -> (n, n_elements)`` with
        the contact state and element weights evaluated once — the
        streaming form of :meth:`element_pressures_pa` (which delegates
        here), so converting a record chunk-by-chunk is bit-identical to
        converting it whole, at O(chunk) memory.
        """
        state = self.contact.state(hold_down_pa)
        weights = self.element_weights()
        map_pa = self.contact.map_pa

        def field(arterial_pressure_pa: np.ndarray) -> np.ndarray:
            arterial = np.asarray(arterial_pressure_pa, dtype=float)
            if arterial.ndim != 1:
                raise ConfigurationError("arterial pressure must be 1-D")
            pulsatile = arterial - map_pa
            return state.static_membrane_pressure_pa + state.transmission * (
                np.multiply.outer(pulsatile, weights)
            )

        return field

    def element_pressures_pa(
        self,
        arterial_pressure_pa: np.ndarray,
        hold_down_pa: float | None = None,
    ) -> np.ndarray:
        """Membrane pressure time series for every element.

        Parameters
        ----------
        arterial_pressure_pa:
            Ground-truth intra-arterial pressure [Pa], shape (n_samples,).
        hold_down_pa:
            Override of the contact's hold-down operating point.

        Returns
        -------
        (n_samples, n_elements) membrane pressures [Pa], positive pressing
        the membranes toward their bottom electrodes.
        """
        return self.pressure_field_fn(hold_down_pa)(arterial_pressure_pa)

    def scan_pressure_segments(
        self,
        arterial_pressure_pa: np.ndarray,
        dwell_samples: int,
        hold_down_pa: float | None = None,
    ) -> np.ndarray:
        """Per-element dwell segments for a row-major scan of the array.

        Element k of a scan only ever routes samples
        ``[k*dwell, (k+1)*dwell)`` of the field, so a large-array scan
        needs just this (n_elements, dwell_samples) matrix — O(elements
        x dwell) memory instead of the O(samples x elements) full field
        :meth:`element_pressures_pa` would materialize (171 GB at 64x64
        with a one-second dwell). Row k is bit-identical to the
        corresponding window/column of the full field.
        """
        arterial = np.asarray(arterial_pressure_pa, dtype=float)
        if arterial.ndim != 1:
            raise ConfigurationError("arterial pressure must be 1-D")
        if dwell_samples < 1:
            raise ConfigurationError("dwell must be >= 1 sample")
        n = self.geometry.rows * self.geometry.cols
        if arterial.size < dwell_samples * n:
            raise ConfigurationError(
                "arterial record too short for the requested scan"
            )
        state = self.contact.state(hold_down_pa)
        weights = self.element_weights()
        pulsatile = arterial[: dwell_samples * n].reshape(n, dwell_samples)
        pulsatile = pulsatile - self.contact.map_pa
        return state.static_membrane_pressure_pa + state.transmission * (
            pulsatile * weights[:, None]
        )

    def effective_gain(self, hold_down_pa: float | None = None) -> np.ndarray:
        """Per-element d(P_membrane)/d(P_arterial) at the operating point."""
        state = self.contact.state(hold_down_pa)
        return state.transmission * self.element_weights()

    def with_placement(self, placement: ArrayPlacement) -> "TonometricCoupling":
        """Same physics (including the heterogeneity draw) at a different
        placement (for sweeps)."""
        moved = TonometricCoupling(
            geometry=self.geometry,
            contact=self.contact,
            tissue=self.tissue,
            placement=placement,
            contact_heterogeneity=0.0,
        )
        moved.contact_quality = self.contact_quality.copy()
        moved.contact_heterogeneity = self.contact_heterogeneity
        return moved
