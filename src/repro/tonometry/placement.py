"""Array placement over the artery: offsets, rotation, coupling weights.

Sec. 2 of the paper: "In order to relax the necessary accuracy of sensor
placement, an array of force detectors is used." This module computes how
well each element couples to the artery for a given placement: the artery
is a line (along the y axis of the patient frame), the array is placed
with a lateral offset and rotation, and each element's transverse distance
to the vessel axis feeds the tissue's lateral coupling profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..mems.geometry import ArrayGeometry
from ..physiology.tissue import TissueTransfer


@dataclass(frozen=True)
class ArrayPlacement:
    """Where the array sits relative to the artery.

    Parameters
    ----------
    lateral_offset_m:
        Distance of the array center from the artery axis, transverse to
        the vessel (the placement-error axis that matters).
    axial_offset_m:
        Offset along the vessel; irrelevant for a straight artery but kept
        for completeness of the frame transform.
    rotation_rad:
        Rotation of the array relative to the artery axis.
    """

    lateral_offset_m: float = 0.0
    axial_offset_m: float = 0.0
    rotation_rad: float = 0.0

    def element_transverse_offsets_m(
        self, geometry: ArrayGeometry
    ) -> np.ndarray:
        """Per-element transverse distance to the artery axis.

        Elements are first rotated into the patient frame, then offset;
        the artery runs along y, so the transverse coordinate is x.
        """
        centers = geometry.element_centers_m()
        c, s = math.cos(self.rotation_rad), math.sin(self.rotation_rad)
        x = centers[:, 0] * c - centers[:, 1] * s + self.lateral_offset_m
        return x

    def coupling_weights(
        self, geometry: ArrayGeometry, tissue: TissueTransfer
    ) -> np.ndarray:
        """Per-element pulsatile coupling factors in [0, 1]."""
        offsets = self.element_transverse_offsets_m(geometry)
        return tissue.lateral_profile(offsets)

    def perturbed(
        self, delta_lateral_m: float, delta_rotation_rad: float = 0.0
    ) -> "ArrayPlacement":
        """A displaced placement (for placement-tolerance sweeps)."""
        return ArrayPlacement(
            lateral_offset_m=self.lateral_offset_m + delta_lateral_m,
            axial_offset_m=self.axial_offset_m,
            rotation_rad=self.rotation_rad + delta_rotation_rad,
        )


def placement_sweep(
    geometry: ArrayGeometry,
    tissue: TissueTransfer,
    lateral_offsets_m: np.ndarray,
) -> np.ndarray:
    """Coupling weights over a lateral-offset sweep.

    Returns shape (n_offsets, n_elements): the data behind the paper's
    claim that the array relaxes placement accuracy — as the offset grows,
    the *best* element changes but its coupling degrades slowly compared
    to a single centered sensor.
    """
    offsets = np.asarray(lateral_offsets_m, dtype=float)
    if offsets.ndim != 1:
        raise ConfigurationError("offsets must be a 1-D sweep")
    out = np.empty((offsets.size, geometry.rows * geometry.cols))
    for i, off in enumerate(offsets):
        placement = ArrayPlacement(lateral_offset_m=float(off))
        out[i] = placement.coupling_weights(geometry, tissue)
    return out
