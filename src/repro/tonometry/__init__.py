"""Sensor-tissue coupling: the tonometric measurement physics.

How the arterial pulse reaches the membranes: the chip (with its PDMS
contact layer, Sec. 2.1) is held against the wrist; the hold-down pressure
sets the applanation state of the artery (contact model); each array
element sits at some transverse offset from the vessel (placement model);
the product of those factors gives the per-element pulsatile pressure on
the membranes (coupling model).
"""

from .contact import ContactModel, ContactState
from .placement import ArrayPlacement
from .coupling import TonometricCoupling
from .servo import HoldDownServo, ServoResult

__all__ = [
    "ArrayPlacement",
    "ContactModel",
    "ContactState",
    "HoldDownServo",
    "ServoResult",
    "TonometricCoupling",
]
