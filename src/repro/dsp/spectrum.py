"""Tone-test spectral analysis: the instrumentation behind Fig. 7.

The paper characterizes the converter by driving the differential voltage
input with a sine and reporting the output spectrum and SNR ("better than
72 dB", Sec. 3.1, Fig. 7). This module provides the matching measurement
code: windowed periodogram, signal/noise/harmonic power accounting, and
the derived metrics (SNR, SNDR, THD, SFDR, ENOB).

Conventions: one-sided power spectrum, powers normalized so a full-scale
(amplitude 1) sine has signal power 0.5; dB values are relative to the
tone unless stated otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .windows import WindowSpec, get_window


def coherent_tone_frequency(
    target_hz: float, sample_rate_hz: float, n_samples: int, odd_bin: bool = True
) -> float:
    """Snap a tone frequency onto an exact DFT bin (coherent sampling).

    Coherent sampling removes spectral leakage entirely, which is how ADC
    test setups (and Fig. 7's 15.625 Hz = bin 16 of a 1024-point, 1 kS/s
    record... exactly 1 kHz/64) choose their tone. With ``odd_bin`` the
    bin count is forced odd so the tone period and record length share no
    common factor — every quantizer code is exercised.
    """
    if not 0 < target_hz < sample_rate_hz / 2:
        raise ConfigurationError("target tone must lie in (0, Nyquist)")
    if n_samples < 16:
        raise ConfigurationError("need at least 16 samples")
    bin_index = max(1, round(target_hz * n_samples / sample_rate_hz))
    if odd_bin and bin_index % 2 == 0:
        bin_index += 1
    if bin_index >= n_samples // 2:
        raise ConfigurationError("coherent bin would exceed Nyquist")
    return bin_index * sample_rate_hz / n_samples


def periodogram_db(
    samples: np.ndarray,
    sample_rate_hz: float,
    window: str = "hann",
    reference_power: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One-sided power spectrum in dB (relative to ``reference_power``).

    Returns ``(freqs_hz, power_db)``. With ``reference_power=None`` the
    spectrum is referenced to its own peak (the Fig. 7 convention, where
    the tone sits at 0 dB).
    """
    freqs, power = _one_sided_power(samples, sample_rate_hz, get_window(window, len(samples)))
    if reference_power is None:
        reference_power = float(power.max())
    if reference_power <= 0:
        raise ConfigurationError("reference power must be positive")
    with np.errstate(divide="ignore"):
        power_db = 10.0 * np.log10(power / reference_power)
    return freqs, power_db


@dataclass(frozen=True)
class SpectrumAnalysis:
    """Full tone-test result."""

    freqs_hz: np.ndarray
    power: np.ndarray  # one-sided, linear
    tone_frequency_hz: float
    signal_power: float
    noise_power: float
    distortion_power: float
    dc_power: float
    snr_db: float
    sndr_db: float
    thd_db: float
    sfdr_db: float
    enob_bits: float
    window: str

    def power_db(self, reference: str = "signal") -> np.ndarray:
        """Spectrum in dB re the tone ('signal') or re the peak bin."""
        if reference == "signal":
            ref = self.signal_power
        elif reference == "peak":
            ref = float(self.power.max())
        else:
            raise ConfigurationError("reference must be 'signal' or 'peak'")
        with np.errstate(divide="ignore"):
            return 10.0 * np.log10(self.power / ref)

    def summary(self) -> str:
        return (
            f"tone {self.tone_frequency_hz:.4g} Hz: "
            f"SNR {self.snr_db:.1f} dB, SNDR {self.sndr_db:.1f} dB, "
            f"THD {self.thd_db:.1f} dB, SFDR {self.sfdr_db:.1f} dB, "
            f"ENOB {self.enob_bits:.2f} bit"
        )


def enob_from_sndr(sndr_db: float) -> float:
    """Effective number of bits: (SNDR - 1.76) / 6.02."""
    return (sndr_db - 1.76) / 6.02


def analyze_tone(
    samples: np.ndarray,
    sample_rate_hz: float,
    tone_hz: float | None = None,
    window: str = "hann",
    n_harmonics: int = 5,
    max_band_hz: float | None = None,
) -> SpectrumAnalysis:
    """Measure SNR/SNDR/THD/SFDR/ENOB of a digitized sine.

    Parameters
    ----------
    samples:
        The converter output record (any scaling).
    sample_rate_hz:
        Output sample rate (1 kS/s in the paper).
    tone_hz:
        Nominal tone frequency; found from the peak bin when omitted.
    window:
        Analysis window (see :mod:`repro.dsp.windows`).
    n_harmonics:
        Harmonics 2..n_harmonics+1 are booked as distortion.
    max_band_hz:
        Restrict the analysis band (e.g. to the 500 Hz filter cutoff);
        defaults to Nyquist.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1 or samples.size < 64:
        raise ConfigurationError("need a 1-D record of at least 64 samples")
    spec = get_window(window, samples.size)
    freqs, power = _one_sided_power(samples, sample_rate_hz, spec)
    bin_hz = freqs[1] - freqs[0]
    n_bins = freqs.size

    band_limit = max_band_hz if max_band_hz is not None else sample_rate_hz / 2.0
    band = freqs <= band_limit + 0.5 * bin_hz

    guard = spec.half_leakage_bins
    # DC region: bin 0 plus the window's leakage skirt.
    dc_bins = np.arange(0, min(guard + 1, n_bins))

    # Locate the tone.
    search = power.copy()
    search[dc_bins] = 0.0
    search[~band] = 0.0
    if tone_hz is None:
        tone_bin = int(np.argmax(search))
    else:
        tone_bin = int(round(tone_hz / bin_hz))
        if not 0 < tone_bin < n_bins:
            raise ConfigurationError("tone frequency outside the spectrum")
        # Allow +/-1 bin of disagreement between nominal and actual.
        local = slice(max(tone_bin - 1, 1), min(tone_bin + 2, n_bins))
        tone_bin = int(np.argmax(power[local])) + max(tone_bin - 1, 1)

    signal_bins = _skirt(tone_bin, guard, n_bins)
    signal_power = float(power[signal_bins].sum())
    if signal_power <= 0.0:
        raise ConfigurationError("no signal power found at the tone bin")

    # Harmonic bins (with aliasing back into the first Nyquist zone).
    harmonic_bins: list[np.ndarray] = []
    for k in range(2, 2 + n_harmonics):
        alias = _alias_bin(k * tone_bin, samples.size)
        if alias in (0, tone_bin):
            continue
        harmonic_bins.append(_skirt(alias, guard, n_bins))
    distortion_mask = np.zeros(n_bins, dtype=bool)
    for bins in harmonic_bins:
        distortion_mask[bins] = True
    distortion_mask[signal_bins] = False
    distortion_mask[dc_bins] = False
    distortion_mask &= band
    distortion_power = float(power[distortion_mask].sum())

    noise_mask = band.copy()
    noise_mask[dc_bins] = False
    noise_mask[signal_bins] = False
    noise_mask[distortion_mask] = False
    noise_power = float(power[noise_mask].sum())
    dc_power = float(power[dc_bins].sum())

    snr_db = 10.0 * np.log10(signal_power / max(noise_power, 1e-300))
    sndr_db = 10.0 * np.log10(
        signal_power / max(noise_power + distortion_power, 1e-300)
    )
    thd_db = (
        10.0 * np.log10(distortion_power / signal_power)
        if distortion_power > 0
        else -np.inf
    )
    spur_mask = noise_mask | distortion_mask
    sfdr_db = (
        10.0 * np.log10(signal_power / float(power[spur_mask].max()))
        if spur_mask.any()
        else np.inf
    )

    return SpectrumAnalysis(
        freqs_hz=freqs,
        power=power,
        tone_frequency_hz=float(tone_bin * bin_hz),
        signal_power=signal_power,
        noise_power=noise_power,
        distortion_power=distortion_power,
        dc_power=dc_power,
        snr_db=float(snr_db),
        sndr_db=float(sndr_db),
        thd_db=float(thd_db),
        sfdr_db=float(sfdr_db),
        enob_bits=enob_from_sndr(float(sndr_db)),
        window=spec.name,
    )


@dataclass(frozen=True)
class TwoToneAnalysis:
    """Intermodulation test result."""

    f1_hz: float
    f2_hz: float
    tone_power: float  # combined power of the two tones
    imd3_db: float  # strongest 3rd-order product re one tone
    imd2_db: float  # strongest 2nd-order product re one tone
    freqs_hz: np.ndarray
    power: np.ndarray

    def summary(self) -> str:
        return (
            f"two-tone {self.f1_hz:.4g}/{self.f2_hz:.4g} Hz: "
            f"IMD2 {self.imd2_db:.1f} dBc, IMD3 {self.imd3_db:.1f} dBc"
        )


def analyze_two_tone(
    samples: np.ndarray,
    sample_rate_hz: float,
    f1_hz: float,
    f2_hz: float,
    window: str = "hann",
) -> TwoToneAnalysis:
    """Two-tone intermodulation measurement.

    Drives of equal amplitude at f1 and f2 produce, in a weakly nonlinear
    converter, 2nd-order products at f2±f1 and 3rd-order products at
    2f1-f2 and 2f2-f1 (the in-band ones that filtering cannot remove).
    Their levels relative to one tone are the IMD figures.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1 or samples.size < 64:
        raise ConfigurationError("need a 1-D record of at least 64 samples")
    if not 0 < f1_hz < f2_hz < sample_rate_hz / 2:
        raise ConfigurationError("need 0 < f1 < f2 < Nyquist")
    spec = get_window(window, samples.size)
    freqs, power = _one_sided_power(samples, sample_rate_hz, spec)
    bin_hz = freqs[1] - freqs[0]
    n_bins = freqs.size
    guard = spec.half_leakage_bins

    def bin_of(f: float) -> int:
        return int(round(f / bin_hz))

    def band_power(f: float) -> float:
        bins = _skirt(bin_of(f), guard, n_bins)
        return float(power[bins].sum())

    p1 = band_power(f1_hz)
    p2 = band_power(f2_hz)
    one_tone = max((p1 + p2) / 2.0, 1e-300)

    imd3_products = [2 * f1_hz - f2_hz, 2 * f2_hz - f1_hz]
    imd2_products = [f2_hz - f1_hz, f2_hz + f1_hz]
    imd3_power = max(
        (band_power(f) for f in imd3_products if 0 < f < sample_rate_hz / 2),
        default=0.0,
    )
    imd2_power = max(
        (band_power(f) for f in imd2_products if 0 < f < sample_rate_hz / 2),
        default=0.0,
    )
    return TwoToneAnalysis(
        f1_hz=f1_hz,
        f2_hz=f2_hz,
        tone_power=p1 + p2,
        imd3_db=10.0 * np.log10(max(imd3_power, 1e-300) / one_tone),
        imd2_db=10.0 * np.log10(max(imd2_power, 1e-300) / one_tone),
        freqs_hz=freqs,
        power=power,
    )


def _one_sided_power(
    samples: np.ndarray, sample_rate_hz: float, spec: WindowSpec
) -> tuple[np.ndarray, np.ndarray]:
    """One-sided windowed power spectrum, coherent-gain corrected."""
    if sample_rate_hz <= 0:
        raise ConfigurationError("sample rate must be positive")
    n = samples.size
    windowed = samples * spec.values
    fft = np.fft.rfft(windowed)
    # Amplitude-correct normalization: a unit-amplitude coherent tone
    # produces signal power 0.5 summed over its leakage skirt.
    scale = 1.0 / (spec.coherent_gain * n)
    power = np.abs(fft * scale) ** 2
    power[1:] *= 2.0  # fold negative frequencies
    if n % 2 == 0:
        power[-1] /= 2.0  # Nyquist bin is not duplicated
    freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate_hz)
    return freqs, power


def _skirt(center: int, half_width: int, n_bins: int) -> np.ndarray:
    lo = max(center - half_width, 0)
    hi = min(center + half_width + 1, n_bins)
    return np.arange(lo, hi)


def _alias_bin(bin_index: int, n_samples: int) -> int:
    """Fold a bin index back into the one-sided spectrum [0, n/2]."""
    period = n_samples
    folded = bin_index % period
    if folded > period // 2:
        folded = period - folded
    return folded
