"""Bit-true cascaded integrator-comb (CIC / SINC^N) decimator.

The paper's first decimation stage is a "3rd order SINC-filter"
(Sec. 3.1). A CIC decimator of order N and rate change R has transfer
function

    H(z) = ( (1 - z^-R) / (1 - z^-1) )^N,

i.e. an N-fold moving-average (sinc-shaped) response with DC gain R^N.
It is implemented Hogenauer-style: N integrators at the input rate, a
rate-change switch, then N combs at the output rate, all in two's-
complement registers of Hogenauer's bound width where wrap-around is
provably harmless.

The class carries filter state so streams can be processed in chunks;
:meth:`reset` restarts it.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .fixed_point import cic_register_width, wrap_twos_complement


class CICDecimator:
    """Hogenauer CIC decimator with persistent streaming state.

    Parameters
    ----------
    order:
        Number of integrator/comb pairs (paper: 3).
    decimation:
        Rate-change factor R (paper's first stage: 32 of the total 128).
    input_bits:
        Width of the input samples (2 for the +/-1 modulator bitstream).
    diff_delay:
        Comb differential delay M (almost always 1).
    """

    def __init__(
        self,
        order: int = 3,
        decimation: int = 32,
        input_bits: int = 2,
        diff_delay: int = 1,
    ):
        if order < 1:
            raise ConfigurationError("CIC order must be >= 1")
        if decimation < 2:
            raise ConfigurationError("CIC decimation must be >= 2")
        if input_bits < 1:
            raise ConfigurationError("input width must be >= 1 bit")
        if diff_delay < 1:
            raise ConfigurationError("differential delay must be >= 1")
        self.order = int(order)
        self.decimation = int(decimation)
        self.diff_delay = int(diff_delay)
        self.input_bits = int(input_bits)
        self.register_bits = cic_register_width(
            input_bits, order, decimation, diff_delay
        )
        self.reset()

    # -- state ----------------------------------------------------------

    def reset(self) -> None:
        """Clear all integrator and comb registers and phase."""
        self._integrators = np.zeros(self.order, dtype=np.int64)
        self._combs = np.zeros((self.order, self.diff_delay), dtype=np.int64)
        self._phase = 0  # position within the current decimation frame

    @property
    def dc_gain(self) -> int:
        """(R * M)^N — divide outputs by this for unity DC gain."""
        return (self.decimation * self.diff_delay) ** self.order

    @property
    def output_rate_divider(self) -> int:
        return self.decimation

    # -- processing -------------------------------------------------------

    def process(self, samples: np.ndarray) -> np.ndarray:
        """Filter and decimate a chunk of integer samples.

        Accepts any integer or boolean array — the modulator bitstream
        in +/-1, 0/1, or raw bool form. Returns the decimated output
        words (full CIC gain, not normalized) as int64. State persists
        across calls, so concatenating the outputs of chunked calls
        equals one big call.
        """
        x = np.asarray(samples)
        if x.dtype.kind not in "iub":
            raise ConfigurationError(
                f"CIC input must be an integer or boolean array "
                f"(got dtype {x.dtype}); floating-point samples are "
                "not accepted — quantize to bitstream levels first"
            )
        x = x.astype(np.int64, copy=False)
        if x.size == 0:
            return np.zeros(0, dtype=np.int64)

        bits = self.register_bits
        # Integrator cascade. Wrapping mod 2^bits commutes with addition,
        # so a cumulative sum followed by one wrap per stage is bit-exact
        # with respect to per-sample wrapping, provided the un-wrapped
        # cumsum cannot overflow int64: each stage's input is bounded by
        # 2^(bits-1) and chunks are < 2^(62-bits) samples.
        max_chunk = 1 << max(62 - bits, 8)
        if x.size > max_chunk:
            # Recurse over sub-chunks; state carries automatically.
            outputs = [
                self.process(x[i : i + max_chunk])
                for i in range(0, x.size, max_chunk)
            ]
            return np.concatenate(outputs)

        stage = x
        for k in range(self.order):
            acc = np.cumsum(stage, dtype=np.int64) + self._integrators[k]
            acc = wrap_twos_complement(acc, bits)
            self._integrators[k] = acc[-1]
            stage = acc

        # Decimation: pick every R-th sample, honouring the carried phase.
        first = (self.decimation - self._phase) % self.decimation
        self._phase = (self._phase + stage.size) % self.decimation
        decimated = stage[first :: self.decimation]
        if decimated.size == 0:
            return np.zeros(0, dtype=np.int64)

        # Comb cascade at the low rate with differential delay M.
        out = decimated
        for k in range(self.order):
            delayed = np.concatenate([self._combs[k], out])
            diff = wrap_twos_complement(
                out - delayed[: out.size], bits
            )
            self._combs[k] = delayed[out.size :][-self.diff_delay :]
            out = diff
        return out

    # -- analysis ----------------------------------------------------------

    def frequency_response(self, freqs_hz: np.ndarray, input_rate_hz: float) -> np.ndarray:
        """Magnitude response |H(f)| normalized to unity at DC.

        |H(f)| = \\| sin(pi f R M / fs) / (R M sin(pi f / fs)) \\|^N.
        """
        f = np.asarray(freqs_hz, dtype=float)
        rm = self.decimation * self.diff_delay
        x = np.pi * f / input_rate_hz
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.sin(rm * x) / (rm * np.sin(x))
        ratio = np.where(np.isclose(np.sin(x), 0.0), 1.0 - 0.0 * f, ratio)
        return np.abs(ratio) ** self.order

    def passband_droop_db(self, freq_hz: float, input_rate_hz: float) -> float:
        """Gain loss at a passband frequency (for FIR droop compensation)."""
        mag = float(self.frequency_response(np.array([freq_hz]), input_rate_hz)[0])
        return -20.0 * np.log10(max(mag, 1e-300))
