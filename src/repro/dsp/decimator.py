"""The two-stage decimation filter of Sec. 3.1, end to end.

Bitstream in (+/-1 at 128 kS/s), 12-bit codes out (1 kS/s):

    +/-1 -> [CIC, sinc^3, R=32] -> [droop-compensating FIR, 32 taps, R=4]
         -> round & saturate to 12 bits.

Numeric plan (all widths asserted by tests):

* modulator full scale (FS) maps to integer 1 at the CIC input;
* the CIC has DC gain 32^3 = 2^15, so FS = 32768 counts at its output
  (17-bit signed words, Hogenauer bound);
* FIR coefficients are Q1.14; the int64 MAC accumulates
  |acc| <= 2^15 * L1(coeffs) * 2^14 < 2^31;
* real output = acc / (2^15 * 2^14); 12-bit code = round(real * 2^11),
  saturated to [-2048, 2047].

A float reference path (:meth:`process_float`) implements the same
cascade in double precision; tests bound the bit-true path's deviation
from it to the expected quantization level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..params import DecimationParams
from .cic import CICDecimator
from .fir import FIRDecimator, design_compensation_fir
from .fixed_point import QFormat, saturate


@dataclass(frozen=True)
class DecimationResult:
    """Decimated output: integer codes plus their real-value scaling."""

    codes: np.ndarray  # int64, saturated to `bits`
    bits: int
    full_scale: float  # real value corresponding to code 2^(bits-1)

    @property
    def values(self) -> np.ndarray:
        """Codes mapped back to modulator-input units (FS = 1)."""
        return self.codes.astype(float) / (1 << (self.bits - 1)) * self.full_scale

    @property
    def lsb(self) -> float:
        return self.full_scale / (1 << (self.bits - 1))


class DecimationFilter:
    """Streaming two-stage decimator (CIC -> FIR -> 12-bit quantizer).

    Parameters
    ----------
    params:
        Architecture parameters; defaults to the paper's
        sinc^3(R=32) + 32-tap FIR(R=4), 500 Hz cutoff, 12-bit output.
    input_rate_hz:
        Modulator sampling rate feeding the filter (128 kHz).
    """

    def __init__(
        self,
        params: DecimationParams | None = None,
        input_rate_hz: float = 128e3,
    ):
        self.params = params or DecimationParams()
        if input_rate_hz <= 0:
            raise ConfigurationError("input rate must be positive")
        self.input_rate_hz = float(input_rate_hz)

        self.cic = CICDecimator(
            order=self.params.cic_order,
            decimation=self.params.cic_decimation,
            input_bits=2,
        )
        fir_rate = self.input_rate_hz / self.params.cic_decimation
        self.fir_coefficients = design_compensation_fir(
            taps=self.params.fir_taps,
            input_rate_hz=fir_rate,
            cutoff_hz=self.params.cutoff_hz,
            cic=self.cic,
        )
        self.fir = FIRDecimator(
            self.fir_coefficients,
            decimation=self.params.fir_decimation,
            coeff_format=QFormat(int_bits=1, frac_bits=14),
        )
        self._fir_rate_hz = fir_rate
        # Float-path state (float CIC + float FIR with same structure).
        self.reset_float()

    # -- rates -------------------------------------------------------------

    @property
    def output_rate_hz(self) -> float:
        """Decimated conversion rate (paper: 1 kS/s)."""
        return self.input_rate_hz / self.params.total_decimation

    @property
    def group_delay_s(self) -> float:
        """Approximate end-to-end group delay of the cascade.

        CIC: N*(R-1)/2 input samples; FIR: (taps-1)/2 samples at its rate.
        """
        cic_delay = (
            self.params.cic_order
            * (self.params.cic_decimation - 1)
            / 2.0
            / self.input_rate_hz
        )
        fir_delay = (self.params.fir_taps - 1) / 2.0 / self._fir_rate_hz
        return cic_delay + fir_delay

    # -- bit-true path ------------------------------------------------------

    def reset(self) -> None:
        """Clear both fixed-point stages (stream restart)."""
        self.cic.reset()
        self.fir.reset()

    def process(self, bitstream: np.ndarray) -> DecimationResult:
        """Decimate a +/-1 bitstream chunk to 12-bit output codes.

        State persists across calls; chunked processing concatenates to
        the same codes as one large call.
        """
        bits = np.asarray(bitstream)
        if bits.dtype.kind == "f":
            rounded = np.round(bits).astype(np.int64)
            if not np.array_equal(rounded, bits):
                raise ConfigurationError(
                    "bitstream must contain exact +/-1 values"
                )
            bits = rounded
        bits = bits.astype(np.int64, copy=False)
        if bits.size and not np.all(np.abs(bits) == 1):
            raise ConfigurationError("bitstream values must be +/-1")

        cic_out = self.cic.process(bits)  # FS = 2^15 counts
        acc = self.fir.process(cic_out)  # FS = 2^15 * 2^14 * gain(=1)
        fs_acc = float(self.cic.dc_gain) / self.fir.coeff_format.scale
        out_half = 1 << (self.params.output_bits - 1)
        # Round-half-away rounding of acc * out_half / fs_acc in integers.
        scaled = np.round(acc.astype(float) * (out_half / fs_acc)).astype(
            np.int64
        )
        codes = saturate(scaled, self.params.output_bits)
        return DecimationResult(
            codes=codes, bits=self.params.output_bits, full_scale=1.0
        )

    # -- float reference path ------------------------------------------------

    def reset_float(self) -> None:
        self._f_integrators = np.zeros(self.params.cic_order)
        self._f_combs = np.zeros((self.params.cic_order, 1))
        self._f_phase_cic = 0
        self._f_fir_hist = np.zeros(self.params.fir_taps - 1)
        self._f_phase_fir = 0

    def process_float(self, bitstream: np.ndarray) -> np.ndarray:
        """Double-precision reference cascade (same structure, no rounding).

        Output is in modulator-input units (FS = 1), without the 12-bit
        quantizer, for measuring the quantizer/word-width penalty.
        """
        x = np.asarray(bitstream, dtype=float)
        if x.size == 0:
            return np.zeros(0)
        stage = x
        for k in range(self.params.cic_order):
            acc = np.cumsum(stage) + self._f_integrators[k]
            self._f_integrators[k] = acc[-1]
            stage = acc
        r = self.params.cic_decimation
        first = (r - self._f_phase_cic) % r
        self._f_phase_cic = (self._f_phase_cic + stage.size) % r
        dec = stage[first::r]
        out = dec
        for k in range(self.params.cic_order):
            delayed = np.concatenate([self._f_combs[k], out])
            diff = out - delayed[: out.size]
            if out.size:
                self._f_combs[k] = delayed[out.size :][-1:]
            out = diff
        out = out / self.cic.dc_gain

        extended = np.concatenate([self._f_fir_hist, out])
        n_out = out.size
        m = self.params.fir_decimation
        first = (m - self._f_phase_fir) % m
        positions = np.arange(first, n_out, m)
        self._f_phase_fir = (self._f_phase_fir + n_out) % m
        if extended.size >= self.params.fir_taps - 1:
            self._f_fir_hist = extended[-(self.params.fir_taps - 1) :]
        if positions.size == 0:
            return np.zeros(0)
        idx = positions[:, None] + np.arange(self.params.fir_taps)[None, :]
        windows = extended[idx]
        return windows @ self.fir_coefficients[::-1]

    # -- analysis -------------------------------------------------------------

    def cascade_frequency_response(
        self, freqs_hz: np.ndarray, quantized: bool = True
    ) -> np.ndarray:
        """|H(f)| of CIC x FIR, normalized CIC to unity DC gain."""
        freqs = np.asarray(freqs_hz, dtype=float)
        cic_mag = self.cic.frequency_response(freqs, self.input_rate_hz)
        fir_mag = self.fir.frequency_response(
            freqs, self._fir_rate_hz, quantized=quantized
        )
        return cic_mag * fir_mag

    def measured_cutoff_hz(self, tolerance_db: float = 3.0) -> float:
        """Frequency where the cascade response first drops by tolerance_db."""
        freqs = np.linspace(1.0, self.output_rate_hz, 4001)
        mag = self.cascade_frequency_response(freqs)
        mag_db = 20.0 * np.log10(np.maximum(mag, 1e-12))
        below = np.nonzero(mag_db <= -tolerance_db)[0]
        if below.size == 0:
            return float(freqs[-1])
        return float(freqs[below[0]])
