"""Spectral windows with the bookkeeping needed for honest SNR numbers.

Computing SNR from a windowed periodogram requires knowing how many bins
the windowed tone leaks into (to collect all signal power) and the window's
noise-equivalent bandwidth (to keep noise totals unbiased). This module
pairs each supported window with that metadata.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import windows as _sp_windows

from ..errors import ConfigurationError


@dataclass(frozen=True)
class WindowSpec:
    """A window function plus its spectral bookkeeping constants.

    Attributes
    ----------
    name:
        Identifier accepted by :func:`get_window`.
    half_leakage_bins:
        Number of bins on each side of a tone's center bin that carry
        significant leaked signal power and must be attributed to the
        signal (and excluded from noise).
    """

    name: str
    values: np.ndarray
    half_leakage_bins: int

    @property
    def coherent_gain(self) -> float:
        """Mean of the window: amplitude scaling of a coherent tone."""
        return float(np.mean(self.values))

    @property
    def noise_equivalent_bandwidth_bins(self) -> float:
        """ENBW in bins: N * sum(w^2) / sum(w)^2."""
        w = self.values
        return float(w.size * np.sum(w**2) / np.sum(w) ** 2)

    @property
    def processing_gain_db(self) -> float:
        """10*log10(ENBW): SNR penalty of the window vs. rectangular."""
        return 10.0 * np.log10(self.noise_equivalent_bandwidth_bins)


_HALF_LEAKAGE = {
    "rectangular": 0,
    "hann": 3,
    "blackmanharris": 4,
    "flattop": 5,
}


def get_window(name: str, n: int) -> WindowSpec:
    """Build a supported window of length ``n``.

    Supported names: ``rectangular``, ``hann``, ``blackmanharris``,
    ``flattop``. Periodic (DFT-even) variants are used, as appropriate for
    spectral analysis.
    """
    if n < 8:
        raise ConfigurationError("window length must be >= 8")
    key = name.lower()
    if key == "rectangular":
        values = np.ones(n)
    elif key == "hann":
        values = _sp_windows.hann(n, sym=False)
    elif key == "blackmanharris":
        values = _sp_windows.blackmanharris(n, sym=False)
    elif key == "flattop":
        values = _sp_windows.flattop(n, sym=False)
    else:
        raise ConfigurationError(
            f"unknown window {name!r}; choose from {sorted(_HALF_LEAKAGE)}"
        )
    return WindowSpec(
        name=key, values=values, half_leakage_bins=_HALF_LEAKAGE[key]
    )
