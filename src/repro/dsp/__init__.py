"""Digital signal processing: the FPGA decimation filter and analysis tools.

The paper's decimation filter (Sec. 3.1) lives in an external FPGA: a
3rd-order SINC (CIC) first stage followed by a 32-tap FIR, decimating by
the OSR of 128 to a 1 kS/s, 12-bit output with 500 Hz cutoff. This package
provides a bit-true fixed-point model of that filter plus the spectral
analysis used to regenerate Fig. 7 (SNR/SNDR/ENOB extraction).
"""

from .fixed_point import QFormat, saturate, wrap_twos_complement
from .cic import CICDecimator
from .fir import FIRDecimator, design_compensation_fir
from .decimator import DecimationFilter, DecimationResult
from .spectrum import (
    SpectrumAnalysis,
    TwoToneAnalysis,
    analyze_tone,
    analyze_two_tone,
    coherent_tone_frequency,
    enob_from_sndr,
    periodogram_db,
)
from .windows import WindowSpec, get_window

__all__ = [
    "CICDecimator",
    "DecimationFilter",
    "DecimationResult",
    "FIRDecimator",
    "QFormat",
    "SpectrumAnalysis",
    "TwoToneAnalysis",
    "WindowSpec",
    "analyze_tone",
    "analyze_two_tone",
    "coherent_tone_frequency",
    "design_compensation_fir",
    "enob_from_sndr",
    "get_window",
    "periodogram_db",
    "saturate",
    "wrap_twos_complement",
]
