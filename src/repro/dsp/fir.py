"""Second-stage FIR decimator: 32 taps, 500 Hz cutoff, droop compensation.

The paper's second stage is "a 32 tap FIR-filter" with a 500 Hz cutoff
(Sec. 3.1). Running at the CIC output rate (4 kHz for the 32/4 stage
split), it has three jobs:

1. low-pass to the 500 Hz band the 1 kS/s output can represent,
2. suppress the CIC alias images folding into that band, and
3. flatten the sinc^3 passband droop of the first stage.

:func:`design_compensation_fir` builds the coefficient set with
``scipy.signal.firwin2`` over a frequency grid whose passband target is the
*inverse* of the CIC droop; :class:`FIRDecimator` applies the quantized
coefficients bit-true with streaming state.
"""

from __future__ import annotations

import numpy as np
from scipy import signal

from ..errors import ConfigurationError
from ..parallel.cache import precompute_cache
from .cic import CICDecimator
from .fixed_point import QFormat


def design_compensation_fir(
    taps: int,
    input_rate_hz: float,
    cutoff_hz: float,
    cic: CICDecimator | None = None,
    transition_hz: float | None = None,
) -> np.ndarray:
    """Design the droop-compensating low-pass FIR (float coefficients).

    The design depends only on the scalar arguments and the CIC's
    (order, decimation, differential delay), so the result is memoized
    in the process-local :func:`~repro.parallel.cache.precompute_cache`:
    building many :class:`~repro.core.chain.ReadoutChain`\\ s (one per
    virtual subject, one per pool worker task) runs ``firwin2`` once per
    process. The returned array is shared and marked read-only; copy it
    before mutating.

    Parameters
    ----------
    taps:
        Number of coefficients (paper: 32).
    input_rate_hz:
        Sample rate at the FIR input (CIC output rate).
    cutoff_hz:
        Band edge of the passband (paper: 500 Hz).
    cic:
        If given, the passband target is 1/|H_cic(f)| so the cascade is
        flat; otherwise the passband target is unity.
    transition_hz:
        Width of the raised-cosine transition band; defaults to 20 % of
        the cutoff.
    """
    if taps < 8:
        raise ConfigurationError("FIR needs at least 8 taps")
    nyquist = input_rate_hz / 2.0
    if not 0 < cutoff_hz < nyquist:
        raise ConfigurationError(
            f"cutoff {cutoff_hz} Hz must lie inside (0, {nyquist}) Hz"
        )
    transition = transition_hz if transition_hz is not None else 0.2 * cutoff_hz
    if cutoff_hz + transition / 2.0 >= nyquist:
        raise ConfigurationError("transition band extends past Nyquist")

    key = (
        "fir_design",
        int(taps),
        float(input_rate_hz),
        float(cutoff_hz),
        float(transition),
        None if cic is None else (cic.order, cic.decimation, cic.diff_delay),
    )
    return precompute_cache().get(
        key,
        lambda: _design_compensation_fir(
            taps, input_rate_hz, cutoff_hz, cic, transition
        ),
    )


def _design_compensation_fir(
    taps: int,
    input_rate_hz: float,
    cutoff_hz: float,
    cic: CICDecimator | None,
    transition: float,
) -> np.ndarray:
    """The actual firwin2 design behind the cache front."""
    nyquist = input_rate_hz / 2.0
    # Dense frequency grid for firwin2.
    n_grid = 512
    freqs = np.linspace(0.0, nyquist, n_grid)
    f_pass = cutoff_hz - transition / 2.0
    f_stop = cutoff_hz + transition / 2.0

    if cic is not None:
        cic_mag = cic.frequency_response(
            freqs, input_rate_hz * cic.decimation
        )
        # Inverse droop, clipped to avoid blowing up near CIC nulls.
        comp = 1.0 / np.clip(cic_mag, 0.05, None)
    else:
        comp = np.ones_like(freqs)

    gains = np.zeros_like(freqs)
    passband = freqs <= f_pass
    gains[passband] = comp[passband]
    in_transition = (freqs > f_pass) & (freqs < f_stop)
    # Raised-cosine rolloff from the compensated passband edge to zero.
    edge_gain = comp[passband][-1] if passband.any() else 1.0
    t = (freqs[in_transition] - f_pass) / (f_stop - f_pass)
    gains[in_transition] = edge_gain * 0.5 * (1.0 + np.cos(np.pi * t))

    coeffs = signal.firwin2(taps, freqs / nyquist, gains, window="hamming")
    # Normalize exact DC gain to the droop-compensation value at DC (=1).
    coeffs = coeffs / coeffs.sum() * gains[0]
    # Cached values are shared between chains; freeze against mutation.
    coeffs.setflags(write=False)
    return coeffs


class FIRDecimator:
    """Bit-true polyphase-equivalent FIR filter + decimator.

    Coefficients are quantized to a Q-format; inputs are integer words
    with a known fractional scale; the multiply-accumulate runs in int64
    (a test asserts the accumulator bound). Streaming: keeps the last
    ``taps - 1`` inputs between calls.

    Parameters
    ----------
    coefficients:
        Float coefficient vector (e.g. from :func:`design_compensation_fir`).
    decimation:
        Output keeps every ``decimation``-th filtered sample.
    coeff_format:
        Q-format for coefficient quantization (default Q1.14, 16-bit,
        leaving headroom for the >1 droop-compensated peak).
    """

    def __init__(
        self,
        coefficients: np.ndarray,
        decimation: int = 4,
        coeff_format: QFormat = QFormat(int_bits=1, frac_bits=14),
    ):
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.ndim != 1 or coefficients.size < 2:
            raise ConfigurationError("coefficients must be a 1-D vector, >= 2 taps")
        if decimation < 1:
            raise ConfigurationError("decimation must be >= 1")
        if np.max(np.abs(coefficients)) > coeff_format.max_value:
            raise ConfigurationError(
                "coefficient magnitude exceeds the coefficient Q-format; "
                "use a wider integer part"
            )
        self.decimation = int(decimation)
        self.coeff_format = coeff_format
        self.coefficients = coefficients
        self.coefficients_int = coeff_format.quantize_to_int(
            coefficients, overflow="raise"
        )
        self.taps = coefficients.size
        self.reset()

    def reset(self) -> None:
        """Clear the streaming history."""
        self._history = np.zeros(self.taps - 1, dtype=np.int64)
        self._phase = 0

    @property
    def quantized_coefficients(self) -> np.ndarray:
        """The real values actually implemented after quantization."""
        return self.coeff_format.to_real(self.coefficients_int)

    def process(self, samples: np.ndarray) -> np.ndarray:
        """Filter + decimate integer samples; returns int64 accumulators.

        The output retains the coefficient fractional scale: real output =
        returned value * input_scale * coeff_format.scale.
        """
        x = np.asarray(samples)
        if x.dtype.kind not in "iu":
            raise ConfigurationError("FIR input must be integer words")
        x = x.astype(np.int64)
        if x.size == 0:
            return np.zeros(0, dtype=np.int64)

        extended = np.concatenate([self._history, x])
        # Full-rate convolution outputs for sample indices aligned with x.
        # Output n (0-based within this chunk) sees extended[n : n+taps].
        n_out_full = x.size
        # Select decimated positions according to carried phase.
        first = (self.decimation - self._phase) % self.decimation
        positions = np.arange(first, n_out_full, self.decimation)
        self._phase = (self._phase + x.size) % self.decimation
        self._history = extended[-(self.taps - 1) :]
        if positions.size == 0:
            return np.zeros(0, dtype=np.int64)

        # Gather windows: rows of length `taps` ending at each position.
        idx = positions[:, None] + np.arange(self.taps)[None, :]
        windows = extended[idx]
        # Convolution uses time-reversed coefficients.
        flipped = self.coefficients_int[::-1].astype(np.int64)
        return windows @ flipped

    def frequency_response(
        self, freqs_hz: np.ndarray, input_rate_hz: float, quantized: bool = True
    ) -> np.ndarray:
        """Magnitude response of the (quantized) coefficient set."""
        coeffs = self.quantized_coefficients if quantized else self.coefficients
        w = 2.0 * np.pi * np.asarray(freqs_hz, dtype=float) / input_rate_hz
        n = np.arange(self.taps)
        response = np.exp(-1j * np.outer(w, n)) @ coeffs
        return np.abs(response)
