"""Two's-complement fixed-point arithmetic helpers for the FPGA models.

The decimation filter of Sec. 3.1 runs in an FPGA; to reproduce its
behaviour faithfully the CIC and FIR stages here operate on integers with
explicit word widths. Two overflow policies exist:

* ``wrap`` — silent two's-complement wrap-around. Correct *inside* a CIC
  (modular arithmetic cancels across integrator/comb pairs) and therefore
  the default there.
* ``saturate`` — clamp to the representable range, modelling the output
  limiter in front of the 12-bit interface.

A third policy, ``raise``, turns overflow into
:class:`~repro.errors.FixedPointOverflowError`; tests use it to prove that
chosen word widths never actually overflow where wrap would be harmful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, FixedPointOverflowError


def wrap_twos_complement(values: np.ndarray, bits: int) -> np.ndarray:
    """Wrap integers into the signed ``bits``-wide two's-complement range.

    Equivalent to keeping only the low ``bits`` bits of the binary
    representation and sign-extending.
    """
    if bits < 1:
        raise ConfigurationError("word width must be >= 1 bit")
    values = np.asarray(values)
    modulus = 1 << bits
    half = 1 << (bits - 1)
    if values.dtype.kind in "iu" and bits <= 62:
        # x & (2^k - 1) == x % 2^k for any integer x; the AND is several
        # times faster than floored modulo on the CIC's hot path.
        return ((values + half) & (modulus - 1)) - half
    return ((values + half) % modulus) - half


def saturate(values: np.ndarray, bits: int) -> np.ndarray:
    """Clamp integers to the signed ``bits``-wide range."""
    if bits < 1:
        raise ConfigurationError("word width must be >= 1 bit")
    values = np.asarray(values)
    top = (1 << (bits - 1)) - 1
    bottom = -(1 << (bits - 1))
    return np.clip(values, bottom, top)


def check_overflow(values: np.ndarray, bits: int, context: str = "") -> np.ndarray:
    """Return ``values`` unchanged, raising if any exceeds ``bits`` width."""
    values = np.asarray(values)
    top = (1 << (bits - 1)) - 1
    bottom = -(1 << (bits - 1))
    if values.size and (values.max() > top or values.min() < bottom):
        raise FixedPointOverflowError(
            f"{context or 'fixed-point value'} outside signed {bits}-bit "
            f"range [{bottom}, {top}]: observed "
            f"[{int(values.min())}, {int(values.max())}]"
        )
    return values


@dataclass(frozen=True)
class QFormat:
    """Signed Qm.n fixed-point format: ``int_bits`` integer (incl. sign
    weight handled separately) and ``frac_bits`` fractional bits.

    ``total_bits = 1 (sign) + int_bits + frac_bits``. The format describes
    how a real number maps to the stored integer: ``stored = round(x * 2**frac_bits)``.
    """

    int_bits: int
    frac_bits: int

    def __post_init__(self) -> None:
        if self.int_bits < 0 or self.frac_bits < 0:
            raise ConfigurationError("Q-format bit counts must be non-negative")
        if self.total_bits < 2:
            raise ConfigurationError("Q-format needs at least 2 total bits")

    @property
    def total_bits(self) -> int:
        return 1 + self.int_bits + self.frac_bits

    @property
    def scale(self) -> float:
        """Real value of one LSB."""
        return 2.0**-self.frac_bits

    @property
    def max_value(self) -> float:
        return ((1 << (self.total_bits - 1)) - 1) * self.scale

    @property
    def min_value(self) -> float:
        return -(1 << (self.total_bits - 1)) * self.scale

    def quantize_to_int(
        self, values: np.ndarray, overflow: str = "saturate"
    ) -> np.ndarray:
        """Real -> stored integer, with the chosen overflow policy."""
        raw = np.round(np.asarray(values, dtype=float) / self.scale).astype(
            np.int64
        )
        if overflow == "saturate":
            return saturate(raw, self.total_bits)
        if overflow == "wrap":
            return wrap_twos_complement(raw, self.total_bits)
        if overflow == "raise":
            return check_overflow(raw, self.total_bits, "Q-format quantize")
        raise ConfigurationError(f"unknown overflow policy {overflow!r}")

    def to_real(self, stored: np.ndarray) -> np.ndarray:
        """Stored integer -> real value."""
        return np.asarray(stored, dtype=float) * self.scale

    def quantize(self, values: np.ndarray, overflow: str = "saturate") -> np.ndarray:
        """Round-trip: the nearest representable real values."""
        return self.to_real(self.quantize_to_int(values, overflow=overflow))

    def quantization_noise_power(self) -> float:
        """LSB^2 / 12, the white-quantizer noise power."""
        return self.scale**2 / 12.0


def required_bits_for_magnitude(max_magnitude: int) -> int:
    """Smallest signed width holding integers of the given magnitude."""
    if max_magnitude < 0:
        raise ConfigurationError("magnitude must be non-negative")
    return int(max_magnitude).bit_length() + 1


def cic_register_width(input_bits: int, order: int, decimation: int, diff_delay: int = 1) -> int:
    """Hogenauer's register-width bound for a CIC decimator.

    ``B_max = ceil(order * log2(decimation * diff_delay)) + input_bits``.
    All integrator and comb registers of this width cannot produce an
    erroneous output despite internal wrap-around.
    """
    if input_bits < 1 or order < 1 or decimation < 1 or diff_delay < 1:
        raise ConfigurationError("CIC width arguments must be >= 1")
    growth = order * np.log2(decimation * diff_delay)
    return int(np.ceil(growth)) + input_bits
