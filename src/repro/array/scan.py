"""Array scanning and strongest-element selection (Sec. 2, Fig. 1).

The paper's placement-tolerance trick: scan all elements, measure the
pulsatile amplitude each one sees, lock onto the strongest. The scan is
also the vessel-localization primitive ("localizing blood vessels, buried
in tissue"): the amplitude map across the array estimates where the artery
runs beneath the sensor.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, SignalQualityError
from ..parallel import ExecutorTelemetry, ParallelExecutor
from .array2d import SensorArray
from .mux import AnalogMultiplexer, ScanSchedule, analyze_mux_timing, plan_scan

#: Master seed for the per-element noise streams of a parallel scan.
#: Fixed so repeated scans (and any worker count) draw identically.
_SCAN_SEED = 20040213


def _scan_element_task(
    item: tuple, seed: np.random.SeedSequence
) -> np.ndarray:
    """Record one element on a private chain copy (executor task).

    The copy starts from the shared chain's pre-scan state — the same
    "bank of matched modulators" semantics as the batched scan — and is
    reseeded from the element's spawned child so per-element noise is
    independent rather than a replay of identical draws. With a
    noiseless configuration the records are bit-identical to the
    batched path.
    """
    chain, segment, element = item
    chain = copy.deepcopy(chain)
    chain.chip.modulator.reseed(np.random.default_rng(seed))
    return chain.record_pressure(segment, element=element).values


@dataclass(frozen=True)
class ElementHealthReport:
    """Per-element health of one scan (graceful-degradation input).

    All fractions are over the scanned record; ``healthy`` combines them
    against the thresholds :meth:`ScanController.element_health` was
    given. Signals are in the scan records' units (modulator FS).
    """

    #: Fraction of each element's samples at the converter rails.
    saturated_fraction: np.ndarray
    #: Fraction of each element's rolling windows that are flat.
    flat_fraction: np.ndarray
    #: Peak-to-peak amplitude per element.
    amplitudes: np.ndarray
    #: Elements fit to carry the measurement.
    healthy: np.ndarray

    @property
    def n_healthy(self) -> int:
        return int(np.count_nonzero(self.healthy))

    def describe(self) -> str:
        lines = ["element health:"]
        for k in range(self.healthy.size):
            verdict = "ok" if self.healthy[k] else "DEGRADED"
            lines.append(
                f"  element {k}: {verdict} "
                f"(sat {self.saturated_fraction[k]:.1%}, "
                f"flat {self.flat_fraction[k]:.1%}, "
                f"amp {self.amplitudes[k]:.3e})"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class ScanTruncation:
    """Word accounting for one scan's records (no more silent drops).

    Element records can legitimately differ in length — the element that
    was already routed when the scan started needs no filter flush, so
    its record keeps the words the FPGA suppresses everywhere else. The
    scan aligns all elements on the common word count; this report books
    exactly what that alignment dropped, per element.
    """

    #: Words each element's record held before alignment.
    words_recorded: np.ndarray
    #: Common word count every column was cut to.
    words_kept: int
    #: Trailing words dropped from each element's record.
    words_dropped: np.ndarray

    @property
    def total_dropped(self) -> int:
        return int(self.words_dropped.sum())

    def describe(self) -> str:
        uneven = np.flatnonzero(self.words_dropped)
        head = (
            f"scan truncation: kept {self.words_kept} words/element, "
            f"dropped {self.total_dropped} total"
        )
        if uneven.size == 0:
            return head + " (all records equal)"
        detail = ", ".join(
            f"element {k}: -{self.words_dropped[k]}" for k in uneven[:8]
        )
        if uneven.size > 8:
            detail += f", ... ({uneven.size} elements affected)"
        return f"{head} ({detail})"


@dataclass(frozen=True)
class ElementSelection:
    """Outcome of a selection scan."""

    best_index: int
    best_row: int
    best_col: int
    #: Per-element pulsatile amplitude metric (same units as the input).
    amplitude_map: np.ndarray  # shape (rows, cols)
    #: Placement-quality figure: the winner's amplitude over the median
    #: amplitude of the *eligible* (non-excluded) elements. Unhealthy
    #: elements still show in the map but never bias this statistic.
    contrast: float

    def describe(self) -> str:
        lines = [
            f"selected element ({self.best_row}, {self.best_col}) "
            f"with contrast {self.contrast:.2f}"
        ]
        for r in range(self.amplitude_map.shape[0]):
            cells = "  ".join(
                f"{self.amplitude_map[r, c]:.3e}"
                for c in range(self.amplitude_map.shape[1])
            )
            lines.append(f"  row {r}: {cells}")
        return "\n".join(lines)


class ScanController:
    """Sequences the multiplexer through the array and picks the winner.

    Parameters
    ----------
    mux:
        The multiplexer to drive.
    dwell_samples:
        Samples recorded per element per visit, *after* discarding the
        filter-flush words (see :class:`~repro.array.mux.MuxTimingAnalysis`).
    discard_samples:
        Words dropped after each switch while the decimation filter
        flushes.
    """

    def __init__(
        self,
        mux: AnalogMultiplexer,
        dwell_samples: int = 1024,
        discard_samples: int = 16,
    ):
        if dwell_samples < 2:
            raise ConfigurationError("dwell must be >= 2 samples")
        if discard_samples < 0:
            raise ConfigurationError("discard must be >= 0")
        self.mux = mux
        self.dwell_samples = int(dwell_samples)
        self.discard_samples = int(discard_samples)
        #: Telemetry of the most recent parallel scan (``jobs`` passed).
        self.last_scan_telemetry: ExecutorTelemetry | None = None
        #: Word accounting of the most recent :meth:`scan_records` call.
        self.last_scan_truncation: ScanTruncation | None = None
        #: Whether the most recent scan ran through the fused batch kernel.
        self.last_scan_fused: bool = False

    @property
    def array(self) -> SensorArray:
        return self.mux.array

    def scan_order(self) -> list[int]:
        """Row-major visiting order of all elements."""
        return list(range(self.array.n_elements))

    def scan_records(
        self,
        chain,
        element_pressures_pa: np.ndarray | None = None,
        dwell_s: float = 2.0,
        batched: bool = False,
        jobs: int | None = None,
        *,
        segments: np.ndarray | None = None,
        fused: bool = False,
    ) -> np.ndarray:
        """Sequence a chain through every element; return their records.

        The single owner of element-scan sequencing
        (:meth:`~repro.core.chain.ReadoutChain.scan_elements` delegates
        here). Returns (n_words, n_elements) decimated values over the
        common word count; per-element word counts can legitimately
        differ (the element routed at scan start skips the filter
        flush), and whatever the alignment drops is booked in
        :attr:`last_scan_truncation` rather than lost silently.

        Parameters
        ----------
        chain:
            A :class:`~repro.core.chain.ReadoutChain` built on the same
            array this controller's multiplexer drives.
        element_pressures_pa:
            (n_mod_samples, n_elements) membrane-pressure field covering
            at least ``n_elements * dwell_s`` of modulator clocks.
        dwell_s:
            Seconds spent on each element.
        batched:
            Convert all elements' dwell segments through one batched
            modulator call (a bank of matched modulators) instead of
            visiting them sequentially; the difference is confined to
            the post-switch words the FPGA suppresses.
        jobs:
            If given, fan the elements out over a
            :class:`~repro.parallel.ParallelExecutor` pool of this
            width (``batched`` is then ignored). Each element runs on a
            private copy of the chain starting from its pre-scan state
            — the batched semantics — with per-element noise streams
            spawned from a fixed master seed, so the records are
            bit-identical for every ``jobs`` value (and identical to
            ``batched=True`` for noiseless configurations). The run's
            telemetry lands in :attr:`last_scan_telemetry`.
        segments:
            Alternative to ``element_pressures_pa`` for large arrays:
            shape (n_elements, dwell_mod_samples), row k the pressure
            element k sees during its own visit. O(elements x dwell)
            memory instead of O(samples x elements); implies the
            batched/fused paths (``jobs`` and the sequential path need
            the full field). ``dwell_s`` is ignored — the dwell is the
            row length.
        fused:
            Run the whole scan as one fused batch-kernel pass, every
            element a lane — the 64x64-scan-in-one-call path. Falls
            back to ``batched=True`` (bit-identical for every supported
            configuration; see :mod:`repro.array.fusedscan`) when the
            C kernel is unavailable or the chain configuration is
            outside the kernel's envelope. :attr:`last_scan_fused`
            records which path ran.
        """
        n_elements = self.array.n_elements
        if segments is not None:
            segments = np.asarray(segments, dtype=float)
            if segments.ndim != 2 or segments.shape[0] != n_elements:
                raise ConfigurationError(
                    "segments must have shape (n_elements, dwell_samples)"
                )
            if jobs is not None or not (batched or fused):
                raise ConfigurationError(
                    "segments are supported by the batched/fused scan "
                    "paths only; pass the full field for jobs/sequential"
                )
            dwell_mod = segments.shape[1]
            pressures = None
        else:
            if element_pressures_pa is None:
                raise ConfigurationError(
                    "need a pressure field or per-element segments"
                )
            pressures = np.asarray(element_pressures_pa, dtype=float)
            fs = chain.params.modulator.sampling_rate_hz
            dwell_mod = int(dwell_s * fs)
            if pressures.shape[0] < dwell_mod * n_elements:
                raise ConfigurationError(
                    "pressure field too short for the requested scan"
                )
        records = []
        self.last_scan_fused = False
        if fused:
            from .fusedscan import run_fused_scan

            if segments is None:
                idx = np.arange(n_elements)
                windows = pressures[: dwell_mod * n_elements].reshape(
                    n_elements, dwell_mod, n_elements
                )
                segments = windows[idx, :, idx]
            records = run_fused_scan(chain, segments)
            if records is not None:
                self.last_scan_fused = True
            else:
                records = []
                batched = True
        if not records and jobs is not None:
            executor = ParallelExecutor(jobs=jobs)
            items = [
                (chain, pressures[k * dwell_mod : (k + 1) * dwell_mod], k)
                for k in range(n_elements)
            ]
            records = executor.map(
                _scan_element_task, items, seed=_SCAN_SEED
            )
            self.last_scan_telemetry = executor.telemetry
        elif not records and batched:
            if segments is not None:
                mod_outs = chain.chip.acquire_scan_segments(segments)
            else:
                mod_outs = chain.chip.acquire_pressure_scan(
                    pressures[: dwell_mod * n_elements], dwell_mod
                )
            for k, mod_out in enumerate(mod_outs):
                chain.fpga.select_element(k)
                payload = chain.fpga.process(
                    mod_out.bitstream.astype(np.int64)
                )
                payload += chain.fpga.flush()
                records.append(chain._collect(payload, k).values)
        elif not records:
            for k in range(n_elements):
                chunk = pressures[k * dwell_mod : (k + 1) * dwell_mod]
                rec = chain.record_pressure(chunk, element=k)
                records.append(rec.values)
        sizes = np.array([r.size for r in records])
        n = int(sizes.min())
        self.last_scan_truncation = ScanTruncation(
            words_recorded=sizes,
            words_kept=n,
            words_dropped=sizes - n,
        )
        return np.column_stack([r[:n] for r in records])

    def element_health(
        self,
        element_signals: np.ndarray,
        rail_level: float = 2007.0 / 2048.0,
        flat_window: int = 64,
        flat_threshold: float = 0.25 / 2048.0,
        max_saturated_fraction: float = 0.02,
        max_flat_fraction: float = 0.5,
    ) -> ElementHealthReport:
        """Score every element's record for saturation and flatline.

        The graceful-degradation screen behind ``scan_and_select(...,
        health_screen=True)``: an element whose record spends more than
        ``max_saturated_fraction`` at the converter rails (railed
        modulator, stuck comparator) or more than ``max_flat_fraction``
        of its rolling windows below ``flat_threshold`` standard
        deviation (stiction, dropout) is marked unhealthy and excluded
        from selection. Thresholds are in the scan records' units
        (modulator FS; the defaults translate the quality mask's
        code-LSB thresholds).
        """
        signals = np.asarray(element_signals, dtype=float)
        if signals.ndim != 2 or signals.shape[1] != self.array.n_elements:
            raise ConfigurationError(
                f"expected (n_samples, {self.array.n_elements}) signals"
            )
        n = signals.shape[0]
        saturated = np.mean(np.abs(signals) >= rail_level, axis=0)
        if n >= flat_window:
            window = flat_window
            shape = (n - window + 1, window, signals.shape[1])
            strides = (signals.strides[0],) + signals.strides
            windows = np.lib.stride_tricks.as_strided(
                signals, shape=shape, strides=strides
            )
            flat = np.mean(windows.std(axis=1) < flat_threshold, axis=0)
        else:
            flat = (signals.std(axis=0) < flat_threshold).astype(float)
        amplitudes = signals.max(axis=0) - signals.min(axis=0)
        healthy = (
            (saturated <= max_saturated_fraction)
            & (flat <= max_flat_fraction)
            & (amplitudes > 0.0)
        )
        return ElementHealthReport(
            saturated_fraction=saturated,
            flat_fraction=flat,
            amplitudes=amplitudes,
            healthy=healthy,
        )

    def select_strongest(
        self,
        element_signals: np.ndarray,
        metric: str = "peak_to_peak",
        exclude: np.ndarray | None = None,
    ) -> ElementSelection:
        """Pick the element with the strongest pulsatile signal.

        Parameters
        ----------
        element_signals:
            Shape (n_samples, n_elements): the per-element readout records
            gathered during the scan (capacitance, code or pressure units —
            the metric is scale-invariant across elements).
        metric:
            ``"peak_to_peak"`` (default, what a simple implementation
            does) or ``"std"`` (more robust to single-sample glitches).
        exclude:
            Optional boolean mask of elements barred from selection
            (``True`` = excluded) — typically ``~health.healthy`` from
            :meth:`element_health`. Excluded amplitudes still appear in
            the amplitude map; the winner choice and the contrast
            median skip them.
        """
        signals = np.asarray(element_signals, dtype=float)
        if signals.ndim != 2 or signals.shape[1] != self.array.n_elements:
            raise ConfigurationError(
                f"expected (n_samples, {self.array.n_elements}) signals"
            )
        if signals.shape[0] < 2:
            raise ConfigurationError("need at least 2 samples per element")
        if metric == "peak_to_peak":
            amplitudes = signals.max(axis=0) - signals.min(axis=0)
        elif metric == "std":
            amplitudes = signals.std(axis=0)
        else:
            raise ConfigurationError("metric must be peak_to_peak|std")

        eligible = amplitudes.copy()
        if exclude is not None:
            exclude = np.asarray(exclude, dtype=bool)
            if exclude.shape != (self.array.n_elements,):
                raise ConfigurationError(
                    "exclude mask must have one entry per element"
                )
            if exclude.all():
                raise SignalQualityError(
                    "every element is excluded as unhealthy; cannot "
                    "select a measurement element"
                )
            eligible[exclude] = -np.inf

        if not np.any(eligible > 0.0):
            raise SignalQualityError(
                "no element shows a pulsatile signal; sensor is probably "
                "not coupled to the tissue"
            )
        best = int(np.argmax(eligible))
        row, col = self.array.geometry.element_rowcol(best)
        rows, cols = self.array.params.rows, self.array.params.cols
        amp_map = amplitudes.reshape(rows, cols)
        # Placement-quality figure: best over the *eligible* median. A
        # half-dead array must not inflate its own contrast by letting
        # railed/flatlined amplitudes into the reference statistic.
        if exclude is not None:
            median = float(np.median(amplitudes[~exclude]))
        else:
            median = float(np.median(amplitudes))
        contrast = float(amplitudes[best] / median) if median > 0 else float("inf")
        self.mux.select_index(best)
        return ElementSelection(
            best_index=best,
            best_row=row,
            best_col=col,
            amplitude_map=amp_map,
            contrast=contrast,
        )

    def scan_and_select(
        self,
        chain,
        element_pressures_pa: np.ndarray | None = None,
        dwell_s: float = 1.5,
        metric: str = "peak_to_peak",
        batched: bool = True,
        settle_words: int | None = None,
        jobs: int | None = None,
        health_screen: bool = False,
        *,
        segments: np.ndarray | None = None,
        fused: bool = False,
    ) -> ElementSelection:
        """Drive a full scan through a readout chain and pick the winner.

        Sequences the chain through every element (:meth:`scan_records`,
        batched through the modulator fast path by default), drops the
        filter-flush words at the start of the common record, and feeds
        the settled signals to :meth:`select_strongest`. With
        ``health_screen=True`` the settled records are first scored by
        :meth:`element_health` and unhealthy elements (saturated or
        flatlined — a railed modulator looks *strong* to a peak-to-peak
        metric) are excluded from the selection.

        Parameters
        ----------
        chain:
            A :class:`~repro.core.chain.ReadoutChain` built on the same
            array this controller's multiplexer drives.
        element_pressures_pa:
            (n_mod_samples, n_elements) membrane-pressure field covering
            at least ``n_elements * dwell_s`` of modulator clocks.
        dwell_s:
            Seconds spent on each element.
        batched:
            Convert all elements through one batched modulator call.
        settle_words:
            Output words discarded before the amplitude metric; defaults
            to this controller's ``discard_samples``.
        jobs:
            Worker count for a parallel scan (see :meth:`scan_records`).
        health_screen:
            Exclude elements :meth:`element_health` marks degraded.
        """
        records = self.scan_records(
            chain,
            element_pressures_pa,
            dwell_s=dwell_s,
            batched=batched,
            jobs=jobs,
            segments=segments,
            fused=fused,
        )
        drop = self.discard_samples if settle_words is None else int(settle_words)
        settled = records[drop:]
        exclude = None
        if health_screen:
            exclude = ~self.element_health(settled).healthy
        return self.select_strongest(settled, metric=metric, exclude=exclude)

    def localize_source(
        self,
        element_signals: np.ndarray,
        exclude: np.ndarray | None = None,
    ) -> tuple[float, float]:
        """Amplitude-weighted centroid: the vessel-localization estimate.

        Returns the (x, y) position [m] in array coordinates where the
        pulsatile source appears to lie. With only 2x2 elements this is a
        coarse interpolation, but it demonstrates the paper's claim that
        the array "can also be used for localizing blood vessels".

        ``exclude`` (``True`` = excluded, typically ``~health.healthy``
        from :meth:`element_health`) zeroes an element's centroid weight:
        a railed element looks *strong* to peak-to-peak and would
        otherwise drag the vessel estimate toward a dead pixel. Raises
        :class:`SignalQualityError` when every element is excluded.
        """
        signals = np.asarray(element_signals, dtype=float)
        if signals.ndim != 2 or signals.shape[1] != self.array.n_elements:
            raise ConfigurationError(
                f"expected (n_samples, {self.array.n_elements}) signals"
            )
        amplitudes = signals.max(axis=0) - signals.min(axis=0)
        if exclude is not None:
            exclude = np.asarray(exclude, dtype=bool)
            if exclude.shape != (self.array.n_elements,):
                raise ConfigurationError(
                    "exclude mask must have one entry per element"
                )
            if exclude.all():
                raise SignalQualityError(
                    "every element is excluded as unhealthy; cannot "
                    "localize the source"
                )
            amplitudes = np.where(exclude, 0.0, amplitudes)
        total = float(amplitudes.sum())
        if total <= 0.0:
            raise SignalQualityError("no pulsatile signal to localize")
        centers = self.array.geometry.element_centers_m()
        weights = amplitudes / total
        x = float(np.dot(weights, centers[:, 0]))
        y = float(np.dot(weights, centers[:, 1]))
        return (x, y)

    def scan_and_localize(
        self,
        chain,
        element_pressures_pa: np.ndarray | None = None,
        dwell_s: float = 1.5,
        batched: bool = True,
        settle_words: int | None = None,
        jobs: int | None = None,
        health_screen: bool = True,
        *,
        segments: np.ndarray | None = None,
        fused: bool = False,
    ) -> tuple[float, float]:
        """Scan the array through a chain and localize the vessel.

        The localization sibling of :meth:`scan_and_select`: runs
        :meth:`scan_records`, drops the filter-flush words, screens the
        settled records with :meth:`element_health` (on by default —
        a railed element skews a centroid far more than a selection)
        and feeds the surviving elements to :meth:`localize_source`.
        """
        records = self.scan_records(
            chain,
            element_pressures_pa,
            dwell_s=dwell_s,
            batched=batched,
            jobs=jobs,
            segments=segments,
            fused=fused,
        )
        drop = self.discard_samples if settle_words is None else int(settle_words)
        settled = records[drop:]
        exclude = None
        if health_screen:
            exclude = ~self.element_health(settled).healthy
        return self.localize_source(settled, exclude=exclude)

    def schedule(
        self,
        decimator,
        valid_words: int = 1,
        banks: int = 1,
    ) -> ScanSchedule:
        """Plan the N x N scan timetable for this array and a decimator.

        Wraps :func:`~repro.array.mux.analyze_mux_timing` +
        :func:`~repro.array.mux.plan_scan`: the settling budget fixes the
        words discarded per visit, ``valid_words`` sets the dwell beyond
        it, and ``banks`` models concurrent ΣΔ converter banks (e.g.
        ``banks=cols`` for a per-column converter).
        """
        timing = analyze_mux_timing(self.mux, decimator)
        return plan_scan(
            timing,
            rows=self.array.params.rows,
            cols=self.array.params.cols,
            output_rate_hz=decimator.output_rate_hz,
            total_decimation=decimator.params.total_decimation,
            valid_words=valid_words,
            banks=banks,
        )
