"""Transducer array, analog multiplexer and scan/selection logic.

Sec. 2 of the paper: "an array of force detectors is used and the sensor
element with the strongest signal is selected during measurement. This can
also be used for localizing blood vessels." Sec. 2.2 / Fig. 4: the 2x2
array connects to the single readout through two synchronized analog
multiplexers (row and column select), a modular design extensible to
larger arrays; settling when switching elements is limited by the
sigma-delta converter's signal bandwidth.
"""

from .element import ArrayElement
from .array2d import SensorArray
from .fusedscan import fused_scan_supported, run_fused_scan
from .imaging import (
    ArteryEstimate,
    FusionResult,
    amplitude_image,
    fuse_elements,
    localize_artery,
    log_parabola_vertex,
    register_shift,
)
from .mux import (
    AnalogMultiplexer,
    MuxTimingAnalysis,
    ScanSchedule,
    analyze_mux_timing,
    plan_scan,
)
from .scan import ElementSelection, ScanController, ScanTruncation

__all__ = [
    "AnalogMultiplexer",
    "ArrayElement",
    "ArteryEstimate",
    "ElementSelection",
    "FusionResult",
    "MuxTimingAnalysis",
    "ScanController",
    "ScanSchedule",
    "ScanTruncation",
    "SensorArray",
    "amplitude_image",
    "analyze_mux_timing",
    "fuse_elements",
    "fused_scan_supported",
    "localize_artery",
    "log_parabola_vertex",
    "plan_scan",
    "register_shift",
    "run_fused_scan",
]
