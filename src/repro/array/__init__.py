"""Transducer array, analog multiplexer and scan/selection logic.

Sec. 2 of the paper: "an array of force detectors is used and the sensor
element with the strongest signal is selected during measurement. This can
also be used for localizing blood vessels." Sec. 2.2 / Fig. 4: the 2x2
array connects to the single readout through two synchronized analog
multiplexers (row and column select), a modular design extensible to
larger arrays; settling when switching elements is limited by the
sigma-delta converter's signal bandwidth.
"""

from .element import ArrayElement
from .array2d import SensorArray
from .mux import AnalogMultiplexer, MuxTimingAnalysis
from .scan import ElementSelection, ScanController

__all__ = [
    "AnalogMultiplexer",
    "ArrayElement",
    "ElementSelection",
    "MuxTimingAnalysis",
    "ScanController",
    "SensorArray",
]
