"""2-D pulsatile pressure imaging over the wrist (the N x N workload).

The paper scales its 2x2 array to "localizing blood vessels, buried in
tissue"; at 8x8 and beyond the scan's per-element amplitude map becomes a
genuine pressure *image* of the artery's coupling bump. This module turns
that image into quantitative estimates:

* :func:`amplitude_image` — per-element pulsatile amplitude as a
  (rows, cols) map;
* :func:`localize_artery` — the artery as a *line* (transverse position
  plus tilt), each row's Gaussian coupling profile located to sub-pixel
  accuracy by a log-parabola vertex fit and the row estimates fused by a
  weighted straight-line fit;
* :func:`register_shift` — sub-pixel registration of two maps
  (cross-correlation peak with quadratic refinement), the drift-tracking
  primitive between imaging frames;
* :func:`fuse_elements` — amplitude-weighted (matched-filter) fusion of
  many element records into one waveform, which beats strongest-element
  selection whenever more than one element couples to the artery.

Everything here operates on plain NumPy maps/records, independent of how
they were acquired (fused kernel scan, batched scan, or analytic gains).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, SignalQualityError
from ..mems.geometry import ArrayGeometry


def amplitude_image(
    element_signals: np.ndarray,
    rows: int,
    cols: int,
    metric: str = "peak_to_peak",
) -> np.ndarray:
    """Fold per-element records into a (rows, cols) amplitude map.

    Row-major element order (the scan order): element ``(r, c)`` lands at
    ``map[r, c]``. Units follow the input records.
    """
    signals = np.asarray(element_signals, dtype=float)
    if signals.ndim != 2 or signals.shape[1] != rows * cols:
        raise ConfigurationError(
            f"expected (n_samples, {rows * cols}) signals for a "
            f"{rows}x{cols} map"
        )
    if metric == "peak_to_peak":
        amplitudes = signals.max(axis=0) - signals.min(axis=0)
    elif metric == "std":
        amplitudes = signals.std(axis=0)
    else:
        raise ConfigurationError("metric must be peak_to_peak|std")
    return amplitudes.reshape(rows, cols)


def log_parabola_vertex(
    positions_m: np.ndarray, amplitudes: np.ndarray
) -> float:
    """Sub-pixel peak of a sampled Gaussian profile.

    Fits a parabola to ln(amplitude) vs position: for a Gaussian profile
    ln(A) is exactly quadratic, so the vertex recovers the peak position
    — including peaks outside the sampled footprint, where a plain
    centroid saturates at the array edge. Degenerate (flat or inverted)
    fits fall back to the strongest sample's position.
    """
    xs = np.asarray(positions_m, dtype=float)
    amp = np.asarray(amplitudes, dtype=float)
    if xs.shape != amp.shape or xs.ndim != 1 or xs.size < 1:
        raise ConfigurationError(
            "need matching 1-D positions and amplitudes"
        )
    if xs.size < 3:
        return float(xs[int(np.argmax(amp))])
    log_amp = np.log(np.clip(amp, 1e-30, None))
    coeffs = np.polyfit(xs, log_amp, 2)
    if coeffs[0] >= 0.0:
        return float(xs[int(np.argmax(amp))])
    return float(-coeffs[1] / (2.0 * coeffs[0]))


@dataclass(frozen=True)
class ArteryEstimate:
    """The artery as a line in array coordinates (x transverse, y axial).

    ``x(y) = transverse_m + tan(angle_rad) * y``: where the vessel axis
    crosses each array row. ``row_positions_m`` holds the per-row
    sub-pixel vertex estimates that fed the line fit (NaN where a row had
    no usable profile); ``n_rows_used`` how many rows survived.
    """

    transverse_m: float
    angle_rad: float
    row_positions_m: np.ndarray
    n_rows_used: int

    def line_x_m(self, y_m: float) -> float:
        """Transverse artery position at axial coordinate ``y_m``."""
        return self.transverse_m + math.tan(self.angle_rad) * y_m


def localize_artery(
    amplitude_map: np.ndarray,
    geometry: ArrayGeometry,
    exclude: np.ndarray | None = None,
    min_rows: int = 2,
) -> ArteryEstimate:
    """Sub-pixel artery-line estimate from a pulsatile amplitude map.

    Each array row samples the artery's Gaussian coupling profile along
    x; :func:`log_parabola_vertex` locates the per-row peak, and a
    weighted least-squares line through the row peaks (weights: each
    row's peak amplitude) gives transverse position and tilt. With fewer
    than ``min_rows`` usable rows the estimate degrades gracefully to the
    column-collapsed vertex at zero tilt (the 1-D estimate
    ``experiments/localization.py`` uses).

    ``exclude`` is an optional (rows*cols,) or (rows, cols) boolean mask
    of unhealthy elements (``True`` = excluded); their amplitudes are
    zeroed before fitting so a railed pixel cannot bend the line.
    """
    amps = np.asarray(amplitude_map, dtype=float)
    rows, cols = geometry.rows, geometry.cols
    if amps.shape != (rows, cols):
        raise ConfigurationError(
            f"amplitude map must have shape ({rows}, {cols})"
        )
    if exclude is not None:
        mask = np.asarray(exclude, dtype=bool).reshape(rows, cols)
        if mask.all():
            raise SignalQualityError(
                "every element is excluded; cannot localize the artery"
            )
        amps = np.where(mask, 0.0, amps)
    if not np.any(amps > 0.0):
        raise SignalQualityError("no pulsatile amplitude to localize")

    centers = geometry.element_centers_m()
    xs = centers[:, 0].reshape(rows, cols)[0]
    ys = centers[:, 1].reshape(rows, cols)[:, 0]

    row_positions = np.full(rows, np.nan)
    row_weights = np.zeros(rows)
    for r in range(rows):
        good = amps[r] > 0.0
        if np.count_nonzero(good) < 3:
            continue
        row_positions[r] = log_parabola_vertex(xs[good], amps[r][good])
        row_weights[r] = amps[r].max()
    usable = np.isfinite(row_positions) & (row_weights > 0.0)
    n_used = int(np.count_nonzero(usable))

    if n_used >= min_rows and rows >= 2:
        slope, intercept = np.polyfit(
            ys[usable],
            row_positions[usable],
            1,
            w=np.sqrt(row_weights[usable]),
        )
        return ArteryEstimate(
            transverse_m=float(intercept),
            angle_rad=float(math.atan(slope)),
            row_positions_m=row_positions,
            n_rows_used=n_used,
        )
    # Graceful 1-D fallback: collapse rows, fit the column profile.
    col_amp = amps.mean(axis=0)
    good = col_amp > 0.0
    if np.count_nonzero(good) >= 3:
        x0 = log_parabola_vertex(xs[good], col_amp[good])
    else:
        x0 = float(xs[int(np.argmax(col_amp))])
    return ArteryEstimate(
        transverse_m=float(x0),
        angle_rad=0.0,
        row_positions_m=row_positions,
        n_rows_used=n_used,
    )


def _parabolic_offset(cm1: float, c0: float, cp1: float) -> float:
    """Sub-sample peak offset from three correlation samples."""
    denom = cm1 - 2.0 * c0 + cp1
    if denom >= 0.0:
        return 0.0
    delta = 0.5 * (cm1 - cp1) / denom
    return float(np.clip(delta, -0.5, 0.5))


def register_shift(
    reference_map: np.ndarray,
    shifted_map: np.ndarray,
    pitch_m: float,
) -> tuple[float, float]:
    """Sub-pixel (dx, dy) displacement of one map relative to another.

    Zero-padded cross-correlation of the mean-removed maps, peak
    localized to sub-pixel by a 1-D quadratic fit along each axis —
    standard image registration, here tracking how the artery's coupling
    bump walks across the array as the cuff drifts between frames.
    Returns meters (positive dx: the pattern moved toward +x).
    """
    a = np.asarray(reference_map, dtype=float)
    b = np.asarray(shifted_map, dtype=float)
    if a.ndim != 2 or a.shape != b.shape:
        raise ConfigurationError("maps must share one 2-D shape")
    if pitch_m <= 0:
        raise ConfigurationError("pitch must be positive")
    rows, cols = a.shape
    a = a - a.mean()
    b = b - b.mean()
    if not (np.any(a) and np.any(b)):
        raise SignalQualityError("flat map; nothing to register")
    # corr[dy, dx] = sum_rc b[r, c] * a[r - dy, c - dx], all shifts distinct
    # thanks to the zero padding.
    pr, pc = 2 * rows - 1, 2 * cols - 1
    fa = np.fft.rfft2(a, s=(pr, pc))
    fb = np.fft.rfft2(b, s=(pr, pc))
    corr = np.fft.irfft2(fb * np.conj(fa), s=(pr, pc))
    peak = np.unravel_index(int(np.argmax(corr)), corr.shape)
    dy = peak[0] if peak[0] < rows else peak[0] - pr
    dx = peak[1] if peak[1] < cols else peak[1] - pc
    # Quadratic refinement on the wrapped neighbors along each axis.
    dy += _parabolic_offset(
        corr[(peak[0] - 1) % pr, peak[1]],
        corr[peak],
        corr[(peak[0] + 1) % pr, peak[1]],
    )
    dx += _parabolic_offset(
        corr[peak[0], (peak[1] - 1) % pc],
        corr[peak],
        corr[peak[0], (peak[1] + 1) % pc],
    )
    return (float(dx * pitch_m), float(dy * pitch_m))


@dataclass(frozen=True)
class FusionResult:
    """Outcome of multi-element waveform fusion."""

    #: The fused waveform (same units and length as the input records).
    waveform: np.ndarray
    #: Per-element combining weights (zero for unused elements; sum 1).
    weights: np.ndarray
    #: Elements that contributed.
    used: np.ndarray
    #: The single strongest eligible element (the selection baseline).
    best_index: int
    #: Predicted SNR of the fusion over the best single element under
    #: independent per-element noise: ||a||_2 / max(a) >= 1.
    predicted_snr_gain: float


def fuse_elements(
    element_signals: np.ndarray,
    exclude: np.ndarray | None = None,
    top_k: int | None = None,
    metric: str = "peak_to_peak",
) -> FusionResult:
    """Amplitude-weighted fusion of element records into one waveform.

    With element k seeing the pulse at coupling gain ``a_k`` plus
    independent noise, the matched combiner weights each record by its
    own amplitude: ``w_k = a_k / sum(a)``. The fused SNR is then
    ``||a||_2`` vs ``max(a)`` for the paper's pick-the-strongest strategy
    — a guaranteed (Cauchy-Schwarz) gain whenever the artery couples
    into more than one element, which is exactly the placement-drift
    regime where the strongest element is about to walk off its pixel.

    ``exclude`` bars unhealthy elements; ``top_k`` restricts the fusion
    to the k strongest eligible elements (small-k fusion captures most
    of the gain while bounding the noise bandwidth of dead channels).
    """
    signals = np.asarray(element_signals, dtype=float)
    if signals.ndim != 2 or signals.shape[0] < 2:
        raise ConfigurationError(
            "expected (n_samples >= 2, n_elements) records"
        )
    n_elements = signals.shape[1]
    if metric == "peak_to_peak":
        amplitudes = signals.max(axis=0) - signals.min(axis=0)
    elif metric == "std":
        amplitudes = signals.std(axis=0)
    else:
        raise ConfigurationError("metric must be peak_to_peak|std")
    eligible = amplitudes > 0.0
    if exclude is not None:
        mask = np.asarray(exclude, dtype=bool)
        if mask.shape != (n_elements,):
            raise ConfigurationError(
                "exclude mask must have one entry per element"
            )
        eligible &= ~mask
    if not np.any(eligible):
        raise SignalQualityError("no eligible element to fuse")
    if top_k is not None:
        if top_k < 1:
            raise ConfigurationError("top_k must be >= 1")
        ranked = np.argsort(np.where(eligible, amplitudes, -np.inf))[::-1]
        keep = ranked[: min(top_k, int(np.count_nonzero(eligible)))]
        restricted = np.zeros(n_elements, dtype=bool)
        restricted[keep] = True
        eligible &= restricted
    a_used = np.where(eligible, amplitudes, 0.0)
    weights = a_used / a_used.sum()
    waveform = signals @ weights
    best = int(np.argmax(a_used))
    gain = float(np.linalg.norm(a_used) / a_used[best])
    return FusionResult(
        waveform=waveform,
        weights=weights,
        used=eligible,
        best_index=best,
        predicted_snr_gain=gain,
    )
