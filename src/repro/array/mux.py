"""Synchronized row/column analog multiplexers (Fig. 4) and mux timing.

Two 2:1 multiplexers (row select, column select) connect one transducer to
the readout. Electrically the switch settles within nanoseconds (on-chip
RC), so — as the paper notes — "the settling when switching between
different sensor elements is limited by the signal bandwidth of the
sigma-delta-AD-converter": after a switch, the decimation filter still
contains history of the previous element, and output words are invalid
until the filter impulse response has flushed. :class:`MuxTimingAnalysis`
quantifies exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..dsp.decimator import DecimationFilter
from .array2d import SensorArray


class AnalogMultiplexer:
    """Row/column element selection with a switching-transient model.

    Parameters
    ----------
    array:
        The sensor array being scanned.
    switch_resistance_ohm:
        On-resistance of the pass gates; with the sensor capacitance it
        sets the electrical settling time constant.
    charge_injection_c:
        Charge injected onto the readout node by switching [C]; decays
        within one electrical time constant and is modelled as a one-
        sample capacitance glitch.
    """

    def __init__(
        self,
        array: SensorArray,
        switch_resistance_ohm: float = 2e3,
        charge_injection_c: float = 5e-15 * 2.5,
    ):
        if switch_resistance_ohm <= 0:
            raise ConfigurationError("switch resistance must be positive")
        self.array = array
        self.switch_resistance_ohm = float(switch_resistance_ohm)
        self.charge_injection_c = float(charge_injection_c)
        self._selected = 0
        self._just_switched = False

    # -- selection ----------------------------------------------------------

    @property
    def selected(self) -> int:
        return self._selected

    @property
    def selected_rowcol(self) -> tuple[int, int]:
        return self.array.geometry.element_rowcol(self._selected)

    def select(self, row: int, col: int) -> None:
        """Drive the row/column select lines."""
        index = self.array.geometry.element_index(row, col)
        self.select_index(index)

    def select_index(self, index: int) -> None:
        if not 0 <= index < self.array.n_elements:
            raise ConfigurationError(
                f"element index {index} outside 0..{self.array.n_elements - 1}"
            )
        if index != self._selected:
            self._just_switched = True
        self._selected = index

    # -- electrical behaviour ---------------------------------------------------

    @property
    def electrical_time_constant_s(self) -> float:
        """R_on * C_sense: the (negligible) analog settling constant."""
        c = self.array.sensor.rest_capacitance_f
        return self.switch_resistance_ohm * c

    def electrical_settling_samples(
        self, sampling_rate_hz: float, n_time_constants: float = 10.0
    ) -> float:
        """Modulator clocks needed for the *electrical* transient."""
        if sampling_rate_hz <= 0:
            raise ConfigurationError("sampling rate must be positive")
        return (
            n_time_constants
            * self.electrical_time_constant_s
            * sampling_rate_hz
        )

    def routed_capacitance_f(
        self, element_pressures_pa: np.ndarray
    ) -> np.ndarray:
        """Capacitance seen by the readout for the selected element.

        ``element_pressures_pa`` shape (n_samples, n_elements); the first
        returned sample after a switch carries the charge-injection glitch
        (expressed as an equivalent capacitance error at Vref = 2.5 V).
        """
        pressures = np.asarray(element_pressures_pa, dtype=float)
        if pressures.ndim != 2 or pressures.shape[1] != self.array.n_elements:
            raise ConfigurationError(
                "expected shape (n_samples, n_elements)"
            )
        caps = self.array.elements[self._selected].capacitance_f(
            pressures[:, self._selected]
        )
        if self._just_switched and caps.size:
            caps = caps.copy()
            caps[0] += self.charge_injection_c / 2.5
            self._just_switched = False
        return caps

    def scan_routed_capacitance_f(
        self, element_pressures_pa: np.ndarray, dwell_samples: int
    ) -> np.ndarray:
        """Routed capacitance for a whole row-major scan, one call.

        Splits the pressure field into per-element dwell segments (row k
        covers samples ``[k*dwell, (k+1)*dwell)`` routed from element k)
        and returns them as a ``(n_elements, dwell_samples)`` matrix —
        the batched equivalent of selecting each element in turn and
        calling :meth:`routed_capacitance_f` on its segment. The switch
        charge-injection glitch lands on each segment's first sample,
        except for an element already selected when the scan starts
        (matching the sequential path, where re-selecting the current
        element injects nothing). Afterwards the last element is left
        selected, as after a sequential scan.
        """
        pressures = np.asarray(element_pressures_pa, dtype=float)
        n_elements = self.array.n_elements
        if pressures.ndim != 2 or pressures.shape[1] != n_elements:
            raise ConfigurationError("expected shape (n_samples, n_elements)")
        if dwell_samples < 1:
            raise ConfigurationError("dwell must be >= 1 sample")
        if pressures.shape[0] < dwell_samples * n_elements:
            raise ConfigurationError("pressure field too short for the scan")
        # Gather each element's own dwell window: the (n_elements, dwell)
        # "diagonal" of the field. Only these samples ever reach the
        # readout, so a large-array scan never needs the full field.
        idx = np.arange(n_elements)
        windows = pressures[: dwell_samples * n_elements].reshape(
            n_elements, dwell_samples, n_elements
        )
        return self.scan_segments_capacitance_f(windows[idx, :, idx])

    def scan_segments_capacitance_f(
        self, dwell_pressures_pa: np.ndarray
    ) -> np.ndarray:
        """Routed capacitance for a scan given per-element dwell segments.

        ``dwell_pressures_pa`` has shape ``(n_elements, dwell_samples)``:
        row k is the membrane pressure element k sees during its own visit.
        This is the memory-lean entry point for large arrays — O(elements x
        dwell) instead of the O(samples x elements) full field that
        :meth:`scan_routed_capacitance_f` accepts — with identical routing,
        charge-injection and selection semantics.
        """
        segments = np.asarray(dwell_pressures_pa, dtype=float)
        n_elements = self.array.n_elements
        if segments.ndim != 2 or segments.shape[0] != n_elements:
            raise ConfigurationError(
                "expected shape (n_elements, dwell_samples)"
            )
        if segments.shape[1] < 1:
            raise ConfigurationError("dwell must be >= 1 sample")
        transfer = self.array.vectorized_transfer()
        if transfer is not None:
            scales, offsets = transfer
            caps = (
                self.array.sensor.capacitance_f(segments)
                * scales[:, None]
                + offsets[:, None]
            )
        else:
            caps = np.empty_like(segments)
            for k in range(n_elements):
                caps[k] = self.array.elements[k].capacitance_f(segments[k])
        # Every visit is a switch except re-selecting the element that was
        # already routed when the scan started (k == 0 only: every later
        # visit k follows element k-1 != k).
        inject = self.charge_injection_c / 2.5
        caps[1:, 0] += inject
        if self._selected != 0 or self._just_switched:
            caps[0, 0] += inject
        self._selected = n_elements - 1
        self._just_switched = False
        return caps


@dataclass(frozen=True)
class ScanSchedule:
    """Row/column scan timetable for an N x M array (THEORY.md §13).

    The mux switch itself settles in nanoseconds; the budget is the
    decimation filter flushing the previous element (``settle_words``
    output words discarded per visit, from :class:`MuxTimingAnalysis`).
    ``banks`` models how many ΣΔ converters digitize concurrently:
    1 is the paper's shared-converter scan, ``cols`` is a per-column
    bank (each bank walks its own column set), dividing frame time by
    the bank count. The fused batch kernel maps banks onto
    ``repro.batch`` lanes, so device-time concurrency and host-time
    vectorization use the same axis.
    """

    rows: int
    cols: int
    banks: int
    settle_words: int
    valid_words: int
    output_rate_hz: float
    total_decimation: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError("array must be at least 1x1")
        if not 1 <= self.banks <= self.n_elements:
            raise ConfigurationError(
                f"banks must be in 1..{self.n_elements}"
            )
        if self.settle_words < 0 or self.valid_words < 1:
            raise ConfigurationError(
                "need settle_words >= 0 and valid_words >= 1"
            )
        if self.output_rate_hz <= 0 or self.total_decimation < 1:
            raise ConfigurationError("bad output rate / decimation")

    @property
    def n_elements(self) -> int:
        return self.rows * self.cols

    @property
    def words_per_visit(self) -> int:
        """Output words spent per element visit (settle + valid)."""
        return self.settle_words + self.valid_words

    @property
    def dwell_mod_samples(self) -> int:
        """Modulator clocks per element visit."""
        return self.words_per_visit * self.total_decimation

    @property
    def element_dwell_s(self) -> float:
        return self.words_per_visit / self.output_rate_hz

    @property
    def visits_per_bank(self) -> int:
        """Elements each converter bank digitizes per frame."""
        return math.ceil(self.n_elements / self.banks)

    @property
    def frame_time_s(self) -> float:
        """Device time for one full-array frame."""
        return self.visits_per_bank * self.element_dwell_s

    @property
    def frame_rate_hz(self) -> float:
        return 1.0 / self.frame_time_s

    @property
    def elements_per_s(self) -> float:
        """Device-time element visit rate across all banks."""
        return self.n_elements / self.frame_time_s

    @property
    def efficiency(self) -> float:
        """Fraction of converter words that are valid (not flush)."""
        return self.valid_words / self.words_per_visit

    def describe(self) -> str:
        return "\n".join(
            [
                f"scan schedule {self.rows}x{self.cols}, "
                f"{self.banks} converter bank(s)",
                f"  dwell      : {self.settle_words} settle + "
                f"{self.valid_words} valid words "
                f"({self.element_dwell_s * 1e3:.1f} ms/element)",
                f"  frame      : {self.frame_time_s:.3f} s "
                f"({self.frame_rate_hz:.3f} Hz)",
                f"  throughput : {self.elements_per_s:.1f} elements/s, "
                f"efficiency {self.efficiency:.0%}",
            ]
        )


def plan_scan(
    timing: MuxTimingAnalysis,
    rows: int,
    cols: int,
    output_rate_hz: float,
    total_decimation: int,
    valid_words: int = 1,
    banks: int = 1,
) -> ScanSchedule:
    """Build the scan timetable from a mux/decimator settling budget."""
    return ScanSchedule(
        rows=rows,
        cols=cols,
        banks=banks,
        settle_words=timing.output_words_discarded,
        valid_words=valid_words,
        output_rate_hz=output_rate_hz,
        total_decimation=total_decimation,
    )


@dataclass(frozen=True)
class MuxTimingAnalysis:
    """Settling budget for element switching (the Sec. 2.2 claim).

    Attributes
    ----------
    electrical_settling_s:
        Time for the analog switch transient (10 tau).
    filter_flush_s:
        Time for the decimation filter to forget the previous element:
        the full impulse-response length of CIC and FIR.
    output_words_discarded:
        Output words that must be dropped after each switch.
    """

    electrical_settling_s: float
    filter_flush_s: float
    output_words_discarded: int

    @property
    def dominant(self) -> str:
        """Which mechanism limits switching — 'filter' per the paper."""
        return (
            "filter"
            if self.filter_flush_s >= self.electrical_settling_s
            else "electrical"
        )

    @property
    def max_scan_rate_hz(self) -> float:
        """Fastest per-element visit rate with one valid word per dwell."""
        total = self.filter_flush_s + max(self.electrical_settling_s, 0.0)
        return 1.0 / total if total > 0 else math.inf


def analyze_mux_timing(
    mux: AnalogMultiplexer,
    decimator: DecimationFilter,
) -> MuxTimingAnalysis:
    """Compute the switching budget for a mux/decimator pairing."""
    fs = decimator.input_rate_hz
    electrical = mux.electrical_settling_samples(fs) / fs
    # Full impulse-response length, not just group delay: the filter's
    # memory of the previous element must drain completely.
    cic_memory = (
        decimator.params.cic_order
        * decimator.params.cic_decimation
        / fs
    )
    fir_rate = fs / decimator.params.cic_decimation
    fir_memory = decimator.params.fir_taps / fir_rate
    flush = cic_memory + fir_memory
    words = math.ceil(flush * decimator.output_rate_hz)
    return MuxTimingAnalysis(
        electrical_settling_s=electrical,
        filter_flush_s=flush,
        output_words_discarded=words,
    )
