"""Synchronized row/column analog multiplexers (Fig. 4) and mux timing.

Two 2:1 multiplexers (row select, column select) connect one transducer to
the readout. Electrically the switch settles within nanoseconds (on-chip
RC), so — as the paper notes — "the settling when switching between
different sensor elements is limited by the signal bandwidth of the
sigma-delta-AD-converter": after a switch, the decimation filter still
contains history of the previous element, and output words are invalid
until the filter impulse response has flushed. :class:`MuxTimingAnalysis`
quantifies exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..dsp.decimator import DecimationFilter
from .array2d import SensorArray


class AnalogMultiplexer:
    """Row/column element selection with a switching-transient model.

    Parameters
    ----------
    array:
        The sensor array being scanned.
    switch_resistance_ohm:
        On-resistance of the pass gates; with the sensor capacitance it
        sets the electrical settling time constant.
    charge_injection_c:
        Charge injected onto the readout node by switching [C]; decays
        within one electrical time constant and is modelled as a one-
        sample capacitance glitch.
    """

    def __init__(
        self,
        array: SensorArray,
        switch_resistance_ohm: float = 2e3,
        charge_injection_c: float = 5e-15 * 2.5,
    ):
        if switch_resistance_ohm <= 0:
            raise ConfigurationError("switch resistance must be positive")
        self.array = array
        self.switch_resistance_ohm = float(switch_resistance_ohm)
        self.charge_injection_c = float(charge_injection_c)
        self._selected = 0
        self._just_switched = False

    # -- selection ----------------------------------------------------------

    @property
    def selected(self) -> int:
        return self._selected

    @property
    def selected_rowcol(self) -> tuple[int, int]:
        return self.array.geometry.element_rowcol(self._selected)

    def select(self, row: int, col: int) -> None:
        """Drive the row/column select lines."""
        index = self.array.geometry.element_index(row, col)
        self.select_index(index)

    def select_index(self, index: int) -> None:
        if not 0 <= index < self.array.n_elements:
            raise ConfigurationError(
                f"element index {index} outside 0..{self.array.n_elements - 1}"
            )
        if index != self._selected:
            self._just_switched = True
        self._selected = index

    # -- electrical behaviour ---------------------------------------------------

    @property
    def electrical_time_constant_s(self) -> float:
        """R_on * C_sense: the (negligible) analog settling constant."""
        c = self.array.sensor.rest_capacitance_f
        return self.switch_resistance_ohm * c

    def electrical_settling_samples(
        self, sampling_rate_hz: float, n_time_constants: float = 10.0
    ) -> float:
        """Modulator clocks needed for the *electrical* transient."""
        if sampling_rate_hz <= 0:
            raise ConfigurationError("sampling rate must be positive")
        return (
            n_time_constants
            * self.electrical_time_constant_s
            * sampling_rate_hz
        )

    def routed_capacitance_f(
        self, element_pressures_pa: np.ndarray
    ) -> np.ndarray:
        """Capacitance seen by the readout for the selected element.

        ``element_pressures_pa`` shape (n_samples, n_elements); the first
        returned sample after a switch carries the charge-injection glitch
        (expressed as an equivalent capacitance error at Vref = 2.5 V).
        """
        pressures = np.asarray(element_pressures_pa, dtype=float)
        if pressures.ndim != 2 or pressures.shape[1] != self.array.n_elements:
            raise ConfigurationError(
                "expected shape (n_samples, n_elements)"
            )
        caps = self.array.elements[self._selected].capacitance_f(
            pressures[:, self._selected]
        )
        if self._just_switched and caps.size:
            caps = caps.copy()
            caps[0] += self.charge_injection_c / 2.5
            self._just_switched = False
        return caps

    def scan_routed_capacitance_f(
        self, element_pressures_pa: np.ndarray, dwell_samples: int
    ) -> np.ndarray:
        """Routed capacitance for a whole row-major scan, one call.

        Splits the pressure field into per-element dwell segments (row k
        covers samples ``[k*dwell, (k+1)*dwell)`` routed from element k)
        and returns them as a ``(n_elements, dwell_samples)`` matrix —
        the batched equivalent of selecting each element in turn and
        calling :meth:`routed_capacitance_f` on its segment. The switch
        charge-injection glitch lands on each segment's first sample,
        except for an element already selected when the scan starts
        (matching the sequential path, where re-selecting the current
        element injects nothing). Afterwards the last element is left
        selected, as after a sequential scan.
        """
        pressures = np.asarray(element_pressures_pa, dtype=float)
        n_elements = self.array.n_elements
        if pressures.ndim != 2 or pressures.shape[1] != n_elements:
            raise ConfigurationError("expected shape (n_samples, n_elements)")
        if dwell_samples < 1:
            raise ConfigurationError("dwell must be >= 1 sample")
        if pressures.shape[0] < dwell_samples * n_elements:
            raise ConfigurationError("pressure field too short for the scan")
        caps = np.empty((n_elements, dwell_samples))
        current = self._selected
        for k in range(n_elements):
            segment = pressures[k * dwell_samples : (k + 1) * dwell_samples]
            caps[k] = self.array.elements[k].capacitance_f(segment[:, k])
            if k != current or self._just_switched:
                caps[k, 0] += self.charge_injection_c / 2.5
                self._just_switched = False
            current = k
        self._selected = n_elements - 1
        self._just_switched = False
        return caps


@dataclass(frozen=True)
class MuxTimingAnalysis:
    """Settling budget for element switching (the Sec. 2.2 claim).

    Attributes
    ----------
    electrical_settling_s:
        Time for the analog switch transient (10 tau).
    filter_flush_s:
        Time for the decimation filter to forget the previous element:
        the full impulse-response length of CIC and FIR.
    output_words_discarded:
        Output words that must be dropped after each switch.
    """

    electrical_settling_s: float
    filter_flush_s: float
    output_words_discarded: int

    @property
    def dominant(self) -> str:
        """Which mechanism limits switching — 'filter' per the paper."""
        return (
            "filter"
            if self.filter_flush_s >= self.electrical_settling_s
            else "electrical"
        )

    @property
    def max_scan_rate_hz(self) -> float:
        """Fastest per-element visit rate with one valid word per dwell."""
        total = self.filter_flush_s + max(self.electrical_settling_s, 0.0)
        return 1.0 / total if total > 0 else math.inf


def analyze_mux_timing(
    mux: AnalogMultiplexer,
    decimator: DecimationFilter,
) -> MuxTimingAnalysis:
    """Compute the switching budget for a mux/decimator pairing."""
    fs = decimator.input_rate_hz
    electrical = mux.electrical_settling_samples(fs) / fs
    # Full impulse-response length, not just group delay: the filter's
    # memory of the previous element must drain completely.
    cic_memory = (
        decimator.params.cic_order
        * decimator.params.cic_decimation
        / fs
    )
    fir_rate = fs / decimator.params.cic_decimation
    fir_memory = decimator.params.fir_taps / fir_rate
    flush = cic_memory + fir_memory
    words = math.ceil(flush * decimator.output_rate_hz)
    return MuxTimingAnalysis(
        electrical_settling_s=electrical,
        filter_flush_s=flush,
        output_words_discarded=words,
    )
