"""One-call fused N x N scan through the batched cascade kernel.

The batched scan semantics (``ScanController.scan_records(batched=True)``)
are a *bank of matched modulators*: every element's dwell segment runs
from the chain's pre-scan analog state, and the decimation filter resets
at each switch. That is exactly a ``repro.batch`` workload — B lanes with
identical coefficients, independent state, advancing in lockstep — so a
64x64 scan collapses from 4096 sequential chain passes into one fused C
kernel call with 4096 lanes.

:func:`run_fused_scan` reproduces the batched path bit-for-bit for every
configuration it supports (deterministic modulator, stock decimation
architecture): the same per-lane initial state, the same post-switch word
suppression, the same FPGA counter and filter-state bookkeeping
afterwards. Anything outside that envelope returns ``None`` — with no
side effects — and the caller falls back to the batched loop.
"""

from __future__ import annotations

import numpy as np
from numpy.polynomial import polyutils as _pu

from ..dsp.fixed_point import saturate
from ..mems.membrane import MembraneSensor
from ..sdm.frontend import CapacitiveFrontEnd
from .mux import AnalogMultiplexer


def _kernel():
    # Imported lazily: repro.batch pulls in repro.core, which imports
    # this package — a module-level import would be circular.
    from ..batch import kernel as batch_kernel

    return batch_kernel


def fused_scan_supported(chain) -> bool:
    """Whether :func:`run_fused_scan` can reproduce this chain's scan.

    The envelope is the batch kernel's: compiled kernel present, a fully
    deterministic modulator (no jitter, thermal/flicker noise, or DAC
    reference noise — the kernel cannot replay the per-segment draw order
    of :meth:`~repro.sdm.modulator.SecondOrderSDM.simulate_batch`), no
    in-loop metastability draws, the stock third-order/unit-delay CIC,
    and no word hook (the hook must see each element's words in
    sequential order). When the FPGA still points at element 0 the scan's
    first visit does not reset the filter, so any carried filter state
    must sit at a decimation boundary (phase 0) for the lanes to run in
    lockstep.
    """
    if not _kernel().batch_kernel_available():
        return False
    m = chain.chip.modulator
    comp = m.comparator
    filt = chain.fpga.filter
    deterministic = not (
        m.nonideality.clock_jitter_s > 0.0
        or m._noise_sigma_u > 0.0
        or m._flicker is not None
        or m.dac.reference_noise_sigma > 0.0
    )
    if not deterministic:
        return False
    if comp.metastable_band_v != 0.0:
        return False
    if 1.0 + m.dac.reference_error == 0.0:
        return False
    if filt.cic.order != 3 or filt.cic.diff_delay != 1:
        return False
    if chain.fpga.word_hook is not None:
        return False
    if chain.fpga._element == 0 and (
        filt.cic._phase != 0 or filt.fir._phase != 0
    ):
        return False
    return True


def _stage_frontend_kernel(
    batch_kernel, chip, segments: np.ndarray, au: np.ndarray,
    injection: np.ndarray, a1: float,
) -> bool:
    """Stage ``a1 * u`` for every lane through the compiled front end.

    Lane k reads row k of ``segments`` in place (its own dwell window —
    each lane's "selected column" is a row of the segment matrix). The C
    pass replays the membrane Chebyshev evaluation, mismatch affine,
    first-sample charge injection and charge-front-end transfer term for
    term, so the staged doubles equal the NumPy route's exactly. Returns
    False (with nothing written and no state touched) when the
    configuration carries substituted models or any sample violates the
    transfer's domain/positivity constraints — the caller then replays
    the NumPy route, which raises the single-session path's exact error.
    """
    fe = chip.frontend
    array = chip.array
    if type(chip.mux) is not AnalogMultiplexer:
        return False
    if type(fe) is not CapacitiveFrontEnd:
        return False
    sensor = array.sensor
    if type(sensor) is not MembraneSensor:
        return False
    transfer = array.vectorized_transfer()
    if transfer is None:
        return False
    if not (
        segments.dtype == np.float64
        and segments.flags.c_contiguous
    ):
        return False
    scales, offsets = transfer
    fit = sensor._fit
    dom_off, dom_scl = _pu.mapparms(fit.domain, fit.window)
    B, n = segments.shape
    pbase = (
        segments.ctypes.data
        + np.arange(B, dtype=np.uint64) * np.uint64(segments.strides[0])
    ).astype(np.uint64)
    return batch_kernel.run_frontend_chunk(
        n=n,
        pbase=pbase,
        pstep=np.ones(B, dtype=np.int64),
        au=au,
        au_stride=au.shape[1],
        cheb_coef=np.ascontiguousarray(fit.coef, dtype=float),
        dom_off=float(dom_off),
        dom_scl=float(dom_scl),
        p_min=float(sensor._p_min),
        p_max=float(sensor._p_max),
        cap_scale=scales,
        cap_offset=offsets,
        injection=injection,
        ref_cap=np.full(B, fe.reference_cap_f),
        fb_cap=np.full(B, fe.feedback_cap_f),
        excitation=np.full(B, fe.excitation_fraction),
        a1=np.full(B, a1),
        u_last=np.empty(B),
    )


def run_fused_scan(chain, dwell_pressures_pa) -> list[np.ndarray] | None:
    """Run a whole array scan as one fused batch-kernel call.

    Parameters
    ----------
    chain:
        The :class:`~repro.core.chain.ReadoutChain` to scan through.
    dwell_pressures_pa:
        (n_elements, dwell_mod_samples) membrane pressure each element
        sees during its own visit.

    Returns
    -------
    Per-element record values (decimated words / 2048, post-suppression)
    in scan order — bit-identical to the ``batched=True`` loop — or
    ``None`` when the configuration is outside the kernel envelope.
    Chain side effects match the batched path exactly: the mux and FPGA
    finish on the last element, the decimation filter carries the last
    element's state, telemetry counters advance identically, and the
    modulator's analog state is untouched (bank-of-matched-modulators
    semantics).
    """
    if not fused_scan_supported(chain):
        return None
    batch_kernel = _kernel()
    segments = np.asarray(dwell_pressures_pa, dtype=float)
    chip = chain.chip
    fpga = chain.fpga
    filt = fpga.filter
    m = chip.modulator
    n_elements = chip.array.n_elements
    if (
        segments.ndim != 2
        or segments.shape[0] != n_elements
        or segments.shape[1] < 1
    ):
        return None
    n = segments.shape[1]
    start_element = fpga._element
    # Lane-0 suppression budget: the first visit re-selects the current
    # element when the FPGA already points at 0 (no reset, any pending
    # suppression window keeps draining); every other visit is a switch.
    flush = fpga.flush_words_on_switch
    budgets = np.full(n_elements, flush, dtype=np.int64)
    if start_element == 0:
        budgets[0] = fpga._suppress

    # Stage the front end: the compiled kernel evaluates the membrane
    # Chebyshev transfer, mismatch, charge injection and the charge
    # front end per lane directly into the a1*u buffer (the dominant
    # cost at 64x64); the NumPy route below is its bit-identical
    # fallback and the one that raises the exact range/positivity
    # errors. Either way the mux finishes on the last element with its
    # injection state consumed — the sequential-scan semantics.
    B = n_elements
    Bp = batch_kernel.pad_lanes(B)
    a1 = m.stage1.signal_gain * m.stage1.gain_error
    au = np.zeros((Bp, n))
    mux = chip.mux
    inj = np.full(B, mux.charge_injection_c / 2.5)
    if mux._selected == 0 and not mux._just_switched:
        inj[0] = 0.0
    if _stage_frontend_kernel(batch_kernel, chip, segments, au, inj, a1):
        mux._selected = B - 1
        mux._just_switched = False
    else:
        caps = mux.scan_segments_capacitance_f(segments)
        u = chip.frontend.loop_input(caps)
        np.multiply(u, a1, out=au[:B])

    def lanes(value, pad=0.0):
        vec = np.full(Bp, pad)
        vec[:B] = value
        return vec

    comp = m.comparator
    ideal = comp.is_ideal()
    st = batch_kernel.BatchState(
        x1=lanes(m.stage1.state),
        x2=lanes(m.stage2.state),
        comp_previous=lanes(comp.previous_decision, pad=1).astype(np.int64),
        cic_integrators=np.zeros((filt.cic.order, Bp), dtype=np.int64),
        cic_combs=np.zeros((filt.cic.order, Bp), dtype=np.int64),
        cic_phase=0,
        fir_history=np.zeros((Bp, filt.fir.taps - 1), dtype=np.int64),
        fir_phase=0,
    )
    if start_element == 0:
        # First visit re-selects element 0: its lane continues from the
        # carried filter state (phase 0, checked above) instead of a reset.
        st.cic_integrators[:, 0] = filt.cic._integrators
        st.cic_combs[:, 0] = filt.cic._combs[:, 0]
        st.fir_history[0, :] = filt.fir._history

    zero = np.zeros(n)
    qscale = (1 << (filt.params.output_bits - 1)) / (
        float(filt.cic.dc_gain) / filt.fir.coeff_format.scale
    )
    result = batch_kernel.run_batch_chunk(
        n=n,
        au=au,
        au_stride=au.shape[1],
        noise=zero,
        noise_stride=0,
        dac_noise=zero,
        dacn_stride=0,
        dac_gain=lanes(1.0 + m.dac.reference_error),
        p1=lanes(m.stage1.leak),
        b1=lanes(m.stage1.feedback_gain * m.stage1.gain_error),
        p2=lanes(m.stage2.leak),
        a2=lanes(m.stage2.signal_gain * m.stage2.gain_error),
        b2=lanes(m.stage2.feedback_gain * m.stage2.gain_error),
        swing=lanes(m.stage1.swing_limit, pad=1.0),
        comp_offset=lanes(0.0 if ideal else comp.offset_v),
        comp_hysteresis=lanes(0.0 if ideal else comp.hysteresis_v),
        state=st,
        cic_decimation=filt.cic.decimation,
        register_bits=filt.cic.register_bits,
        fir_flipped=np.ascontiguousarray(
            filt.fir.coefficients_int[::-1], dtype=np.int64
        ),
        fir_decimation=filt.fir.decimation,
        qscale=qscale,
        output_bits=filt.params.output_bits,
    )
    codes = result.codes[:B]
    n_words = codes.shape[1]

    # Per-element post-switch suppression, then the same i16 clamp the
    # framing path applies; values in modulator FS like ChainRecording.
    records: list[np.ndarray] = []
    drops = np.minimum(budgets, n_words)
    for k in range(B):
        kept = codes[k, int(drops[k]) :]
        records.append(saturate(kept, 16).astype(float) / 2048.0)

    # FPGA bookkeeping, exactly as the batched per-element loop leaves it.
    resets = (B - 1) + (1 if start_element != 0 else 0)
    fpga._element = B - 1
    fpga._suppress = int(max(0, budgets[B - 1] - n_words))
    fpga.samples_in += B * n
    fpga.words_filtered += B * n_words
    fpga.words_suppressed += int(drops.sum())
    fpga.filter_resets += resets
    # The filter carries the last element's cascade state forward.
    filt.cic._integrators = st.cic_integrators[:, B - 1].copy()
    filt.cic._combs[:, 0] = st.cic_combs[:, B - 1]
    filt.cic._phase = st.cic_phase
    filt.fir._history = st.fir_history[B - 1].copy()
    filt.fir._phase = st.fir_phase
    return records
