"""One array element: a membrane sensor plus its position and mismatch.

Process gradients make nominally identical membranes differ slightly in
rest capacitance and sensitivity; each element therefore wraps the shared
:class:`~repro.mems.membrane.MembraneSensor` transfer with per-element
gain/offset factors drawn once at array construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..mems.membrane import MembraneSensor


@dataclass(frozen=True)
class ArrayElement:
    """A single force-sensitive element of the array.

    Parameters
    ----------
    index:
        Flat row-major index within the array.
    row, col:
        Grid coordinates.
    center_m:
        (x, y) position of the membrane center relative to the array
        centroid [m].
    capacitance_scale:
        Multiplicative mismatch on the capacitance transfer (≈1).
    offset_cap_f:
        Additive parasitic mismatch [F].
    """

    index: int
    row: int
    col: int
    center_m: tuple[float, float]
    sensor: MembraneSensor
    capacitance_scale: float = 1.0
    offset_cap_f: float = 0.0

    def __post_init__(self) -> None:
        if self.capacitance_scale <= 0:
            raise ConfigurationError("capacitance scale must be positive")

    def capacitance_f(self, pressure_pa: np.ndarray | float) -> np.ndarray:
        """Element capacitance under an applied membrane pressure."""
        nominal = self.sensor.capacitance_f(pressure_pa)
        return nominal * self.capacitance_scale + self.offset_cap_f

    @property
    def rest_capacitance_f(self) -> float:
        return (
            self.sensor.rest_capacitance_f * self.capacitance_scale
            + self.offset_cap_f
        )

    def distance_to_m(self, point_m: tuple[float, float]) -> float:
        """Euclidean distance from the element center to a surface point."""
        dx = self.center_m[0] - point_m[0]
        dy = self.center_m[1] - point_m[1]
        return float(np.hypot(dx, dy))
