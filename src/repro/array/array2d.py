"""The N x M membrane sensor array (paper: 2 x 2 plus reference).

Builds the elements with reproducible random mismatch, exposes per-element
capacitance evaluation for a spatial pressure field, and carries the
on-chip reference structure — a membrane-less capacitor matching the rest
capacitance, which the first modulator stage subtracts (Fig. 6).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..mems.geometry import ArrayGeometry
from ..mems.membrane import MembraneSensor
from ..params import ArrayParams
from .element import ArrayElement


class SensorArray:
    """The chip's transducer array plus reference capacitor.

    Parameters
    ----------
    params:
        Array layout and mismatch level (paper default: 2x2, 150 um pitch).
    sensor:
        Shared membrane transfer; constructed from ``params.membrane``
        when omitted.
    rng:
        Source for the per-element mismatch draw; fixed default for
        reproducibility.
    """

    def __init__(
        self,
        params: ArrayParams | None = None,
        sensor: MembraneSensor | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.params = params or ArrayParams()
        self.sensor = sensor or MembraneSensor(self.params.membrane)
        self.geometry = ArrayGeometry(self.params)
        rng = rng or np.random.default_rng(51)

        centers = self.geometry.element_centers_m()
        sigma = self.params.capacitance_mismatch_sigma
        scales = 1.0 + sigma * rng.standard_normal(self.params.n_elements)
        self.elements: list[ArrayElement] = []
        for index in range(self.params.n_elements):
            row, col = self.geometry.element_rowcol(index)
            self.elements.append(
                ArrayElement(
                    index=index,
                    row=row,
                    col=col,
                    center_m=(float(centers[index, 0]), float(centers[index, 1])),
                    sensor=self.sensor,
                    capacitance_scale=float(scales[index]),
                )
            )
        # Reference structure: matches the nominal rest capacitance with
        # its own (small) mismatch; it has no released membrane, so it
        # does not respond to pressure.
        self.reference_cap_f = self.sensor.rest_capacitance_f * float(
            1.0 + sigma * rng.standard_normal()
        )

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.elements)

    def __getitem__(self, index: int) -> ArrayElement:
        return self.elements[index]

    def __iter__(self):
        return iter(self.elements)

    @property
    def n_elements(self) -> int:
        return len(self.elements)

    # -- evaluation -------------------------------------------------------------

    def vectorized_transfer(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Per-element (scale, offset) vectors, when the whole array shares
        one membrane transfer.

        Every stock element is ``sensor.capacitance_f(P) * scale + offset``
        with the array's shared :class:`MembraneSensor`, so the full-array
        field can be evaluated with one interpolant pass and a broadcast.
        Returns ``None`` when any element carries its own sensor model (a
        caller-substituted exotic element), in which case evaluation must
        fall back to the per-element loop.
        """
        scales = np.empty(self.n_elements)
        offsets = np.empty(self.n_elements)
        for k, element in enumerate(self.elements):
            if type(element) is not ArrayElement or element.sensor is not self.sensor:
                return None
            scales[k] = element.capacitance_scale
            offsets[k] = element.offset_cap_f
        return scales, offsets

    def capacitances_f(
        self, element_pressures_pa: np.ndarray
    ) -> np.ndarray:
        """Per-element capacitance for per-element membrane pressures.

        ``element_pressures_pa`` is either shape (n_elements,) for one
        instant or (n_samples, n_elements) for a time series; the result
        has the same shape. When all elements share the array's membrane
        transfer (the stock construction) this is one vectorized
        interpolant pass over the whole field — O(1) NumPy calls instead
        of a per-element Python loop, and bit-identical to it, since both
        the Chebyshev evaluation and the mismatch scale/offset are
        elementwise.
        """
        pressures = np.asarray(element_pressures_pa, dtype=float)
        if pressures.shape[-1] != self.n_elements:
            raise ConfigurationError(
                f"last axis must have {self.n_elements} entries "
                f"(got shape {pressures.shape})"
            )
        transfer = self.vectorized_transfer()
        if transfer is not None:
            scales, offsets = transfer
            caps = self.sensor.capacitance_f(pressures)
            return caps * scales + offsets
        flat = pressures.reshape(-1, self.n_elements)
        out = np.empty_like(flat)
        for k, element in enumerate(self.elements):
            out[:, k] = element.capacitance_f(flat[:, k])
        return out.reshape(pressures.shape)

    def rest_capacitances_f(self) -> np.ndarray:
        """Vector of zero-pressure capacitances (includes mismatch)."""
        return np.array([e.rest_capacitance_f for e in self.elements])

    def offsets_vs_reference_f(self) -> np.ndarray:
        """Static (Crest - Cref) per element: the mismatch pedestal each
        element's readout sits on."""
        return self.rest_capacitances_f() - self.reference_cap_f

    def describe(self) -> str:
        rows, cols = self.params.rows, self.params.cols
        rest = self.rest_capacitances_f()
        return "\n".join(
            [
                f"SensorArray {rows}x{cols}, pitch "
                f"{self.geometry.pitch_m * 1e6:.0f} um",
                f"  rest capacitance : {rest.mean() * 1e15:.1f} fF "
                f"(spread {rest.std() * 1e15:.2f} fF)",
                f"  reference        : {self.reference_cap_f * 1e15:.1f} fF",
            ]
        )
