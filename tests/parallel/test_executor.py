"""ParallelExecutor: determinism contract, scheduling, telemetry."""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.parallel import ExecutorTelemetry, ParallelExecutor


def _square(x):
    return x * x


def _seeded_draw(x, seed):
    rng = np.random.default_rng(seed)
    return (x, int(rng.integers(0, 1_000_000)))


def _pid_of(x):
    return os.getpid()


def _boom(x):
    raise ValueError(f"task {x} exploded")


def _square_batch(items):
    return [x * x for x in items]


def _seeded_batch(items, seeds):
    return [_seeded_draw(x, s) for x, s in zip(items, seeds)]


def _short_batch(items):
    return [x * x for x in items[:-1]]


def _pool(jobs, **kwargs):
    """A real pool of ``jobs`` workers, silencing the clamp warning.

    Several tests need actual worker processes regardless of how many
    cores the test box exposes; force_jobs is exactly that escape hatch.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return ParallelExecutor(jobs=jobs, force_jobs=True, **kwargs)


class TestScheduling:
    def test_results_in_submission_order(self):
        ex = ParallelExecutor(jobs=1)
        assert ex.map(_square, range(10)) == [x * x for x in range(10)]

    def test_order_preserved_with_pool(self):
        ex = _pool(3, chunk_size=1)
        assert ex.map(_square, range(10)) == [x * x for x in range(10)]

    def test_empty_items(self):
        ex = _pool(2)
        assert ex.map(_square, []) == []
        assert ex.telemetry.tasks_submitted == 0
        ex.telemetry.reconcile()

    def test_jobs_one_runs_in_process(self):
        ex = ParallelExecutor(jobs=1)
        pids = ex.map(_pid_of, range(4))
        assert set(pids) == {os.getpid()}

    def test_pool_uses_other_processes(self):
        ex = _pool(2, chunk_size=1)
        pids = ex.map(_pid_of, range(4))
        assert os.getpid() not in pids

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(jobs=0)
        with pytest.raises(ConfigurationError):
            ParallelExecutor(jobs=2, chunk_size=0)

    def test_task_error_propagates(self):
        ex = ParallelExecutor(jobs=1)
        with pytest.raises(ValueError, match="exploded"):
            ex.map(_boom, range(3))

    def test_task_error_propagates_from_pool(self):
        ex = _pool(2)
        with pytest.raises(ValueError, match="exploded"):
            ex.map(_boom, range(3))


class TestSeedDiscipline:
    def test_results_identical_for_any_worker_count(self):
        reference = ParallelExecutor(jobs=1).map(
            _seeded_draw, range(12), seed=99
        )
        for jobs, chunk in ((2, None), (3, 1), (4, 5)):
            ex = _pool(jobs, chunk_size=chunk)
            assert ex.map(_seeded_draw, range(12), seed=99) == reference

    def test_seed_changes_results(self):
        a = ParallelExecutor(jobs=1).map(_seeded_draw, range(4), seed=1)
        b = ParallelExecutor(jobs=1).map(_seeded_draw, range(4), seed=2)
        assert a != b

    def test_seed_sequence_accepted(self):
        master = np.random.SeedSequence(1234)
        a = ParallelExecutor(jobs=1).map(_seeded_draw, range(4), seed=master)
        b = ParallelExecutor(jobs=1).map(_seeded_draw, range(4), seed=1234)
        assert a == b

    def test_tasks_depend_on_index_not_chunking(self):
        # Same master seed, radically different chunking: task k must
        # draw the same values because its child seed is fixed by k.
        coarse = ParallelExecutor(jobs=1, chunk_size=12).map(
            _seeded_draw, range(12), seed=7
        )
        fine = ParallelExecutor(jobs=1, chunk_size=1).map(
            _seeded_draw, range(12), seed=7
        )
        assert coarse == fine


class TestTelemetry:
    def test_counters_reconcile(self):
        ex = _pool(2, chunk_size=3)
        ex.map(_square, range(10))
        tm = ex.telemetry
        tm.reconcile()
        assert tm.tasks_submitted == tm.tasks_completed == 10
        assert tm.chunks_dispatched == tm.chunks_completed == 4
        assert tm.workers_used >= 1
        assert tm.wall_seconds > 0.0

    def test_auto_chunking_covers_all_tasks(self):
        ex = _pool(2)
        ex.map(_square, range(17))
        ex.telemetry.reconcile()
        assert ex.telemetry.tasks_completed == 17

    def test_reconcile_rejects_lost_task(self):
        tm = ExecutorTelemetry(
            jobs=1,
            chunk_size=1,
            tasks_submitted=2,
            tasks_completed=1,
            chunks_dispatched=2,
            chunks_completed=2,
            worker_seconds={"pid-1": 0.1},
        )
        with pytest.raises(ConfigurationError, match="complete exactly once"):
            tm.reconcile()

    def test_reconcile_rejects_worker_overflow(self):
        tm = ExecutorTelemetry(
            jobs=1,
            chunk_size=1,
            tasks_submitted=1,
            tasks_completed=1,
            chunks_dispatched=1,
            chunks_completed=1,
            worker_seconds={"pid-1": 0.1, "pid-2": 0.1},
        )
        with pytest.raises(ConfigurationError, match="pool width"):
            tm.reconcile()

    def test_describe_mentions_workers_and_cache(self):
        ex = ParallelExecutor(jobs=1)
        ex.map(_square, range(3))
        text = ex.telemetry.describe()
        assert "ExecutorTelemetry" in text
        assert "precompute cache" in text
        assert "pid-" in text


class TestCoreClamp:
    """jobs > cores clamps to the core budget unless force_jobs=True."""

    def test_clamps_and_warns_once_at_construction(self, monkeypatch):
        monkeypatch.setattr("repro.parallel.executor.os.cpu_count", lambda: 1)
        with pytest.warns(RuntimeWarning, match="exceeds the 1 available"):
            ex = ParallelExecutor(jobs=2, chunk_size=2)
        assert ex.jobs == 1
        assert ex.jobs_requested == 2
        # map() itself stays quiet — the construction warning is the one
        # interruption; telemetry carries it from then on.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            results = ex.map(_square, range(4))
        assert results == [0, 1, 4, 9]

    def test_clamp_lands_in_telemetry_and_describe(self, monkeypatch):
        monkeypatch.setattr("repro.parallel.executor.os.cpu_count", lambda: 1)
        with pytest.warns(RuntimeWarning):
            ex = ParallelExecutor(jobs=2, chunk_size=2)
        ex.map(_square, range(4))
        tm = ex.telemetry
        assert tm.jobs == 1
        assert tm.jobs_requested == 2
        assert len(tm.warnings) == 1
        assert "jobs=2 exceeds" in tm.warnings[0]
        assert "force_jobs=True" in tm.warnings[0]
        text = tm.describe()
        assert "warning" in text
        assert "clamped from 2" in text
        tm.reconcile()  # the clamp never unbalances the books

    def test_force_jobs_keeps_width_and_flags_timeslicing(
        self, monkeypatch
    ):
        monkeypatch.setattr("repro.parallel.executor.os.cpu_count", lambda: 1)
        with pytest.warns(RuntimeWarning, match="time-slice"):
            ex = ParallelExecutor(jobs=2, chunk_size=2, force_jobs=True)
        assert ex.jobs == 2
        assert ex.jobs_requested == 2
        ex.map(_square, range(4))
        tm = ex.telemetry
        assert tm.jobs == 2
        assert "time-slice" in tm.warnings[0]
        tm.reconcile()

    def test_no_warning_within_budget(self, monkeypatch):
        monkeypatch.setattr("repro.parallel.executor.os.cpu_count", lambda: 8)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ex = ParallelExecutor(jobs=2, chunk_size=2)
        assert ex.jobs == 2
        ex.map(_square, range(4))
        assert ex.telemetry.warnings == []

    def test_cpu_count_unknown_assumes_one_core(self, monkeypatch):
        monkeypatch.setattr(
            "repro.parallel.executor.os.cpu_count", lambda: None
        )
        with pytest.warns(RuntimeWarning, match="the 1 available"):
            ex = ParallelExecutor(jobs=4)
        assert ex.jobs == 1

    def test_reconcile_rejects_raised_clamp(self):
        tm = ExecutorTelemetry(jobs=4, jobs_requested=2)
        with pytest.raises(ConfigurationError, match="lower the worker"):
            tm.reconcile()


class TestBatchDispatch:
    """map_batches: batched tasks, per-item seeds, per-item results."""

    def test_matches_map_results(self):
        ex = ParallelExecutor(jobs=1)
        want = ex.map(_square, range(11))
        assert ex.map_batches(_square_batch, range(11), batch_size=3) == want

    def test_seeds_are_per_item_not_per_batch(self):
        reference = ParallelExecutor(jobs=1).map(
            _seeded_draw, range(10), seed=42
        )
        for jobs, batch in ((1, 1), (1, 4), (2, 3), (3, 10)):
            ex = _pool(jobs) if jobs > 1 else ParallelExecutor(jobs=1)
            got = ex.map_batches(
                _seeded_batch, range(10), seed=42, batch_size=batch
            )
            assert got == reference

    def test_auto_batch_size(self):
        ex = ParallelExecutor(jobs=1)
        assert ex.map_batches(_square_batch, range(7)) == [
            x * x for x in range(7)
        ]
        ex.telemetry.reconcile()

    def test_empty_items(self):
        ex = ParallelExecutor(jobs=1)
        assert ex.map_batches(_square_batch, []) == []

    def test_result_count_mismatch_rejected(self):
        ex = ParallelExecutor(jobs=1)
        with pytest.raises(ConfigurationError, match="one result per item"):
            ex.map_batches(_short_batch, range(6), batch_size=3)

    def test_invalid_batch_size(self):
        ex = ParallelExecutor(jobs=1)
        with pytest.raises(ConfigurationError, match="batch size"):
            ex.map_batches(_square_batch, range(4), batch_size=0)
