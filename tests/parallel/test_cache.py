"""PrecomputeCache and its wiring into the FIR and membrane setup."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.chain import ReadoutChain
from repro.dsp.fir import design_compensation_fir
from repro.errors import ConfigurationError
from repro.mems.membrane import MembraneSensor
from repro.parallel import PrecomputeCache, precompute_cache
from repro.params import SystemParams


class TestPrecomputeCache:
    def test_miss_then_hit(self):
        cache = PrecomputeCache()
        calls = []

        def factory():
            calls.append(1)
            return 42

        assert cache.get(("k",), factory) == 42
        assert cache.get(("k",), factory) == 42
        assert len(calls) == 1
        assert cache.stats() == (1, 1)

    def test_distinct_keys_distinct_values(self):
        cache = PrecomputeCache()
        assert cache.get(("a",), lambda: 1) == 1
        assert cache.get(("b",), lambda: 2) == 2
        assert len(cache) == 2
        assert ("a",) in cache

    def test_unhashable_key_rejected(self):
        cache = PrecomputeCache()
        with pytest.raises(ConfigurationError, match="hashable"):
            cache.get(["list", "key"], lambda: 0)

    def test_reset_stats_keeps_entries(self):
        cache = PrecomputeCache()
        cache.get(("k",), lambda: 7)
        cache.reset_stats()
        assert cache.stats() == (0, 0)
        assert cache.get(("k",), lambda: 8) == 7  # still cached

    def test_clear_drops_entries(self):
        cache = PrecomputeCache()
        cache.get(("k",), lambda: 7)
        cache.clear()
        assert len(cache) == 0
        assert cache.get(("k",), lambda: 8) == 8

    def test_global_instance_is_stable(self):
        assert precompute_cache() is precompute_cache()

    def test_raising_factory_counts_nothing_and_stores_nothing(self):
        cache = PrecomputeCache()

        def bad_factory():
            raise ValueError("transient setup failure")

        with pytest.raises(ValueError, match="transient"):
            cache.get(("k",), bad_factory)
        # No phantom miss, no poisoned entry: the retry is a clean slate.
        assert cache.stats() == (0, 0)
        assert len(cache) == 0
        assert ("k",) not in cache
        assert cache.get(("k",), lambda: 42) == 42
        assert cache.stats() == (0, 1)


class TestBoundedCache:
    def test_maxsize_evicts_least_recently_used(self):
        cache = PrecomputeCache(maxsize=2)
        cache.get(("a",), lambda: 1)
        cache.get(("b",), lambda: 2)
        cache.get(("a",), lambda: 0)  # touch "a": "b" is now the LRU
        cache.get(("c",), lambda: 3)  # evicts "b"
        assert ("a",) in cache
        assert ("b",) not in cache
        assert ("c",) in cache
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_evicted_entry_recomputes(self):
        cache = PrecomputeCache(maxsize=1)
        cache.get(("a",), lambda: 1)
        cache.get(("b",), lambda: 2)
        assert cache.get(("a",), lambda: 11) == 11
        assert cache.evictions == 2
        assert cache.stats() == (0, 3)

    def test_unbounded_never_evicts(self):
        cache = PrecomputeCache()
        for i in range(100):
            cache.get(("k", i), lambda i=i: i)
        assert len(cache) == 100
        assert cache.evictions == 0

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ConfigurationError, match="maxsize"):
            PrecomputeCache(maxsize=0)

    def test_reset_stats_zeroes_evictions(self):
        cache = PrecomputeCache(maxsize=1)
        cache.get(("a",), lambda: 1)
        cache.get(("b",), lambda: 2)
        cache.reset_stats()
        assert cache.evictions == 0
        assert cache.stats() == (0, 0)


class TestFIRDesignSharing:
    def test_two_chains_share_identical_tap_arrays(self):
        """Satellite check: many chains, one firwin2 run per process."""
        cache = precompute_cache()
        c1 = ReadoutChain(SystemParams(), rng=np.random.default_rng(1))
        hits0, _ = cache.stats()
        c2 = ReadoutChain(SystemParams(), rng=np.random.default_rng(2))
        hits1, _ = cache.stats()
        taps1 = c1.fpga.filter.fir_coefficients
        taps2 = c2.fpga.filter.fir_coefficients
        # Same object — no recompute — and bit-identical values.
        assert taps1 is taps2
        assert np.array_equal(taps1, taps2)
        assert hits1 > hits0

    def test_cached_design_is_read_only(self):
        coeffs = design_compensation_fir(32, 4000.0, 500.0)
        with pytest.raises(ValueError):
            coeffs[0] = 1.0

    def test_design_differs_for_different_parameters(self):
        a = design_compensation_fir(32, 4000.0, 500.0)
        b = design_compensation_fir(32, 4000.0, 400.0)
        assert not np.array_equal(a, b)

    def test_invalid_design_still_rejected(self):
        with pytest.raises(ConfigurationError):
            design_compensation_fir(4, 4000.0, 500.0)
        with pytest.raises(ConfigurationError):
            design_compensation_fir(32, 4000.0, 3000.0)


class TestMembraneTransferSharing:
    def test_two_sensors_share_the_transfer_solution(self):
        s1 = MembraneSensor()
        s2 = MembraneSensor()
        assert s1._fit is s2._fit
        assert s1._p_touchdown == s2._p_touchdown

    def test_caching_preserves_transfer_values(self):
        sensor = MembraneSensor()
        pressures = np.linspace(-40e3, 40e3, 11)
        caps = sensor.capacitance_f(pressures)
        exact = sensor.capacitance_exact_f(pressures)
        assert np.allclose(caps, exact, rtol=1e-3)

    def test_custom_degree_gets_its_own_entry(self):
        s1 = MembraneSensor(interpolant_degree=12)
        s2 = MembraneSensor(interpolant_degree=14)
        assert s1._fit is not s2._fit
