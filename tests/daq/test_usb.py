"""USB framing: round trip, corruption, resynchronization."""

import numpy as np
import pytest

from repro.daq.usb import Frame, FrameDecoder, FrameEncoder, crc16_ccitt
from repro.errors import ConfigurationError


class TestCRC:
    def test_known_vector(self):
        # CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        assert crc16_ccitt(b"123456789") == 0x29B1

    def test_detects_flip(self):
        data = b"hello world"
        assert crc16_ccitt(data) != crc16_ccitt(b"hellp world")


class TestRoundTrip:
    def test_simple(self):
        enc = FrameEncoder(samples_per_frame=16)
        codes = np.arange(-8, 8, dtype=np.int16)
        payload = enc.push(codes, element=2)
        frames = FrameDecoder().feed(payload)
        assert len(frames) == 1
        assert frames[0].element == 2
        assert np.array_equal(frames[0].samples, codes)

    def test_partial_needs_flush(self):
        enc = FrameEncoder(samples_per_frame=64)
        payload = enc.push(np.arange(10, dtype=np.int16), element=0)
        assert payload == b""
        payload = enc.flush()
        frames = FrameDecoder().feed(payload)
        assert len(frames) == 1
        assert frames[0].samples.size == 10

    def test_multi_frame_sequence(self):
        enc = FrameEncoder(samples_per_frame=8)
        dec = FrameDecoder()
        codes = np.arange(50, dtype=np.int16)
        frames = dec.feed(enc.push(codes, element=1) + enc.flush())
        assert len(frames) == 7
        got = np.concatenate([f.samples for f in frames])
        assert np.array_equal(got, codes)
        assert [f.sequence for f in frames] == list(range(7))
        assert dec.lost_frames == 0

    def test_element_change_flushes(self):
        enc = FrameEncoder(samples_per_frame=64)
        payload = enc.push(np.arange(5, dtype=np.int16), element=0)
        payload += enc.push(np.arange(5, dtype=np.int16), element=1)
        payload += enc.flush()
        frames = FrameDecoder().feed(payload)
        assert [f.element for f in frames] == [0, 1]

    def test_negative_codes_survive(self):
        enc = FrameEncoder(samples_per_frame=4)
        codes = np.array([-2048, -1, 0, 2047], dtype=np.int16)
        frames = FrameDecoder().feed(enc.push(codes, element=0))
        assert np.array_equal(frames[0].samples, codes)


class TestByteStreamRobustness:
    def _payload(self, n_frames=3):
        enc = FrameEncoder(samples_per_frame=8)
        return enc.push(np.arange(8 * n_frames, dtype=np.int16), element=0)

    def test_byte_at_a_time(self):
        payload = self._payload()
        dec = FrameDecoder()
        frames = []
        for i in range(len(payload)):
            frames += dec.feed(payload[i : i + 1])
        assert len(frames) == 3

    def test_garbage_prefix_skipped(self):
        payload = b"\x00\xff\x13" + self._payload(1)
        frames = FrameDecoder().feed(payload)
        assert len(frames) == 1

    def test_corrupted_frame_dropped(self):
        payload = bytearray(self._payload(3))
        # Corrupt a sample byte in the second frame (each frame is
        # 6 header + 16 payload + 2 crc = 24 bytes).
        payload[24 + 10] ^= 0xFF
        dec = FrameDecoder()
        frames = dec.feed(bytes(payload))
        assert len(frames) == 2
        assert dec.crc_errors >= 1

    def test_lost_frame_counted(self):
        payload = self._payload(3)
        dec = FrameDecoder()
        frames = dec.feed(payload[:24] + payload[48:])  # drop frame 1
        assert len(frames) == 2
        assert dec.lost_frames == 1

    def test_truncated_tail_waits(self):
        payload = self._payload(1)
        dec = FrameDecoder()
        assert dec.feed(payload[:-3]) == []
        assert len(dec.feed(payload[-3:])) == 1


class TestValidation:
    def test_rejects_oversized_codes(self):
        enc = FrameEncoder()
        with pytest.raises(ConfigurationError):
            enc.push(np.array([40000]), element=0)

    def test_rejects_bad_frame_size(self):
        with pytest.raises(ConfigurationError):
            FrameEncoder(samples_per_frame=0)
        with pytest.raises(ConfigurationError):
            FrameEncoder(samples_per_frame=300)

    def test_frame_field_validation(self):
        with pytest.raises(ConfigurationError):
            Frame(sequence=70000, element=0, samples=np.zeros(1, dtype=np.int16))
