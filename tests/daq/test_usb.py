"""USB framing: round trip, corruption, resynchronization."""

import numpy as np
import pytest

from repro.daq.usb import Frame, FrameDecoder, FrameEncoder, crc16_ccitt
from repro.errors import ConfigurationError


class TestCRC:
    def test_known_vector(self):
        # CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        assert crc16_ccitt(b"123456789") == 0x29B1

    @pytest.mark.parametrize(
        "data, expected",
        [
            (b"", 0xFFFF),  # seed passes through untouched
            (b"A", 0xB915),
            (b"123456789", 0x29B1),
            (b"\x00", 0xE1F0),
            (b"\xff\xff", 0x0000),
        ],
    )
    def test_known_answer_vectors(self, data, expected):
        """Published CRC-16/CCITT-FALSE vectors pin the polynomial,
        seed and bit order — any table regression breaks these."""
        assert crc16_ccitt(data) == expected

    def test_incremental_equals_whole(self):
        # Chaining via the seed must equal one pass over the bytes.
        data = b"framed-telemetry"
        split = crc16_ccitt(data[7:], seed=crc16_ccitt(data[:7]))
        assert split == crc16_ccitt(data)

    def test_detects_flip(self):
        data = b"hello world"
        assert crc16_ccitt(data) != crc16_ccitt(b"hellp world")

    def test_detects_every_single_bit_flip(self):
        data = bytearray(b"\x12\x34\x56\x78")
        clean = crc16_ccitt(bytes(data))
        for byte in range(len(data)):
            for bit in range(8):
                data[byte] ^= 1 << bit
                assert crc16_ccitt(bytes(data)) != clean
                data[byte] ^= 1 << bit


class TestRoundTrip:
    def test_simple(self):
        enc = FrameEncoder(samples_per_frame=16)
        codes = np.arange(-8, 8, dtype=np.int16)
        payload = enc.push(codes, element=2)
        frames = FrameDecoder().feed(payload)
        assert len(frames) == 1
        assert frames[0].element == 2
        assert np.array_equal(frames[0].samples, codes)

    def test_partial_needs_flush(self):
        enc = FrameEncoder(samples_per_frame=64)
        payload = enc.push(np.arange(10, dtype=np.int16), element=0)
        assert payload == b""
        payload = enc.flush()
        frames = FrameDecoder().feed(payload)
        assert len(frames) == 1
        assert frames[0].samples.size == 10

    def test_multi_frame_sequence(self):
        enc = FrameEncoder(samples_per_frame=8)
        dec = FrameDecoder()
        codes = np.arange(50, dtype=np.int16)
        frames = dec.feed(enc.push(codes, element=1) + enc.flush())
        assert len(frames) == 7
        got = np.concatenate([f.samples for f in frames])
        assert np.array_equal(got, codes)
        assert [f.sequence for f in frames] == list(range(7))
        assert dec.lost_frames == 0

    def test_element_change_flushes(self):
        enc = FrameEncoder(samples_per_frame=64)
        payload = enc.push(np.arange(5, dtype=np.int16), element=0)
        payload += enc.push(np.arange(5, dtype=np.int16), element=1)
        payload += enc.flush()
        frames = FrameDecoder().feed(payload)
        assert [f.element for f in frames] == [0, 1]

    def test_negative_codes_survive(self):
        enc = FrameEncoder(samples_per_frame=4)
        codes = np.array([-2048, -1, 0, 2047], dtype=np.int16)
        frames = FrameDecoder().feed(enc.push(codes, element=0))
        assert np.array_equal(frames[0].samples, codes)


class TestByteStreamRobustness:
    def _payload(self, n_frames=3):
        enc = FrameEncoder(samples_per_frame=8)
        return enc.push(np.arange(8 * n_frames, dtype=np.int16), element=0)

    def test_byte_at_a_time(self):
        payload = self._payload()
        dec = FrameDecoder()
        frames = []
        for i in range(len(payload)):
            frames += dec.feed(payload[i : i + 1])
        assert len(frames) == 3

    def test_garbage_prefix_skipped(self):
        payload = b"\x00\xff\x13" + self._payload(1)
        frames = FrameDecoder().feed(payload)
        assert len(frames) == 1

    def test_corrupted_frame_dropped(self):
        payload = bytearray(self._payload(3))
        # Corrupt a sample byte in the second frame (each frame is
        # 7 header + 16 payload + 2 crc = 25 bytes).
        payload[25 + 10] ^= 0xFF
        dec = FrameDecoder()
        frames = dec.feed(bytes(payload))
        assert len(frames) == 2
        assert dec.crc_errors >= 1

    def test_lost_frame_counted(self):
        payload = self._payload(3)
        dec = FrameDecoder()
        frames = dec.feed(payload[:25] + payload[50:])  # drop frame 1
        assert len(frames) == 2
        assert dec.lost_frames == 1

    def test_truncated_tail_waits(self):
        payload = self._payload(1)
        dec = FrameDecoder()
        assert dec.feed(payload[:-3]) == []
        assert len(dec.feed(payload[-3:])) == 1


class TestDecoderIdempotence:
    def _payload(self, n_frames=2):
        enc = FrameEncoder(samples_per_frame=8)
        return enc.push(np.arange(8 * n_frames, dtype=np.int16), element=0)

    def test_feed_empty_is_exact_noop(self):
        dec = FrameDecoder()
        dec.feed(self._payload()[:11])  # leave a split frame buffered
        before = dict(vars(dec))
        assert dec.feed(b"") == []
        # No counter moved and the buffered split frame is untouched.
        assert {k: v for k, v in vars(dec).items() if k != "_buffer"} == {
            k: v for k, v in before.items() if k != "_buffer"
        }
        assert bytes(dec._buffer) == bytes(before["_buffer"])

    def test_finalize_idempotent(self):
        payload = self._payload(2)
        dec = FrameDecoder()
        frames = dec.feed(payload)
        assert len(frames) == 2
        for _ in range(3):
            assert dec.finalize() == []
        assert dec.crc_errors == 0
        assert dec.resync_bytes == 0
        assert dec.frames_decoded == 2

    def test_feed_resumes_after_finalize(self):
        payload = self._payload(2)
        dec = FrameDecoder()
        dec.feed(payload[:25])
        dec.finalize()
        assert len(dec.feed(payload[25:])) == 1
        assert dec.frames_decoded == 2


class TestStaleFrames:
    def _frames(self, n):
        enc = FrameEncoder(samples_per_frame=4)
        payload = enc.push(np.arange(4 * n, dtype=np.int16), element=0)
        return [payload[i : i + 17] for i in range(0, len(payload), 17)]

    def test_reordered_frame_dropped_as_stale(self):
        a, b, c = self._frames(3)
        dec = FrameDecoder()
        frames = dec.feed(a + c + b)  # b arrives late
        # c shows a gap of 1 (b missing); b then lands behind the
        # expectation and is dropped as stale — conservation closes.
        assert [f.sequence for f in frames] == [0, 2]
        assert dec.lost_frames == 1
        assert dec.stale_frames == 1
        assert dec.frames_decoded + dec.lost_frames == 3

    def test_replay_overlap_counted_not_ingested(self):
        a, b, c = self._frames(3)
        dec = FrameDecoder()
        dec.feed(a + b + c)
        frames = dec.feed(b + c)  # a resumed device replays acked frames
        assert frames == []
        assert dec.stale_frames == 2
        assert dec.lost_frames == 0
        assert dec.frames_decoded == 3

    def test_large_forward_jump_still_a_gap(self):
        frames = self._frames(3)
        dec = FrameDecoder()
        dec.expect(0)
        dec.feed(frames[2])  # first two never arrived
        assert dec.lost_frames == 2
        assert dec.stale_frames == 0

    def test_expect_validation(self):
        dec = FrameDecoder()
        dec.expect(0xFFFF)
        dec.expect(None)
        with pytest.raises(ConfigurationError):
            dec.expect(0x10000)
        with pytest.raises(ConfigurationError):
            dec.expect(-1)

    def test_expect_makes_leading_loss_visible(self):
        a, b, c = self._frames(3)
        dec = FrameDecoder()
        dec.expect(0)
        dec.feed(b + c)  # a was shed before the decoder ever saw it
        assert dec.lost_frames == 1
        assert dec.frames_decoded == 2


class TestResyncComplexity:
    """The resync scan must stay O(buffer) with a bounded constant."""

    def _crc_meter(self, monkeypatch):
        import repro.daq.usb as usb_mod

        counted = {"bytes": 0, "calls": 0}
        real = usb_mod.crc16_ccitt

        def counting(data, seed=0xFFFF):
            counted["bytes"] += len(data)
            counted["calls"] += 1
            return real(data, seed)

        monkeypatch.setattr(usb_mod, "crc16_ccitt", counting)
        return counted

    def _adversarial(self, n_pairs):
        # Every even offset is a sync candidate whose claimed length
        # forces a full-frame CRC check — the densest false-sync garbage
        # the wire can carry.
        return b"\xa5\x5a" * n_pairs

    def test_crc_work_linear_in_garbage(self, monkeypatch):
        meter = self._crc_meter(monkeypatch)
        enc = FrameEncoder(samples_per_frame=8)
        real_frame = enc.push(np.arange(8, dtype=np.int16), element=0)

        work = []
        for n_pairs in (800, 1600):
            meter["bytes"] = meter["calls"] = 0
            dec = FrameDecoder()
            frames = dec.feed(self._adversarial(n_pairs) + real_frame)
            frames += dec.finalize()  # drain the last false length claim
            assert len(frames) == 1  # the true frame always survives
            work.append(meter["bytes"])
        # Doubling the garbage must at most double the CRC work
        # (a quadratic rescan would quadruple it).
        assert work[1] <= 2.5 * work[0]
        # And the constant stays bounded by the max claimable frame
        # length per 2-byte candidate stride (~260x).
        assert work[1] <= 300 * (2 * 1600)

    def test_garbage_bytes_all_accounted(self):
        garbage = self._adversarial(100)
        enc = FrameEncoder(samples_per_frame=8)
        real_frame = enc.push(np.arange(8, dtype=np.int16), element=0)
        dec = FrameDecoder()
        dec.feed(garbage + real_frame)
        dec.finalize()
        # Every skipped sync candidate is visible in the counters; the
        # scan never silently swallows corrupt regions.
        assert dec.crc_errors + dec.resync_bytes // 2 > 0
        assert dec.frames_decoded == 1


class TestValidation:
    def test_rejects_oversized_codes(self):
        enc = FrameEncoder()
        with pytest.raises(ConfigurationError):
            enc.push(np.array([40000]), element=0)

    def test_rejects_bad_frame_size(self):
        with pytest.raises(ConfigurationError):
            FrameEncoder(samples_per_frame=0)
        with pytest.raises(ConfigurationError):
            FrameEncoder(samples_per_frame=300)

    def test_frame_field_validation(self):
        with pytest.raises(ConfigurationError):
            Frame(sequence=70000, element=0, samples=np.zeros(1, dtype=np.int16))
