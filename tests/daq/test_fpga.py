"""FPGA filter bank wrapper."""

import numpy as np
import pytest

from repro.daq.fpga import FPGAFilterBank
from repro.daq.usb import FrameDecoder
from repro.errors import ConfigurationError


def dc_bits(n):
    return np.ones(n, dtype=np.int64)


class TestFiltering:
    def test_frames_out(self):
        fpga = FPGAFilterBank(samples_per_frame=16)
        payload = fpga.process(dc_bits(128 * 64)) + fpga.finish()
        frames = FrameDecoder().feed(payload)
        total = sum(f.samples.size for f in frames)
        assert total == 64

    def test_output_rate(self):
        fpga = FPGAFilterBank()
        assert fpga.output_rate_hz == pytest.approx(1000.0)

    def test_element_tagging(self):
        fpga = FPGAFilterBank(samples_per_frame=8, flush_words_on_switch=0)
        fpga.select_element(3)
        payload = fpga.process(dc_bits(128 * 16)) + fpga.finish()
        frames = FrameDecoder().feed(payload)
        assert all(f.element == 3 for f in frames)


class TestSwitching:
    def test_switch_suppresses_words(self):
        fpga = FPGAFilterBank(samples_per_frame=4, flush_words_on_switch=8)
        fpga.select_element(1)
        payload = fpga.process(dc_bits(128 * 20)) + fpga.finish()
        frames = FrameDecoder().feed(payload)
        total = sum(f.samples.size for f in frames)
        assert total == 20 - 8

    def test_switch_resets_filter(self):
        """After a switch + flush, DC words match a fresh filter's."""
        fresh = FPGAFilterBank(samples_per_frame=4, flush_words_on_switch=8)
        fresh.select_element(1)
        p1 = fresh.process(dc_bits(128 * 20)) + fresh.finish()
        used = FPGAFilterBank(samples_per_frame=4, flush_words_on_switch=8)
        used.process(dc_bits(128 * 20))  # run on element 0 first
        used.select_element(1)
        p2 = used.process(dc_bits(128 * 20)) + used.finish()
        s1 = np.concatenate([f.samples for f in FrameDecoder().feed(p1)])
        s2 = np.concatenate([f.samples for f in FrameDecoder().feed(p2)])
        assert np.array_equal(s1, s2)

    def test_same_element_no_suppression(self):
        fpga = FPGAFilterBank(samples_per_frame=4, flush_words_on_switch=8)
        payload = fpga.process(dc_bits(128 * 10))
        fpga.select_element(0)  # already selected: no reset
        payload += fpga.process(dc_bits(128 * 10)) + fpga.finish()
        frames = FrameDecoder().feed(payload)
        assert sum(f.samples.size for f in frames) == 20

    def test_rejects_negative_element(self):
        with pytest.raises(ConfigurationError):
            FPGAFilterBank().select_element(-1)

    def test_rejects_negative_flush(self):
        with pytest.raises(ConfigurationError):
            FPGAFilterBank(flush_words_on_switch=-1)
