"""Session recording persistence."""

import numpy as np
import pytest

from repro.daq.recording import SessionRecording
from repro.errors import ConfigurationError, FramingError


@pytest.fixture()
def session() -> SessionRecording:
    rng = np.random.default_rng(44)
    codes = rng.integers(-2048, 2047, 500).astype(np.int16)
    return SessionRecording(
        codes=codes,
        sample_rate_hz=1000.0,
        element=2,
        calibrated_mmhg=80.0 + 40.0 * rng.random(500),
        metadata={"subject": "virtual-01", "note": "test session"},
    )


class TestRoundTrip:
    def test_save_load(self, session, tmp_path):
        path = session.save(tmp_path / "session.npz")
        loaded = SessionRecording.load(path)
        assert np.array_equal(loaded.codes, session.codes)
        assert loaded.sample_rate_hz == session.sample_rate_hz
        assert loaded.element == session.element
        assert loaded.calibrated_mmhg == pytest.approx(
            session.calibrated_mmhg
        )
        assert loaded.metadata == session.metadata

    def test_suffix_appended(self, session, tmp_path):
        path = session.save(tmp_path / "bare")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_empty_calibration_survives(self, tmp_path):
        raw_only = SessionRecording(
            codes=np.zeros(10, dtype=np.int16),
            sample_rate_hz=1000.0,
            element=0,
        )
        loaded = SessionRecording.load(raw_only.save(tmp_path / "raw.npz"))
        assert loaded.calibrated_mmhg.size == 0


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no such"):
            SessionRecording.load(tmp_path / "nope.npz")

    def test_wrong_version_rejected(self, session, tmp_path):
        import json

        path = session.save(tmp_path / "v.npz")
        with np.load(path) as archive:
            codes = archive["codes"]
            calibrated = archive["calibrated_mmhg"]
        bad_header = json.dumps(
            {"format_version": 99, "sample_rate_hz": 1000.0, "element": 0}
        ).encode()
        np.savez(
            path,
            header=np.frombuffer(bad_header, dtype=np.uint8),
            codes=codes,
            calibrated_mmhg=calibrated,
        )
        with pytest.raises(FramingError, match="version"):
            SessionRecording.load(path)

    def test_rejects_mismatched_waveform(self):
        with pytest.raises(ConfigurationError):
            SessionRecording(
                codes=np.zeros(10, dtype=np.int16),
                sample_rate_hz=1000.0,
                element=0,
                calibrated_mmhg=np.zeros(5),
            )

    def test_duration(self, session):
        assert session.duration_s == pytest.approx(0.5)
        assert session.times_s.size == 500


class TestFromMonitorResult:
    @pytest.mark.slow
    def test_full_pipeline(self, tmp_path):
        from repro.core.chain import ReadoutChain
        from repro.core.monitor import BloodPressureMonitor
        from repro.params import PASCAL_PER_MMHG, SystemParams
        from repro.physiology.patient import VirtualPatient
        from repro.tonometry.contact import ContactModel
        from repro.tonometry.coupling import TonometricCoupling

        params = SystemParams()
        rng = np.random.default_rng(46)
        chain = ReadoutChain(params, rng=rng)
        contact = ContactModel(
            contact=params.contact, tissue=params.tissue,
            mean_arterial_pressure_pa=(80 + 40 / 3) * PASCAL_PER_MMHG,
        )
        coupling = TonometricCoupling(
            chain.chip.array.geometry, contact, rng=rng
        )
        monitor = BloodPressureMonitor(chain, coupling)
        result = monitor.measure(
            VirtualPatient(rng=rng), duration_s=6.0, scan_dwell_s=0.5,
            rng=rng,
        )
        session = SessionRecording.from_monitor_result(
            result, subject="virtual-02"
        )
        loaded = SessionRecording.load(session.save(tmp_path / "full.npz"))
        assert loaded.metadata["subject"] == "virtual-02"
        assert loaded.metadata["cuff_systolic_mmhg"] == pytest.approx(
            result.cuff.systolic_mmhg
        )
        assert loaded.codes.size == result.recording.codes.size
