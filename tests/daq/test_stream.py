"""Host-side stream reassembly."""

import numpy as np
import pytest

from repro.daq.stream import SampleStream
from repro.daq.usb import FrameDecoder, FrameEncoder
from repro.errors import ConfigurationError


def frames_for(codes_by_element, samples_per_frame=8):
    enc = FrameEncoder(samples_per_frame=samples_per_frame)
    payload = b""
    for element, codes in codes_by_element:
        payload += enc.push(np.asarray(codes, dtype=np.int16), element)
    payload += enc.flush()
    return FrameDecoder().feed(payload)


class TestReassembly:
    def test_single_element(self):
        stream = SampleStream()
        stream.ingest(frames_for([(0, np.arange(20))]))
        assert stream.sample_count(0) == 20
        assert np.array_equal(stream.samples(0), np.arange(20))

    def test_multi_element(self):
        stream = SampleStream()
        stream.ingest(
            frames_for([(0, np.arange(16)), (1, np.arange(100, 116))])
        )
        assert stream.elements == [0, 1]
        assert stream.samples(1)[0] == 100

    def test_matrix(self):
        stream = SampleStream()
        stream.ingest(
            frames_for([(0, np.arange(16)), (1, np.arange(16))])
        )
        m = stream.as_matrix()
        assert m.shape == (16, 2)

    def test_matrix_truncates_to_shortest(self):
        stream = SampleStream()
        stream.ingest(
            frames_for([(0, np.arange(24)), (1, np.arange(16))])
        )
        assert stream.as_matrix().shape == (16, 2)

    def test_empty(self):
        stream = SampleStream()
        assert stream.samples(0).size == 0
        assert stream.as_matrix().shape == (0, 0)

    def test_timestamps(self):
        stream = SampleStream(sample_rate_hz=1000.0)
        stream.ingest(frames_for([(0, np.arange(10))]))
        t = stream.timestamps_s(0)
        assert t[1] - t[0] == pytest.approx(1e-3)
        assert stream.duration_s(0) == pytest.approx(0.01)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            SampleStream(sample_rate_hz=0.0)
