"""Host-side stream reassembly."""

import numpy as np
import pytest

from repro.daq.stream import SampleStream
from repro.daq.usb import FrameDecoder, FrameEncoder
from repro.errors import ConfigurationError


def frames_for(codes_by_element, samples_per_frame=8):
    enc = FrameEncoder(samples_per_frame=samples_per_frame)
    payload = b""
    for element, codes in codes_by_element:
        payload += enc.push(np.asarray(codes, dtype=np.int16), element)
    payload += enc.flush()
    return FrameDecoder().feed(payload)


class TestReassembly:
    def test_single_element(self):
        stream = SampleStream()
        stream.ingest(frames_for([(0, np.arange(20))]))
        assert stream.sample_count(0) == 20
        assert np.array_equal(stream.samples(0), np.arange(20))

    def test_multi_element(self):
        stream = SampleStream()
        stream.ingest(
            frames_for([(0, np.arange(16)), (1, np.arange(100, 116))])
        )
        assert stream.elements == [0, 1]
        assert stream.samples(1)[0] == 100

    def test_matrix(self):
        stream = SampleStream()
        stream.ingest(
            frames_for([(0, np.arange(16)), (1, np.arange(16))])
        )
        m = stream.as_matrix()
        assert m.shape == (16, 2)

    def test_matrix_truncates_to_shortest(self):
        stream = SampleStream()
        stream.ingest(
            frames_for([(0, np.arange(24)), (1, np.arange(16))])
        )
        assert stream.as_matrix().shape == (16, 2)

    def test_empty(self):
        stream = SampleStream()
        assert stream.samples(0).size == 0
        assert stream.as_matrix().shape == (0, 0)

    def test_timestamps(self):
        stream = SampleStream(sample_rate_hz=1000.0)
        stream.ingest(frames_for([(0, np.arange(10))]))
        t = stream.timestamps_s(0)
        assert t[1] - t[0] == pytest.approx(1e-3)
        assert stream.duration_s(0) == pytest.approx(0.01)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            SampleStream(sample_rate_hz=0.0)


class TestGapAccounting:
    """Dropped frames must show up as explicit per-element gaps."""

    def drop(self, frames, *indices):
        return [f for i, f in enumerate(frames) if i not in indices]

    def test_no_gaps_on_clean_stream(self):
        stream = SampleStream()
        stream.ingest(frames_for([(0, np.arange(32))]))
        assert stream.gaps(0) == ()
        assert stream.lost_samples(0) == 0

    def test_single_dropped_frame(self):
        stream = SampleStream()
        frames = frames_for([(0, np.arange(32))], samples_per_frame=8)
        stream.ingest(self.drop(frames, 1))  # lose samples 8..15
        gaps = stream.gaps(0)
        assert len(gaps) == 1
        assert gaps[0].sample_index == 8
        assert gaps[0].lost_frames == 1
        assert gaps[0].lost_samples == 8
        assert stream.lost_samples(0) == 8
        assert stream.sample_count(0) == 24

    def test_gap_detected_across_ingest_calls(self):
        stream = SampleStream()
        frames = frames_for([(0, np.arange(32))], samples_per_frame=8)
        stream.ingest(frames[:1])
        stream.ingest(frames[2:])  # frame 1 never arrives
        assert stream.lost_samples(0) == 8

    def test_consecutive_losses_coalesce(self):
        stream = SampleStream()
        frames = frames_for([(0, np.arange(48))], samples_per_frame=8)
        stream.ingest(self.drop(frames, 2, 3))
        gaps = stream.gaps(0)
        assert len(gaps) == 1
        assert gaps[0].lost_frames == 2
        assert gaps[0].lost_samples == 16

    def test_gap_attributed_to_following_frames_element(self):
        """Lost frames' element tags are gone; the charge goes to the
        element of the first frame after the loss."""
        stream = SampleStream()
        frames = frames_for(
            [(0, np.arange(16)), (1, np.arange(16))], samples_per_frame=8
        )
        stream.ingest(self.drop(frames, 1))  # last element-0 frame lost
        assert stream.gaps(0) == ()
        assert len(stream.gaps(1)) == 1
        assert stream.gaps(1)[0].sample_index == 0

    def test_timestamps_shift_after_gap(self):
        stream = SampleStream(sample_rate_hz=1000.0)
        frames = frames_for([(0, np.arange(32))], samples_per_frame=8)
        stream.ingest(self.drop(frames, 1))
        t = stream.timestamps_s(0)
        assert t.size == 24
        assert t[7] == pytest.approx(7e-3)
        # Sample 8 of the received record was acquired at t = 16 ms.
        assert t[8] == pytest.approx(16e-3)
        assert stream.duration_s(0) == pytest.approx(32e-3)

    def test_zero_filled_reconstruction(self):
        stream = SampleStream()
        frames = frames_for([(0, np.arange(32))], samples_per_frame=8)
        stream.ingest(self.drop(frames, 1))
        filled, mask = stream.zero_filled(0)
        assert filled.size == 32
        assert mask.size == 32
        assert np.array_equal(filled[:8], np.arange(8))
        assert np.all(filled[8:16] == 0)
        assert np.array_equal(filled[16:], np.arange(16, 32))
        assert np.all(mask[:8]) and np.all(mask[16:])
        assert not np.any(mask[8:16])

    def test_zero_filled_clean_stream_is_identity(self):
        stream = SampleStream()
        stream.ingest(frames_for([(0, np.arange(20))]))
        filled, mask = stream.zero_filled(0)
        assert np.array_equal(filled, np.arange(20))
        assert np.all(mask)

    def test_sequence_wraparound_not_a_gap(self):
        from repro.daq.usb import Frame

        stream = SampleStream()
        stream.ingest(
            [
                Frame(0xFFFF, 0, np.arange(4, dtype=np.int16)),
                Frame(0x0000, 0, np.arange(4, 8, dtype=np.int16)),
            ]
        )
        assert stream.gaps(0) == ()
        assert stream.sample_count(0) == 8
