"""Sequence wraparound and end-of-stream resynchronization."""

import numpy as np

from repro.daq.stream import SampleStream
from repro.daq.usb import Frame, FrameDecoder, FrameEncoder


def frames_from(encoder, n_frames, spf=8, element=0):
    payload = encoder.push(
        np.arange(spf * n_frames, dtype=np.int16), element=element
    )
    return payload


class TestSequenceWraparound:
    def test_wrap_without_loss(self):
        enc = FrameEncoder(samples_per_frame=8)
        enc._sequence = 0xFFFE
        dec = FrameDecoder()
        frames = dec.feed(frames_from(enc, 4))
        assert [f.sequence for f in frames] == [0xFFFE, 0xFFFF, 0, 1]
        assert dec.lost_frames == 0

    def test_drop_across_the_wrap_counts_modular_distance(self):
        enc = FrameEncoder(samples_per_frame=8)
        enc._sequence = 0xFFFE
        payload = frames_from(enc, 4)
        frame_len = 9 + 2 * 8
        # Remove the 0xFFFF and 0x0000 frames: the gap spans the wrap.
        mangled = payload[:frame_len] + payload[3 * frame_len :]
        dec = FrameDecoder()
        frames = dec.feed(mangled)
        assert [f.sequence for f in frames] == [0xFFFE, 1]
        assert dec.lost_frames == 2

    def test_stream_gap_accounting_across_the_wrap(self):
        spf = 8
        make = lambda seq: Frame(
            sequence=seq,
            element=0,
            samples=np.full(spf, seq % 100, dtype=np.int16),
        )
        stream = SampleStream()
        stream.ingest([make(0xFFFF), make(1)])  # frame 0x0000 lost
        assert stream.lost_samples(0) == spf
        [gap] = stream.gaps(0)
        assert gap.lost_frames == 1
        assert gap.sample_index == spf


class TestFinalize:
    def corrupted_count_payload(self):
        """Three frames; the middle one's count byte claims more samples
        than the link ever delivers."""
        enc = FrameEncoder(samples_per_frame=8)
        payload = frames_from(enc, 3)
        frame_len = 9 + 2 * 8
        mangled = bytearray(payload)
        mangled[frame_len + 6] = 255  # count byte of frame 1
        return bytes(mangled), frame_len

    def test_feed_stalls_behind_corrupted_count(self):
        payload, _ = self.corrupted_count_payload()
        dec = FrameDecoder()
        frames = dec.feed(payload)
        # Frame 1 claims 255 samples, swallowing frame 2's bytes: only
        # frame 0 decodes while the decoder waits for data that will
        # never come.
        assert [f.sequence for f in frames] == [0]

    def test_finalize_recovers_trailing_frame(self):
        payload, _ = self.corrupted_count_payload()
        dec = FrameDecoder()
        dec.feed(payload)
        tail = dec.finalize()
        assert [f.sequence for f in tail] == [2]
        assert dec.lost_frames == 1  # frame 1 is gone, and counted
        assert dec.resync_bytes > 0

    def test_finalize_noop_on_clean_buffer(self):
        enc = FrameEncoder(samples_per_frame=8)
        dec = FrameDecoder()
        frames = dec.feed(frames_from(enc, 2))
        assert len(frames) == 2
        assert dec.finalize() == []
        assert dec.resync_bytes == 0

    def test_feeding_resumes_after_finalize(self):
        enc = FrameEncoder(samples_per_frame=8)
        dec = FrameDecoder()
        dec.feed(frames_from(enc, 1))
        dec.finalize()
        frames = dec.feed(frames_from(enc, 1))
        assert [f.sequence for f in frames] == [1]

    def test_finalize_on_empty_decoder(self):
        assert FrameDecoder().finalize() == []


class TestMidStreamResync:
    def test_crc_failure_skips_and_recovers(self):
        enc = FrameEncoder(samples_per_frame=8)
        payload = bytearray(frames_from(enc, 3))
        frame_len = 9 + 2 * 8
        payload[frame_len + 10] ^= 0x40  # corrupt a sample byte of frame 1
        dec = FrameDecoder()
        frames = dec.feed(bytes(payload))
        assert [f.sequence for f in frames] == [0, 2]
        assert dec.crc_errors == 1
        assert dec.lost_frames == 1
        assert dec.resync_bytes > 0
