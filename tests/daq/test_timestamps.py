"""Sample-clock model and host-side reconstruction."""

import numpy as np
import pytest

from repro.daq.timestamps import (
    ClockFit,
    SampleClockModel,
    TimestampReconstructor,
)
from repro.errors import ConfigurationError


class TestClockModel:
    def test_true_rate_offset(self):
        clock = SampleClockModel(ppm_offset=50.0, ppm_drift_per_hour=0.0)
        assert clock.true_rate_hz() == pytest.approx(1000.0 * (1 + 50e-6))

    def test_drift_over_time(self):
        clock = SampleClockModel(ppm_offset=0.0, ppm_drift_per_hour=10.0)
        assert clock.true_rate_hz(3600.0) == pytest.approx(
            1000.0 * (1 + 10e-6)
        )

    def test_sample_times_spacing(self):
        clock = SampleClockModel(
            ppm_offset=100.0, ppm_drift_per_hour=0.0, jitter_rms_s=0.0
        )
        times = clock.sample_times_s(1000)
        mean_period = float(np.mean(np.diff(times)))
        assert mean_period == pytest.approx(1e-3 / (1 + 100e-6), rel=1e-9)

    def test_jitter_applied(self):
        quiet = SampleClockModel(jitter_rms_s=0.0).sample_times_s(500)
        noisy = SampleClockModel(jitter_rms_s=1e-4).sample_times_s(
            500, rng=np.random.default_rng(1)
        )
        assert np.std(noisy - quiet) == pytest.approx(1e-4, rel=0.2)

    def test_rejects_crazy_ppm(self):
        with pytest.raises(ConfigurationError):
            SampleClockModel(ppm_offset=5000.0)


class TestReconstruction:
    def _observe_through(self, clock, reconstructor, n=20000, every=500,
                         host_jitter=2e-4, seed=3):
        rng = np.random.default_rng(seed)
        times = clock.sample_times_s(n)
        for idx in range(0, n, every):
            host_time = times[idx] + host_jitter * rng.standard_normal()
            reconstructor.observe(host_time, idx)

    def test_recovers_static_ppm(self):
        clock = SampleClockModel(
            ppm_offset=42.0, ppm_drift_per_hour=0.0
        )
        recon = TimestampReconstructor()
        self._observe_through(clock, recon)
        fit = recon.fit()
        assert fit.ppm_vs_nominal(1000.0) == pytest.approx(42.0, abs=5.0)

    def test_jitter_averages_out(self):
        """With many observations, host jitter barely biases the rate."""
        clock = SampleClockModel(ppm_offset=42.0, ppm_drift_per_hour=0.0)
        recon = TimestampReconstructor()
        self._observe_through(
            clock, recon, n=60000, every=200, host_jitter=1e-3
        )
        fit = recon.fit()
        assert fit.ppm_vs_nominal(1000.0) == pytest.approx(42.0, abs=8.0)

    def test_reconstructed_times_accurate(self):
        clock = SampleClockModel(ppm_offset=42.0, ppm_drift_per_hour=0.0)
        recon = TimestampReconstructor()
        self._observe_through(clock, recon, host_jitter=0.0)
        fit = recon.fit()
        truth = clock.sample_times_s(20000)
        reconstructed = fit.sample_time_s(np.arange(20000))
        assert np.max(np.abs(reconstructed - truth)) < 1e-5

    def test_residuals_reflect_jitter(self):
        clock = SampleClockModel(ppm_offset=0.0, ppm_drift_per_hour=0.0)
        recon = TimestampReconstructor()
        self._observe_through(clock, recon, host_jitter=5e-4, seed=7)
        fit = recon.fit()
        assert fit.residual_rms_s == pytest.approx(5e-4, rel=0.4)

    def test_needs_two_points(self):
        recon = TimestampReconstructor()
        recon.observe(0.0, 0)
        with pytest.raises(ConfigurationError):
            recon.fit()

    def test_indices_must_increase(self):
        recon = TimestampReconstructor()
        recon.observe(0.0, 100)
        with pytest.raises(ConfigurationError):
            recon.observe(1.0, 50)

    def test_pulse_rate_bias_motivation(self):
        """The point of all this: a 100 ppm clock error biases a 70 bpm
        pulse-rate estimate by ~0.007 bpm — negligible — but a 1 %
        deflation-timer error in a cuff shifts systole by ~mmHg, so the
        reconstruction keeps rate-derived quantities honest."""
        fit = ClockFit(
            rate_hz=1000.0 * (1 + 100e-6),
            offset_s=0.0,
            residual_rms_s=0.0,
            n_observations=10,
        )
        measured_bpm = 70.0 * fit.rate_hz / 1000.0
        assert measured_bpm == pytest.approx(70.0, abs=0.01)
