"""Vectorized frame decode: bit-identity with the reference parser.

:mod:`repro.daq.batchdecode` is the batch plane's hot path — a tiled
NumPy scan plus a table-driven batch CRC, with bounded windows of the
reference :class:`~repro.daq.usb.FrameDecoder` around anything
irregular. The only contract is *exactness*: same frames, counters,
buffer residue, stream contents, gaps and hook order as feeding the
reference decoder directly, for any byte stream and any chunk split.
"""

import numpy as np

from repro.daq import batchdecode
from repro.daq.stream import SampleStream
from repro.daq.usb import FrameDecoder, FrameEncoder, crc16_ccitt


def _build_wire(rng, n_frames, spf, mangle):
    enc = FrameEncoder(samples_per_frame=spf)
    wire = bytearray()
    for _ in range(n_frames):
        codes = rng.integers(-2048, 2048, size=spf, dtype=np.int64)
        element = int(rng.integers(0, 3)) if rng.random() < 0.2 else 0
        wire += enc.push(codes, element)
    wire += enc.flush()
    if mangle:
        for _ in range(rng.integers(0, 8)):
            op = rng.integers(0, 3)
            if len(wire) < 40:
                break
            if op == 0:  # bitflip
                pos = int(rng.integers(0, len(wire)))
                wire[pos] ^= 1 << int(rng.integers(0, 8))
            elif op == 1:  # delete a span
                pos = int(rng.integers(0, len(wire) - 20))
                del wire[pos : pos + int(rng.integers(1, 20))]
            else:  # insert garbage
                pos = int(rng.integers(0, len(wire)))
                blob = bytes(
                    rng.integers(
                        0, 256, size=int(rng.integers(1, 10)), dtype=np.uint8
                    )
                )
                wire[pos:pos] = blob
    return bytes(wire)


def _chunks(wire, splits):
    out, pos = [], 0
    for s in splits:
        out.append(wire[pos : pos + s])
        pos += s
    out.append(wire[pos:])
    return out


def _run_reference(wire, splits, seed_exp):
    dec = FrameDecoder()
    stream = SampleStream(samples_per_frame=32)
    if seed_exp:
        dec.expect(0)
        stream.expect(0)
    hooks = []
    for chunk in _chunks(wire, splits):
        frames = dec.feed(chunk)
        stream.ingest(frames)
        hooks.extend(f.sequence for f in frames)
    return dec, stream, hooks


def _run_batch(wire, splits, seed_exp):
    dec = FrameDecoder()
    stream = SampleStream(samples_per_frame=32)
    if seed_exp:
        dec.expect(0)
        stream.expect(0)
    hooks = []
    for chunk in _chunks(wire, splits):
        staged = batchdecode.stage(dec, chunk)
        batchdecode.crc_check([staged])
        batchdecode.commit(
            dec, staged, stream, lambda seq, now: hooks.append(seq), 0.0
        )
    return dec, stream, hooks


def _assert_identical(ref, bat, label):
    da, sa, ha = ref
    db, sb, hb = bat
    assert da.frames_decoded == db.frames_decoded, label
    assert da.lost_frames == db.lost_frames, label
    assert da.crc_errors == db.crc_errors, label
    assert da.stale_frames == db.stale_frames, label
    assert da.resync_bytes == db.resync_bytes, label
    assert da._expected_seq == db._expected_seq, label
    assert bytes(da._buffer) == bytes(db._buffer), label
    assert sa.samples_ingested == sb.samples_ingested, label
    assert sa.elements == sb.elements, label
    for el in sa.elements:
        assert np.array_equal(sa.samples(el), sb.samples(el)), label
        assert sa.gaps(el) == sb.gaps(el), label
    assert ha == hb, label


class TestCrc16Batch:
    def test_matches_reference_for_every_frame_length(self):
        rng = np.random.default_rng(7)
        for length in (1, 2, 7, 74, batchdecode._MAX_BODY):
            mat = rng.integers(0, 256, size=(50, length), dtype=np.uint8)
            got = batchdecode.crc16_batch(mat)
            want = np.array(
                [crc16_ccitt(bytes(row)) for row in mat], dtype=np.uint16
            )
            assert np.array_equal(got, want), length


class TestBitIdentity:
    def test_randomized_streams_and_splits(self):
        rng = np.random.default_rng(1234)
        for trial in range(120):
            spf = int(rng.integers(1, 64))
            n_frames = int(rng.integers(0, 40))
            wire = _build_wire(rng, n_frames, spf, mangle=trial % 2 == 1)
            splits = [
                int(rng.integers(0, max(len(wire), 1)))
                for _ in range(int(rng.integers(0, 6)))
            ]
            seed_exp = bool(rng.integers(0, 2))
            _assert_identical(
                _run_reference(wire, splits, seed_exp),
                _run_batch(wire, splits, seed_exp),
                f"trial {trial}",
            )

    def test_clean_stream_stays_on_fast_path(self):
        enc = FrameEncoder(samples_per_frame=32)
        wire = b"".join(
            enc.push(np.arange(32, dtype=np.int64) + k, 0) for k in range(20)
        )
        dec = FrameDecoder()
        dec.expect(0)
        staged = batchdecode.stage(dec, wire)
        # One uniform run covering every frame, verdicts all true.
        assert len(staged.runs) == 1
        assert staged.runs[0].k == 20
        batchdecode.crc_check([staged])
        assert staged.runs[0].crc_ok.all()
        stream = SampleStream(samples_per_frame=32)
        stream.expect(0)
        assert batchdecode.commit(dec, staged, stream, None, 0.0) == 20
        assert not dec._buffer

    def test_stale_frames_mid_run_keep_later_segments(self):
        # Reordered-but-valid frames: 3 and 4 arrive after 5, so they
        # are stale, and the segments after the stale split (6, 7) must
        # still be booked. A CRC-valid reorder is the one shape the
        # mangle fuzz above cannot produce.
        enc = FrameEncoder(samples_per_frame=8)
        frames = [
            enc.push(np.arange(8, dtype=np.int64) + k, 0) for k in range(8)
        ]
        order = [0, 1, 2, 5, 3, 4, 6, 7]
        wire = b"".join(frames[k] for k in order)
        _assert_identical(
            _run_reference(wire, [], True),
            _run_batch(wire, [], True),
            "stale split",
        )
        dec, stream, _ = _run_batch(wire, [], True)
        assert dec.frames_decoded == 6  # 3 and 4 dropped as stale
        assert dec.stale_frames == 2
        assert dec.lost_frames == 2
        assert stream.samples_ingested == 6 * 8

    def test_split_tail_carries_over(self):
        enc = FrameEncoder(samples_per_frame=8)
        wire = enc.push(np.arange(8, dtype=np.int64), 0)
        dec = FrameDecoder()
        stream = SampleStream(samples_per_frame=8)
        staged = batchdecode.stage(dec, wire[:10])
        batchdecode.crc_check([staged])
        assert batchdecode.commit(dec, staged, stream, None, 0.0) == 0
        staged = batchdecode.stage(dec, wire[10:])
        batchdecode.crc_check([staged])
        assert batchdecode.commit(dec, staged, stream, None, 0.0) == 1
        assert stream.samples_ingested == 8
