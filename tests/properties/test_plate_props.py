"""Hypothesis properties of the plate mechanics and capacitance."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mems.capacitor import DeflectedPlateCapacitor
from repro.mems.laminate import Laminate
from repro.mems.materials import paper_membrane_stack
from repro.mems.plate import ClampedSquarePlate, _solve_stiffening_cubic

sides = st.floats(min_value=50e-6, max_value=500e-6)
forces = st.floats(min_value=0.0, max_value=500.0)  # N/m, tensile
pressures = st.floats(min_value=-1e5, max_value=1e5)


@st.composite
def plates(draw):
    side = draw(sides)
    n0 = draw(forces)
    lam = Laminate(paper_membrane_stack())
    return ClampedSquarePlate(side, lam, residual_force_override_n_per_m=n0)


class TestPlateProperties:
    @given(plates(), pressures, pressures)
    @settings(max_examples=80, deadline=None)
    def test_monotonicity(self, plate, p1, p2):
        lo, hi = sorted((p1, p2))
        w = plate.center_deflection_m(np.array([lo, hi]))
        assert w[0] <= w[1] + 1e-18

    @given(plates(), pressures)
    @settings(max_examples=80, deadline=None)
    def test_inverse_round_trip(self, plate, p):
        w = plate.center_deflection_m(p)
        back = plate.pressure_for_deflection_pa(w)
        np.testing.assert_allclose(back[0], p, rtol=1e-8, atol=1e-8)

    @given(plates(), st.floats(min_value=1.0, max_value=1e4))
    @settings(max_examples=60, deadline=None)
    def test_odd_symmetry(self, plate, p):
        w_pos = plate.center_deflection_m(p)[0]
        w_neg = plate.center_deflection_m(-p)[0]
        np.testing.assert_allclose(w_neg, -w_pos, rtol=1e-10)

    @given(
        st.floats(min_value=1e-3, max_value=1e3),
        st.floats(min_value=0.0, max_value=1e6),
        st.floats(min_value=-1e3, max_value=1e3),
    )
    @settings(max_examples=120, deadline=None)
    def test_cubic_solver_exactness(self, k1, k3, rhs):
        w = _solve_stiffening_cubic(k1, k3, np.array([rhs]))[0]
        residual = k3 * w**3 + k1 * w - rhs
        scale = max(abs(rhs), k1 * abs(w), 1e-12)
        assert abs(residual) < 1e-7 * scale + 1e-12


class TestCapacitorProperties:
    @given(
        st.floats(min_value=50e-6, max_value=300e-6),
        st.floats(min_value=0.2e-6, max_value=2e-6),
        st.floats(min_value=0.2, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_capacitance_monotone_in_deflection(self, side, gap, coverage):
        cap = DeflectedPlateCapacitor(
            side, gap, electrode_coverage=coverage, grid_points=21
        )
        w = np.linspace(-0.5 * gap, 0.9 * gap, 15)
        c = cap.capacitance_f(w)
        assert np.all(np.diff(c) > 0)

    @given(
        st.floats(min_value=50e-6, max_value=300e-6),
        st.floats(min_value=0.2e-6, max_value=2e-6),
    )
    @settings(max_examples=40, deadline=None)
    def test_capacitance_bounded_by_parallel_plates(self, side, gap):
        """C(w0) lies between the flat-plate value and the plate at the
        center gap (the deflection profile is between those extremes)."""
        cap = DeflectedPlateCapacitor(
            side, gap, electrode_coverage=1.0, fringe_factor=1.0,
            parasitic_f=0.0, grid_points=21,
        )
        w0 = 0.5 * gap
        c = cap.capacitance_f(w0)[0]
        c_flat = cap.rest_capacitance_f
        from repro.mems.capacitor import VACUUM_PERMITTIVITY

        c_center = VACUUM_PERMITTIVITY * side**2 / (gap - w0)
        assert c_flat < c < c_center