"""Property: the batch decode plane == N independent per-session decodes.

The tentpole's correctness gate, stated as a hypothesis property: for
any fleet of devices — any payload shapes, any seeded link-fault
schedule mangling the wire bytes, any chunk splits, any interleaving of
batch ticks, resume flushes and mid-run connect/disconnect — every
device's decode through the shared :class:`~repro.gateway.batchplane.
BatchPlane` is *bit-identical* to feeding the same chunks through its
own worker-mode :meth:`~repro.gateway.connection.DeviceSession.decode`
loop: same decoded/lost/stale/CRC/resync counters, same buffer residue,
same sample values and gap records, same frame-hook order.

The plane is driven synchronously (``notify`` + ``flush`` /
``flush_lane``), which is exactly what the scheduler task does — the
async wrapper adds timing, not semantics.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.daq.usb import FrameEncoder
from repro.faults import FaultInjector, FaultSpec
from repro.gateway.batchplane import BatchPlane
from repro.gateway.chaos import CHAOS_KINDS
from repro.gateway.connection import DeviceSession


def _device_wire(device_id: int, n_frames: int, spf: int, faulted: bool):
    """One device's data-plane bytes, faults applied on the wire only."""
    enc = FrameEncoder(samples_per_frame=spf)
    payload = b"".join(
        enc.push(
            (np.arange(spf, dtype=np.int64) + 31 * k + device_id) % 2048, 0
        )
        for k in range(n_frames)
    )
    if not faulted or not payload:
        return payload
    specs = [
        FaultSpec(kind=kind, rate_hz=4.0, magnitude=m)
        for kind, m in zip(CHAOS_KINDS, (1.0, 0.5, 1.0, 1.0))
    ]
    injector = FaultInjector(
        specs, seed=device_id + 1, horizon_s=max(n_frames / 50.0, 0.1)
    )
    injector.bind_link(50.0)
    return injector.apply_payload(payload)


@st.composite
def fleet_cases(draw):
    n_devices = draw(st.integers(min_value=1, max_value=3))
    devices = []
    for d in range(n_devices):
        n_frames = draw(st.integers(min_value=0, max_value=30))
        spf = draw(st.sampled_from([4, 16, 32]))
        faulted = draw(st.booleans())
        n_chunks = draw(st.integers(min_value=1, max_value=5))
        devices.append((n_frames, spf, faulted, n_chunks))
    # The event schedule: after each offer round, maybe tick / resume /
    # drop-and-reconnect. Drawn as integers so shrinking stays readable.
    ops = draw(
        st.lists(
            st.sampled_from(["tick", "lane", "drop", "none"]),
            min_size=0,
            max_size=8,
        )
    )
    return devices, ops


def _split(wire: bytes, n_chunks: int, rng) -> list[bytes]:
    if not wire:
        return [b""]
    cuts = sorted(rng.integers(0, len(wire) + 1, size=n_chunks - 1).tolist())
    edges = [0, *cuts, len(wire)]
    return [wire[a:b] for a, b in zip(edges, edges[1:])]


class TestPlaneEqualsWorkers:
    @given(fleet_cases())
    @settings(max_examples=40, deadline=None)
    def test_bit_identical_per_device(self, case):
        devices, ops = case
        rng = np.random.default_rng(len(ops) + 17)

        chunk_lists = []
        for d, (n_frames, spf, faulted, n_chunks) in enumerate(devices):
            wire = _device_wire(d, n_frames, spf, faulted)
            chunk_lists.append(_split(wire, n_chunks, rng))

        # Reference: each device decodes alone, worker-style.
        ref_sessions = []
        ref_hooks: list[list[int]] = []
        for d, chunks in enumerate(chunk_lists):
            session = DeviceSession(device_id=d)
            session.fresh_start()
            hooks: list[int] = []
            session.frame_hook = (
                lambda seq, now, hooks=hooks: hooks.append(seq)
            )
            for chunk in chunks:
                if chunk:
                    session.decode(chunk)
            session.finalize()
            ref_sessions.append(session)
            ref_hooks.append(hooks)

        # Batch plane: same chunks offered round-robin, with ticks,
        # resume flushes and mid-run disconnect/reconnect interleaved.
        plane = BatchPlane()
        plane_sessions = []
        plane_hooks: list[list[int]] = []
        for d in range(len(devices)):
            session = DeviceSession(device_id=d)
            session.fresh_start()
            hooks = []
            session.frame_hook = (
                lambda seq, now, hooks=hooks: hooks.append(seq)
            )
            plane.attach(session)
            plane_sessions.append(session)
            plane_hooks.append(hooks)

        pending = [list(chunks) for chunks in chunk_lists]
        op_i = 0
        while any(pending):
            for d, queue in enumerate(pending):
                if queue:
                    chunk = queue.pop(0)
                    if chunk and plane_sessions[d].offer(chunk):
                        plane.notify(plane_sessions[d], len(chunk))
            op = ops[op_i % len(ops)] if ops else "none"
            op_i += 1
            if op == "tick":
                plane.flush(cause="deadline")
            elif op == "lane":
                # The resume handshake's solo flush on one device.
                plane.flush_lane(plane_sessions[op_i % len(devices)])
            elif op == "drop":
                # Device drops and immediately resumes: the session
                # object survives (resume keeps the books), the plane
                # flushes its backlog before ACKing, like the server.
                d = op_i % len(devices)
                plane.flush_lane(plane_sessions[d])
        plane.flush(cause="drain")
        for session in plane_sessions:
            session.finalize()

        for d, (ref, bat) in enumerate(zip(ref_sessions, plane_sessions)):
            label = f"device {d}"
            assert ref.decoder.frames_decoded == bat.decoder.frames_decoded, label
            assert ref.decoder.lost_frames == bat.decoder.lost_frames, label
            assert ref.decoder.stale_frames == bat.decoder.stale_frames, label
            assert ref.decoder.crc_errors == bat.decoder.crc_errors, label
            assert ref.decoder.resync_bytes == bat.decoder.resync_bytes, label
            assert bytes(ref.decoder._buffer) == bytes(bat.decoder._buffer), label
            assert ref.stream.samples_ingested == bat.stream.samples_ingested, label
            assert ref.stream.elements == bat.stream.elements, label
            for el in ref.stream.elements:
                assert np.array_equal(
                    ref.stream.samples(el), bat.stream.samples(el)
                ), label
                assert ref.stream.gaps(el) == bat.stream.gaps(el), label
            assert ref_hooks[d] == plane_hooks[d], label
            # Telemetry counters agree (wall-clock stages aside).
            rv, bv = ref.telemetry_view(), bat.telemetry_view()
            assert rv.frames_decoded == bv.frames_decoded, label
            assert rv.lost_frames == bv.lost_frames, label
            assert rv.words_delivered == bv.words_delivered, label
