"""Hypothesis properties of calibration and waveform synthesis."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration.twopoint import TwoPointCalibration
from repro.physiology.pulse import RadialPulseTemplate


class _Anchor:
    def __init__(self, sys_raw, dia_raw):
        self.mean_systolic_raw = sys_raw
        self.mean_diastolic_raw = dia_raw


cuff_pairs = st.tuples(
    st.floats(min_value=90.0, max_value=220.0),
    st.floats(min_value=40.0, max_value=85.0),
)
raw_pairs = st.tuples(
    st.floats(min_value=-1.0, max_value=1.0),
    st.floats(min_value=-1.0, max_value=1.0),
).filter(lambda p: abs(p[0] - p[1]) > 1e-3)


class TestCalibrationProperties:
    @given(raw_pairs, cuff_pairs)
    @settings(max_examples=100, deadline=None)
    def test_anchors_always_exact(self, raw, cuff):
        sys_raw, dia_raw = max(raw), min(raw)
        cal = TwoPointCalibration.from_features(
            _Anchor(sys_raw, dia_raw), cuff[0], cuff[1]
        )
        np.testing.assert_allclose(cal.apply(sys_raw), cuff[0], rtol=1e-9)
        np.testing.assert_allclose(cal.apply(dia_raw), cuff[1], rtol=1e-9)

    @given(raw_pairs, cuff_pairs, st.floats(min_value=-2.0, max_value=2.0))
    @settings(max_examples=100, deadline=None)
    def test_invert_is_inverse(self, raw, cuff, probe):
        sys_raw, dia_raw = max(raw), min(raw)
        cal = TwoPointCalibration.from_features(
            _Anchor(sys_raw, dia_raw), cuff[0], cuff[1]
        )
        np.testing.assert_allclose(
            cal.invert(cal.apply(probe)), probe, rtol=1e-7, atol=1e-9
        )

    @given(raw_pairs, cuff_pairs)
    @settings(max_examples=100, deadline=None)
    def test_monotone_when_sys_above_dia(self, raw, cuff):
        sys_raw, dia_raw = max(raw), min(raw)
        cal = TwoPointCalibration.from_features(
            _Anchor(sys_raw, dia_raw), cuff[0], cuff[1]
        )
        x = np.linspace(-1.0, 1.0, 11)
        y = cal.apply(x)
        assert np.all(np.diff(y) > 0)


@st.composite
def templates(draw):
    n_lobes = draw(st.integers(min_value=1, max_value=4))
    lobes = []
    for k in range(n_lobes):
        amp = draw(st.floats(min_value=0.1, max_value=1.0))
        center = draw(st.floats(min_value=0.05, max_value=0.75))
        width = draw(st.floats(min_value=0.02, max_value=0.2))
        lobes.append((amp, center, width))
    decay = draw(st.floats(min_value=0.0, max_value=3.0))
    return RadialPulseTemplate(lobes=lobes, notch=None, decay_rate=decay)


class TestTemplateProperties:
    @given(templates())
    @settings(max_examples=50, deadline=None)
    def test_always_normalized(self, template):
        phase = np.linspace(0, 1, 2048, endpoint=False)
        wave = template.evaluate(phase)
        assert wave.min() >= -1e-9
        assert wave.max() <= 1.0 + 1e-9
        np.testing.assert_allclose(wave.max(), 1.0, atol=1e-6)

    @given(templates(), st.floats(min_value=-5.0, max_value=5.0))
    @settings(max_examples=80, deadline=None)
    def test_periodic_everywhere(self, template, phase):
        np.testing.assert_allclose(
            template.evaluate(phase),
            template.evaluate(phase + 1.0),
            atol=1e-9,
        )

    @given(templates())
    @settings(max_examples=50, deadline=None)
    def test_mean_strictly_inside(self, template):
        assert 0.0 < template.mean_value() < 1.0
