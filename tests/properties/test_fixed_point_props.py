"""Hypothesis properties of the fixed-point primitives."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.fixed_point import (
    QFormat,
    saturate,
    wrap_twos_complement,
)

ints = st.integers(min_value=-(2**40), max_value=2**40)
widths = st.integers(min_value=2, max_value=32)


class TestWrapProperties:
    @given(st.lists(ints, min_size=1, max_size=50), widths)
    @settings(max_examples=100, deadline=None)
    def test_wrap_is_idempotent(self, values, bits):
        x = np.array(values)
        once = wrap_twos_complement(x, bits)
        assert np.array_equal(wrap_twos_complement(once, bits), once)

    @given(st.lists(ints, min_size=1, max_size=50), widths)
    @settings(max_examples=100, deadline=None)
    def test_wrap_in_range(self, values, bits):
        out = wrap_twos_complement(np.array(values), bits)
        assert out.max() <= (1 << (bits - 1)) - 1
        assert out.min() >= -(1 << (bits - 1))

    @given(ints, ints, widths)
    @settings(max_examples=200, deadline=None)
    def test_wrap_additive_homomorphism(self, a, b, bits):
        """wrap(a + b) == wrap(wrap(a) + wrap(b)) — the modular-arithmetic
        property Hogenauer CIC correctness rests on."""
        lhs = wrap_twos_complement(np.array([a + b]), bits)
        rhs = wrap_twos_complement(
            wrap_twos_complement(np.array([a]), bits)
            + wrap_twos_complement(np.array([b]), bits),
            bits,
        )
        assert np.array_equal(lhs, rhs)

    @given(st.lists(ints, min_size=1, max_size=50), widths)
    @settings(max_examples=100, deadline=None)
    def test_saturate_in_range_and_monotone(self, values, bits):
        x = np.sort(np.array(values))
        out = saturate(x, bits)
        assert np.all(np.diff(out) >= 0)
        assert out.max() <= (1 << (bits - 1)) - 1
        assert out.min() >= -(1 << (bits - 1))


class TestQFormatProperties:
    @given(
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=20),
        st.lists(
            st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_quantize_error_bounded(self, int_bits, frac_bits, values):
        if 1 + int_bits + frac_bits < 2:
            return
        q = QFormat(int_bits=int_bits, frac_bits=frac_bits)
        x = np.array(values)
        in_range = np.clip(x, q.min_value, q.max_value)
        out = q.quantize(in_range)
        assert np.max(np.abs(out - in_range)) <= q.scale / 2 + 1e-12

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_quantize_idempotent(self, int_bits, frac_bits):
        q = QFormat(int_bits=int_bits, frac_bits=frac_bits)
        x = np.linspace(q.min_value, q.max_value, 37)
        once = q.quantize(x)
        assert np.array_equal(q.quantize(once), once)
